// Query-lifecycle benchmark: what resilience costs when idle and what it
// buys under pressure.
//
// Part 1 — control overhead: unbounded MatchBatch with no lifecycle
// controls vs the same batch with an armed (but never-firing) deadline +
// cancellation token. The polling sits on the round/candidate/amortized
// vertex-report path, so the target is <= 2% overhead, with results
// bit-identical.
//
// Part 2 — deadline sweep: per-query deadlines from far-too-tight to
// infinite, reporting the full/partial/shed split and how much work each
// horizon completes (graceful degradation, not a cliff).
//
// Part 3 — budget determinism: budget-terminated partial results must be
// bit-identical at 1 and 4 threads (the determinism contract that makes
// work budgets usable for reproducible experiments).
//
// Part 4 — admission control under 4x oversubscription: N = 4 *
// max_concurrent client threads hammer the base; with the controller the
// tail latency is bounded by slot service time + queue timeout, without
// it every request pays full contention.
//
// Scale via GEOSIR_BENCH_SHAPES / GEOSIR_BENCH_QUERIES; JSON lines also
// append to GEOSIR_BENCH_JSON when set.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "query/admission.h"
#include "util/cancellation.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

constexpr const char* kBench = "bench_query_lifecycle";

struct Workload {
  std::unique_ptr<geosir::core::ShapeBase> base;
  std::vector<Polyline> queries;
};

Workload BuildWorkload() {
  const size_t num_shapes = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_SHAPES", 6000));
  const size_t num_queries = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_QUERIES", 48));
  Workload out;
  geosir::util::Rng rng(42);
  geosir::core::ShapeBaseOptions base_options;
  base_options.normalize.max_axes = 2;
  out.base = std::make_unique<geosir::core::ShapeBase>(base_options);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = std::max<size_t>(4, num_shapes / 10);
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }
  Timer build_timer;
  for (size_t s = 0; s < num_shapes; ++s) {
    (void)out.base->AddShape(geosir::workload::JitterVertices(
        prototypes[s % num_protos], 0.008, &rng));
  }
  (void)out.base->Finalize();
  geosir::util::Rng qrng(7);
  for (size_t q = 0; q < num_queries; ++q) {
    out.queries.push_back(geosir::workload::JitterVertices(
        prototypes[q % num_protos], 0.01, &qrng));
  }
  std::printf("workload: %zu shapes, %zu queries, built in %.2f s\n\n",
              num_shapes, num_queries, build_timer.Seconds());
  return out;
}

bool Identical(const std::vector<std::vector<geosir::core::MatchResult>>& a,
               const std::vector<std::vector<geosir::core::MatchResult>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t r = 0; r < a[i].size(); ++r) {
      if (a[i][r].shape_id != b[i][r].shape_id ||
          a[i][r].distance != b[i][r].distance ||
          a[i][r].copy_index != b[i][r].copy_index) {
        return false;
      }
    }
  }
  return true;
}

void BenchControlOverhead(const Workload& workload) {
  std::printf("=== Lifecycle-control overhead (unbounded queries) ===\n");
  geosir::core::MatchOptions baseline;
  baseline.k = 3;

  geosir::util::CancellationToken token;  // Armed, never fired.
  geosir::core::MatchOptions armed = baseline;
  armed.deadline = geosir::util::Deadline::AfterMillis(3600 * 1000);
  armed.cancel_token = &token;

  // Interleaved best-of-N: the minimum wall time is the least noisy
  // estimator for a CPU-bound batch on a shared machine.
  const int reps = 5;
  double baseline_s = 1e100, armed_s = 1e100;
  std::vector<std::vector<geosir::core::MatchResult>> baseline_results;
  std::vector<std::vector<geosir::core::MatchResult>> armed_results;
  for (int rep = 0; rep < reps; ++rep) {
    Timer tb;
    auto rb = MatchBatch(*workload.base, workload.queries, baseline);
    baseline_s = std::min(baseline_s, tb.Seconds());
    Timer ta;
    auto ra = MatchBatch(*workload.base, workload.queries, armed);
    armed_s = std::min(armed_s, ta.Seconds());
    if (!rb.ok() || !ra.ok()) {
      std::fprintf(stderr, "FAIL: overhead batch errored\n");
      return;
    }
    baseline_results = *std::move(rb);
    armed_results = *std::move(ra);
  }
  const bool identical = Identical(baseline_results, armed_results);
  const double overhead_pct =
      100.0 * (armed_s - baseline_s) / std::max(baseline_s, 1e-9);
  std::printf(
      "baseline %.3f s, armed controls %.3f s, overhead %.2f%% "
      "(target <= 2%%), identical=%s\n\n",
      baseline_s, armed_s, overhead_pct, identical ? "yes" : "NO");
  JsonLine(kBench)
      .Str("name", "control_overhead")
      .Int("queries", static_cast<long long>(workload.queries.size()))
      .Num("baseline_seconds", baseline_s)
      .Num("armed_seconds", armed_s)
      .Num("overhead_pct", overhead_pct)
      .Int("identical", identical ? 1 : 0)
      .Emit();
  if (!identical) {
    std::fprintf(stderr, "FAIL: armed controls changed the results\n");
  }
}

void BenchDeadlineSweep(const Workload& workload) {
  std::printf("=== Deadline sweep (per-query horizon) ===\n");
  // Calibrate the sweep to this machine: measure the unbounded per-query
  // cost, then set horizons as fractions of it so the full/partial/shed
  // split is visible regardless of absolute speed.
  geosir::core::EnvelopeMatcher matcher(workload.base.get());
  double unbounded_us = 0.0;
  size_t unbounded_evals = 0;
  {
    Timer timer;
    for (const Polyline& query : workload.queries) {
      geosir::core::MatchOptions options;
      options.k = 3;
      geosir::core::MatchStats stats;
      auto result = matcher.Match(query, options, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "FAIL: unbounded sweep query errored\n");
        return;
      }
      unbounded_evals += stats.candidates_evaluated;
    }
    unbounded_us = timer.Seconds() * 1e6 /
                   static_cast<double>(workload.queries.size());
  }
  std::printf("unbounded: %.1f ms/query, %.1f candidate evals/query\n",
              unbounded_us / 1000.0,
              static_cast<double>(unbounded_evals) /
                  static_cast<double>(workload.queries.size()));

  Table table({"deadline", "deadline_us", "full", "partial", "shed_empty",
               "avg_evals", "wall_ms"});
  for (double fraction : {0.05, 0.25, 0.50, 0.75, 1.00, 0.0}) {
    const bool infinite = fraction == 0.0;
    const long long deadline_us =
        infinite ? 0
                 : std::max<long long>(
                       50, static_cast<long long>(fraction * unbounded_us));
    size_t full = 0, partial = 0, shed = 0, evals = 0;
    Timer timer;
    for (const Polyline& query : workload.queries) {
      geosir::core::MatchOptions options;
      options.k = 3;
      if (!infinite) {
        // Armed immediately before the call: deadlines are absolute.
        options.deadline = geosir::util::Deadline::AfterMicros(deadline_us);
      }
      geosir::core::MatchStats stats;
      auto result = matcher.Match(query, options, &stats);
      evals += stats.candidates_evaluated;
      if (!result.ok()) {
        ++shed;
      } else if (stats.partial) {
        ++partial;
      } else {
        ++full;
      }
    }
    const double wall_ms = timer.Millis();
    const double avg_evals =
        static_cast<double>(evals) /
        static_cast<double>(std::max<size_t>(1, workload.queries.size()));
    table.AddRow({infinite ? "inf" : Fmt("%.0f%%", fraction * 100.0),
                  infinite ? "inf" : FmtInt(deadline_us),
                  FmtInt(static_cast<long long>(full)),
                  FmtInt(static_cast<long long>(partial)),
                  FmtInt(static_cast<long long>(shed)),
                  Fmt("%.1f", avg_evals), Fmt("%.1f", wall_ms)});
    JsonLine(kBench)
        .Str("name", "deadline_sweep")
        .Num("fraction_of_unbounded", infinite ? 0.0 : fraction)
        .Int("deadline_us", deadline_us)
        .Int("full", static_cast<long long>(full))
        .Int("partial", static_cast<long long>(partial))
        .Int("shed_empty", static_cast<long long>(shed))
        .Num("avg_candidate_evals", avg_evals)
        .Num("wall_ms", wall_ms)
        .Emit();
  }
  table.Print();
  std::printf(
      "\nexpected: tighter deadlines shift queries from full to partial to\n"
      "shed, with completed work degrading smoothly (no cliff).\n\n");
}

void BenchBudgetDeterminism(const Workload& workload) {
  std::printf("=== Budget-stop determinism (1 vs 4 threads) ===\n");
  geosir::util::ThreadPool pool(4);
  bool all_identical = true;
  for (size_t max_candidates : {2UL, 8UL, 32UL}) {
    geosir::core::MatchOptions options;
    options.k = 3;
    options.budget.max_candidates = max_candidates;
    auto serial = MatchBatch(*workload.base, workload.queries, options);
    options.num_threads = 4;
    options.pool = &pool;
    auto parallel = MatchBatch(*workload.base, workload.queries, options);
    const bool identical =
        serial.ok() && parallel.ok() && Identical(*serial, *parallel);
    all_identical = all_identical && identical;
    std::printf("max_candidates=%zu: identical=%s\n", max_candidates,
                identical ? "yes" : "NO");
    JsonLine(kBench)
        .Str("name", "budget_determinism")
        .Int("max_candidates", static_cast<long long>(max_candidates))
        .Int("identical", identical ? 1 : 0)
        .Emit();
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: budget partial results depend on threads\n");
  }
  std::printf("\n");
}

struct LatencyStats {
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
};

LatencyStats Percentiles(std::vector<double> latencies_ms) {
  LatencyStats out;
  if (latencies_ms.empty()) return out;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  out.p50_ms = at(0.50);
  out.p95_ms = at(0.95);
  out.p99_ms = at(0.99);
  out.max_ms = latencies_ms.back();
  return out;
}

void BenchAdmissionOverload(const Workload& workload) {
  const size_t slots = std::min<size_t>(
      4, std::max<size_t>(2, std::thread::hardware_concurrency() / 2));
  const size_t clients = 4 * slots;  // 4x oversubscription.
  const int requests_per_client = 6;
  // Two queries per request keeps one request's service time small
  // relative to the queue timeout below.
  const std::vector<Polyline> request_queries(workload.queries.begin(),
                                              workload.queries.begin() + 2);
  std::printf(
      "=== Admission under overload: %zu clients, %zu slots, %d req each "
      "===\n",
      clients, slots, requests_per_client);

  const auto run = [&](geosir::query::AdmissionController* controller) {
    std::mutex mutex;
    std::vector<double> latencies_ms;
    std::atomic<size_t> shed{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    Timer wall;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (int r = 0; r < requests_per_client; ++r) {
          geosir::core::MatchOptions options;
          options.k = 3;
          Timer timer;
          if (controller != nullptr) {
            auto result = geosir::query::AdmittedMatchBatch(
                controller, *workload.base, request_queries, options);
            if (!result.ok()) shed.fetch_add(1);
          } else {
            (void)MatchBatch(*workload.base, request_queries, options);
          }
          const double ms = timer.Millis();
          std::lock_guard<std::mutex> lock(mutex);
          latencies_ms.push_back(ms);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return std::make_tuple(Percentiles(latencies_ms), wall.Seconds(),
                           shed.load());
  };

  Table table({"mode", "p50_ms", "p95_ms", "p99_ms", "max_ms", "shed",
               "wall_s"});
  // Uncontrolled: every request runs immediately and fights for cores.
  auto [raw, raw_wall, raw_shed] = run(nullptr);
  table.AddRow({"uncontrolled", Fmt("%.1f", raw.p50_ms),
                Fmt("%.1f", raw.p95_ms), Fmt("%.1f", raw.p99_ms),
                Fmt("%.1f", raw.max_ms), FmtInt(0),
                Fmt("%.2f", raw_wall)});
  JsonLine(kBench)
      .Str("name", "admission_overload")
      .Str("mode", "uncontrolled")
      .Int("clients", static_cast<long long>(clients))
      .Num("p50_ms", raw.p50_ms)
      .Num("p95_ms", raw.p95_ms)
      .Num("p99_ms", raw.p99_ms)
      .Num("max_ms", raw.max_ms)
      .Int("shed", static_cast<long long>(raw_shed))
      .Num("wall_seconds", raw_wall)
      .Emit();

  // Admission-controlled: `slots` requests in flight, a bounded queue, and
  // a queue timeout that sheds the overflow instead of letting it convoy.
  geosir::query::AdmissionOptions admission;
  admission.max_concurrent = slots;
  admission.max_queued = clients;
  admission.queue_timeout_ms = 250;
  geosir::query::AdmissionController controller(admission);
  auto [gated, gated_wall, gated_shed] = run(&controller);
  table.AddRow({"admission", Fmt("%.1f", gated.p50_ms),
                Fmt("%.1f", gated.p95_ms), Fmt("%.1f", gated.p99_ms),
                Fmt("%.1f", gated.max_ms),
                FmtInt(static_cast<long long>(gated_shed)),
                Fmt("%.2f", gated_wall)});
  JsonLine(kBench)
      .Str("name", "admission_overload")
      .Str("mode", "admission")
      .Int("clients", static_cast<long long>(clients))
      .Int("slots", static_cast<long long>(slots))
      .Int("queue_timeout_ms", admission.queue_timeout_ms)
      .Num("p50_ms", gated.p50_ms)
      .Num("p95_ms", gated.p95_ms)
      .Num("p99_ms", gated.p99_ms)
      .Num("max_ms", gated.max_ms)
      .Int("shed", static_cast<long long>(gated_shed))
      .Num("wall_seconds", gated_wall)
      .Emit();
  table.Print();
  std::printf(
      "\nexpected: the admission row's p99 stays near slot service time +\n"
      "queue timeout while the uncontrolled row's tail grows with the\n"
      "oversubscription factor; shed requests fail fast with kUnavailable.\n");
}

}  // namespace

int main() {
  Workload workload = BuildWorkload();
  BenchControlOverhead(workload);
  BenchDeadlineSweep(workload);
  BenchBudgetDeterminism(workload);
  BenchAdmissionOverload(workload);
  return 0;
}
