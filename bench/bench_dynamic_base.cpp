// Ablation (extension): the dynamic shape base under a mixed
// insert/delete/query workload — the "dynamic environments, where insert
// and delete operations occur frequently" scenario the paper's related
// work points at. Compares the delta-plus-compaction design against the
// naive alternative (rebuild the whole static base after every change).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_shape_base.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

struct WorkloadStep {
  enum Kind { kInsert, kRemove, kQuery } kind;
  Polyline shape;  // Insert payload or query.
};

std::vector<WorkloadStep> MakeWorkload(size_t steps, geosir::util::Rng* rng) {
  geosir::workload::PolygonGenOptions gen;
  std::vector<WorkloadStep> out;
  std::vector<Polyline> pool;
  for (size_t s = 0; s < steps; ++s) {
    const double roll = rng->Uniform(0, 1);
    if (pool.empty() || roll < 0.5) {
      WorkloadStep step{WorkloadStep::kInsert, RandomStarPolygon(rng, gen)};
      pool.push_back(step.shape);
      out.push_back(std::move(step));
    } else if (roll < 0.7) {
      out.push_back(WorkloadStep{WorkloadStep::kRemove, {}});
    } else {
      const size_t pick = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
      out.push_back(WorkloadStep{
          WorkloadStep::kQuery,
          geosir::workload::JitterVertices(pool[pick], 0.01, rng)});
    }
  }
  return out;
}

}  // namespace

int main() {
  const size_t kSteps = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_STEPS", 600));
  geosir::util::Rng rng(112233);
  const auto workload = MakeWorkload(kSteps, &rng);

  std::printf("=== Mixed workload: %zu steps (~50%% insert, 20%% delete, "
              "30%% query) ===\n\n",
              workload.size());

  Table table({"strategy", "total_s", "insert_ms", "remove_ms", "query_ms",
               "rebuilds"});

  // Strategy A: delta + compaction (DynamicShapeBase).
  {
    geosir::core::DynamicShapeBase::Options options;
    options.match.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    geosir::core::DynamicShapeBase base(options);
    std::vector<uint64_t> live;
    double insert_ms = 0, remove_ms = 0, query_ms = 0;
    Timer total;
    geosir::util::Rng pick_rng(1);
    for (const WorkloadStep& step : workload) {
      switch (step.kind) {
        case WorkloadStep::kInsert: {
          Timer t;
          auto id = base.Insert(step.shape);
          insert_ms += t.Millis();
          if (id.ok()) live.push_back(*id);
          break;
        }
        case WorkloadStep::kRemove: {
          if (live.empty()) break;
          const size_t victim = static_cast<size_t>(pick_rng.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          Timer t;
          (void)base.Remove(live[victim]);
          remove_ms += t.Millis();
          live.erase(live.begin() + victim);
          break;
        }
        case WorkloadStep::kQuery: {
          Timer t;
          auto results = base.Match(step.shape, 1);
          query_ms += t.Millis();
          if (!results.ok()) return 1;
          break;
        }
      }
    }
    table.AddRow({"delta + compaction", Fmt("%.2f", total.Seconds()),
                  Fmt("%.2f", insert_ms), Fmt("%.2f", remove_ms),
                  Fmt("%.2f", query_ms),
                  FmtInt(static_cast<long long>(base.NumCompactions()))});
  }

  // Strategy B: naive — compact after every mutation.
  {
    geosir::core::DynamicShapeBase::Options options;
    options.match.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    options.min_compaction_size = 0;   // Compact...
    options.max_delta_fraction = 0.0;  // ...on every insert...
    options.max_tombstone_fraction = 0.0;  // ...and every delete.
    geosir::core::DynamicShapeBase base(options);
    std::vector<uint64_t> live;
    double insert_ms = 0, remove_ms = 0, query_ms = 0;
    Timer total;
    geosir::util::Rng pick_rng(1);
    for (const WorkloadStep& step : workload) {
      switch (step.kind) {
        case WorkloadStep::kInsert: {
          Timer t;
          auto id = base.Insert(step.shape);
          insert_ms += t.Millis();
          if (id.ok()) live.push_back(*id);
          break;
        }
        case WorkloadStep::kRemove: {
          if (live.empty()) break;
          const size_t victim = static_cast<size_t>(pick_rng.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          Timer t;
          (void)base.Remove(live[victim]);
          remove_ms += t.Millis();
          live.erase(live.begin() + victim);
          break;
        }
        case WorkloadStep::kQuery: {
          Timer t;
          auto results = base.Match(step.shape, 1);
          query_ms += t.Millis();
          if (!results.ok()) return 1;
          break;
        }
      }
    }
    table.AddRow({"rebuild every change", Fmt("%.2f", total.Seconds()),
                  Fmt("%.2f", insert_ms), Fmt("%.2f", remove_ms),
                  Fmt("%.2f", query_ms),
                  FmtInt(static_cast<long long>(base.NumCompactions()))});
  }
  table.Print();
  std::printf(
      "\nexpected shape: identical query results (checked by the unit\n"
      "tests). The delta design makes mutations ~50x cheaper (a handful\n"
      "of rebuilds instead of one per change) at the cost of moderately\n"
      "slower queries (tombstoned shapes stay searchable until the next\n"
      "compaction and top-k needs slack to survive filtering) — the\n"
      "classic LSM-style trade-off; it wins whenever mutations are not\n"
      "rare relative to queries.\n");
  return 0;
}
