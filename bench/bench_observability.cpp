/// Observability overhead benchmark: measures the end-to-end cost of the
/// metrics registry on the matcher's hot path (armed vs disarmed), the
/// extra cost of per-query tracing via the slow-query log, and exporter
/// throughput. Finishes by dumping a metrics snapshot excerpt and the
/// worst slow-query trace — the CI smoke test greps the snapshot for the
/// required metric families.
///
/// Scale via GEOSIR_BENCH_SHAPES / GEOSIR_BENCH_QUERIES / GEOSIR_BENCH_REPS.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "geom/polyline.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "util/rng.h"

namespace geosir {
namespace {

using bench::EnvScale;
using bench::Fmt;
using bench::JsonLine;
using bench::Table;
using bench::Timer;

geom::Polyline NoisyPolygon(int n, double phase, util::Rng* rng) {
  std::vector<geom::Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({std::cos(a) + rng->Gaussian(0.01),
                 std::sin(a) + rng->Gaussian(0.01)});
  }
  return geom::Polyline::Closed(std::move(v));
}

struct Workload {
  core::ShapeBase base;
  std::vector<geom::Polyline> queries;
};

void BuildWorkload(long long shapes, long long queries, Workload* out) {
  Workload& w = *out;
  util::Rng rng(2002);
  for (long long s = 0; s < shapes; ++s) {
    const int n = 5 + static_cast<int>(s % 9);
    if (!w.base.AddShape(NoisyPolygon(n, 0.17 * static_cast<double>(s), &rng),
                         static_cast<uint32_t>(s))
             .ok()) {
      std::fprintf(stderr, "AddShape failed\n");
      std::exit(1);
    }
  }
  if (!w.base.Finalize().ok()) {
    std::fprintf(stderr, "Finalize failed\n");
    std::exit(1);
  }
  util::Rng qrng(7);
  for (long long q = 0; q < queries; ++q) {
    const int n = 5 + static_cast<int>(q % 9);
    w.queries.push_back(
        NoisyPolygon(n, 0.17 * static_cast<double>(q % shapes), &qrng));
  }
}

/// One full pass over the query set, serial (stable timing).
double OnePass(const Workload& w) {
  core::MatchOptions options;
  options.k = 3;
  options.num_threads = 1;
  // A fresh matcher per pass: the per-query memo cache would otherwise
  // make later passes incomparably cheap.
  core::EnvelopeMatcher matcher(&w.base);
  Timer timer;
  for (const geom::Polyline& q : w.queries) {
    auto got = matcher.Match(q, options);
    if (!got.ok()) {
      std::fprintf(stderr, "Match failed: %s\n",
                   got.status().ToString().c_str());
      std::exit(1);
    }
  }
  return timer.Seconds();
}

/// Times each configuration interleaved within every rep (A,B,C,A,B,C…)
/// so frequency drift and background interference hit all configurations
/// equally, then reports the per-configuration minimum — the cleanest
/// estimate of intrinsic cost under noise.
std::vector<double> TimeConfigs(
    const Workload& w, int reps,
    const std::vector<std::function<void()>>& setups) {
  std::vector<double> best(setups.size(), 1e18);
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t c = 0; c < setups.size(); ++c) {
      setups[c]();
      best[c] = std::min(best[c], OnePass(w));
    }
  }
  return best;
}

}  // namespace
}  // namespace geosir

int main() {
  using namespace geosir;

  const long long shapes = EnvScale("GEOSIR_BENCH_SHAPES", 60);
  const long long queries = EnvScale("GEOSIR_BENCH_QUERIES", 48);
  const int reps = static_cast<int>(EnvScale("GEOSIR_BENCH_REPS", 15));
  std::printf("observability bench: %lld shapes, %lld queries, %d reps\n\n",
              shapes, queries, reps);
  Workload w;
  BuildWorkload(shapes, queries, &w);

  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Default();

  // --- Parts 1+2: metrics overhead (armed vs disarmed) and tracing
  // overhead (slow-query log armed at threshold 0: every query builds and
  // offers a full trace — the worst case). --------------------------------
  slow_log.set_threshold_ms(0.0);
  slow_log.set_armed(false);
  obs::SetArmed(true);
  OnePass(w);  // Warm-up (registrations, page-in, branch training).
  const std::vector<double> timings = TimeConfigs(
      w, reps,
      {[&] { obs::SetArmed(false); slow_log.set_armed(false); },
       [&] { obs::SetArmed(true); slow_log.set_armed(false); },
       [&] { obs::SetArmed(true); slow_log.Clear(); slow_log.set_armed(true); }});
  obs::SetArmed(true);
  slow_log.set_armed(false);
  const double disarmed = timings[0];
  const double armed = timings[1];
  const double traced = timings[2];
  const double overhead_pct = (armed - disarmed) / disarmed * 100.0;
  const double tracing_pct = (traced - disarmed) / disarmed * 100.0;

  Table table({"config", "seconds", "overhead vs disarmed"});
  table.AddRow({"disarmed", Fmt("%.4f", disarmed), "-"});
  table.AddRow({"metrics armed", Fmt("%.4f", armed),
                Fmt("%+.2f%%", overhead_pct)});
  table.AddRow({"metrics + tracing", Fmt("%.4f", traced),
                Fmt("%+.2f%%", tracing_pct)});
  table.Print();
  std::printf("\nmetrics overhead budget: < 2%% (measured %+.2f%%)\n\n",
              overhead_pct);

  JsonLine("observability")
      .Str("name", "metrics_overhead")
      .Int("shapes", shapes)
      .Int("queries", queries)
      .Num("disarmed_seconds", disarmed)
      .Num("armed_seconds", armed)
      .Num("overhead_pct", overhead_pct)
      .Emit();
  JsonLine("observability")
      .Str("name", "tracing_overhead")
      .Num("traced_seconds", traced)
      .Num("overhead_pct", tracing_pct)
      .Emit();

  // --- Part 3: exporter throughput over the live registry. ---------------
  {
    const int iters = 200;
    Timer timer;
    size_t bytes = 0;
    for (int i = 0; i < iters; ++i) {
      bytes += obs::ToPrometheusText(obs::MetricRegistry::Default().Snapshot())
                   .size();
    }
    const double seconds = timer.Seconds();
    const double per_second = iters / seconds;
    std::printf("exporter: %d snapshot+render in %.3f s (%.0f/s, ~%zu B each)\n",
                iters, seconds, per_second, bytes / iters);
    JsonLine("observability")
        .Str("name", "prometheus_export")
        .Int("iters", iters)
        .Num("seconds", seconds)
        .Num("per_second", per_second)
        .Emit();
  }

  // --- Part 4: snapshot excerpt + worst slow-query trace. ----------------
  // The full Prometheus exposition, between markers the CI smoke test
  // (and curious humans) can cut out with sed/grep.
  std::printf("\n--- METRICS SNAPSHOT BEGIN ---\n");
  std::fputs(
      obs::ToPrometheusText(obs::MetricRegistry::Default().Snapshot()).c_str(),
      stdout);
  std::printf("--- METRICS SNAPSHOT END ---\n\n");

  const std::vector<obs::QueryTrace> worst = slow_log.Snapshot();
  if (!worst.empty()) {
    std::printf("--- SLOW QUERY TRACE (worst of %zu, %.3f ms) ---\n",
                worst.size(), worst.front().total_ms());
    std::printf("%s\n", worst.front().ToJson().c_str());
  }
  return 0;
}
