// Experiment §3: geometric hashing as the approximate-matching fallback.
// Sweeps the curve-family size k and reports bucket occupancy, candidate
// counts, retrieval accuracy and query latency; the paper expects
// retrieval logarithmic in the number of curves with a small constant
// number of shapes per curve, and that similar shapes land on the same
// or neighboring curves.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/query_set.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;

namespace {

/// Fraction of the exact top-k shape ids the index's top-k recovered.
double RecallAtK(const std::vector<geosir::core::MatchResult>& got,
                 const std::vector<geosir::core::MatchResult>& truth) {
  if (truth.empty()) return 1.0;
  size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.shape_id == t.shape_id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_IMAGES", 250));
  spec.num_prototypes = 30;
  spec.instance_noise = 0.01;
  spec.seed = 31415;
  std::printf("building image base (%zu images)...\n", spec.num_images);
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) return 1;
  const auto& base = generated->images->shape_base();
  std::printf("base: %zu shapes, %zu copies\n\n", base.NumShapes(),
              base.NumCopies());

  geosir::util::Rng qrng(99);
  const auto queries = geosir::workload::MakeQuerySet(
      generated->prototypes, 30, 0.015, &qrng);

  // Exact envelope top-10 ground truth, so the recall_at_k rows here are
  // directly comparable to bench_lsh_retrieval's (same key names, same
  // definition).
  constexpr size_t kTopK = 10;
  geosir::core::MatchOptions exact_options;
  exact_options.k = kTopK;
  exact_options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
  std::vector<std::vector<geosir::core::MatchResult>> truth;
  {
    geosir::core::EnvelopeMatcher matcher(&base);
    for (const auto& qc : queries) {
      auto results = matcher.Match(qc.query, exact_options);
      if (!results.ok()) return 1;
      truth.push_back(*std::move(results));
    }
  }

  std::printf("=== Curve-family size sweep ===\n");
  Table table({"k curves", "build_ms", "avg bucket", "cand/query",
               "precision@1", "recall@10", "query_ms"});
  for (int k : {10, 25, 50, 100, 200}) {
    geosir::hashing::GeoHashOptions options;
    options.curves_per_quarter = k;
    options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    Timer build_timer;
    auto index = geosir::hashing::GeoHashIndex::Create(&base, options);
    const double build_ms = build_timer.Millis();
    if (!index.ok()) return 1;

    int correct = 0;
    double query_ms = 0.0;
    double candidates = 0.0;
    double recall = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto& qc = queries[q];
      Timer t;
      size_t evaluated = 0;
      auto results = index->Query(qc.query, kTopK, &evaluated);
      query_ms += t.Millis();
      if (!results.ok()) return 1;
      if (!results->empty() &&
          generated->prototype_of_shape[(*results)[0].shape_id] ==
              qc.prototype) {
        ++correct;
      }
      candidates += static_cast<double>(evaluated);
      recall += RecallAtK(*results, truth[q]);
    }
    table.AddRow({FmtInt(k), Fmt("%.0f", build_ms),
                  Fmt("%.1f", index->AverageBucketOccupancy()),
                  Fmt("%.1f", candidates / queries.size()),
                  Fmt("%.0f%%", 100.0 * correct / queries.size()),
                  Fmt("%.3f", recall / queries.size()),
                  Fmt("%.1f", query_ms / queries.size())});
    JsonLine("hashing_retrieval")
        .Str("tier", "geohash")
        .Int("curves_per_quarter", k)
        .Int("shapes", static_cast<long long>(base.NumShapes()))
        .Int("queries", static_cast<long long>(queries.size()))
        .Int("k", static_cast<long long>(kTopK))
        .Num("recall_at_k", recall / queries.size())
        .Num("candidates_mean", candidates / queries.size())
        .Num("precision_at_1",
             static_cast<double>(correct) / queries.size())
        .Num("e2e_ms_mean", query_ms / queries.size())
        .Num("build_ms", build_ms)
        .Emit();
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper Section 3): occupancy shrinks as the family\n"
      "grows; accuracy stays high once buckets separate prototypes; query\n"
      "cost is dominated by the constant number of candidate evaluations.\n");

  // Curve-family ablation (Section 3: "We have considered different
  // families of conic curves"): the paper's unit-circle arcs vs the
  // simplest alternative, vertical equal-area lines.
  std::printf("\n=== Curve-family ablation (k = 50) ===\n");
  Table family_table({"family", "avg bucket", "cand/query", "precision@1",
                      "query_ms"});
  for (auto kind : {geosir::hashing::CurveFamilyKind::kUnitCircleArcs,
                    geosir::hashing::CurveFamilyKind::kVerticalLines}) {
    geosir::hashing::GeoHashOptions options;
    options.family = kind;
    options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    auto index = geosir::hashing::GeoHashIndex::Create(&base, options);
    if (!index.ok()) return 1;
    int correct = 0;
    double query_ms = 0.0, candidates = 0.0;
    for (const auto& qc : queries) {
      Timer t;
      size_t evaluated = 0;
      auto results = index->Query(qc.query, 1, &evaluated);
      query_ms += t.Millis();
      if (!results.ok()) return 1;
      if (!results->empty() &&
          generated->prototype_of_shape[(*results)[0].shape_id] ==
              qc.prototype) {
        ++correct;
      }
      candidates += static_cast<double>(evaluated);
    }
    family_table.AddRow({CurveFamilyKindName(kind),
                         Fmt("%.1f", index->AverageBucketOccupancy()),
                         Fmt("%.1f", candidates / queries.size()),
                         Fmt("%.0f%%", 100.0 * correct / queries.size()),
                         Fmt("%.1f", query_ms / queries.size())});
  }
  family_table.Print();
  std::printf("(the arcs follow the lune geometry; straight lines are a\n"
              "cheaper but coarser partition — the paper explored several\n"
              "conic families before settling on the circles)\n");

  // Neighboring-curve robustness: how far does 1.5% noise move the
  // characteristic curves?
  std::printf("\n=== Curve displacement under noise (k = 50) ===\n");
  auto index = geosir::hashing::GeoHashIndex::Create(&base);
  if (!index.ok()) return 1;
  geosir::util::Rng nrng(7);
  std::vector<size_t> displacement_histogram(6, 0);
  for (const auto& proto : generated->prototypes) {
    auto clean = geosir::core::NormalizeQuery(proto);
    if (!clean.ok()) continue;
    const auto quad_clean =
        ComputeQuadruple(index->family(), clean->shape);
    for (int trial = 0; trial < 5; ++trial) {
      const auto noisy =
          geosir::workload::JitterVertices(proto, 0.015, &nrng);
      auto nq = geosir::core::NormalizeQuery(noisy);
      if (!nq.ok()) continue;
      const auto quad_noisy = ComputeQuadruple(index->family(), nq->shape);
      for (int q = 0; q < 4; ++q) {
        if (quad_clean.c[q] == 0 || quad_noisy.c[q] == 0) continue;
        const size_t d = static_cast<size_t>(
            std::abs(quad_clean.c[q] - quad_noisy.c[q]));
        ++displacement_histogram[std::min<size_t>(d, 5)];
      }
    }
  }
  Table hist({"curve displacement", "fraction"});
  size_t total = 0;
  for (size_t v : displacement_histogram) total += v;
  const char* labels[6] = {"0 (same curve)", "1", "2", "3", "4", "5+"};
  for (int d = 0; d < 6; ++d) {
    hist.AddRow({labels[d],
                 Fmt("%.1f%%", total > 0 ? 100.0 *
                                               displacement_histogram[d] /
                                               total
                                         : 0.0)});
  }
  hist.Print();
  std::printf("expected shape: mass concentrates at displacement 0-1 — "
              "similar shapes hash to the same or neighboring curves.\n");
  return 0;
}
