// Tiered retrieval (DESIGN.md section 14): the approximate LSH pre-filter
// against exact envelope search and the geometric-hashing tier, all
// behind the shared CandidateSource seam. Reports per tier:
//   - recall@10 against exact envelope ground truth,
//   - candidate-set size (what the exact verifier must score),
//   - candidate-generation latency alone (the pre-filter probe),
//   - end-to-end latency (generation + exact verification).
// Scale with GEOSIR_BENCH_SHAPES (default 2000 for CI smoke; the
// committed BENCH_lsh_retrieval.jsonl rows run 100000) and
// GEOSIR_BENCH_QUERIES.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/candidate_source.h"
#include "core/envelope_matcher.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "hashing/geo_hash_index.h"
#include "lsh/lsh_index.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::EnvScale;
using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;

namespace {

constexpr size_t kTopK = 10;

struct TierOutcome {
  std::string tier;
  double build_ms = 0.0;
  double recall_sum = 0.0;
  double candidates_sum = 0.0;
  double gen_ms_sum = 0.0;
  double e2e_ms_sum = 0.0;
  size_t queries = 0;
};

double Recall(const std::vector<geosir::core::MatchResult>& got,
              const std::vector<geosir::core::MatchResult>& truth) {
  if (truth.empty()) return 1.0;
  size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.shape_id == t.shape_id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

void EmitRow(const TierOutcome& o, size_t shapes, double envelope_ms_mean) {
  const double n = o.queries > 0 ? static_cast<double>(o.queries) : 1.0;
  const double e2e_mean = o.e2e_ms_sum / n;
  JsonLine("lsh_retrieval")
      .Str("tier", o.tier)
      .Int("shapes", static_cast<long long>(shapes))
      .Int("queries", static_cast<long long>(o.queries))
      .Int("k", static_cast<long long>(kTopK))
      .Num("recall_at_k", o.recall_sum / n)
      .Num("candidates_mean", o.candidates_sum / n)
      .Num("candgen_ms_mean", o.gen_ms_sum / n)
      .Num("e2e_ms_mean", e2e_mean)
      .Num("build_ms", o.build_ms)
      .Num("speedup_vs_envelope",
           e2e_mean > 0.0 ? envelope_ms_mean / e2e_mean : 0.0)
      .Emit();
}

}  // namespace

int main() {
  const size_t n_shapes =
      static_cast<size_t>(EnvScale("GEOSIR_BENCH_SHAPES", 2000));
  const size_t n_queries =
      static_cast<size_t>(EnvScale("GEOSIR_BENCH_QUERIES", 25));
  // kTopK instances per prototype: the exact top-k for a query is then
  // its prototype's instance set, so recall@k measures instance
  // retrieval as a set. (With many more instances than k the exact top-k
  // becomes a tie-breaking lottery among near-duplicates — sub-1%
  // distance differences decided by alternative-axis copies — and no
  // single-probe candidate tier can win it.)
  const size_t n_protos = std::max<size_t>(20, n_shapes / kTopK);
  const size_t instances = std::max<size_t>(1, n_shapes / n_protos);

  geosir::util::Rng rng(2718);
  geosir::workload::PolygonGenOptions polygon_options;
  polygon_options.min_vertices = 8;
  polygon_options.max_vertices = 16;
  std::vector<geosir::geom::Polyline> protos;
  protos.reserve(n_protos);
  for (size_t p = 0; p < n_protos; ++p) {
    protos.push_back(
        geosir::workload::RandomStarPolygon(&rng, polygon_options));
  }

  std::printf("building shape base (%zu prototypes x %zu instances)...\n",
              n_protos, instances);
  // Star polygons carry many near-equal diameters. The stored axis count
  // is THE recall lever for every single-probe candidate tier: a query is
  // normalized about its own jittered diameter, and an instance is only
  // reachable if that axis is among its stored alpha-diameters — too few
  // axes and no aligned copy exists, so no sketch or curve can collide.
  geosir::core::ShapeBaseOptions base_options;
  base_options.normalize.max_axes = static_cast<size_t>(
      EnvScale("GEOSIR_BENCH_MAX_AXES", 8));
  geosir::core::ShapeBase base(base_options);
  Timer base_timer;
  for (size_t p = 0; p < n_protos; ++p) {
    for (size_t i = 0; i < instances; ++i) {
      const auto shape =
          geosir::workload::JitterVertices(protos[p], 0.01, &rng);
      if (!base.AddShape(shape).ok()) return 1;
    }
  }
  if (!base.Finalize().ok()) return 1;
  std::printf("base: %zu shapes, %zu copies, built in %.0f ms\n\n",
              base.NumShapes(), base.NumCopies(), base_timer.Millis());

  std::vector<geosir::geom::Polyline> queries;
  queries.reserve(n_queries);
  for (size_t q = 0; q < n_queries; ++q) {
    queries.push_back(geosir::workload::JitterVertices(
        protos[q % n_protos], 0.012, &rng));
  }

  geosir::core::MatchOptions match_options;
  match_options.k = kTopK;
  match_options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;

  // Ground truth: brute-force exact ranking (every copy scored under
  // options.measure via the exhaustive CandidateSource). NOT the envelope
  // search — its max_epsilon bound A / (2 p l_Q) * log^3 n shrinks as the
  // base densifies, and above ~10^4 shapes of this workload it drops
  // below the jitter amplitude, so the envelope admits almost nothing and
  // its result list stops being a usable reference. The envelope tier
  // below is scored against this truth like the others, which makes that
  // density cliff visible in its recall column.
  std::vector<std::vector<geosir::core::MatchResult>> truth(n_queries);
  {
    geosir::core::ExactEnumerationSource exhaustive(&base);
    geosir::core::EnvelopeMatcher matcher(&base);
    std::printf("computing brute-force ground truth...\n");
    for (size_t q = 0; q < n_queries; ++q) {
      auto results =
          matcher.MatchCandidates(queries[q], &exhaustive, match_options);
      if (!results.ok()) return 1;
      truth[q] = *std::move(results);
    }
  }

  // --- Tier 0: envelope search with production defaults. ---------------
  TierOutcome envelope;
  envelope.tier = "envelope";
  {
    geosir::core::EnvelopeMatcher matcher(&base);
    for (size_t q = 0; q < n_queries; ++q) {
      geosir::core::MatchStats stats;
      Timer t;
      auto results = matcher.Match(queries[q], match_options, &stats);
      envelope.e2e_ms_sum += t.Millis();
      if (!results.ok()) return 1;
      envelope.candidates_sum +=
          static_cast<double>(stats.candidates_evaluated);
      envelope.recall_sum += Recall(*results, truth[q]);
      ++envelope.queries;
    }
  }
  const double envelope_ms_mean =
      envelope.e2e_ms_sum / std::max<size_t>(1, envelope.queries);

  // --- Tier 1: LSH pre-filter -> exact verification. -------------------
  TierOutcome lsh;
  lsh.tier = "lsh";
  {
    geosir::lsh::LshOptions options;
    // Env overrides for parameter sweeps (defaults = LshOptions defaults).
    options.tables = static_cast<int>(
        EnvScale("GEOSIR_LSH_TABLES", options.tables));
    options.bands = static_cast<int>(
        EnvScale("GEOSIR_LSH_BANDS", options.bands));
    options.rows = static_cast<int>(EnvScale("GEOSIR_LSH_ROWS", options.rows));
    options.query_probes = static_cast<int>(
        EnvScale("GEOSIR_LSH_PROBES", options.query_probes));
    options.project =
        EnvScale("GEOSIR_LSH_PROJECT", options.project ? 1 : 0) != 0;
    switch (EnvScale("GEOSIR_LSH_KIND",
                     static_cast<long long>(options.kind))) {
      case 1: options.kind = geosir::lsh::SketchKind::kTurningFunction; break;
      case 2: options.kind = geosir::lsh::SketchKind::kEdgeSample; break;
      default: options.kind = geosir::lsh::SketchKind::kVertexSample; break;
    }
    options.quantum =
        static_cast<double>(EnvScale(
            "GEOSIR_LSH_QUANTUM_MILLI",
            static_cast<long long>(options.quantum * 1000.0))) /
        1000.0;
    Timer build;
    auto source = geosir::lsh::LshCandidateSource::Build(&base, options);
    lsh.build_ms = build.Millis();
    if (!source.ok()) return 1;

    // Probe latency alone: the sub-ms claim is about candidate
    // generation, not verification.
    geosir::util::QueryControl control;
    for (size_t q = 0; q < n_queries; ++q) {
      auto norm = geosir::core::NormalizeQuery(queries[q]);
      if (!norm.ok()) return 1;
      std::vector<uint64_t> out;
      geosir::lsh::LshIndex::QueryStats stats;
      Timer t;
      if (!(*source)->index().Query(norm->shape, 0, control, &out, &stats)
               .ok()) {
        return 1;
      }
      lsh.gen_ms_sum += t.Millis();
      lsh.candidates_sum += static_cast<double>(out.size());
    }

    geosir::core::EnvelopeMatcher matcher(&base);
    for (size_t q = 0; q < n_queries; ++q) {
      Timer t;
      auto results =
          matcher.MatchCandidates(queries[q], source->get(), match_options);
      lsh.e2e_ms_sum += t.Millis();
      if (!results.ok()) return 1;
      lsh.recall_sum += Recall(*results, truth[q]);
      ++lsh.queries;
    }
  }

  // --- Tier 2: geometric hashing through the same seam. ----------------
  TierOutcome geohash;
  geohash.tier = "geohash";
  {
    geosir::hashing::GeoHashOptions options;
    options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    Timer build;
    auto index = geosir::hashing::GeoHashIndex::Create(&base, options);
    geohash.build_ms = build.Millis();
    if (!index.ok()) return 1;
    geosir::hashing::GeoHashCandidateSource source(&*index);

    for (size_t q = 0; q < n_queries; ++q) {
      auto norm = geosir::core::NormalizeQuery(queries[q]);
      if (!norm.ok()) return 1;
      std::vector<uint32_t> out;
      geosir::core::CandidateSourceStats stats;
      Timer t;
      if (!source.Generate(norm->shape, 0, {}, &out, &stats).ok()) return 1;
      geohash.gen_ms_sum += t.Millis();
      geohash.candidates_sum += static_cast<double>(out.size());
    }

    geosir::core::EnvelopeMatcher matcher(&base);
    for (size_t q = 0; q < n_queries; ++q) {
      Timer t;
      auto results =
          matcher.MatchCandidates(queries[q], &source, match_options);
      geohash.e2e_ms_sum += t.Millis();
      if (!results.ok()) return 1;
      geohash.recall_sum += Recall(*results, truth[q]);
      ++geohash.queries;
    }
  }

  std::printf("=== Tiered retrieval at %zu shapes (%zu queries, k=%zu) ===\n",
              base.NumShapes(), n_queries, kTopK);
  Table table({"tier", "build_ms", "recall@10", "cand/query", "candgen_ms",
               "e2e_ms", "speedup"});
  for (const TierOutcome* o : {&envelope, &lsh, &geohash}) {
    const double n = std::max<size_t>(1, o->queries);
    table.AddRow({o->tier, Fmt("%.0f", o->build_ms),
                  Fmt("%.3f", o->recall_sum / n),
                  Fmt("%.0f", o->candidates_sum / n),
                  Fmt("%.3f", o->gen_ms_sum / n),
                  Fmt("%.2f", o->e2e_ms_sum / n),
                  Fmt("%.2fx", o->e2e_ms_sum > 0.0
                                   ? envelope.e2e_ms_sum / o->e2e_ms_sum
                                   : 0.0)});
    EmitRow(*o, base.NumShapes(), envelope_ms_mean);
  }
  table.Print();
  std::printf(
      "\nexpected shape: the LSH probe is sub-millisecond and emits a\n"
      "candidate set orders of magnitude below the base size; exact\n"
      "verification over it recovers recall@10 >= 0.9 while beating the\n"
      "pure envelope search end to end.\n");
  return 0;
}
