// Micro-benchmarks of the geometric primitives on the matcher's hot
// path. A custom kernel sweep (scalar oracle vs dispatched SIMD batch
// kernel across bucket sizes, JSONL rows via bench_util.h) runs first;
// the google-benchmark suite of per-call costs behind the figures in
// bench_matching_scaling follows: the exact ring-membership test is
// O(m) point-polyline distance, candidate evaluation is O(m^2) discrete
// or quadrature-driven continuous measure, and normalization is hull +
// rotating calipers.
//
// Environment knobs:
//   GEOSIR_BENCH_SMOKE=1           run only a fast kernel-sweep smoke
//   GEOSIR_BENCH_EXPECT_KERNEL=X   exit nonzero unless the dispatcher
//                                  selected kernel X ("scalar"/"avx2");
//                                  CI uses this to pin each job's tier

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/normalize.h"
#include "core/similarity.h"
#include "geom/distance.h"
#include "geom/edge_grid.h"
#include "geom/edge_soa.h"
#include "geom/envelope.h"
#include "geom/kernel_dispatch.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace {

using geosir::geom::Point;
using geosir::geom::Polyline;

Polyline MakeShape(int vertices, uint64_t seed) {
  geosir::util::Rng rng(seed);
  geosir::workload::PolygonGenOptions gen;
  gen.min_vertices = vertices;
  gen.max_vertices = vertices;
  return RandomStarPolygon(&rng, gen);
}

void BM_PointPolylineDistance(benchmark::State& state) {
  const Polyline shape = MakeShape(static_cast<int>(state.range(0)), 1);
  geosir::util::Rng rng(2);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-2, 2), rng.Uniform(-2, 2)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geosir::geom::DistancePointPolyline(probes[i++ & 255], shape));
  }
}
BENCHMARK(BM_PointPolylineDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_DiscreteAvgMinDistance(benchmark::State& state) {
  const Polyline a = MakeShape(static_cast<int>(state.range(0)), 3);
  const Polyline b = MakeShape(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geosir::core::DiscreteAvgMinDistance(a, b));
  }
}
BENCHMARK(BM_DiscreteAvgMinDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_ContinuousAvgMinDistance(benchmark::State& state) {
  const Polyline a = MakeShape(static_cast<int>(state.range(0)), 5);
  const Polyline b = MakeShape(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geosir::core::AvgMinDistance(a, b));
  }
}
BENCHMARK(BM_ContinuousAvgMinDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_NormalizeQuery(benchmark::State& state) {
  const Polyline shape = MakeShape(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto result = geosir::core::NormalizeQuery(shape);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NormalizeQuery)->Arg(8)->Arg(20)->Arg(64);

void BM_NormalizeShapeAllAxes(benchmark::State& state) {
  geosir::core::Shape shape;
  shape.boundary = MakeShape(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto result = geosir::core::NormalizeShape(shape);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NormalizeShapeAllAxes)->Arg(8)->Arg(20)->Arg(64);

// The multi-ring walk in EdgeGrid::Distance: probes sit OFF the boundary
// (0.1..0.6 of the diameter away) so the walk crosses several rings per
// query — the near-boundary case ends in the home ring. (A software
// prefetch experiment on this walk measured no win and was removed; see
// EXPERIMENTS.md "EdgeGrid ring-walk prefetch".)
void BM_EdgeGridRingWalk(benchmark::State& state) {
  const Polyline shape = MakeShape(static_cast<int>(state.range(0)), 12);
  const geosir::geom::EdgeGrid grid(shape);
  geosir::util::Rng rng(13);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    const double a = rng.Uniform(0.0, 6.28318530717958647692);
    const double d = rng.Uniform(0.1, 0.6);
    probes.push_back({0.5 + d * std::cos(a), d * std::sin(a)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Distance(probes[i++ & 255]));
  }
}
BENCHMARK(BM_EdgeGridRingWalk)->Arg(64)->Arg(256)->Arg(1024);

void BM_BuildEnvelopeRingCover(benchmark::State& state) {
  auto normalized = geosir::core::NormalizeQuery(MakeShape(20, 9));
  const Polyline& q = normalized->shape;
  for (auto _ : state) {
    auto cover = geosir::geom::BuildEnvelopeRingCover(q, 0.01, 0.02);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_BuildEnvelopeRingCover);

void BM_EnvelopeRingMembership(benchmark::State& state) {
  auto normalized = geosir::core::NormalizeQuery(MakeShape(20, 10));
  const Polyline& q = normalized->shape;
  geosir::util::Rng rng(11);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-0.2, 1.2), rng.Uniform(-1, 1)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geosir::geom::InEnvelopeRing(q, probes[i++ & 255], 0.01, 0.02));
  }
}
BENCHMARK(BM_EnvelopeRingMembership);

// ---------------------------------------------------------------------------
// Kernel sweep: single-thread batch point-to-segment throughput of the
// scalar oracle vs the dispatched kernel, across bucket sizes spanning a
// grid cell (~8 edges) to a whole mid-sized shape (1024 edges). Both
// sides run the identical canonical arithmetic, so the ratio isolates
// the SIMD win (plus the SoA layout's streaming loads).
// ---------------------------------------------------------------------------

double SweepOnce(const geosir::geom::EdgeSpanView& span,
                 const std::vector<Point>& probes, long long reps,
                 bool dispatched, double* checksum) {
  geosir::bench::Timer timer;
  double folded = 0.0;
  for (long long r = 0; r < reps; ++r) {
    const Point p = probes[static_cast<size_t>(r) & (probes.size() - 1)];
    folded += dispatched ? geosir::geom::BatchMinDistanceSq(span, p)
                         : geosir::geom::BatchMinDistanceSqScalar(span, p);
  }
  *checksum += folded;  // Defeats dead-code elimination across calls.
  return timer.Seconds();
}

int RunKernelSweep(bool smoke) {
  using geosir::bench::Fmt;
  using geosir::bench::FmtInt;
  using geosir::bench::JsonLine;
  using geosir::bench::Table;

  const char* selected =
      geosir::geom::KernelLevelName(geosir::geom::ActiveKernelLevel());
  std::printf("batch kernel: selected=%s cpu_avx2=%d compiled_avx2=%d\n",
              selected, geosir::geom::CpuSupportsAvx2Kernel() ? 1 : 0,
              geosir::geom::internal::Avx2KernelCompiledIn() ? 1 : 0);
  if (const char* want = std::getenv("GEOSIR_BENCH_EXPECT_KERNEL")) {
    if (std::strcmp(want, selected) != 0) {
      std::fprintf(stderr,
                   "FATAL: expected kernel '%s' but dispatcher selected '%s'\n",
                   want, selected);
      return 1;
    }
    std::printf("kernel selection matches GEOSIR_BENCH_EXPECT_KERNEL=%s\n",
                want);
  }

  geosir::util::Rng rng(42);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-2, 2), rng.Uniform(-2, 2)});
  }
  const double edge_evals_target = smoke ? 2e6 : 2e8;
  double checksum = 0.0;
  Table table({"edges", "scalar Medges/s", "simd Medges/s", "speedup"});
  for (int edges : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    const geosir::geom::EdgeSoA soa(MakeShape(edges, 1000 + edges));
    const geosir::geom::EdgeSpanView span = soa.PaddedView();
    const long long reps =
        std::max<long long>(64, static_cast<long long>(edge_evals_target) /
                                    edges);
    // Warm-up pass, then measure.
    SweepOnce(span, probes, reps / 8 + 1, true, &checksum);
    SweepOnce(span, probes, reps / 8 + 1, false, &checksum);
    const double scalar_s = SweepOnce(span, probes, reps, false, &checksum);
    const double simd_s = SweepOnce(span, probes, reps, true, &checksum);
    const double scalar_rate =
        static_cast<double>(reps) * edges / std::max(scalar_s, 1e-12);
    const double simd_rate =
        static_cast<double>(reps) * edges / std::max(simd_s, 1e-12);
    const double speedup = simd_rate / std::max(scalar_rate, 1e-12);
    table.AddRow({FmtInt(edges), Fmt("%.1f", scalar_rate / 1e6),
                  Fmt("%.1f", simd_rate / 1e6), Fmt("%.2fx", speedup)});
    JsonLine("bench_micro_geometry")
        .Str("name", "kernel_sweep")
        .Str("kernel_selected", selected)
        .Int("edges", edges)
        .Num("scalar_edges_per_s", scalar_rate)
        .Num("simd_edges_per_s", simd_rate)
        .Num("speedup", speedup)
        .Emit();
  }
  table.Print();
  if (checksum == 12345.6789) std::printf("(unreachable checksum)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = geosir::bench::EnvScale("GEOSIR_BENCH_SMOKE", 0) == 1;
  const int sweep_status = RunKernelSweep(smoke);
  if (sweep_status != 0) return sweep_status;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
