// Micro-benchmarks of the geometric primitives on the matcher's hot
// path, via google-benchmark. These are the per-call costs behind the
// figures in bench_matching_scaling: the exact ring-membership test is
// O(m) point-polyline distance, candidate evaluation is O(m^2) discrete
// or quadrature-driven continuous measure, and normalization is hull +
// rotating calipers.

#include <benchmark/benchmark.h>

#include "core/normalize.h"
#include "core/similarity.h"
#include "geom/distance.h"
#include "geom/envelope.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace {

using geosir::geom::Point;
using geosir::geom::Polyline;

Polyline MakeShape(int vertices, uint64_t seed) {
  geosir::util::Rng rng(seed);
  geosir::workload::PolygonGenOptions gen;
  gen.min_vertices = vertices;
  gen.max_vertices = vertices;
  return RandomStarPolygon(&rng, gen);
}

void BM_PointPolylineDistance(benchmark::State& state) {
  const Polyline shape = MakeShape(static_cast<int>(state.range(0)), 1);
  geosir::util::Rng rng(2);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-2, 2), rng.Uniform(-2, 2)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geosir::geom::DistancePointPolyline(probes[i++ & 255], shape));
  }
}
BENCHMARK(BM_PointPolylineDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_DiscreteAvgMinDistance(benchmark::State& state) {
  const Polyline a = MakeShape(static_cast<int>(state.range(0)), 3);
  const Polyline b = MakeShape(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geosir::core::DiscreteAvgMinDistance(a, b));
  }
}
BENCHMARK(BM_DiscreteAvgMinDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_ContinuousAvgMinDistance(benchmark::State& state) {
  const Polyline a = MakeShape(static_cast<int>(state.range(0)), 5);
  const Polyline b = MakeShape(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geosir::core::AvgMinDistance(a, b));
  }
}
BENCHMARK(BM_ContinuousAvgMinDistance)->Arg(8)->Arg(20)->Arg(64);

void BM_NormalizeQuery(benchmark::State& state) {
  const Polyline shape = MakeShape(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto result = geosir::core::NormalizeQuery(shape);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NormalizeQuery)->Arg(8)->Arg(20)->Arg(64);

void BM_NormalizeShapeAllAxes(benchmark::State& state) {
  geosir::core::Shape shape;
  shape.boundary = MakeShape(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto result = geosir::core::NormalizeShape(shape);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NormalizeShapeAllAxes)->Arg(8)->Arg(20)->Arg(64);

void BM_BuildEnvelopeRingCover(benchmark::State& state) {
  auto normalized = geosir::core::NormalizeQuery(MakeShape(20, 9));
  const Polyline& q = normalized->shape;
  for (auto _ : state) {
    auto cover = geosir::geom::BuildEnvelopeRingCover(q, 0.01, 0.02);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_BuildEnvelopeRingCover);

void BM_EnvelopeRingMembership(benchmark::State& state) {
  auto normalized = geosir::core::NormalizeQuery(MakeShape(20, 10));
  const Polyline& q = normalized->shape;
  geosir::util::Rng rng(11);
  std::vector<Point> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-0.2, 1.2), rng.Uniform(-1, 1)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geosir::geom::InEnvelopeRing(q, probes[i++ & 255], 0.01, 0.02));
  }
}
BENCHMARK(BM_EnvelopeRingMembership);

}  // namespace

BENCHMARK_MAIN();
