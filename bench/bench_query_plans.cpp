// Experiment §5.3/§5.4: query-processing strategies.
//  * Per-operator: strategy 1 (drive from the more selective similar set,
//    test the other endpoint directly) vs strategy 2 (compute both sets,
//    intersect image sets, test membership) — time, edges scanned, direct
//    pair checks.
//  * Per-query: selectivity-ordered factor evaluation vs written order
//    for intersection terms with a complemented factor.

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "query/planner.h"
#include "query/selectivity.h"
#include "util/rng.h"
#include "workload/query_set.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::query::TopoStrategy;

int main() {
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_IMAGES", 150));
  spec.num_prototypes = 15;
  spec.instance_noise = 0.008;
  spec.compose.contain_probability = 0.3;
  spec.compose.overlap_probability = 0.3;
  spec.seed = 2718;
  std::printf("building image base (%zu images)...\n", spec.num_images);
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) return 1;
  auto* images = generated->images.get();
  const auto& protos = generated->prototypes;
  std::printf("base: %zu images, %zu shapes\n\n", images->NumImages(),
              images->shape_base().NumShapes());

  // Pick the most frequently planted (contain, overlap) prototype pairs.
  std::map<std::pair<int, int>, int> contain_pairs, overlap_pairs;
  for (size_t i = 0; i < images->NumImages(); ++i) {
    for (const auto& e : images->topology(static_cast<uint32_t>(i)).edges()) {
      auto& pairs = e.label == geosir::query::Relation::kContain
                        ? contain_pairs
                        : overlap_pairs;
      pairs[{generated->prototype_of_shape[e.from],
             generated->prototype_of_shape[e.to]}]++;
    }
  }
  const auto best_pair = [](const std::map<std::pair<int, int>, int>& pairs) {
    std::pair<int, int> best{0, 1};
    int count = -1;
    for (const auto& [pair, c] : pairs) {
      if (c > count) {
        count = c;
        best = pair;
      }
    }
    return best;
  };
  const auto cpair = best_pair(contain_pairs);
  const auto opair = best_pair(overlap_pairs);

  std::printf("=== Topological operator strategies (Section 5.3) ===\n");
  Table table({"operator", "strategy", "images", "ms", "edges scanned",
               "pair checks", "matcher runs"});
  struct Case {
    const char* name;
    geosir::query::Relation relation;
    int p1, p2;
  };
  const std::vector<Case> cases = {
      {"contain", geosir::query::Relation::kContain, cpair.first,
       cpair.second},
      {"overlap", geosir::query::Relation::kOverlap, opair.first,
       opair.second},
      {"disjoint", geosir::query::Relation::kDisjoint, 0, 1},
  };
  for (const Case& c : cases) {
    for (auto strategy :
         {TopoStrategy::kDriveSmaller, TopoStrategy::kIntersectImages}) {
      // Fresh context per run: no warm similar-set caches.
      geosir::query::QueryContext context(images);
      context.ResetStats();
      Timer t;
      auto result = context.EvalTopological(c.relation, protos[c.p1],
                                            protos[c.p2], std::nullopt,
                                            strategy);
      const double ms = t.Millis();
      if (!result.ok()) return 1;
      table.AddRow({c.name,
                    strategy == TopoStrategy::kDriveSmaller
                        ? "1: drive smaller"
                        : "2: intersect images",
                    FmtInt(static_cast<long long>(result->size())),
                    Fmt("%.1f", ms),
                    FmtInt(static_cast<long long>(
                        context.stats().edges_scanned)),
                    FmtInt(static_cast<long long>(
                        context.stats().pair_checks)),
                    FmtInt(static_cast<long long>(
                        context.stats().similar_evaluations))});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: both strategies return the same image sets;\n"
      "strategy 1 runs the matcher once but pays per-edge direct\n"
      "similarity checks; strategy 2 runs it twice and does cheap set\n"
      "membership tests.\n\n");

  // Plan ordering (Section 5.4). The written order puts two broad
  // similar() factors first; the selective factor — a spiky shape the
  // base has never seen (high V_S, tiny estimated and actual result) —
  // is written last. Ordering by selectivity evaluates it first, gets an
  // empty set, and short-circuits the whole term without ever running
  // the two expensive broad factors.
  std::printf("=== Plan ordering for intersection terms (Section 5.4) ===\n");
  geosir::util::Rng srng(99);
  geosir::workload::PolygonGenOptions spiky_gen;
  spiky_gen.min_vertices = 28;
  spiky_gen.max_vertices = 32;
  spiky_gen.spikiness = 0.6;
  const geosir::geom::Polyline unseen_spiky =
      RandomStarPolygon(&srng, spiky_gen);
  geosir::query::QueryPtr query = geosir::query::Intersect(
      geosir::query::Intersect(geosir::query::Similar(protos[2]),
                               geosir::query::Similar(protos[5])),
      geosir::query::Similar(unseen_spiky));
  Table plans({"plan", "images", "ms (cold)", "matcher runs"});
  for (bool ordered : {false, true}) {
    geosir::query::QueryContext context(images);
    // Warm the selectivity model so ordering has signal.
    (void)context.ShapeSimilar(protos[0]);
    const size_t warm_runs = context.stats().similar_evaluations;
    geosir::query::PlanOptions plan_options;
    plan_options.order_by_selectivity = ordered;
    Timer t;
    auto result = geosir::query::ExecuteQuery(*query, &context,
                                              plan_options);
    const double ms = t.Millis();
    if (!result.ok()) return 1;
    plans.AddRow({ordered ? "selectivity-ordered" : "written order",
                  FmtInt(static_cast<long long>(result->size())),
                  Fmt("%.1f", ms),
                  FmtInt(static_cast<long long>(
                      context.stats().similar_evaluations - warm_runs))});
  }
  plans.Print();
  std::printf(
      "\nexpected shape: identical (empty) result sets; the ordered plan\n"
      "evaluates the most selective factor first and short-circuits,\n"
      "running one matcher query instead of three.\n");
  return 0;
}
