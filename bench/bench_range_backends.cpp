// Ablation: the simplex range-search backends behind the matcher
// (Section 2.5 uses "simplex range searching ... and fractional
// cascading"). Compares build time, triangle reporting and rectangle
// counting across brute force, uniform grid, kd-tree and the layered
// range tree with fractional cascading; plus the convex-layers
// half-plane reporter.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "rangesearch/brute_force_index.h"
#include "rangesearch/convex_layers.h"
#include "rangesearch/grid_index.h"
#include "rangesearch/kd_tree_index.h"
#include "rangesearch/range_tree_index.h"
#include "storage/external_index.h"
#include "util/rng.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::rangesearch::IndexedPoint;

namespace {

std::vector<IndexedPoint> LunePoints(size_t n, geosir::util::Rng* rng) {
  // Rejection-sample the lune: the vertex distribution of a normalized
  // shape base.
  std::vector<IndexedPoint> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    const geosir::geom::Point p{rng->Uniform(0, 1), rng->Uniform(-0.9, 0.9)};
    if (p.SquaredNorm() <= 1.0 &&
        (p - geosir::geom::Point{1, 0}).SquaredNorm() <= 1.0) {
      pts.push_back(IndexedPoint{p, static_cast<uint32_t>(pts.size())});
    }
  }
  return pts;
}

/// Envelope-style query triangles: thin slivers along a random segment,
/// like the decomposed envelope-difference rings the matcher issues.
std::vector<geosir::geom::Triangle> SliverTriangles(size_t count,
                                                    double width,
                                                    geosir::util::Rng* rng) {
  std::vector<geosir::geom::Triangle> out;
  for (size_t i = 0; i < count; ++i) {
    const geosir::geom::Point a{rng->Uniform(0.1, 0.9),
                                rng->Uniform(-0.5, 0.5)};
    const double angle = rng->Uniform(0, 2 * M_PI);
    const geosir::geom::Point d{std::cos(angle), std::sin(angle)};
    const geosir::geom::Point b = a + d * 0.3;
    const geosir::geom::Point c = a + d.Perp() * width;
    out.push_back({a, b, c});
  }
  return out;
}

}  // namespace

int main() {
  const size_t n = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_POINTS", 200000));
  geosir::util::Rng rng(123);
  const auto points = LunePoints(n, &rng);

  struct Backend {
    const char* name;
    std::unique_ptr<geosir::rangesearch::SimplexIndex> index;
  };
  std::vector<Backend> backends;
  backends.push_back({"brute-force",
                      std::make_unique<geosir::rangesearch::BruteForceIndex>()});
  backends.push_back(
      {"grid", std::make_unique<geosir::rangesearch::GridIndex>()});
  backends.push_back(
      {"kd-tree", std::make_unique<geosir::rangesearch::KdTreeIndex>()});
  backends.push_back(
      {"range-tree-fc",
       std::make_unique<geosir::rangesearch::RangeTreeIndex>()});

  std::printf("=== Backend build over %zu lune points ===\n", n);
  Table build({"backend", "build_ms"});
  for (Backend& b : backends) {
    Timer t;
    b.index->Build(points);
    build.AddRow({b.name, Fmt("%.1f", t.Millis())});
  }
  build.Print();
  std::printf("\n");

  for (double width : {0.002, 0.01, 0.05}) {
    geosir::util::Rng qrng(55);
    const auto triangles = SliverTriangles(50, width, &qrng);
    std::printf("=== Sliver triangles, width %.3f (envelope-ring style) ===\n",
                width);
    Table table({"backend", "report_us/q", "reported/q", "count_us/q",
                 "nodes/q", "tested/q"});
    for (Backend& b : backends) {
      size_t reported = 0;
      Timer rt;
      for (const auto& tri : triangles) {
        b.index->ReportInTriangle(tri,
                                  [&reported](const IndexedPoint&) {
                                    ++reported;
                                  });
      }
      const double report_us = rt.Millis() * 1000.0 / triangles.size();

      b.index->ResetStats();
      Timer ct;
      size_t count = 0;
      for (const auto& tri : triangles) {
        count += b.index->CountInTriangle(tri);
      }
      const double count_us = ct.Millis() * 1000.0 / triangles.size();
      if (count != reported) {
        std::fprintf(stderr, "count/report mismatch in %s!\n", b.name);
        return 1;
      }
      const auto& stats = b.index->stats();
      table.AddRow(
          {b.name, Fmt("%.1f", report_us),
           Fmt("%.1f", static_cast<double>(reported) / triangles.size()),
           Fmt("%.1f", count_us),
           Fmt("%.0f", static_cast<double>(stats.nodes_visited) /
                           triangles.size()),
           Fmt("%.0f", static_cast<double>(stats.points_tested) /
                           triangles.size())});
    }
    table.Print();
    std::printf("\n");
  }

  // Rectangle counting: where fractional cascading shines (O(log n), no
  // dependence on the output size).
  std::printf("=== Rectangle counting (output-independent) ===\n");
  Table rect({"backend", "count_us/q", "avg_count", "nodes/q"});
  geosir::util::Rng rrng(77);
  std::vector<geosir::geom::BoundingBox> boxes;
  for (int i = 0; i < 200; ++i) {
    const geosir::geom::Point c{rrng.Uniform(0.2, 0.8),
                                rrng.Uniform(-0.4, 0.4)};
    boxes.emplace_back(c - geosir::geom::Point{0.1, 0.1},
                       c + geosir::geom::Point{0.1, 0.1});
  }
  for (Backend& b : backends) {
    b.index->ResetStats();
    Timer t;
    size_t total = 0;
    for (const auto& box : boxes) total += b.index->CountInRect(box);
    rect.AddRow({b.name, Fmt("%.1f", t.Millis() * 1000.0 / boxes.size()),
                 Fmt("%.0f", static_cast<double>(total) / boxes.size()),
                 Fmt("%.0f", static_cast<double>(
                                 b.index->stats().nodes_visited) /
                                 boxes.size())});
  }
  rect.Print();
  std::printf("\nexpected shape: range-tree-fc counts rectangles in O(log n)\n"
              "nodes regardless of the result size; the grid/kd-tree pay per\n"
              "covered cell/subtree; brute force pays O(n) always.\n\n");

  // Convex layers: half-plane reporting, the classical structure behind
  // the paper's complexity citations. The onion peeling is O(n * layers)
  // (uniform points have ~n^(2/3) layers), so the demo stays small.
  const size_t cl_n = std::min<size_t>(n, 6000);
  std::printf("=== Convex-layers half-plane reporting (%zu points) ===\n",
              cl_n);
  geosir::rangesearch::ConvexLayersIndex layers;
  Timer lt;
  layers.Build(std::vector<IndexedPoint>(points.begin(),
                                         points.begin() + cl_n));
  std::printf("build: %.1f ms, %zu layers\n", lt.Millis(), layers.NumLayers());
  Table hp({"halfplane offset", "hits", "query_us"});
  for (double offset : {-0.6, -0.2, 0.0, 0.3, 0.8}) {
    const geosir::rangesearch::HalfPlane plane{{1.0, 0.0}, offset + 0.5};
    Timer t;
    const size_t hits = layers.CountInHalfPlane(plane);
    hp.AddRow({Fmt("%.1f", offset), FmtInt(static_cast<long long>(hits)),
               Fmt("%.1f", t.Millis() * 1000.0)});
  }
  hp.Print();
  std::printf("expected shape: query cost tracks the output size "
              "(output-sensitive), small for empty half-planes.\n\n");

  // External-memory index (Section 4's auxiliary structures on disk): a
  // bulk-loaded packed R-tree queried through the LRU buffer, reporting
  // exact block I/O per query.
  std::printf("=== External packed R-tree (block I/O per query) ===\n");
  auto rtree = geosir::storage::ExternalRTree::Build(points, 1024);
  if (!rtree.ok()) {
    std::fprintf(stderr, "rtree: %s\n", rtree.status().ToString().c_str());
    return 1;
  }
  std::printf("tree: %zu leaves, %zu internal nodes, height %zu, "
              "%zu blocks\n",
              rtree->stats().num_leaves, rtree->stats().num_internal,
              rtree->stats().height, rtree->file().NumBlocks());
  Table io({"query extent", "avg_count", "cold IO/q", "warm IO/q"});
  geosir::util::Rng erng(91);
  for (double extent : {0.02, 0.05, 0.15, 0.4}) {
    std::vector<geosir::geom::BoundingBox> qboxes;
    for (int i = 0; i < 30; ++i) {
      const geosir::geom::Point c{erng.Uniform(0.2, 0.8),
                                  erng.Uniform(-0.4, 0.4)};
      qboxes.emplace_back(c - geosir::geom::Point{extent / 2, extent / 2},
                          c + geosir::geom::Point{extent / 2, extent / 2});
    }
    uint64_t cold_io = 0, warm_io = 0;
    size_t total = 0;
    geosir::storage::BufferManager warm(&rtree->file(), 4096);
    for (const auto& qb : qboxes) {
      geosir::storage::BufferManager cold(&rtree->file(), 8);
      auto count = rtree->CountInRect(qb, &cold);
      if (!count.ok()) return 1;
      total += *count;
      cold_io += cold.io_reads();
      const uint64_t before = warm.io_reads();
      (void)*rtree->CountInRect(qb, &warm);
      warm_io += warm.io_reads() - before;
    }
    io.AddRow({Fmt("%.2f", extent),
               Fmt("%.0f", static_cast<double>(total) / qboxes.size()),
               Fmt("%.1f", static_cast<double>(cold_io) / qboxes.size()),
               Fmt("%.1f", static_cast<double>(warm_io) / qboxes.size())});
  }
  io.Print();
  std::printf("expected shape: cold I/O grows with the result size "
              "(O(sqrt(n/B) + k/B)); a warm buffer absorbs repeated "
              "regions.\n");
  return 0;
}
