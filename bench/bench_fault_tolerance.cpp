// Fault-tolerance overhead and degradation behaviour of the external
// R-tree stack (block_file / fault_injection / external_index).
//
// Two questions:
//  1. What does integrity cost when nothing is wrong? Pin-path overhead
//     of CRC32 verification (and of the retry wrapper) on a fault-free
//     device, per triangle query.
//  2. What do queries return when something *is* wrong? Completeness
//     (fraction of the true count recovered) and outcome mix across a
//     sweep of transient-fault and bit-rot rates, under both degradation
//     policies.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "rangesearch/brute_force_index.h"
#include "storage/block_file.h"
#include "storage/external_index.h"
#include "storage/fault_injection.h"
#include "util/rng.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Triangle;
using geosir::rangesearch::IndexedPoint;
namespace storage = geosir::storage;

namespace {

std::vector<Triangle> MakeQueries(size_t n, geosir::util::Rng* rng) {
  std::vector<Triangle> queries;
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(Triangle{
        {rng->Uniform(0, 1), rng->Uniform(-0.8, 0.8)},
        {rng->Uniform(0, 1), rng->Uniform(-0.8, 0.8)},
        {rng->Uniform(0, 1), rng->Uniform(-0.8, 0.8)}});
  }
  return queries;
}

}  // namespace

int main() {
  const size_t num_points = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_POINTS", 200000));
  const size_t num_queries = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_QUERIES", 200));

  geosir::util::Rng rng(4711);
  std::vector<IndexedPoint> points;
  points.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    points.push_back(IndexedPoint{{static_cast<float>(rng.Uniform(0, 1)),
                                   static_cast<float>(rng.Uniform(-0.8, 0.8))},
                                  static_cast<uint32_t>(i)});
  }
  geosir::rangesearch::BruteForceIndex oracle;
  oracle.Build(points);
  auto tree = storage::ExternalRTree::Build(points, 1024);
  if (!tree.ok()) return 1;
  std::printf("external R-tree: %zu points, %zu leaves, %zu internal, "
              "height %zu\n",
              tree->size(), tree->stats().num_leaves,
              tree->stats().num_internal, tree->stats().height);

  geosir::util::Rng qrng(15);
  const auto queries = MakeQueries(num_queries, &qrng);

  // --- 1. Integrity overhead on a healthy device. -----------------------
  std::printf("\n=== CRC32 verification overhead (fault-free device, "
              "%zu queries) ===\n", queries.size());
  Table overhead({"configuration", "total_ms", "us/query", "io_reads"});
  for (int mode = 0; mode < 3; ++mode) {
    storage::BufferOptions options;
    options.verify_checksums = mode >= 1;
    options.retry.max_attempts = mode >= 2 ? 3 : 1;
    double best_ms = 1e100;
    uint64_t reads = 0;
    for (int rep = 0; rep < 3; ++rep) {
      storage::BufferManager buffer(&tree->file(), 64, options);
      Timer timer;
      size_t sink = 0;
      for (const Triangle& t : queries) {
        auto count = tree->CountInTriangle(t, &buffer);
        if (!count.ok()) return 1;
        sink += *count;
      }
      const double ms = timer.Millis();
      if (ms < best_ms) best_ms = ms;
      reads = buffer.io_reads();
      if (sink == static_cast<size_t>(-1)) return 1;  // Keep `sink` live.
    }
    const char* name = mode == 0 ? "raw reads"
                       : mode == 1 ? "+ checksum verify"
                                   : "+ verify + retry wrapper";
    overhead.AddRow({name, Fmt("%.2f", best_ms),
                     Fmt("%.2f", best_ms * 1e3 / queries.size()),
                     FmtInt(static_cast<long long>(reads))});
  }
  overhead.Print();

  // --- 2. Degraded-mode completeness under injected faults. -------------
  std::printf("\n=== Outcome mix and completeness vs fault rate "
              "(skip-unreadable, retries=3) ===\n");
  std::vector<size_t> truth;
  truth.reserve(queries.size());
  for (const Triangle& t : queries) truth.push_back(oracle.CountInTriangle(t));

  Table sweep({"read_fail_rate", "sticky_flip_rate", "ok", "degraded",
               "error", "completeness_%", "retries/query"});
  for (double fail_rate : {0.0, 0.001, 0.01, 0.05, 0.1}) {
    for (double flip_rate : {0.0, 1e-4}) {
      storage::FaultPlan plan;
      plan.seed = 99;
      plan.read_failure_rate = fail_rate;
      plan.sticky_flip_rate = flip_rate;
      storage::FaultInjectingDevice faulty(
          static_cast<const storage::BlockDevice*>(&tree->file()), plan);
      storage::BufferOptions options;
      options.verify_checksums = true;
      options.retry.max_attempts = 3;
      storage::RTreeQueryConfig config;
      config.policy = storage::DegradePolicy::kSkipUnreadable;
      size_t ok = 0, degraded = 0, error = 0, retries = 0;
      double got_total = 0, truth_total = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        storage::BufferManager buffer(&faulty, 16, options);  // Cold cache.
        storage::RTreeDegradation report;
        auto count = tree->CountInTriangle(queries[q], &buffer, config,
                                           &report);
        retries += buffer.retries();
        if (!count.ok()) {
          ++error;
          continue;
        }
        report.degraded ? ++degraded : ++ok;
        got_total += static_cast<double>(*count);
        truth_total += static_cast<double>(truth[q]);
      }
      sweep.AddRow({Fmt("%.3f", fail_rate), Fmt("%.4f", flip_rate),
                    FmtInt(static_cast<long long>(ok)),
                    FmtInt(static_cast<long long>(degraded)),
                    FmtInt(static_cast<long long>(error)),
                    Fmt("%.2f", truth_total > 0
                                    ? 100.0 * got_total / truth_total
                                    : 100.0),
                    Fmt("%.2f", static_cast<double>(retries) /
                                    queries.size())});
    }
  }
  sweep.Print();
  std::printf(
      "\nexpected shape: verification adds a fixed CRC pass per physical\n"
      "read — visible against this in-memory device, noise against a real\n"
      "disk; at low fault rates retries heal almost everything\n"
      "(completeness ~100%%, few degraded); as rates grow the skip policy\n"
      "trades completeness for availability instead of failing queries\n"
      "outright.\n");
  return 0;
}
