// Ablation §2.4/§2.5: the paper states that the constants alpha (the
// alpha-diameter slack) and beta (the candidate occupancy slack) "do not
// affect the correctness of the algorithm but may improve both the speed
// of convergence ... and the noise tolerance of the system". This bench
// quantifies exactly that trade-off, plus the envelope growth factor:
//
//   * alpha sweep: storage blow-up (copies/shape) vs retrieval recall
//     under strong distortion — more alpha-diameter copies give the
//     matcher more chances to align a distorted query;
//   * beta sweep: candidate admission (evaluations per query) vs recall —
//     larger beta admits candidates earlier (more evaluations, earlier
//     convergence on noisy queries);
//   * growth sweep: iterations vs reported vertices per query.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

struct Workload {
  std::vector<Polyline> prototypes;
  std::vector<Polyline> instances;  // One per prototype, light jitter.
  std::vector<Polyline> queries;    // One per prototype, heavy distortion.
};

Workload MakeWorkload(int prototypes, uint64_t seed) {
  Workload w;
  geosir::util::Rng rng(seed);
  geosir::workload::PolygonGenOptions gen;
  for (int p = 0; p < prototypes; ++p) {
    w.prototypes.push_back(RandomStarPolygon(&rng, gen));
    w.instances.push_back(
        geosir::workload::JitterVertices(w.prototypes.back(), 0.008, &rng));
    // Heavy distortion: 3% jitter plus two dents.
    Polyline q =
        geosir::workload::JitterVertices(w.prototypes.back(), 0.03, &rng);
    q = geosir::workload::LocalDent(q, 0.05, &rng);
    q = geosir::workload::LocalDent(q, 0.05, &rng);
    w.queries.push_back(q);
  }
  return w;
}

std::unique_ptr<geosir::core::ShapeBase> BuildBase(const Workload& w,
                                                   double alpha,
                                                   size_t max_axes) {
  geosir::core::ShapeBaseOptions options;
  options.normalize.alpha = alpha;
  options.normalize.max_axes = max_axes;
  options.normalize.use_alpha_diameters = alpha > 0.0;
  auto base = std::make_unique<geosir::core::ShapeBase>(options);
  for (const Polyline& instance : w.instances) {
    (void)base->AddShape(instance);
  }
  (void)base->Finalize();
  return base;
}

}  // namespace

int main() {
  const int kPrototypes =
      static_cast<int>(geosir::bench::EnvScale("GEOSIR_BENCH_PROTOS", 60));
  const Workload w = MakeWorkload(kPrototypes, 1234);

  std::printf(
      "=== alpha sweep: storage vs recall under heavy distortion ===\n");
  Table alpha_table({"alpha", "max_axes", "copies/shape", "recall@1",
                     "query_ms"});
  for (const auto& [alpha, axes] :
       std::vector<std::pair<double, size_t>>{
           {0.0, 1}, {0.05, 4}, {0.1, 8}, {0.2, 12}, {0.3, 16}}) {
    auto base = BuildBase(w, alpha, axes);
    geosir::core::EnvelopeMatcher matcher(base.get());
    int correct = 0;
    double ms = 0.0;
    for (int q = 0; q < kPrototypes; ++q) {
      Timer t;
      auto results = matcher.Match(w.queries[q]);
      ms += t.Millis();
      if (results.ok() && !results->empty() &&
          (*results)[0].shape_id == static_cast<uint32_t>(q)) {
        ++correct;
      }
    }
    alpha_table.AddRow(
        {Fmt("%.2f", alpha), FmtInt(static_cast<long long>(axes)),
         Fmt("%.1f", static_cast<double>(base->NumCopies()) /
                         base->NumShapes()),
         Fmt("%.0f%%", 100.0 * correct / kPrototypes),
         Fmt("%.1f", ms / kPrototypes)});
  }
  alpha_table.Print();
  std::printf("(more alpha-diameter copies buy distortion tolerance with "
              "storage and a little query time)\n\n");

  std::printf("=== beta sweep: candidate admission vs recall ===\n");
  auto base = BuildBase(w, 0.1, 8);
  geosir::core::EnvelopeMatcher matcher(base.get());
  Table beta_table({"beta", "recall@1", "candidates/q", "iters/q",
                    "query_ms"});
  for (double beta : {0.05, 0.15, 0.25, 0.4, 0.6}) {
    int correct = 0;
    double ms = 0.0, cands = 0.0, iters = 0.0;
    for (int q = 0; q < kPrototypes; ++q) {
      geosir::core::MatchOptions options;
      options.beta = beta;
      geosir::core::MatchStats stats;
      Timer t;
      auto results = matcher.Match(w.queries[q], options, &stats);
      ms += t.Millis();
      cands += static_cast<double>(stats.candidates_evaluated);
      iters += static_cast<double>(stats.iterations);
      if (results.ok() && !results->empty() &&
          (*results)[0].shape_id == static_cast<uint32_t>(q)) {
        ++correct;
      }
    }
    beta_table.AddRow({Fmt("%.2f", beta),
                       Fmt("%.0f%%", 100.0 * correct / kPrototypes),
                       Fmt("%.1f", cands / kPrototypes),
                       Fmt("%.1f", iters / kPrototypes),
                       Fmt("%.1f", ms / kPrototypes)});
  }
  beta_table.Print();
  std::printf("(larger beta admits candidates earlier: more similarity\n"
              "evaluations, better tolerance of vertices pushed outside\n"
              "the envelope by noise)\n\n");

  std::printf("=== growth sweep: envelope schedule granularity ===\n");
  Table growth_table({"growth", "iters/q", "reported/q", "query_ms",
                      "recall@1"});
  for (double growth : {1.2, 1.5, 2.0, 3.0, 5.0}) {
    int correct = 0;
    double ms = 0.0, iters = 0.0, reported = 0.0;
    for (int q = 0; q < kPrototypes; ++q) {
      geosir::core::MatchOptions options;
      options.growth = growth;
      geosir::core::MatchStats stats;
      Timer t;
      auto results = matcher.Match(w.queries[q], options, &stats);
      ms += t.Millis();
      iters += static_cast<double>(stats.iterations);
      reported += static_cast<double>(stats.vertices_reported);
      if (results.ok() && !results->empty() &&
          (*results)[0].shape_id == static_cast<uint32_t>(q)) {
        ++correct;
      }
    }
    growth_table.AddRow({Fmt("%.1f", growth), Fmt("%.1f", iters / kPrototypes),
                         Fmt("%.0f", reported / kPrototypes),
                         Fmt("%.1f", ms / kPrototypes),
                         Fmt("%.0f%%", 100.0 * correct / kPrototypes)});
  }
  growth_table.Print();
  std::printf("(fine growth = more iterations but tighter stopping; coarse\n"
              "growth = fewer, fatter rings and later early exits)\n");
  return 0;
}
