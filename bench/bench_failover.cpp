// Failover (extension): what a primary switchover costs the serving
// tier. Two numbers matter to an operator sizing a replicated
// deployment: (1) promotion latency — how long PromoteFollower takes
// end to end (drain, bounded catch-up, epoch-stamping rotation on the
// promoted mirror, survivor re-pointing), measured over a ping-pong of
// promotions with the deposed primary rejoining via AddFollower each
// round, and (2) the write-unavailability window — the longest gap
// between successful writes a retrying writer observes while failovers
// happen under load (the drain answers kUnavailable; the window is the
// real SLO cost, promotion latency only bounds it).
//
// Runs on MemEnv like bench_replication: in-process transports and free
// syncs isolate the failover machinery itself from disk barrier cost.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_shape_base.h"
#include "replication/replicated_shape_base.h"
#include "storage/appendable_file.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::JsonLine;
using geosir::bench::Timer;
using geosir::geom::Polyline;
using geosir::replication::ReplicatedOptions;
using geosir::replication::ReplicatedShapeBase;
using geosir::replication::ReplicaSpec;

namespace {

constexpr char kBench[] = "failover";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
  return values[idx];
}

[[noreturn]] void Die(const char* what, const geosir::util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

std::vector<Polyline> MakeShapes(size_t count) {
  geosir::util::Rng rng(424242);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = std::max<size_t>(4, count / 10);
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }
  std::vector<Polyline> shapes;
  shapes.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    shapes.push_back(geosir::workload::JitterVertices(
        prototypes[s % num_protos], 0.008, &rng));
  }
  return shapes;
}

ReplicatedOptions BenchOptions(geosir::storage::MemEnv* env,
                               size_t shape_count) {
  ReplicatedOptions options;
  options.env = env;
  // Keep auto-rotations out of the way; the only rotations are the
  // epoch-stamping ones each promotion performs.
  options.base.min_compaction_size = shape_count * 8;
  options.base.base.normalize.max_axes = 2;
  options.base.match.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
  options.fetch_batch_records = 256;
  options.idle_backoff_us = 50;
  return options;
}

std::vector<ReplicaSpec> Replicas(size_t count) {
  std::vector<ReplicaSpec> replicas(count);
  for (size_t i = 0; i < count; ++i) {
    replicas[i].dir = "replica" + std::to_string(i);
  }
  return replicas;
}

/// First live (non-promoted) follower slot — what the auto-failover
/// monitor would pick, minus the freshness tiebreak that is moot here.
size_t PickTarget(ReplicatedShapeBase* tier) {
  for (size_t i = 0; i < tier->replica_count(); ++i) {
    if (!tier->follower(i).promoted()) return i;
  }
  Die("pick target", geosir::util::Status::Internal("no live follower"));
}

/// One switchover round: promote a live follower, then rejoin the
/// deposed primary's files as a fresh follower. Returns the promotion
/// latency in milliseconds; `primary_dir` tracks ownership across
/// rounds.
double PromoteAndRejoin(ReplicatedShapeBase* tier, std::string* primary_dir) {
  const size_t target = PickTarget(tier);
  const std::string next_dir = tier->follower(target).dir();
  Timer timer;
  auto promoted = tier->PromoteFollower(target);
  const double ms = timer.Seconds() * 1e3;
  if (!promoted.ok()) Die("promote", promoted);
  ReplicaSpec rejoin;
  rejoin.dir = *primary_dir;
  auto added = tier->AddFollower(std::move(rejoin));
  if (!added.ok()) Die("rejoin", added);
  *primary_dir = next_dir;
  return ms;
}

// --- 1. Promotion latency --------------------------------------------------

void BenchPromotionLatency(const std::vector<Polyline>& shapes,
                           size_t rounds) {
  geosir::storage::MemEnv env;
  auto opened = ReplicatedShapeBase::Open(
      "primary", Replicas(2), BenchOptions(&env, shapes.size()));
  if (!opened.ok()) Die("open tier", opened.status());
  ReplicatedShapeBase* tier = opened->get();
  for (const Polyline& shape : shapes) {
    auto id = tier->Insert(shape);
    if (!id.ok()) Die("insert", id.status());
  }
  auto caught_up =
      tier->WaitForCatchUp(geosir::util::Deadline::AfterMillis(30000));
  if (!caught_up.ok()) Die("catch up", caught_up);

  std::string primary_dir = "primary";
  std::vector<double> latencies_ms;
  for (size_t round = 0; round < rounds; ++round) {
    latencies_ms.push_back(PromoteAndRejoin(tier, &primary_dir));
    caught_up =
        tier->WaitForCatchUp(geosir::util::Deadline::AfterMillis(30000));
    if (!caught_up.ok()) Die("catch up", caught_up);
  }
  (*opened)->Stop();

  const double p50 = Percentile(latencies_ms, 0.50);
  const double p99 = Percentile(latencies_ms, 0.99);
  const double max =
      *std::max_element(latencies_ms.begin(), latencies_ms.end());
  std::printf(
      "promotion latency: p50 %.2fms p99 %.2fms max %.2fms "
      "(%zu promotions over %zu shapes, final epoch %llu)\n\n",
      p50, p99, max, latencies_ms.size(), shapes.size(),
      static_cast<unsigned long long>(tier->primary_epoch()));
  JsonLine(kBench)
      .Str("name", "promotion_latency")
      .Int("shapes", static_cast<long long>(shapes.size()))
      .Int("promotions", static_cast<long long>(latencies_ms.size()))
      .Num("promote_p50_ms", p50)
      .Num("promote_p99_ms", p99)
      .Num("promote_max_ms", max)
      .Emit();
}

// --- 2. Write-unavailability window under failover -------------------------

void BenchWriteUnavailability(const std::vector<Polyline>& shapes,
                              size_t failovers) {
  geosir::storage::MemEnv env;
  // Headroom so the sustained write stream never trips an auto-rotation:
  // a compaction pause under the primary mutex would masquerade as
  // failover unavailability.
  auto opened = ReplicatedShapeBase::Open(
      "primary", Replicas(2), BenchOptions(&env, shapes.size() * 200));
  if (!opened.ok()) Die("open tier", opened.status());
  ReplicatedShapeBase* tier = opened->get();
  for (const Polyline& shape : shapes) {
    auto id = tier->Insert(shape);
    if (!id.ok()) Die("insert", id.status());
  }
  auto caught_up =
      tier->WaitForCatchUp(geosir::util::Deadline::AfterMillis(30000));
  if (!caught_up.ok()) Die("catch up", caught_up);

  // The writer hammers Insert and treats kUnavailable as "retry now":
  // the gap between consecutive successes IS the unavailability window.
  std::atomic<bool> run{true};
  std::vector<double> gaps_ms;
  std::atomic<uint64_t> writes{0};
  std::thread writer([&] {
    auto last = std::chrono::steady_clock::now();
    size_t i = 0;
    while (run.load(std::memory_order_acquire)) {
      auto id = tier->Insert(shapes[i % shapes.size()]);
      if (id.ok()) {
        const auto now = std::chrono::steady_clock::now();
        gaps_ms.push_back(
            std::chrono::duration<double, std::milli>(now - last).count());
        last = now;
        ++i;
        writes.fetch_add(1, std::memory_order_relaxed);
      } else if (id.status().code() != geosir::util::StatusCode::kUnavailable) {
        Die("write under failover", id.status());
      }
    }
  });

  std::string primary_dir = "primary";
  for (size_t round = 0; round < failovers; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    PromoteAndRejoin(tier, &primary_dir);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  run.store(false, std::memory_order_release);
  writer.join();
  (*opened)->Stop();

  // The failovers are a handful of events among hundreds of thousands of
  // writes, so a global p99 only describes steady-state latency. The
  // top-`failovers` gaps ARE the unavailability windows — one per drain.
  const double p99 = Percentile(gaps_ms, 0.99);
  std::sort(gaps_ms.begin(), gaps_ms.end(), std::greater<double>());
  const size_t windows = std::min(gaps_ms.size(), failovers);
  const double max = gaps_ms.empty() ? 0.0 : gaps_ms.front();
  const double window_p50 =
      windows == 0 ? 0.0 : gaps_ms[windows / 2];
  std::printf(
      "write unavailability: max window %.2fms median window %.2fms "
      "steady-state p99 %.3fms over %llu writes across %zu failovers\n\n",
      max, window_p50, p99, static_cast<unsigned long long>(writes.load()),
      failovers);
  JsonLine(kBench)
      .Str("name", "write_unavailability")
      .Int("failovers", static_cast<long long>(failovers))
      .Int("writes", static_cast<long long>(writes.load()))
      .Num("window_max_ms", max)
      .Num("window_p50_ms", window_p50)
      .Num("gap_p99_ms", p99)
      .Emit();
}

}  // namespace

int main() {
  const size_t kShapes = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_SHAPES", 400));
  const size_t kRounds = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_FAILOVERS", 8));

  const std::vector<Polyline> shapes = MakeShapes(kShapes);

  std::printf("=== Failover: %zu shapes, %zu switchover rounds ===\n\n",
              kShapes, kRounds);
  BenchPromotionLatency(shapes, kRounds);
  BenchWriteUnavailability(shapes, std::max<size_t>(2, kRounds / 2));
  return 0;
}
