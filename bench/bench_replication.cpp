// Replicated serving tier (extension): what log shipping costs and what
// it buys. The paper's retrieval structures are single-node; the
// dynamic-environment extension adds a WAL, and this bench measures the
// replication layer built on top of it: (1) follower apply throughput —
// how fast a replica drains a shipped backlog into its own base,
// (2) replication lag under sustained write load — how far a live
// follower trails the primary, sampled while both run, and (3) read
// tail latency vs replica count with one stalled follower — the
// lag-aware router's whole job is keeping p99 flat when a replica goes
// stale, so that is measured with the router on (redirect) and off
// (serve-stale round-robin).
//
// Runs on MemEnv: the transport is in-process and sync is free there,
// so the numbers isolate the shipping/apply/routing machinery from disk
// barrier cost (bench_wal measures the barriers).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_shape_base.h"
#include "replication/replicated_shape_base.h"
#include "storage/appendable_file.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;
using geosir::replication::ReplicatedOptions;
using geosir::replication::ReplicatedShapeBase;
using geosir::replication::ReplicaSpec;
using geosir::replication::StaleRoutePolicy;

namespace {

constexpr char kBench[] = "replication";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
  return values[idx];
}

[[noreturn]] void Die(const char* what, const geosir::util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

/// Shapes and queries are jittered copies of a shared prototype pool —
/// the retrieval-friendly workload every other bench uses. Queries with
/// no near match in the base defeat the matcher's envelope pruning and
/// would time the exhaustive-scan worst case instead of the serving
/// tier.
struct Workload {
  std::vector<Polyline> shapes;
  std::vector<Polyline> queries;
};

Workload MakeWorkload(size_t shape_count, size_t query_count) {
  geosir::util::Rng rng(778899);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = std::max<size_t>(4, shape_count / 10);
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }
  Workload out;
  out.shapes.reserve(shape_count);
  for (size_t s = 0; s < shape_count; ++s) {
    out.shapes.push_back(geosir::workload::JitterVertices(
        prototypes[s % num_protos], 0.008, &rng));
  }
  geosir::util::Rng qrng(445500);
  out.queries.reserve(query_count);
  for (size_t q = 0; q < query_count; ++q) {
    out.queries.push_back(geosir::workload::JitterVertices(
        prototypes[q % num_protos], 0.01, &qrng));
  }
  return out;
}

ReplicatedOptions BenchOptions(geosir::storage::MemEnv* env,
                               size_t shape_count) {
  ReplicatedOptions options;
  options.env = env;
  // Rotations delete the retained log and force a lagging follower into
  // a full snapshot resync; keep them out of the steady-state numbers.
  options.base.min_compaction_size = shape_count * 4;
  options.base.base.normalize.max_axes = 2;
  // The continuous-symmetric default is the precision-benchmark measure;
  // serving-tier routing cost is independent of it, so use the cheap
  // discrete measure and keep the read numbers about the tier.
  options.base.match.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
  options.fetch_batch_records = 256;
  return options;
}

std::vector<ReplicaSpec> Replicas(size_t count) {
  std::vector<ReplicaSpec> replicas(count);
  for (size_t i = 0; i < count; ++i) {
    replicas[i].dir = "replica" + std::to_string(i);
  }
  return replicas;
}

std::unique_ptr<ReplicatedShapeBase> OpenTier(geosir::storage::MemEnv* env,
                                              const ReplicatedOptions& options,
                                              size_t replica_count) {
  auto tier = ReplicatedShapeBase::Open("primary", Replicas(replica_count),
                                        options);
  if (!tier.ok()) Die("open tier", tier.status());
  return std::move(*tier);
}

void DrainFollower(ReplicatedShapeBase* tier, size_t i) {
  while (tier->follower(i).applied_lsn() < tier->primary_next_lsn()) {
    auto stepped = tier->StepFollower(i);
    if (!stepped.ok()) Die("step follower", stepped.status());
  }
}

// --- 1. Follower apply throughput -----------------------------------------

void BenchApplyThroughput(const std::vector<Polyline>& shapes, size_t reps) {
  double best_s = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    geosir::storage::MemEnv env;
    ReplicatedOptions options = BenchOptions(&env, shapes.size());
    options.start_replication = false;  // Backlog first, then drain.
    auto tier = OpenTier(&env, options, 1);
    for (const Polyline& shape : shapes) {
      auto id = tier->Insert(shape);
      if (!id.ok()) Die("insert", id.status());
    }
    Timer timer;
    DrainFollower(tier.get(), 0);
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < best_s) best_s = seconds;
  }
  // +1: the backlog includes the generation's commit head record.
  const double records = static_cast<double>(shapes.size()) + 1.0;
  const double per_s = best_s > 0.0 ? records / best_s : 0.0;
  std::printf("apply throughput: %.0f records/s (%zu records in %.3fs)\n\n",
              per_s, shapes.size() + 1, best_s);
  JsonLine(kBench)
      .Str("name", "apply_throughput")
      .Int("records", static_cast<long long>(shapes.size() + 1))
      .Num("seconds", best_s)
      .Num("records_per_second", per_s)
      .Emit();
}

// --- 2. Replication lag under write load ----------------------------------

void BenchLagUnderWriteLoad(const std::vector<Polyline>& shapes) {
  geosir::storage::MemEnv env;
  ReplicatedOptions options = BenchOptions(&env, shapes.size());
  options.idle_backoff_us = 50;
  auto tier = OpenTier(&env, options, 1);  // Pump thread running.

  std::atomic<bool> writing{true};
  std::vector<double> lag_samples;
  std::thread sampler([&] {
    while (writing.load(std::memory_order_acquire)) {
      const uint64_t head = tier->primary_next_lsn();
      const uint64_t applied = tier->follower(0).applied_lsn();
      lag_samples.push_back(
          head > applied ? static_cast<double>(head - applied) : 0.0);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  Timer timer;
  for (const Polyline& shape : shapes) {
    auto id = tier->Insert(shape);
    if (!id.ok()) Die("insert", id.status());
  }
  const double write_s = timer.Seconds();
  writing.store(false, std::memory_order_release);
  sampler.join();
  auto caught_up =
      tier->WaitForCatchUp(geosir::util::Deadline::AfterMillis(30000));
  if (!caught_up.ok()) Die("catch up", caught_up);

  const double p50 = Percentile(lag_samples, 0.50);
  const double p99 = Percentile(lag_samples, 0.99);
  const double max =
      lag_samples.empty()
          ? 0.0
          : *std::max_element(lag_samples.begin(), lag_samples.end());
  const double writes_per_s =
      write_s > 0.0 ? static_cast<double>(shapes.size()) / write_s : 0.0;
  std::printf(
      "lag under write load: p50 %.0f p99 %.0f max %.0f records "
      "(%zu samples at %.0f writes/s)\n\n",
      p50, p99, max, lag_samples.size(), writes_per_s);
  JsonLine(kBench)
      .Str("name", "lag_under_write_load")
      .Int("writes", static_cast<long long>(shapes.size()))
      .Num("writes_per_second", writes_per_s)
      .Int("samples", static_cast<long long>(lag_samples.size()))
      .Num("lag_p50_records", p50)
      .Num("lag_p99_records", p99)
      .Num("lag_max_records", max)
      .Emit();
}

// --- 3. Read tail latency vs replica count with a stalled follower --------

struct ReadRun {
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t errors = 0;
  uint64_t stale_served = 0;
};

ReadRun MeasureReads(ReplicatedShapeBase* tier,
                     const std::vector<Polyline>& queries,
                     size_t batches_per_thread, size_t threads,
                     uint64_t staleness_bound) {
  constexpr size_t kBatch = 8;
  std::vector<std::vector<double>> latencies(threads);
  std::vector<uint64_t> errors(threads, 0);
  std::vector<uint64_t> stale(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Polyline> batch(kBatch);
      for (size_t b = 0; b < batches_per_thread; ++b) {
        for (size_t q = 0; q < kBatch; ++q) {
          batch[q] = queries[(t * batches_per_thread * kBatch + b * kBatch +
                              q) %
                             queries.size()];
        }
        std::vector<geosir::core::MatchStats> stats;
        Timer one;
        auto results = tier->MatchBatch(batch, /*k=*/3, &stats);
        latencies[t].push_back(one.Seconds() * 1e6);
        if (!results.ok()) {
          ++errors[t];
        } else if (!stats.empty() && stats[0].replica_lag > staleness_bound) {
          ++stale[t];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ReadRun run;
  std::vector<double> merged;
  for (size_t t = 0; t < threads; ++t) {
    merged.insert(merged.end(), latencies[t].begin(), latencies[t].end());
    run.errors += errors[t];
    run.stale_served += stale[t];
  }
  run.p50_us = Percentile(merged, 0.50);
  run.p99_us = Percentile(merged, 0.99);
  return run;
}

void BenchReadTail(const std::vector<Polyline>& shapes,
                   const std::vector<Polyline>& queries,
                   size_t batches_per_thread) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kStalenessBound = 64;
  constexpr size_t kStallExtra = 128;

  Table table({"replicas", "config", "p50_us", "p99_us", "errors",
               "stale_served", "p99_vs_healthy"});
  for (const size_t replica_count : {1u, 2u, 4u}) {
    double healthy_p99 = 0.0;
    struct Config {
      const char* name;
      bool stalled;
      StaleRoutePolicy policy;
    };
    for (const Config& config :
         {Config{"healthy", false, StaleRoutePolicy::kRedirectStale},
          Config{"stalled_redirect", true, StaleRoutePolicy::kRedirectStale},
          Config{"stalled_serve_stale", true, StaleRoutePolicy::kServeStale}}) {
      geosir::storage::MemEnv env;
      ReplicatedOptions options = BenchOptions(&env, shapes.size());
      options.start_replication = false;  // Lag is staged, then frozen.
      options.max_staleness_records = kStalenessBound;
      options.stale_policy = config.policy;
      auto tier = OpenTier(&env, options, replica_count);
      for (const Polyline& shape : shapes) {
        auto id = tier->Insert(shape);
        if (!id.ok()) Die("insert", id.status());
      }
      for (size_t i = 0; i < replica_count; ++i) DrainFollower(tier.get(), i);
      // The same kStallExtra tail of writes lands in EVERY config so all
      // serving replicas answer over an identical base; in the stalled
      // configs the last replica simply never applies it. A compaction
      // after the tail merges it into the indexed main base — without
      // it, fresh replicas would brute-force the delta while the
      // stalled replica serves its smaller indexed base, and the p99
      // comparison would measure base size, not routing.
      const size_t serving = config.stalled ? replica_count - 1 : replica_count;
      for (size_t i = 0; i < kStallExtra; ++i) {
        auto id = tier->Insert(shapes[i % shapes.size()]);
        if (!id.ok()) Die("insert", id.status());
      }
      for (size_t i = 0; i < serving; ++i) DrainFollower(tier.get(), i);
      auto compacted = tier->Compact();
      if (!compacted.ok()) Die("compact", compacted);
      for (size_t i = 0; i < serving; ++i) DrainFollower(tier.get(), i);
      const ReadRun run = MeasureReads(tier.get(), queries,
                                       batches_per_thread, kThreads,
                                       kStalenessBound);
      if (!config.stalled) healthy_p99 = run.p99_us;
      const double ratio =
          healthy_p99 > 0.0 ? run.p99_us / healthy_p99 : 0.0;
      table.AddRow({FmtInt(static_cast<long long>(replica_count)), config.name,
                    Fmt("%.1f", run.p50_us), Fmt("%.1f", run.p99_us),
                    FmtInt(static_cast<long long>(run.errors)),
                    FmtInt(static_cast<long long>(run.stale_served)),
                    config.stalled ? Fmt("%.2f", ratio) : std::string("-")});
      JsonLine(kBench)
          .Str("name", "read_tail")
          .Int("replicas", static_cast<long long>(replica_count))
          .Str("config", config.name)
          .Int("batches",
               static_cast<long long>(batches_per_thread * kThreads))
          .Num("p50_us", run.p50_us)
          .Num("p99_us", run.p99_us)
          .Int("errors", static_cast<long long>(run.errors))
          .Int("stale_served", static_cast<long long>(run.stale_served))
          .Num("p99_vs_healthy", config.stalled ? ratio : 1.0)
          .Emit();
    }
  }
  table.Print();
}

}  // namespace

int main() {
  const size_t kShapes = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_SHAPES", 600));
  const size_t kBatchesPerThread = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_QUERIES", 12));
  const size_t kReps =
      static_cast<size_t>(geosir::bench::EnvScale("GEOSIR_BENCH_REPS", 3));

  const Workload workload = MakeWorkload(kShapes, kShapes / 4 + 1);

  std::printf("=== Replication: %zu shapes, %zu query batches/thread ===\n\n",
              kShapes, kBatchesPerThread);
  BenchApplyThroughput(workload.shapes, kReps);
  BenchLagUnderWriteLoad(workload.shapes);
  BenchReadTail(workload.shapes, workload.queries, kBatchesPerThread);
  return 0;
}
