// Experiment §2.5: scaling of the envelope-fattening matcher with the
// shape-base size. The paper proves an expected O(log^4 n) bound and
// reports that practice is much better; the observable shape is that
// query cost grows poly-logarithmically in the total vertex count n
// while a linear scan grows linearly.
//
// Design: the number of prototypes grows with the base so the number of
// true matches per query stays constant; only the index has to work
// harder. Query cost is reported for the kd-tree backend and for the
// O(log n + k) range tree with fractional cascading, against a
// brute-force scan that evaluates the measure on every stored copy.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "geom/kernel_dispatch.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

struct BuiltBase {
  std::unique_ptr<geosir::core::ShapeBase> base;
  std::vector<Polyline> prototypes;
  double build_seconds = 0.0;
};

BuiltBase BuildBase(size_t num_shapes, geosir::core::IndexBackend backend,
                    uint64_t seed) {
  geosir::util::Rng rng(seed);
  BuiltBase out;
  geosir::core::ShapeBaseOptions options;
  options.backend = backend;
  options.normalize.max_axes = 5;  // ~10 copies/shape like the paper.
  out.base = std::make_unique<geosir::core::ShapeBase>(options);

  const size_t instances_per_proto = 10;
  const size_t num_protos =
      std::max<size_t>(4, num_shapes / instances_per_proto);
  geosir::workload::PolygonGenOptions gen;
  for (size_t p = 0; p < num_protos; ++p) {
    out.prototypes.push_back(RandomStarPolygon(&rng, gen));
  }
  Timer t;
  for (size_t s = 0; s < num_shapes; ++s) {
    const Polyline instance = geosir::workload::JitterVertices(
        out.prototypes[s % num_protos], 0.008, &rng);
    (void)out.base->AddShape(instance);
  }
  (void)out.base->Finalize();
  out.build_seconds = t.Seconds();
  return out;
}

}  // namespace

int main() {
  const long long max_shapes =
      geosir::bench::EnvScale("GEOSIR_BENCH_MAX_SHAPES", 8000);
  std::vector<size_t> sizes;
  for (size_t s = 250; s <= static_cast<size_t>(max_shapes); s *= 2) {
    sizes.push_back(s);
  }
  const int kQueries = 8;

  for (auto backend : {geosir::core::IndexBackend::kKdTree,
                       geosir::core::IndexBackend::kRangeTree}) {
    std::printf("=== Matcher scaling, backend = %s ===\n",
                IndexBackendName(backend));
    Table table({"shapes", "vertices n", "build_s", "query_ms", "iters",
                 "reported", "scan_ms", "scan/query"});
    for (size_t num_shapes : sizes) {
      BuiltBase built = BuildBase(num_shapes, backend, 42);
      geosir::core::EnvelopeMatcher matcher(built.base.get());
      geosir::util::Rng qrng(7);

      geosir::core::MatchOptions options;
      options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;

      double query_ms = 0.0, scan_ms = 0.0;
      double iters = 0.0, reported = 0.0;
      for (int q = 0; q < kQueries; ++q) {
        const Polyline query = geosir::workload::JitterVertices(
            built.prototypes[q % built.prototypes.size()], 0.008, &qrng);
        geosir::core::MatchStats stats;
        Timer t;
        auto results = matcher.Match(query, options, &stats);
        query_ms += t.Millis();
        if (!results.ok() || results->empty()) {
          std::fprintf(stderr, "query failed at %zu shapes\n", num_shapes);
        }
        iters += static_cast<double>(stats.iterations);
        reported += static_cast<double>(stats.vertices_reported);

        // Linear-scan baseline: evaluate the measure on every copy.
        Timer st;
        auto qnorm = geosir::core::NormalizeQuery(query);
        double best = 1e300;
        uint32_t best_shape = 0;
        for (const auto& copy : built.base->copies()) {
          const double d = std::max(
              geosir::core::DiscreteAvgMinDistance(copy.shape, qnorm->shape),
              geosir::core::DiscreteAvgMinDistance(qnorm->shape, copy.shape));
          if (d < best) {
            best = d;
            best_shape = copy.shape_id;
          }
        }
        (void)best_shape;
        scan_ms += st.Millis();
      }
      query_ms /= kQueries;
      scan_ms /= kQueries;
      table.AddRow({FmtInt(static_cast<long long>(num_shapes)),
                    FmtInt(static_cast<long long>(built.base->NumVertices())),
                    Fmt("%.2f", built.build_seconds), Fmt("%.2f", query_ms),
                    Fmt("%.1f", iters / kQueries),
                    Fmt("%.0f", reported / kQueries), Fmt("%.2f", scan_ms),
                    Fmt("%.1fx", scan_ms / std::max(query_ms, 1e-9))});
      JsonLine("bench_matching_scaling")
          .Str("backend", IndexBackendName(backend))
          .Str("kernel",
               geosir::geom::KernelLevelName(geosir::geom::ActiveKernelLevel()))
          .Int("shapes", static_cast<long long>(num_shapes))
          .Int("vertices", static_cast<long long>(built.base->NumVertices()))
          .Num("build_seconds", built.build_seconds)
          .Num("query_ms", query_ms)
          .Num("scan_ms", scan_ms)
          .Num("queries_per_second",
               query_ms > 0.0 ? 1e3 / query_ms : 0.0)
          .Emit();
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): query_ms grows far slower than n (poly-log)\n"
      "while scan_ms grows linearly, so the scan/query ratio widens with n.\n");
  return 0;
}
