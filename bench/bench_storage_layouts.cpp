// Experiment F7 (Figure 7) + Section 4.2: average number of I/O
// operations per similarity query for the external-storage orderings:
//   method (i)   sort by mean characteristic curve,
//   method (ii)  lexicographic order of the curve quadruple,
//   method (iii) sort by the median-of-quadruple curve,
//   local-opt    greedy per-block optimization of the average measure,
// over k = 1..10 best-match queries with a 100-block (100 KiB) buffer —
// the paper's exact setup, scaled by GEOSIR_BENCH_IMAGES (default 800;
// set 10000 for paper scale).
//
// Also reports the rehashing (layout recomputation) cost per method,
// which the paper bounds as O(N log N) for the sorts and
// O(N^1.5 log N) for the local optimization.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "storage/layout.h"
#include "storage/stored_shape_base.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/query_set.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;

int main() {
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_IMAGES", 800));
  spec.num_prototypes = 40;
  spec.instance_noise = 0.01;
  spec.base_options.normalize.max_axes = 5;  // ~10 copies per shape.
  spec.seed = 4711;
  std::printf("building image base (%zu images)...\n", spec.num_images);
  Timer build_timer;
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const auto& base = generated->images->shape_base();
  std::printf(
      "base: %zu shapes, %zu stored copies (%.1f copies/shape), "
      "%zu vertices, built in %.1f s\n",
      base.NumShapes(), base.NumCopies(),
      static_cast<double>(base.NumCopies()) / base.NumShapes(),
      base.NumVertices(), build_timer.Seconds());

  // Characteristic-curve quadruples for every copy (the sort keys).
  auto hash = geosir::hashing::GeoHashIndex::Create(&base);
  if (!hash.ok()) return 1;
  std::vector<geosir::hashing::CurveQuadruple> quadruples;
  quadruples.reserve(base.NumCopies());
  for (size_t i = 0; i < base.NumCopies(); ++i) {
    quadruples.push_back(hash->QuadrupleOfCopy(i));
  }

  const std::vector<geosir::storage::LayoutPolicy> policies = {
      geosir::storage::LayoutPolicy::kInsertionOrder,
      geosir::storage::LayoutPolicy::kMeanCurve,
      geosir::storage::LayoutPolicy::kLexicographic,
      geosir::storage::LayoutPolicy::kMedianCurve,
      geosir::storage::LayoutPolicy::kLocalOptimization,
  };

  // Build every stored layout once; record rehash (layout) time.
  std::printf("\n=== Rehashing cost (layout recomputation) ===\n");
  Table rehash({"method", "layout_ms", "blocks"});
  std::vector<geosir::storage::StoredShapeBase> stored;
  for (auto policy : policies) {
    Timer t;
    const auto order =
        geosir::storage::ComputeLayout(policy, base, quadruples);
    const double ms = t.Millis();
    auto sb = geosir::storage::StoredShapeBase::Create(base, quadruples,
                                                       order);
    if (!sb.ok()) return 1;
    rehash.AddRow({LayoutPolicyName(policy), Fmt("%.1f", ms),
                   FmtInt(static_cast<long long>(sb->NumBlocks()))});
    stored.push_back(std::move(*sb));
  }
  rehash.Print();
  std::printf("(paper: sorts are O(N log N); local-opt is "
              "O(N^1.5 log N)-ish but less I/O-intensive)\n\n");

  // The paper's query workload: 15 representative similarity queries.
  geosir::util::Rng qrng(15);
  const auto queries = geosir::workload::MakeQuerySet(
      generated->prototypes, 15, 0.01, &qrng);

  geosir::core::EnvelopeMatcher matcher(&base);
  const size_t kBufferBlocks = 100;

  std::printf("=== Figure 7: avg #I/O per query, buffer = %zu blocks ===\n",
              kBufferBlocks);
  Table table({"k", "insertion", "mean-curve(i)", "lexicographic(ii)",
               "median-curve(iii)", "local-opt(4.2)"});
  for (size_t k = 1; k <= 10; ++k) {
    std::vector<double> avg_io(policies.size(), 0.0);
    for (const auto& qc : queries) {
      geosir::core::MatchOptions options;
      options.k = k;
      options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
      // Let the early-exit bound govern termination so deeper k values
      // genuinely search longer (and touch more records).
      options.max_epsilon = 0.25;
      options.growth = 1.3;
      geosir::core::AccessTrace trace;
      auto results = matcher.Match(qc.query, options, nullptr, &trace);
      if (!results.ok()) return 1;
      for (size_t p = 0; p < policies.size(); ++p) {
        geosir::storage::BufferManager buffer(&stored[p].file(),
                                              kBufferBlocks);
        auto io = stored[p].ReplayTrace(trace, &buffer);
        if (!io.ok()) return 1;
        avg_io[p] += static_cast<double>(*io);
      }
    }
    std::vector<std::string> row{FmtInt(static_cast<long long>(k))};
    for (size_t p = 0; p < policies.size(); ++p) {
      row.push_back(Fmt("%.1f", avg_io[p] / queries.size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper Figure 7 + Section 4.2): all sorted methods\n"
      "beat insertion order; method (i) has the best average I/O of the\n"
      "three sorts; the Section 4.2 local optimization is ~30%% below the\n"
      "best sort. I/O grows with k (deeper result lists touch more "
      "blocks).\n");
  return 0;
}
