// Durability cost (extension): what the write-ahead log adds to the
// dynamic base's insert path, per sync policy. The paper's retrieval
// structures are read-mostly, but its dynamic-environment extension
// (insert/delete churn) needs crash durability — this bench quantifies
// the price: batch-insert overhead vs an ephemeral in-memory base,
// per-insert tail latency, and raw WAL append throughput.
//
// Runs against the real filesystem (a directory under /tmp), so the
// fsync numbers are the machine's actual barrier cost, not a model.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_shape_base.h"
#include "storage/appendable_file.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

constexpr char kBench[] = "wal";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
  return values[idx];
}

struct PolicyRun {
  std::string name;
  double total_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

PolicyRun RunInserts(const std::string& name,
                     const std::vector<Polyline>& shapes,
                     geosir::storage::WalJournal* journal,
                     geosir::core::DynamicShapeBase* base) {
  PolicyRun run;
  run.name = name;
  std::vector<double> latencies_us;
  latencies_us.reserve(shapes.size());
  Timer total;
  for (size_t i = 0; i < shapes.size(); ++i) {
    Timer one;
    auto id = base->Insert(shapes[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
    latencies_us.push_back(one.Seconds() * 1e6);
  }
  (void)journal;
  run.total_s = total.Seconds();
  run.p50_us = Percentile(latencies_us, 0.50);
  run.p99_us = Percentile(latencies_us, 0.99);
  return run;
}

}  // namespace

int main() {
  const size_t kInserts = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_WAL_INSERTS", 600));
  const size_t kRawRecords = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_WAL_RAW_RECORDS", 50000));
  // Each policy runs this many times and the fastest run is reported:
  // fsync latency on shared machines is noisy, and min-of-N is the
  // standard way to see the code's cost instead of the neighbors'.
  const size_t kReps = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_WAL_REPS", 5));

  geosir::util::Rng rng(445566);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> shapes;
  shapes.reserve(kInserts);
  for (size_t i = 0; i < kInserts; ++i) {
    shapes.push_back(RandomStarPolygon(&rng, gen));
  }

  // Keep compaction out of the comparison: it rewrites the checkpoint and
  // would dominate the insert timing for every policy alike.
  geosir::core::DynamicShapeBase::Options base_options;
  base_options.min_compaction_size = kInserts * 2;

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "geosir_bench_wal";
  fs::remove_all(root);
  fs::create_directories(root);

  std::printf("=== WAL insert overhead: %zu inserts per policy ===\n\n",
              kInserts);

  // Baseline: the same inserts into an ephemeral, journal-free base.
  PolicyRun baseline;
  for (size_t rep = 0; rep < kReps; ++rep) {
    geosir::core::DynamicShapeBase ephemeral(base_options);
    const PolicyRun run = RunInserts("ephemeral", shapes, nullptr, &ephemeral);
    if (rep == 0 || run.total_s < baseline.total_s) baseline = run;
  }

  struct Policy {
    std::string name;
    geosir::storage::WalOptions wal;
  };
  std::vector<Policy> policies;
  {
    Policy p;
    p.name = "on_checkpoint";
    p.wal.sync_policy = geosir::storage::WalSyncPolicy::kOnCheckpoint;
    policies.push_back(p);
    p.name = "every_4096_default";
    p.wal.sync_policy = geosir::storage::WalSyncPolicy::kEveryN;
    p.wal.sync_every_n = 4096;
    policies.push_back(p);
    p.name = "every_512";
    p.wal.sync_every_n = 512;
    policies.push_back(p);
    p.name = "every_64";
    p.wal.sync_every_n = 64;
    policies.push_back(p);
    p.name = "every_8";
    p.wal.sync_every_n = 8;
    policies.push_back(p);
    p.name = "every_record";
    p.wal.sync_policy = geosir::storage::WalSyncPolicy::kEveryRecord;
    policies.push_back(p);
  }

  Table table({"policy", "total_s", "inserts_per_s", "p50_us", "p99_us",
               "overhead_pct"});
  const auto report = [&](const PolicyRun& run) {
    const double overhead_pct =
        baseline.total_s > 0.0
            ? (run.total_s / baseline.total_s - 1.0) * 100.0
            : 0.0;
    const double per_s = run.total_s > 0.0
                             ? static_cast<double>(kInserts) / run.total_s
                             : 0.0;
    table.AddRow({run.name, Fmt("%.3f", run.total_s), Fmt("%.0f", per_s),
                  Fmt("%.1f", run.p50_us), Fmt("%.1f", run.p99_us),
                  run.name == "ephemeral" ? "-" : Fmt("%.1f", overhead_pct)});
    JsonLine(kBench)
        .Str("name", "insert_overhead")
        .Str("policy", run.name)
        .Int("inserts", static_cast<long long>(kInserts))
        .Num("total_seconds", run.total_s)
        .Num("inserts_per_second", per_s)
        .Num("p50_us", run.p50_us)
        .Num("p99_us", run.p99_us)
        .Num("overhead_pct", run.name == "ephemeral" ? 0.0 : overhead_pct)
        .Emit();
  };
  report(baseline);

  for (const Policy& policy : policies) {
    PolicyRun best;
    for (size_t rep = 0; rep < kReps; ++rep) {
      const std::string dir =
          (root / (policy.name + "_" + std::to_string(rep))).string();
      geosir::storage::DurabilityOptions durability;
      durability.wal = policy.wal;
      auto opened = geosir::storage::OpenDurableDynamicBase(dir, base_options,
                                                            durability);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      const PolicyRun run = RunInserts(policy.name, shapes,
                                       opened->journal.get(),
                                       opened->base.get());
      if (rep == 0 || run.total_s < best.total_s) best = run;
    }
    report(best);
  }
  table.Print();

  // Raw append throughput: framed no-op-sized records through
  // WriteAheadLog without the base on top, unsynced vs windowed sync.
  std::printf("\n=== Raw WAL append throughput: %zu records ===\n\n",
              kRawRecords);
  Table raw_table({"mode", "records_per_s", "mb_per_s"});
  const std::vector<uint8_t> payload(64, 0x2A);
  for (const bool windowed : {false, true}) {
    geosir::storage::WalOptions wal_options;
    wal_options.sync_policy = windowed
                                  ? geosir::storage::WalSyncPolicy::kEveryN
                                  : geosir::storage::WalSyncPolicy::kOnCheckpoint;
    wal_options.sync_every_n = 64;
    const std::string path =
        (root / (windowed ? "raw_synced.log" : "raw.log")).string();
    auto file = geosir::storage::Env::Posix()->NewAppendableFile(
        path, /*truncate=*/true);
    if (!file.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   file.status().ToString().c_str());
      return 1;
    }
    geosir::storage::WriteAheadLog wal(std::move(*file), wal_options,
                                       /*next_lsn=*/0, /*synced_upto=*/0);
    Timer timer;
    for (size_t i = 0; i < kRawRecords; ++i) {
      auto lsn = wal.Append(geosir::storage::WalRecordType::kInsert, payload);
      if (!lsn.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     lsn.status().ToString().c_str());
        return 1;
      }
    }
    if (!wal.Sync().ok()) return 1;
    const double seconds = timer.Seconds();
    const double per_s =
        seconds > 0.0 ? static_cast<double>(kRawRecords) / seconds : 0.0;
    const double bytes = static_cast<double>(kRawRecords) *
                         static_cast<double>(
                             payload.size() +
                             geosir::storage::kWalFrameOverheadBytes);
    const double mb_per_s = seconds > 0.0 ? bytes / seconds / 1e6 : 0.0;
    const std::string mode = windowed ? "sync_every_64" : "unsynced";
    raw_table.AddRow({mode, Fmt("%.0f", per_s), Fmt("%.1f", mb_per_s)});
    JsonLine(kBench)
        .Str("name", "raw_append")
        .Str("mode", mode)
        .Int("records", static_cast<long long>(kRawRecords))
        .Num("records_per_second", per_s)
        .Num("mb_per_second", mb_per_s)
        .Emit();
  }
  raw_table.Print();

  fs::remove_all(root);
  return 0;
}
