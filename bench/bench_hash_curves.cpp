// Experiment F5: regenerates Figure 5 (the graphs of E(x) and dE/dx) and
// Figure 4 right (the k = 50 equal-area arc family), plus solver timing.
//
// Paper reference: Section 3. E(x) is the area between the q1 hash arc
// with parameter x and the x-axis; the arcs are placed at E(x_i) =
// (A0/4) i/k. The paper plots E and its derivative to justify fast
// gradient-based root finding.

#include <cstdio>

#include "bench/bench_util.h"
#include "hashing/hash_curves.h"
#include "hashing/lune.h"

using geosir::bench::Fmt;
using geosir::bench::Table;
using geosir::bench::Timer;

int main() {
  std::printf("=== Figure 5: E(x) and dE/dx over [0, 1] ===\n");
  Table curve({"x", "E(x)", "dE/dx", "E(x)/(A0/4)"});
  const double quarter = geosir::hashing::kLuneAreaA0 / 4.0;
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    const double e = geosir::hashing::LuneAreaE(x);
    const double de = geosir::hashing::LuneAreaEDerivative(x);
    curve.AddRow({Fmt("%.2f", x), Fmt("%.6f", e), Fmt("%.6f", de),
                  Fmt("%.4f", e / quarter)});
  }
  curve.Print();
  std::printf(
      "expected shape: E monotone 0 -> A0/4 = %.6f; dE/dx continuous,\n"
      "rising from 0 and steepening toward x = 1 (paper Figure 5).\n\n",
      quarter);

  std::printf("=== Figure 4 (right): the k = 50 arc family ===\n");
  Timer solve_timer;
  auto family = geosir::hashing::ArcFamily::Create(50);
  const double solve_ms = solve_timer.Millis();
  if (!family.ok()) {
    std::fprintf(stderr, "ArcFamily::Create failed: %s\n",
                 family.status().ToString().c_str());
    return 1;
  }
  Table arcs({"i", "x_i", "center_x", "center_y", "E(x_i)/(A0/4)"});
  for (int i = 1; i <= 50; i += (i < 5 ? 1 : 5)) {
    const double x = family->x(i - 1);
    const auto c = geosir::hashing::ArcCenter(x, 0);
    arcs.AddRow({geosir::bench::FmtInt(i), Fmt("%.6f", x), Fmt("%.6f", c.x),
                 Fmt("%.6f", c.y),
                 Fmt("%.4f", geosir::hashing::LuneAreaE(x) / quarter)});
  }
  arcs.Print();
  std::printf("solved 50 equal-area equations in %.2f ms "
              "(gradient-safeguarded bisection)\n\n",
              solve_ms);

  std::printf("=== Solver scaling (k = family size) ===\n");
  Table scaling({"k", "solve_ms", "max_equal_area_error"});
  for (int k : {10, 25, 50, 100, 200}) {
    Timer t;
    auto fam = geosir::hashing::ArcFamily::Create(k);
    const double ms = t.Millis();
    if (!fam.ok()) return 1;
    double worst = 0.0;
    for (int i = 1; i <= k; ++i) {
      const double want = quarter * i / k;
      const double got = geosir::hashing::LuneAreaE(fam->x(i - 1));
      worst = std::max(worst, std::fabs(got - want));
    }
    scaling.AddRow({geosir::bench::FmtInt(k), Fmt("%.2f", ms),
                    Fmt("%.2e", worst)});
  }
  scaling.Print();
  return 0;
}
