// Experiment F2 + intro claims: noise resilience of the paper's
// geometric-similarity retrieval vs. the baselines it is compared with:
//   * Mehrotra & Gary edge-normalized feature index (the paper's primary
//     comparison; Figure 2's local-distortion failure case),
//   * Hausdorff and partial (k-th) Hausdorff ranking (Section 2.1).
//
// A database of jittered prototype instances is queried with increasingly
// distorted sketches; we report precision@1 (does the top match come from
// the query's prototype?), query latency, and the storage blow-up of
// edge normalization vs. alpha-diameter normalization.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/chamfer_baseline.h"
#include "core/feature_index_baseline.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

/// Brute-force alignment-invariant ranking with an arbitrary measure over
/// normalized copies: min over copies per shape.
int RankTop1(const geosir::core::ShapeBase& base, const Polyline& query,
             const std::function<double(const Polyline&, const Polyline&)>&
                 measure) {
  auto qnorm = geosir::core::NormalizeQuery(query);
  if (!qnorm.ok()) return -1;
  int best_shape = -1;
  double best = 1e300;
  for (const auto& copy : base.copies()) {
    const double d = measure(copy.shape, qnorm->shape);
    if (d < best) {
      best = d;
      best_shape = static_cast<int>(copy.shape_id);
    }
  }
  return best_shape;
}

}  // namespace

int main() {
  const int kPrototypes =
      static_cast<int>(geosir::bench::EnvScale("GEOSIR_BENCH_PROTOS", 24));
  const int kInstances = 4;
  const int kQueriesPerLevel = kPrototypes;

  geosir::util::Rng rng(20020601);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  for (int i = 0; i < kPrototypes; ++i) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }

  // Database: jittered instances of every prototype.
  geosir::core::ShapeBase base;
  geosir::core::FeatureIndexBaseline mg_index;
  geosir::core::ChamferBaseline chamfer;
  std::vector<int> prototype_of_shape;
  for (int p = 0; p < kPrototypes; ++p) {
    for (int i = 0; i < kInstances; ++i) {
      const Polyline instance =
          geosir::workload::JitterVertices(prototypes[p], 0.008, &rng);
      auto id = base.AddShape(instance);
      if (!id.ok()) continue;
      prototype_of_shape.push_back(p);
      (void)mg_index.Add(*id, instance);
      (void)chamfer.Add(*id, instance);
    }
  }
  if (!base.Finalize().ok()) return 1;

  std::printf("=== Storage overhead (copies stored per shape) ===\n");
  Table storage({"method", "entries", "entries/shape"});
  storage.AddRow({"GeoSIR alpha-diameter copies",
                  FmtInt(static_cast<long long>(base.NumCopies())),
                  Fmt("%.1f", static_cast<double>(base.NumCopies()) /
                                  base.NumShapes())});
  storage.AddRow({"Mehrotra-Gary per-edge copies",
                  FmtInt(static_cast<long long>(mg_index.NumEntries())),
                  Fmt("%.1f", static_cast<double>(mg_index.NumEntries()) /
                                  base.NumShapes())});
  storage.AddRow({"chamfer distance maps (KB)",
                  FmtInt(static_cast<long long>(chamfer.MapBytes() / 1024)),
                  Fmt("%.0f KB", static_cast<double>(chamfer.MapBytes()) /
                                     1024.0 / base.NumShapes())});
  storage.Print();
  std::printf("(paper: edge normalization stores 2 copies per edge; "
              "diameter normalization ~2 copies per alpha-diameter)\n\n");

  geosir::core::EnvelopeMatcher matcher(&base);

  struct NoiseLevel {
    const char* name;
    std::function<Polyline(const Polyline&, geosir::util::Rng*)> distort;
  };
  const std::vector<NoiseLevel> levels = {
      {"jitter 0.5%",
       [](const Polyline& p, geosir::util::Rng* r) {
         return geosir::workload::JitterVertices(p, 0.005, r);
       }},
      {"jitter 1%",
       [](const Polyline& p, geosir::util::Rng* r) {
         return geosir::workload::JitterVertices(p, 0.01, r);
       }},
      {"jitter 2%",
       [](const Polyline& p, geosir::util::Rng* r) {
         return geosir::workload::JitterVertices(p, 0.02, r);
       }},
      {"jitter 4%",
       [](const Polyline& p, geosir::util::Rng* r) {
         return geosir::workload::JitterVertices(p, 0.04, r);
       }},
      {"5 edge dents 4% (Fig.2)",
       [](const Polyline& p, geosir::util::Rng* r) {
         // Figure 2's distortion breaks many edges at once: no edge of
         // the distorted shape matches an edge of the original.
         Polyline out = geosir::workload::JitterVertices(p, 0.005, r);
         for (int d = 0; d < 5; ++d) {
           out = geosir::workload::LocalDent(out, 0.04, r);
         }
         return out;
       }},
      {"resample 2x vertices",
       [](const Polyline& p, geosir::util::Rng* r) {
         (void)r;
         return geosir::workload::ResampleBoundary(
             p, static_cast<int>(2 * p.size()));
       }},
  };

  std::printf(
      "=== Precision@1 under distortion (%d queries per level) ===\n",
      kQueriesPerLevel);
  Table results({"distortion", "GeoSIR h_avg", "Mehrotra-Gary", "Hausdorff",
                 "partial H (f=.5)", "chamfer", "GeoSIR ms/q", "MG ms/q",
                 "chamfer ms/q"});
  for (const NoiseLevel& level : levels) {
    int correct_geo = 0, correct_mg = 0, correct_h = 0, correct_ph = 0;
    int correct_ch = 0;
    double geo_ms = 0.0, mg_ms = 0.0, ch_ms = 0.0;
    for (int q = 0; q < kQueriesPerLevel; ++q) {
      const int proto = q % kPrototypes;
      const Polyline query = level.distort(prototypes[proto], &rng);

      Timer geo_timer;
      auto geo = matcher.Match(query);
      geo_ms += geo_timer.Millis();
      if (geo.ok() && !geo->empty() &&
          prototype_of_shape[(*geo)[0].shape_id] == proto) {
        ++correct_geo;
      }

      Timer mg_timer;
      const auto mg = mg_index.Query(query, 1);
      mg_ms += mg_timer.Millis();
      if (!mg.empty() && prototype_of_shape[mg[0].shape_id] == proto) {
        ++correct_mg;
      }

      const int h_top = RankTop1(base, query,
                                 [](const Polyline& s, const Polyline& t) {
                                   return geosir::core::DiscreteHausdorff(s,
                                                                          t);
                                 });
      if (h_top >= 0 && prototype_of_shape[h_top] == proto) ++correct_h;
      const int ph_top = RankTop1(base, query,
                                  [](const Polyline& s, const Polyline& t) {
                                    return geosir::core::PartialHausdorff(
                                        s, t, 0.5);
                                  });
      if (ph_top >= 0 && prototype_of_shape[ph_top] == proto) ++correct_ph;

      Timer ch_timer;
      const auto ch = chamfer.Query(query, 1);
      ch_ms += ch_timer.Millis();
      if (!ch.empty() && prototype_of_shape[ch[0].shape_id] == proto) {
        ++correct_ch;
      }
    }
    const auto pct = [&](int correct) {
      return Fmt("%.0f%%", 100.0 * correct / kQueriesPerLevel);
    };
    results.AddRow({level.name, pct(correct_geo), pct(correct_mg),
                    pct(correct_h), pct(correct_ph), pct(correct_ch),
                    Fmt("%.1f", geo_ms / kQueriesPerLevel),
                    Fmt("%.1f", mg_ms / kQueriesPerLevel),
                    Fmt("%.1f", ch_ms / kQueriesPerLevel)});
  }
  results.Print();
  std::printf(
      "\nexpected shape (paper): GeoSIR stays accurate as distortion\n"
      "grows; Mehrotra-Gary degrades sharply once edges are dented or\n"
      "split (Figure 2) because no edge pair aligns; plain Hausdorff is\n"
      "dragged by single-vertex outliers.\n");
  return 0;
}
