#ifndef GEOSIR_BENCH_BENCH_UTIL_H_
#define GEOSIR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace geosir::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = headers_.size() - 1;
    for (size_t w : widths) total += w + 1;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtInt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

/// Reads a positive environment scale override, e.g.
/// GEOSIR_BENCH_IMAGES=10000 runs a bench at paper scale.
inline long long EnvScale(const char* name, long long default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? parsed : default_value;
}

}  // namespace geosir::bench

#endif  // GEOSIR_BENCH_BENCH_UTIL_H_
