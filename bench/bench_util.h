#ifndef GEOSIR_BENCH_BENCH_UTIL_H_
#define GEOSIR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <vector>

namespace geosir::bench {

/// ISO-8601 UTC wall-clock timestamp, e.g. "2026-08-07T12:34:56Z".
inline std::string IsoTimestampUtc() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

/// Git revision the benchmark binary was built from. The build system
/// bakes it in via -DGEOSIR_GIT_SHA=...; GEOSIR_GIT_SHA in the
/// environment overrides it (useful when re-running an old binary
/// against a known tree state).
inline std::string GitSha() {
  if (const char* env = std::getenv("GEOSIR_GIT_SHA")) return env;
#ifdef GEOSIR_GIT_SHA
  return GEOSIR_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Random per-process identifier so rows from one benchmark invocation
/// can be grouped after files are concatenated across runs.
inline const std::string& RunId() {
  static const std::string id = [] {
    std::random_device rd;
    std::uint64_t bits =
        (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return std::string(buf);
  }();
  return id;
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = headers_.size() - 1;
    for (size_t w : widths) total += w + 1;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtInt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

/// Reads a positive environment scale override, e.g.
/// GEOSIR_BENCH_IMAGES=10000 runs a bench at paper scale.
inline long long EnvScale(const char* name, long long default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? parsed : default_value;
}

/// Machine-readable benchmark output: one JSON object per Emit(), written
/// to stdout (prefixed with "JSON " so it survives mixed with the tables)
/// and appended verbatim to the file named by GEOSIR_BENCH_JSON when that
/// is set. Collecting those lines across PRs (BENCH_*.json) gives the
/// perf trajectory of every tracked metric. Every row carries provenance
/// fields (ts, git_sha, run_id) so concatenated files remain attributable
/// to a build and an invocation.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    buffer_ = "{\"bench\":\"" + Escaped(bench) + "\"";
    Str("ts", IsoTimestampUtc());
    Str("git_sha", GitSha());
    Str("run_id", RunId());
  }

  JsonLine& Str(const char* key, const std::string& value) {
    buffer_ += ",\"" + std::string(key) + "\":\"" + Escaped(value) + "\"";
    return *this;
  }
  JsonLine& Num(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    buffer_ += ",\"" + std::string(key) + "\":" + buf;
    return *this;
  }
  JsonLine& Int(const char* key, long long value) {
    buffer_ += ",\"" + std::string(key) + "\":" + FmtInt(value);
    return *this;
  }

  void Emit() {
    buffer_ += "}";
    std::printf("JSON %s\n", buffer_.c_str());
    if (const char* path = std::getenv("GEOSIR_BENCH_JSON")) {
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fprintf(f, "%s\n", buffer_.c_str());
        std::fclose(f);
      }
    }
  }

 private:
  static std::string Escaped(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string buffer_;
};

/// Shared wall-clock + throughput reporter: prints a human-readable line,
/// emits the matching JSON line, and returns the items/second rate.
inline double ReportThroughput(const std::string& bench,
                               const std::string& name, long long items,
                               double seconds) {
  const double per_second =
      seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  std::printf("%s: %lld items in %.3f s (%.1f items/s)\n", name.c_str(),
              items, seconds, per_second);
  JsonLine(bench)
      .Str("name", name)
      .Int("items", items)
      .Num("seconds", seconds)
      .Num("per_second", per_second)
      .Emit();
  return per_second;
}

}  // namespace geosir::bench

#endif  // GEOSIR_BENCH_BENCH_UTIL_H_
