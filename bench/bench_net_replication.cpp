// Socket replication transport: what shipping the WAL over real TCP
// costs relative to the in-process transport, and how fast the client
// recovers a severed connection. Three measurements: (1) follower apply
// throughput over a loopback socket vs the in-process PrimaryLogSource
// (same backlog, same apply path — the delta is framing + syscalls),
// (2) request/reply RPC latency for the smallest message
// (PrimaryNextLsn) over loopback, and (3) reconnect latency through the
// chaos proxy — time from Restore() until a severed follower is pumping
// and converged again, which exercises the full backoff + handshake +
// refetch path.
//
// Loopback only; MemEnv for all storage. Scale knobs:
//   GEOSIR_BENCH_RECORDS  backlog size for the throughput runs
//   GEOSIR_BENCH_RPCS     round trips for the latency run
//   GEOSIR_BENCH_CYCLES   sever/restore cycles for the reconnect run

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_shape_base.h"
#include "net/chaos_proxy.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "replication/replication_server.h"
#include "replication/socket_transport.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;
using geosir::net::ChaosProxy;
using geosir::net::ChaosProxyOptions;
using geosir::replication::Follower;
using geosir::replication::FollowerOptions;
using geosir::replication::PrimaryLogSource;
using geosir::replication::ReplicationServer;
using geosir::replication::ReplicationServerOptions;
using geosir::replication::SocketLogTransport;
using geosir::replication::SocketTransportOptions;

namespace {

constexpr char kBench[] = "net_replication";
constexpr char kHost[] = "127.0.0.1";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
  return values[idx];
}

[[noreturn]] void Die(const char* what, const geosir::util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

std::vector<Polyline> MakeShapes(size_t count) {
  geosir::util::Rng rng(554433);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> shapes;
  shapes.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    shapes.push_back(RandomStarPolygon(&rng, gen));
  }
  return shapes;
}

/// A loaded primary plus its socket endpoint on an ephemeral port.
struct Primary {
  geosir::storage::MemEnv env;
  std::unique_ptr<geosir::storage::DurableDynamicBase> durable;
  std::unique_ptr<ReplicationServer> server;

  explicit Primary(const std::vector<Polyline>& shapes) {
    geosir::core::DynamicShapeBase::Options base_options;
    base_options.min_compaction_size = shapes.size() * 4;  // No rotations.
    geosir::storage::DurabilityOptions durability;
    durability.env = &env;
    auto opened = geosir::storage::OpenDurableDynamicBase(
        "primary", base_options, durability);
    if (!opened.ok()) Die("open primary", opened.status());
    durable = std::make_unique<geosir::storage::DurableDynamicBase>(
        std::move(*opened));
    for (size_t s = 0; s < shapes.size(); ++s) {
      auto id = durable->base->Insert(shapes[s],
                                      static_cast<geosir::core::ImageId>(s));
      if (!id.ok()) Die("insert", id.status());
    }
    ReplicationServerOptions options;
    options.env = &env;
    options.dir = "primary";
    options.journal = durable->journal.get();
    auto started = ReplicationServer::Start(options);
    if (!started.ok()) Die("start server", started.status());
    server = std::move(started).value();
  }

  uint64_t tail() const { return durable->journal->tail_state().next_lsn; }
};

SocketTransportOptions TransportOptions(uint16_t port) {
  SocketTransportOptions options;
  options.host = kHost;
  options.port = port;
  options.reconnect = geosir::replication::DefaultReconnectPolicy(/*seed=*/9);
  options.reconnect.base_backoff_us = 500;
  options.reconnect.max_backoff_us = 20000;
  return options;
}

std::unique_ptr<Follower> OpenFollower(
    geosir::storage::Env* env, const std::string& dir,
    geosir::replication::LogTransport* transport) {
  FollowerOptions options;
  options.env = env;
  options.dir = dir;
  auto follower = Follower::Open(std::move(options), transport);
  if (!follower.ok()) Die("open follower", follower.status());
  return std::move(follower).value();
}

double Drain(Follower* follower, uint64_t tail) {
  Timer timer;
  while (follower->applied_lsn() < tail) {
    auto pumped = follower->Pump();
    if (!pumped.ok()) Die("pump", pumped.status());
  }
  return timer.Seconds();
}

// --- 1. Apply throughput: socket vs in-process ----------------------------

void BenchApplyThroughput(const std::vector<Polyline>& shapes, size_t reps) {
  double best_socket_s = 0.0;
  double best_inproc_s = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Primary primary(shapes);
    SocketLogTransport transport(TransportOptions(primary.server->port()));
    auto socket_follower =
        OpenFollower(&primary.env, "replica_socket", &transport);
    const double socket_s = Drain(socket_follower.get(), primary.tail());
    PrimaryLogSource source(&primary.env, "primary",
                            primary.durable->journal.get());
    auto inproc_follower =
        OpenFollower(&primary.env, "replica_inproc", &source);
    const double inproc_s = Drain(inproc_follower.get(), primary.tail());
    if (rep == 0 || socket_s < best_socket_s) best_socket_s = socket_s;
    if (rep == 0 || inproc_s < best_inproc_s) best_inproc_s = inproc_s;
  }
  const double records = static_cast<double>(shapes.size()) + 1.0;
  const double socket_per_s =
      best_socket_s > 0.0 ? records / best_socket_s : 0.0;
  const double inproc_per_s =
      best_inproc_s > 0.0 ? records / best_inproc_s : 0.0;
  const double overhead =
      inproc_per_s > 0.0 ? socket_per_s / inproc_per_s : 0.0;
  std::printf(
      "apply throughput: socket %.0f records/s, in-process %.0f records/s "
      "(socket/in-process %.2f)\n\n",
      socket_per_s, inproc_per_s, overhead);
  JsonLine(kBench)
      .Str("name", "socket_apply_throughput")
      .Int("records", static_cast<long long>(shapes.size() + 1))
      .Num("socket_seconds", best_socket_s)
      .Num("socket_records_per_second", socket_per_s)
      .Num("inprocess_records_per_second", inproc_per_s)
      .Num("socket_vs_inprocess", overhead)
      .Emit();
}

// --- 2. RPC latency over loopback -----------------------------------------

void BenchRpcLatency(size_t rpcs) {
  Primary primary(MakeShapes(16));
  SocketLogTransport transport(TransportOptions(primary.server->port()));
  for (int warm = 0; warm < 32; ++warm) {
    auto next = transport.PrimaryNextLsn();
    if (!next.ok()) Die("warmup rpc", next.status());
  }
  std::vector<double> latencies_us;
  latencies_us.reserve(rpcs);
  for (size_t i = 0; i < rpcs; ++i) {
    Timer one;
    auto next = transport.PrimaryNextLsn();
    if (!next.ok()) Die("rpc", next.status());
    latencies_us.push_back(one.Seconds() * 1e6);
  }
  const double p50 = Percentile(latencies_us, 0.50);
  const double p99 = Percentile(latencies_us, 0.99);
  std::printf("rpc latency (PrimaryNextLsn): p50 %.1f us, p99 %.1f us "
              "(%zu round trips)\n\n",
              p50, p99, rpcs);
  JsonLine(kBench)
      .Str("name", "rpc_latency")
      .Int("rpcs", static_cast<long long>(rpcs))
      .Num("p50_us", p50)
      .Num("p99_us", p99)
      .Emit();
}

// --- 3. Reconnect latency through the chaos proxy --------------------------

void BenchReconnectLatency(size_t cycles) {
  Primary primary(MakeShapes(32));
  ChaosProxyOptions proxy_options;
  proxy_options.target_host = kHost;
  proxy_options.target_port = primary.server->port();
  proxy_options.seed = 7;
  auto proxy = ChaosProxy::Start(proxy_options);
  if (!proxy.ok()) Die("start proxy", proxy.status());
  SocketTransportOptions transport_options =
      TransportOptions((*proxy)->port());
  transport_options.reconnect.decorrelated_jitter = true;
  SocketLogTransport transport(transport_options);
  auto follower = OpenFollower(&primary.env, "replica_chaos", &transport);
  Drain(follower.get(), primary.tail());

  const std::vector<Polyline> extra = MakeShapes(4);
  std::vector<double> reconnect_ms;
  reconnect_ms.reserve(cycles);
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    (*proxy)->Sever();
    for (const Polyline& shape : extra) {
      auto id = primary.durable->base->Insert(
          shape, static_cast<geosir::core::ImageId>(cycle));
      if (!id.ok()) Die("insert", id.status());
    }
    // The severed transport must fail (and burn its backoff schedule)
    // before Restore, so the timed section measures recovery, not the
    // failure detection.
    (void)follower->Pump();
    (*proxy)->Restore();
    Timer timer;
    while (follower->applied_lsn() < primary.tail()) {
      (void)follower->Pump();
    }
    reconnect_ms.push_back(timer.Millis());
  }
  const double p50 = Percentile(reconnect_ms, 0.50);
  const double max =
      *std::max_element(reconnect_ms.begin(), reconnect_ms.end());
  const uint64_t reconnects = follower->status().counters.reconnects;
  std::printf("reconnect latency: p50 %.2f ms, max %.2f ms "
              "(%zu sever/restore cycles, %llu transport reconnects)\n\n",
              p50, max, cycles,
              static_cast<unsigned long long>(reconnects));
  JsonLine(kBench)
      .Str("name", "reconnect_latency")
      .Int("cycles", static_cast<long long>(cycles))
      .Num("p50_ms", p50)
      .Num("max_ms", max)
      .Int("transport_reconnects", static_cast<long long>(reconnects))
      .Emit();
}

}  // namespace

int main() {
  const size_t kRecords = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_RECORDS", 2000));
  const size_t kRpcs = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_RPCS", 2000));
  const size_t kCycles = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_CYCLES", 20));
  const size_t kReps =
      static_cast<size_t>(geosir::bench::EnvScale("GEOSIR_BENCH_REPS", 3));

  std::printf("=== Net replication: %zu records, %zu rpcs, %zu cycles ===\n\n",
              kRecords, kRpcs, kCycles);
  BenchApplyThroughput(MakeShapes(kRecords), kReps);
  BenchRpcLatency(kRpcs);
  BenchReconnectLatency(kCycles);
  return 0;
}
