// Parallel query engine + similarity kernel benchmark.
//
// Part 1 — edge-grid kernel: single-thread AvgMinDistance between
// many-edge shapes, brute-force inner scan vs the precomputed edge grid
// (SimilarityOptions::grid_min_edges). The grid is exact, so besides the
// speedup the bench cross-checks that every distance is bit-identical.
//
// Part 2 — batched matching throughput: MatchBatch over a >= 10k-shape
// base at 1 vs 8 threads (GEOSIR_BENCH_THREADS overrides), verifying the
// deterministic-merge contract: per-query results bit-identical across
// thread counts. Scale with GEOSIR_BENCH_SHAPES / GEOSIR_BENCH_QUERIES.

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::JsonLine;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Polyline;

namespace {

constexpr const char* kBench = "bench_parallel_matching";

void BenchEdgeGridKernel() {
  std::printf("=== Edge-grid similarity kernel (single thread) ===\n");
  Table table({"edges", "pairs", "brute_ms", "grid_ms", "speedup", "max_dev"});
  geosir::util::Rng rng(17);
  for (int num_vertices : {32, 64, 128, 256}) {
    geosir::workload::PolygonGenOptions gen;
    gen.min_vertices = num_vertices;
    gen.max_vertices = num_vertices;
    const int pairs = 12;
    std::vector<std::pair<Polyline, Polyline>> shapes;
    for (int i = 0; i < pairs; ++i) {
      const Polyline a = RandomStarPolygon(&rng, gen);
      shapes.emplace_back(a, geosir::workload::JitterVertices(a, 0.01, &rng));
    }

    geosir::core::SimilarityOptions brute;
    brute.grid_min_edges = std::numeric_limits<size_t>::max();
    geosir::core::SimilarityOptions grid;
    grid.grid_min_edges = 0;

    std::vector<double> brute_values, grid_values;
    Timer tb;
    for (const auto& [a, b] : shapes) {
      brute_values.push_back(geosir::core::AvgMinDistance(a, b, brute));
    }
    const double brute_ms = tb.Millis();
    Timer tg;
    for (const auto& [a, b] : shapes) {
      grid_values.push_back(geosir::core::AvgMinDistance(a, b, grid));
    }
    const double grid_ms = tg.Millis();

    double max_dev = 0.0;
    for (int i = 0; i < pairs; ++i) {
      max_dev = std::max(max_dev, std::fabs(brute_values[i] - grid_values[i]));
    }
    const double speedup = brute_ms / std::max(grid_ms, 1e-9);
    table.AddRow({FmtInt(num_vertices), FmtInt(pairs), Fmt("%.2f", brute_ms),
                  Fmt("%.2f", grid_ms), Fmt("%.2fx", speedup),
                  Fmt("%.2e", max_dev)});
    JsonLine(kBench)
        .Str("name", "edge_grid_kernel")
        .Int("edges", num_vertices)
        .Num("brute_ms", brute_ms)
        .Num("grid_ms", grid_ms)
        .Num("speedup", speedup)
        .Num("max_deviation", max_dev)
        .Emit();
    if (max_dev != 0.0) {
      std::fprintf(stderr,
                   "FAIL: edge grid deviated from brute force (%g)\n", max_dev);
    }
  }
  table.Print();
  std::printf("\n");
}

void BenchBatchedMatching() {
  const size_t num_shapes = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_SHAPES", 10000));
  const size_t num_queries = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_QUERIES", 64));
  const size_t max_threads = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_THREADS", 8));

  std::printf("=== Batched matching, %zu shapes, %zu queries ===\n",
              num_shapes, num_queries);
  geosir::util::Rng rng(42);
  geosir::core::ShapeBaseOptions base_options;
  base_options.normalize.max_axes = 5;
  geosir::core::ShapeBase base(base_options);
  geosir::workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = std::max<size_t>(4, num_shapes / 10);
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }
  Timer build_timer;
  for (size_t s = 0; s < num_shapes; ++s) {
    (void)base.AddShape(geosir::workload::JitterVertices(
        prototypes[s % num_protos], 0.008, &rng));
  }
  (void)base.Finalize();
  std::printf("build: %.2f s, %zu pooled vertices\n", build_timer.Seconds(),
              base.NumVertices());

  geosir::util::Rng qrng(7);
  std::vector<Polyline> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(geosir::workload::JitterVertices(
        prototypes[q % num_protos], 0.01, &qrng));
  }

  geosir::core::MatchOptions options;
  options.measure = geosir::core::MatchMeasure::kContinuousSymmetric;
  options.k = 3;

  Table table({"threads", "wall_s", "queries/s", "speedup", "identical"});
  double serial_seconds = 0.0;
  std::vector<std::vector<geosir::core::MatchResult>> serial_results;
  std::vector<size_t> thread_counts{1};
  for (size_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  for (size_t threads : thread_counts) {
    geosir::util::ThreadPool pool(threads);
    options.num_threads = threads;
    options.pool = &pool;
    Timer timer;
    auto results = base.MatchBatch(queries, options);
    const double seconds = timer.Seconds();
    if (!results.ok()) {
      std::fprintf(stderr, "MatchBatch failed: %s\n",
                   results.status().ToString().c_str());
      return;
    }
    bool identical = true;
    if (threads == 1) {
      serial_seconds = seconds;
      serial_results = *std::move(results);
    } else {
      identical = results->size() == serial_results.size();
      for (size_t i = 0; identical && i < serial_results.size(); ++i) {
        identical = (*results)[i].size() == serial_results[i].size();
        for (size_t r = 0; identical && r < serial_results[i].size(); ++r) {
          const auto& a = serial_results[i][r];
          const auto& b = (*results)[i][r];
          identical = a.shape_id == b.shape_id && a.distance == b.distance &&
                      a.copy_index == b.copy_index;
        }
      }
    }
    const double qps =
        seconds > 0.0 ? static_cast<double>(num_queries) / seconds : 0.0;
    const double speedup = serial_seconds / std::max(seconds, 1e-9);
    table.AddRow({FmtInt(static_cast<long long>(threads)),
                  Fmt("%.3f", seconds), Fmt("%.1f", qps),
                  Fmt("%.2fx", speedup), identical ? "yes" : "NO"});
    JsonLine(kBench)
        .Str("name", "batched_matching")
        .Int("threads", static_cast<long long>(threads))
        .Int("shapes", static_cast<long long>(num_shapes))
        .Int("queries", static_cast<long long>(num_queries))
        .Num("seconds", seconds)
        .Num("queries_per_second", qps)
        .Num("speedup_vs_serial", speedup)
        .Int("identical_to_serial", identical ? 1 : 0)
        .Emit();
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: parallel results differ from serial results\n");
    }
  }
  table.Print();
  std::printf(
      "\nexpected: near-linear batched-matching speedup up to the physical\n"
      "core count, with the identical column always 'yes' (deterministic\n"
      "merge; this host reports %u hardware threads).\n",
      std::thread::hardware_concurrency());
}

}  // namespace

int main() {
  BenchEdgeGridKernel();
  BenchBatchedMatching();
  return 0;
}
