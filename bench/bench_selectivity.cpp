// Experiment F10 (Figure 10): the number of shapes similar to a query Q
// is inversely proportional to the number of significant vertices
// V_S(Q):  |shape_similar(Q)| ~= c / V_S(Q).
//
// Setup mirroring the paper: two shape bases over the same image domain,
// Experiment 1 twice the size of Experiment 2. The domain is a continuum
// of independent random shapes spanning the structural-complexity
// spectrum (blobby quadrilaterals to spiky 30-gons). Under a fixed
// similarity threshold, structurally simple queries (low V_S) resemble
// many database shapes; intricate queries resemble few — the hyperbolic
// law. We report the per-query counts, the least-squares constant c, the
// correlation of the counts with 1/V_S, and the cross-base scaling.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "query/selectivity.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;
using geosir::geom::Polyline;

namespace {

/// Random shape with complexity driven by `t` in [0, 1]: t = 0 gives
/// blobby few-vertex shapes, t = 1 spiky many-vertex ones.
Polyline SpectrumShape(double t, geosir::util::Rng* rng) {
  geosir::workload::PolygonGenOptions gen;
  gen.min_vertices = 4 + static_cast<int>(t * 26);
  gen.max_vertices = gen.min_vertices + 3;
  gen.spikiness = 0.05 + 0.4 * t;
  gen.irregularity = 0.2 + 0.5 * t;
  gen.min_radius = 0.9;
  gen.max_radius = 1.1;
  return RandomStarPolygon(rng, gen);
}

struct Sample {
  double vs;
  size_t matches;
};

double FitC(const std::vector<Sample>& samples) {
  double num = 0, den = 0;
  for (const auto& s : samples) {
    num += static_cast<double>(s.matches) / s.vs;
    den += 1.0 / (s.vs * s.vs);
  }
  return den > 0 ? num / den : 0.0;
}

double HyperbolicCorrelation(const std::vector<Sample>& samples) {
  double mx = 0, my = 0;
  for (const auto& s : samples) {
    mx += 1.0 / s.vs;
    my += static_cast<double>(s.matches);
  }
  mx /= samples.size();
  my /= samples.size();
  double sxy = 0, sxx = 0, syy = 0;
  for (const auto& s : samples) {
    const double dx = 1.0 / s.vs - mx;
    const double dy = static_cast<double>(s.matches) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  return sxy / std::sqrt(std::max(sxx * syy, 1e-300));
}

}  // namespace

int main() {
  const size_t shapes_large = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_SHAPES", 3000));

  struct Experiment {
    const char* name;
    size_t num_shapes;
    std::unique_ptr<geosir::core::ShapeBase> base;
    std::vector<Sample> samples;
  };
  std::vector<Experiment> experiments;
  experiments.push_back({"Experiment 1 (2N shapes)", shapes_large, {}, {}});
  experiments.push_back(
      {"Experiment 2 (N shapes)", shapes_large / 2, {}, {}});

  // Same domain: Experiment 2's shapes are a prefix of Experiment 1's.
  for (Experiment& exp : experiments) {
    geosir::util::Rng rng(606);  // Same stream -> prefix property.
    geosir::core::ShapeBaseOptions options;
    options.normalize.max_axes = 3;
    exp.base = std::make_unique<geosir::core::ShapeBase>(options);
    for (size_t i = 0; i < exp.num_shapes; ++i) {
      const double t = rng.Uniform(0.0, 1.0);
      (void)exp.base->AddShape(SpectrumShape(t, &rng));
    }
    if (!exp.base->Finalize().ok()) return 1;
  }
  std::printf("=== Figure 10: |shape_similar(Q)| vs V_S(Q) ===\n");
  std::printf("base 1: %zu shapes; base 2: %zu shapes\n\n",
              experiments[0].base->NumShapes(),
              experiments[1].base->NumShapes());

  // Query sweep across the complexity spectrum (shapes NOT in the base).
  geosir::util::Rng qrng(707);
  const int kQueries = 24;
  Table table({"query", "V(Q)", "V_S(Q)", "matches (Exp1)",
               "matches (Exp2)", "ratio"});
  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (int q = 0; q < kQueries; ++q) {
    const double t = static_cast<double>(q) / (kQueries - 1);
    const Polyline query = SpectrumShape(t, &qrng);
    const double vs = geosir::query::SignificantVertices(query);
    std::vector<size_t> counts;
    for (Experiment& exp : experiments) {
      geosir::core::EnvelopeMatcher matcher(exp.base.get());
      geosir::core::MatchOptions options;
      options.collect_threshold = 0.035;
      options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
      auto results = matcher.Match(query, options);
      if (!results.ok()) return 1;
      counts.push_back(results->size());
      exp.samples.push_back(Sample{vs, results->size()});
    }
    double ratio = 0.0;
    if (counts[1] > 0) {
      ratio = static_cast<double>(counts[0]) / counts[1];
      ratio_sum += ratio;
      ++ratio_count;
    }
    table.AddRow({"Q" + std::to_string(q), FmtInt((long long)query.size()),
                  Fmt("%.2f", vs),
                  FmtInt(static_cast<long long>(counts[0])),
                  FmtInt(static_cast<long long>(counts[1])),
                  Fmt("%.2f", ratio)});
  }
  table.Print();

  std::printf("\n=== Hyperbolic fit: matches ~= c / V_S ===\n");
  Table fit({"experiment", "fitted c", "corr(matches, 1/V_S)"});
  double c1 = 0.0, c2 = 0.0;
  for (size_t e = 0; e < experiments.size(); ++e) {
    const double c = FitC(experiments[e].samples);
    if (e == 0) c1 = c;
    if (e == 1) c2 = c;
    fit.AddRow({experiments[e].name, Fmt("%.1f", c),
                Fmt("%.3f", HyperbolicCorrelation(experiments[e].samples))});
  }
  fit.Print();
  std::printf(
      "\nexpected shape (paper Figure 10): counts decay hyperbolically in\n"
      "V_S (strong positive correlation with 1/V_S), and the larger base\n"
      "scales the curve up proportionally: fitted c ratio %.2fx, mean\n"
      "per-query ratio %.2fx (ideal 2.0).\n",
      c2 > 0 ? c1 / c2 : 0.0,
      ratio_count > 0 ? ratio_sum / ratio_count : 0.0);
  return 0;
}
