// Experiment F1: the Figure 1 motivation — under the Hausdorff distance
// the query Q matches shape A; under the paper's average-minimum-distance
// criterion it matches B (the intuitively closer shape).
//
// We reconstruct the scenario: B is Q with a single spike (one far
// vertex), A is a uniformly inflated copy of Q. The spike dominates the
// Hausdorff max; the average absorbs it. The table reports every measure
// in the library, plus timing per evaluation.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/similarity.h"

using geosir::bench::Fmt;
using geosir::bench::Table;
using geosir::bench::Timer;
using geosir::geom::Point;
using geosir::geom::Polyline;

namespace {

Polyline DenseRectangle(double w, double h, double step) {
  std::vector<Point> v;
  for (double x = 0; x < w; x += step) v.push_back({x, 0});
  for (double y = 0; y < h; y += step) v.push_back({w, y});
  for (double x = w; x > 0; x -= step) v.push_back({x, h});
  for (double y = h; y > 0; y -= step) v.push_back({0, y});
  return Polyline::Closed(std::move(v));
}

}  // namespace

int main() {
  const Polyline q = DenseRectangle(2.0, 1.0, 0.1);
  // B: the same rectangle with one spike vertex pulled 0.8 away.
  Polyline b = q;
  b.mutable_vertices()[5].y -= 0.8;
  // A: every boundary point ~0.25 away from Q.
  Polyline a = [] {
    Polyline r = DenseRectangle(2.5, 1.5, 0.1);
    for (Point& p : r.mutable_vertices()) p += Point{-0.25, -0.25};
    return r;
  }();

  struct Measure {
    const char* name;
    double (*eval)(const Polyline&, const Polyline&);
  };
  const std::vector<Measure> measures = {
      {"Hausdorff H(S,Q)",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::DiscreteHausdorff(s, t);
       }},
      {"directed h(S,Q)",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::DiscreteDirectedHausdorff(s, t);
       }},
      {"partial H_k (f=0.5)",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::PartialHausdorff(s, t, 0.5);
       }},
      {"h_avg(S,Q) continuous",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::AvgMinDistance(s, t);
       }},
      {"h_avg symmetric",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::AvgMinDistanceSymmetric(s, t);
       }},
      {"h_avg discrete",
       [](const Polyline& s, const Polyline& t) {
         return geosir::core::DiscreteAvgMinDistance(s, t);
       }},
  };

  std::printf("=== Figure 1: which shape does Q match? ===\n");
  std::printf("A = uniformly inflated copy (offset ~0.25 everywhere)\n");
  std::printf("B = exact copy with one spike vertex (0.8 off)\n\n");
  Table table({"measure", "d(A,Q)", "d(B,Q)", "winner", "eval_us"});
  for (const Measure& m : measures) {
    Timer t;
    const double da = m.eval(a, q);
    const double db = m.eval(b, q);
    const double us = t.Millis() * 500.0;  // Two evals -> per-eval us.
    table.AddRow({m.name, Fmt("%.4f", da), Fmt("%.4f", db),
                  da < db ? "A" : "B", Fmt("%.1f", us)});
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): Hausdorff-style measures pick A; the\n"
      "average-minimum-distance measures pick B. The partial (k-th)\n"
      "Hausdorff also recovers B but requires choosing k.\n");

  // Convergence of the continuous measure with quadrature tolerance.
  std::printf("\n=== Quadrature convergence of h_avg(A,Q) ===\n");
  Table conv({"tolerance", "h_avg(A,Q)", "eval_ms"});
  for (double tol : {1e-2, 1e-3, 1e-4, 1e-6, 1e-8}) {
    geosir::core::SimilarityOptions opts;
    opts.quadrature_tolerance = tol;
    opts.max_depth = 24;
    Timer t;
    const double v = geosir::core::AvgMinDistance(a, q, opts);
    conv.AddRow({Fmt("%.0e", tol), Fmt("%.8f", v), Fmt("%.3f", t.Millis())});
  }
  conv.Print();
  return 0;
}
