// Experiment F8 (Figure 8): average number of I/O operations per query as
// a function of the internal buffer size (1 KiB - 100 KiB, i.e. 1 - 100
// one-KiB blocks), for k = 2 best-match queries — the paper's second
// storage experiment. The paper's observation: the median method (iii)
// "stabilizes faster", i.e. its I/O flattens at smaller buffers because
// it preserves locality better.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "storage/layout.h"
#include "storage/stored_shape_base.h"
#include "util/rng.h"
#include "workload/query_set.h"

using geosir::bench::Fmt;
using geosir::bench::FmtInt;
using geosir::bench::Table;

int main() {
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = static_cast<size_t>(
      geosir::bench::EnvScale("GEOSIR_BENCH_IMAGES", 800));
  spec.num_prototypes = 40;
  spec.instance_noise = 0.01;
  spec.base_options.normalize.max_axes = 5;
  spec.seed = 4711;  // Same base as bench_storage_layouts.
  std::printf("building image base (%zu images)...\n", spec.num_images);
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) return 1;
  const auto& base = generated->images->shape_base();
  std::printf("base: %zu shapes, %zu copies\n", base.NumShapes(),
              base.NumCopies());

  auto hash = geosir::hashing::GeoHashIndex::Create(&base);
  if (!hash.ok()) return 1;
  std::vector<geosir::hashing::CurveQuadruple> quadruples;
  for (size_t i = 0; i < base.NumCopies(); ++i) {
    quadruples.push_back(hash->QuadrupleOfCopy(i));
  }

  const std::vector<geosir::storage::LayoutPolicy> policies = {
      geosir::storage::LayoutPolicy::kMeanCurve,
      geosir::storage::LayoutPolicy::kLexicographic,
      geosir::storage::LayoutPolicy::kMedianCurve,
      geosir::storage::LayoutPolicy::kLocalOptimization,
  };
  std::vector<geosir::storage::StoredShapeBase> stored;
  for (auto policy : policies) {
    const auto order =
        geosir::storage::ComputeLayout(policy, base, quadruples);
    auto sb = geosir::storage::StoredShapeBase::Create(base, quadruples,
                                                       order);
    if (!sb.ok()) return 1;
    stored.push_back(std::move(*sb));
  }

  // Compute the k = 2 traces once.
  geosir::util::Rng qrng(15);
  const auto queries = geosir::workload::MakeQuerySet(
      generated->prototypes, 15, 0.01, &qrng);
  geosir::core::EnvelopeMatcher matcher(&base);
  std::vector<geosir::core::AccessTrace> traces;
  for (const auto& qc : queries) {
    geosir::core::MatchOptions options;
    options.k = 2;
    options.measure = geosir::core::MatchMeasure::kDiscreteSymmetric;
    options.max_epsilon = 0.25;
    options.growth = 1.3;
    geosir::core::AccessTrace trace;
    auto results = matcher.Match(qc.query, options, nullptr, &trace);
    if (!results.ok()) return 1;
    traces.push_back(std::move(trace));
  }

  std::printf("\n=== Figure 8: avg #I/O per query vs buffer size, k=2 ===\n");
  Table table({"buffer_KiB", "mean-curve(i)", "lexicographic(ii)",
               "median-curve(iii)", "local-opt(4.2)"});
  for (size_t buffer_blocks : {1, 2, 5, 10, 20, 40, 60, 80, 100}) {
    std::vector<std::string> row{
        FmtInt(static_cast<long long>(buffer_blocks))};
    for (size_t p = 0; p < policies.size(); ++p) {
      double total = 0.0;
      for (const auto& trace : traces) {
        geosir::storage::BufferManager buffer(&stored[p].file(),
                                              buffer_blocks);
        auto io = stored[p].ReplayTrace(trace, &buffer);
        if (!io.ok()) return 1;
        total += static_cast<double>(*io);
      }
      row.push_back(Fmt("%.1f", total / traces.size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // "Stabilization": the buffer size at which each method is within 5% of
  // its 100-block I/O.
  std::printf("\n=== Stabilization point (within 5%% of the 100-block I/O) "
              "===\n");
  Table stab({"method", "stabilizes_at_KiB"});
  for (size_t p = 0; p < policies.size(); ++p) {
    double at100 = 0.0;
    for (const auto& trace : traces) {
      geosir::storage::BufferManager buffer(&stored[p].file(), 100);
      at100 += static_cast<double>(*stored[p].ReplayTrace(trace, &buffer));
    }
    size_t stabilized = 100;
    for (size_t blocks : {1, 2, 5, 10, 20, 40, 60, 80}) {
      double total = 0.0;
      for (const auto& trace : traces) {
        geosir::storage::BufferManager buffer(&stored[p].file(), blocks);
        total += static_cast<double>(*stored[p].ReplayTrace(trace, &buffer));
      }
      if (total <= 1.05 * at100) {
        stabilized = blocks;
        break;
      }
    }
    stab.AddRow({LayoutPolicyName(policies[p]),
                 FmtInt(static_cast<long long>(stabilized))});
  }
  stab.Print();
  std::printf(
      "\nexpected shape (paper Figure 8): I/O falls as the buffer grows and\n"
      "flattens; the median method (iii) stabilizes at smaller buffers than\n"
      "(i)/(ii) (better locality); local-opt stays lowest overall.\n");
  return 0;
}
