# Empty dependencies file for image_ingest.
# This may be replaced when dependencies are built.
