file(REMOVE_RECURSE
  "CMakeFiles/image_ingest.dir/image_ingest.cpp.o"
  "CMakeFiles/image_ingest.dir/image_ingest.cpp.o.d"
  "image_ingest"
  "image_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
