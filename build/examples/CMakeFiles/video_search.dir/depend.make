# Empty dependencies file for video_search.
# This may be replaced when dependencies are built.
