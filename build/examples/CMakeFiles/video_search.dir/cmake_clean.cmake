file(REMOVE_RECURSE
  "CMakeFiles/video_search.dir/video_search.cpp.o"
  "CMakeFiles/video_search.dir/video_search.cpp.o.d"
  "video_search"
  "video_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
