# Empty dependencies file for topological_queries.
# This may be replaced when dependencies are built.
