file(REMOVE_RECURSE
  "CMakeFiles/topological_queries.dir/topological_queries.cpp.o"
  "CMakeFiles/topological_queries.dir/topological_queries.cpp.o.d"
  "topological_queries"
  "topological_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topological_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
