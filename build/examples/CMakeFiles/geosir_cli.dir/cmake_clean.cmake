file(REMOVE_RECURSE
  "CMakeFiles/geosir_cli.dir/geosir_cli.cpp.o"
  "CMakeFiles/geosir_cli.dir/geosir_cli.cpp.o.d"
  "geosir_cli"
  "geosir_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
