# Empty compiler generated dependencies file for geosir_cli.
# This may be replaced when dependencies are built.
