file(REMOVE_RECURSE
  "CMakeFiles/sketch_search.dir/sketch_search.cpp.o"
  "CMakeFiles/sketch_search.dir/sketch_search.cpp.o.d"
  "sketch_search"
  "sketch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
