# Empty dependencies file for sketch_search.
# This may be replaced when dependencies are built.
