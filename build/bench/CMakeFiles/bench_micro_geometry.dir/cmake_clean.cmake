file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_geometry.dir/bench_micro_geometry.cpp.o"
  "CMakeFiles/bench_micro_geometry.dir/bench_micro_geometry.cpp.o.d"
  "bench_micro_geometry"
  "bench_micro_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
