file(REMOVE_RECURSE
  "CMakeFiles/bench_matcher_params.dir/bench_matcher_params.cpp.o"
  "CMakeFiles/bench_matcher_params.dir/bench_matcher_params.cpp.o.d"
  "bench_matcher_params"
  "bench_matcher_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matcher_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
