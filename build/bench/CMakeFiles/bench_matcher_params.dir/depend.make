# Empty dependencies file for bench_matcher_params.
# This may be replaced when dependencies are built.
