file(REMOVE_RECURSE
  "CMakeFiles/bench_hashing_retrieval.dir/bench_hashing_retrieval.cpp.o"
  "CMakeFiles/bench_hashing_retrieval.dir/bench_hashing_retrieval.cpp.o.d"
  "bench_hashing_retrieval"
  "bench_hashing_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hashing_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
