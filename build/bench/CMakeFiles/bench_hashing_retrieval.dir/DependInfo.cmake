
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_hashing_retrieval.cpp" "bench/CMakeFiles/bench_hashing_retrieval.dir/bench_hashing_retrieval.cpp.o" "gcc" "bench/CMakeFiles/bench_hashing_retrieval.dir/bench_hashing_retrieval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_rangesearch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
