# Empty dependencies file for bench_hashing_retrieval.
# This may be replaced when dependencies are built.
