# Empty compiler generated dependencies file for bench_storage_buffer.
# This may be replaced when dependencies are built.
