file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_buffer.dir/bench_storage_buffer.cpp.o"
  "CMakeFiles/bench_storage_buffer.dir/bench_storage_buffer.cpp.o.d"
  "bench_storage_buffer"
  "bench_storage_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
