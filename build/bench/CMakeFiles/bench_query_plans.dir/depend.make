# Empty dependencies file for bench_query_plans.
# This may be replaced when dependencies are built.
