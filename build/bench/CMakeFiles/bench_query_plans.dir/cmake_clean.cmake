file(REMOVE_RECURSE
  "CMakeFiles/bench_query_plans.dir/bench_query_plans.cpp.o"
  "CMakeFiles/bench_query_plans.dir/bench_query_plans.cpp.o.d"
  "bench_query_plans"
  "bench_query_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
