# Empty compiler generated dependencies file for bench_matching_scaling.
# This may be replaced when dependencies are built.
