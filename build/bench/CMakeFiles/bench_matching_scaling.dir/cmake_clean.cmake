file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_scaling.dir/bench_matching_scaling.cpp.o"
  "CMakeFiles/bench_matching_scaling.dir/bench_matching_scaling.cpp.o.d"
  "bench_matching_scaling"
  "bench_matching_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
