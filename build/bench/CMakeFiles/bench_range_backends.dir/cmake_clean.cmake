file(REMOVE_RECURSE
  "CMakeFiles/bench_range_backends.dir/bench_range_backends.cpp.o"
  "CMakeFiles/bench_range_backends.dir/bench_range_backends.cpp.o.d"
  "bench_range_backends"
  "bench_range_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
