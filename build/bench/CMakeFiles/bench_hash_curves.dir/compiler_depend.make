# Empty compiler generated dependencies file for bench_hash_curves.
# This may be replaced when dependencies are built.
