file(REMOVE_RECURSE
  "CMakeFiles/bench_hash_curves.dir/bench_hash_curves.cpp.o"
  "CMakeFiles/bench_hash_curves.dir/bench_hash_curves.cpp.o.d"
  "bench_hash_curves"
  "bench_hash_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
