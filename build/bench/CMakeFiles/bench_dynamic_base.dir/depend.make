# Empty dependencies file for bench_dynamic_base.
# This may be replaced when dependencies are built.
