file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_base.dir/bench_dynamic_base.cpp.o"
  "CMakeFiles/bench_dynamic_base.dir/bench_dynamic_base.cpp.o.d"
  "bench_dynamic_base"
  "bench_dynamic_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
