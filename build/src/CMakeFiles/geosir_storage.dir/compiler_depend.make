# Empty compiler generated dependencies file for geosir_storage.
# This may be replaced when dependencies are built.
