file(REMOVE_RECURSE
  "CMakeFiles/geosir_storage.dir/storage/base_io.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/base_io.cc.o.d"
  "CMakeFiles/geosir_storage.dir/storage/block_file.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/block_file.cc.o.d"
  "CMakeFiles/geosir_storage.dir/storage/external_index.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/external_index.cc.o.d"
  "CMakeFiles/geosir_storage.dir/storage/layout.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/layout.cc.o.d"
  "CMakeFiles/geosir_storage.dir/storage/shape_record.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/shape_record.cc.o.d"
  "CMakeFiles/geosir_storage.dir/storage/stored_shape_base.cc.o"
  "CMakeFiles/geosir_storage.dir/storage/stored_shape_base.cc.o.d"
  "libgeosir_storage.a"
  "libgeosir_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
