file(REMOVE_RECURSE
  "libgeosir_storage.a"
)
