file(REMOVE_RECURSE
  "CMakeFiles/geosir_hashing.dir/hashing/geo_hash_index.cc.o"
  "CMakeFiles/geosir_hashing.dir/hashing/geo_hash_index.cc.o.d"
  "CMakeFiles/geosir_hashing.dir/hashing/hash_curves.cc.o"
  "CMakeFiles/geosir_hashing.dir/hashing/hash_curves.cc.o.d"
  "CMakeFiles/geosir_hashing.dir/hashing/lune.cc.o"
  "CMakeFiles/geosir_hashing.dir/hashing/lune.cc.o.d"
  "libgeosir_hashing.a"
  "libgeosir_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
