file(REMOVE_RECURSE
  "libgeosir_hashing.a"
)
