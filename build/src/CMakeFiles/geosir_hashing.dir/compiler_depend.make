# Empty compiler generated dependencies file for geosir_hashing.
# This may be replaced when dependencies are built.
