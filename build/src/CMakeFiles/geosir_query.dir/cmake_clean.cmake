file(REMOVE_RECURSE
  "CMakeFiles/geosir_query.dir/query/ast.cc.o"
  "CMakeFiles/geosir_query.dir/query/ast.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/image_base.cc.o"
  "CMakeFiles/geosir_query.dir/query/image_base.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/operators.cc.o"
  "CMakeFiles/geosir_query.dir/query/operators.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/parser.cc.o"
  "CMakeFiles/geosir_query.dir/query/parser.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/planner.cc.o"
  "CMakeFiles/geosir_query.dir/query/planner.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/selectivity.cc.o"
  "CMakeFiles/geosir_query.dir/query/selectivity.cc.o.d"
  "CMakeFiles/geosir_query.dir/query/topology.cc.o"
  "CMakeFiles/geosir_query.dir/query/topology.cc.o.d"
  "libgeosir_query.a"
  "libgeosir_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
