# Empty compiler generated dependencies file for geosir_query.
# This may be replaced when dependencies are built.
