file(REMOVE_RECURSE
  "libgeosir_query.a"
)
