
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/geosir_query.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/ast.cc.o.d"
  "/root/repo/src/query/image_base.cc" "src/CMakeFiles/geosir_query.dir/query/image_base.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/image_base.cc.o.d"
  "/root/repo/src/query/operators.cc" "src/CMakeFiles/geosir_query.dir/query/operators.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/operators.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/geosir_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/geosir_query.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/planner.cc.o.d"
  "/root/repo/src/query/selectivity.cc" "src/CMakeFiles/geosir_query.dir/query/selectivity.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/selectivity.cc.o.d"
  "/root/repo/src/query/topology.cc" "src/CMakeFiles/geosir_query.dir/query/topology.cc.o" "gcc" "src/CMakeFiles/geosir_query.dir/query/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_rangesearch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
