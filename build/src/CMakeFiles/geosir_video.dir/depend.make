# Empty dependencies file for geosir_video.
# This may be replaced when dependencies are built.
