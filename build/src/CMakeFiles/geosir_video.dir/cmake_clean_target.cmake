file(REMOVE_RECURSE
  "libgeosir_video.a"
)
