file(REMOVE_RECURSE
  "CMakeFiles/geosir_video.dir/video/video_base.cc.o"
  "CMakeFiles/geosir_video.dir/video/video_base.cc.o.d"
  "libgeosir_video.a"
  "libgeosir_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
