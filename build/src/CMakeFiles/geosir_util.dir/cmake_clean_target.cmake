file(REMOVE_RECURSE
  "libgeosir_util.a"
)
