file(REMOVE_RECURSE
  "CMakeFiles/geosir_util.dir/util/numeric.cc.o"
  "CMakeFiles/geosir_util.dir/util/numeric.cc.o.d"
  "CMakeFiles/geosir_util.dir/util/rng.cc.o"
  "CMakeFiles/geosir_util.dir/util/rng.cc.o.d"
  "CMakeFiles/geosir_util.dir/util/status.cc.o"
  "CMakeFiles/geosir_util.dir/util/status.cc.o.d"
  "libgeosir_util.a"
  "libgeosir_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
