# Empty compiler generated dependencies file for geosir_util.
# This may be replaced when dependencies are built.
