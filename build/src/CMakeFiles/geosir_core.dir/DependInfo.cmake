
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chamfer_baseline.cc" "src/CMakeFiles/geosir_core.dir/core/chamfer_baseline.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/chamfer_baseline.cc.o.d"
  "/root/repo/src/core/dynamic_shape_base.cc" "src/CMakeFiles/geosir_core.dir/core/dynamic_shape_base.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/dynamic_shape_base.cc.o.d"
  "/root/repo/src/core/envelope_matcher.cc" "src/CMakeFiles/geosir_core.dir/core/envelope_matcher.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/envelope_matcher.cc.o.d"
  "/root/repo/src/core/feature_index_baseline.cc" "src/CMakeFiles/geosir_core.dir/core/feature_index_baseline.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/feature_index_baseline.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/geosir_core.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/shape.cc" "src/CMakeFiles/geosir_core.dir/core/shape.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/shape.cc.o.d"
  "/root/repo/src/core/shape_base.cc" "src/CMakeFiles/geosir_core.dir/core/shape_base.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/shape_base.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/geosir_core.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/geosir_core.dir/core/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_rangesearch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
