# Empty compiler generated dependencies file for geosir_core.
# This may be replaced when dependencies are built.
