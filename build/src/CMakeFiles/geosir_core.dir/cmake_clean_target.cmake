file(REMOVE_RECURSE
  "libgeosir_core.a"
)
