file(REMOVE_RECURSE
  "CMakeFiles/geosir_core.dir/core/chamfer_baseline.cc.o"
  "CMakeFiles/geosir_core.dir/core/chamfer_baseline.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/dynamic_shape_base.cc.o"
  "CMakeFiles/geosir_core.dir/core/dynamic_shape_base.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/envelope_matcher.cc.o"
  "CMakeFiles/geosir_core.dir/core/envelope_matcher.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/feature_index_baseline.cc.o"
  "CMakeFiles/geosir_core.dir/core/feature_index_baseline.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/normalize.cc.o"
  "CMakeFiles/geosir_core.dir/core/normalize.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/shape.cc.o"
  "CMakeFiles/geosir_core.dir/core/shape.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/shape_base.cc.o"
  "CMakeFiles/geosir_core.dir/core/shape_base.cc.o.d"
  "CMakeFiles/geosir_core.dir/core/similarity.cc.o"
  "CMakeFiles/geosir_core.dir/core/similarity.cc.o.d"
  "libgeosir_core.a"
  "libgeosir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
