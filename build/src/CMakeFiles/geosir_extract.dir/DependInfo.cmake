
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/boundary_trace.cc" "src/CMakeFiles/geosir_extract.dir/extract/boundary_trace.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/boundary_trace.cc.o.d"
  "/root/repo/src/extract/chain_trace.cc" "src/CMakeFiles/geosir_extract.dir/extract/chain_trace.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/chain_trace.cc.o.d"
  "/root/repo/src/extract/clusters.cc" "src/CMakeFiles/geosir_extract.dir/extract/clusters.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/clusters.cc.o.d"
  "/root/repo/src/extract/decompose.cc" "src/CMakeFiles/geosir_extract.dir/extract/decompose.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/decompose.cc.o.d"
  "/root/repo/src/extract/edge_detect.cc" "src/CMakeFiles/geosir_extract.dir/extract/edge_detect.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/edge_detect.cc.o.d"
  "/root/repo/src/extract/raster.cc" "src/CMakeFiles/geosir_extract.dir/extract/raster.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/raster.cc.o.d"
  "/root/repo/src/extract/rasterize.cc" "src/CMakeFiles/geosir_extract.dir/extract/rasterize.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/rasterize.cc.o.d"
  "/root/repo/src/extract/simplify.cc" "src/CMakeFiles/geosir_extract.dir/extract/simplify.cc.o" "gcc" "src/CMakeFiles/geosir_extract.dir/extract/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
