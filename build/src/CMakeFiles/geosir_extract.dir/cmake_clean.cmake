file(REMOVE_RECURSE
  "CMakeFiles/geosir_extract.dir/extract/boundary_trace.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/boundary_trace.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/chain_trace.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/chain_trace.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/clusters.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/clusters.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/decompose.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/decompose.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/edge_detect.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/edge_detect.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/raster.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/raster.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/rasterize.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/rasterize.cc.o.d"
  "CMakeFiles/geosir_extract.dir/extract/simplify.cc.o"
  "CMakeFiles/geosir_extract.dir/extract/simplify.cc.o.d"
  "libgeosir_extract.a"
  "libgeosir_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
