# Empty dependencies file for geosir_extract.
# This may be replaced when dependencies are built.
