file(REMOVE_RECURSE
  "libgeosir_extract.a"
)
