# Empty dependencies file for geosir_workload.
# This may be replaced when dependencies are built.
