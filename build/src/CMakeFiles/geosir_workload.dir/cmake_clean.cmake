file(REMOVE_RECURSE
  "CMakeFiles/geosir_workload.dir/workload/image_composer.cc.o"
  "CMakeFiles/geosir_workload.dir/workload/image_composer.cc.o.d"
  "CMakeFiles/geosir_workload.dir/workload/noise.cc.o"
  "CMakeFiles/geosir_workload.dir/workload/noise.cc.o.d"
  "CMakeFiles/geosir_workload.dir/workload/polygon_gen.cc.o"
  "CMakeFiles/geosir_workload.dir/workload/polygon_gen.cc.o.d"
  "CMakeFiles/geosir_workload.dir/workload/query_set.cc.o"
  "CMakeFiles/geosir_workload.dir/workload/query_set.cc.o.d"
  "CMakeFiles/geosir_workload.dir/workload/video_gen.cc.o"
  "CMakeFiles/geosir_workload.dir/workload/video_gen.cc.o.d"
  "libgeosir_workload.a"
  "libgeosir_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
