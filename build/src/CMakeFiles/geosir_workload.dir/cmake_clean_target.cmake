file(REMOVE_RECURSE
  "libgeosir_workload.a"
)
