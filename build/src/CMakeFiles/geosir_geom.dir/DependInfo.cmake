
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/convex_hull.cc" "src/CMakeFiles/geosir_geom.dir/geom/convex_hull.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/convex_hull.cc.o.d"
  "/root/repo/src/geom/diameter.cc" "src/CMakeFiles/geosir_geom.dir/geom/diameter.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/diameter.cc.o.d"
  "/root/repo/src/geom/distance.cc" "src/CMakeFiles/geosir_geom.dir/geom/distance.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/distance.cc.o.d"
  "/root/repo/src/geom/envelope.cc" "src/CMakeFiles/geosir_geom.dir/geom/envelope.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/envelope.cc.o.d"
  "/root/repo/src/geom/point.cc" "src/CMakeFiles/geosir_geom.dir/geom/point.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/point.cc.o.d"
  "/root/repo/src/geom/polyline.cc" "src/CMakeFiles/geosir_geom.dir/geom/polyline.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/polyline.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/CMakeFiles/geosir_geom.dir/geom/predicates.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/predicates.cc.o.d"
  "/root/repo/src/geom/transform.cc" "src/CMakeFiles/geosir_geom.dir/geom/transform.cc.o" "gcc" "src/CMakeFiles/geosir_geom.dir/geom/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
