# Empty compiler generated dependencies file for geosir_geom.
# This may be replaced when dependencies are built.
