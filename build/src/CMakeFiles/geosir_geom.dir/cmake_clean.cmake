file(REMOVE_RECURSE
  "CMakeFiles/geosir_geom.dir/geom/convex_hull.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/convex_hull.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/diameter.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/diameter.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/distance.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/distance.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/envelope.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/envelope.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/point.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/point.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/polyline.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/polyline.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/predicates.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/predicates.cc.o.d"
  "CMakeFiles/geosir_geom.dir/geom/transform.cc.o"
  "CMakeFiles/geosir_geom.dir/geom/transform.cc.o.d"
  "libgeosir_geom.a"
  "libgeosir_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
