file(REMOVE_RECURSE
  "libgeosir_geom.a"
)
