file(REMOVE_RECURSE
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/brute_force_index.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/brute_force_index.cc.o.d"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/convex_layers.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/convex_layers.cc.o.d"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/grid_index.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/grid_index.cc.o.d"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/kd_tree_index.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/kd_tree_index.cc.o.d"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/range_tree_index.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/range_tree_index.cc.o.d"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/tri_box.cc.o"
  "CMakeFiles/geosir_rangesearch.dir/rangesearch/tri_box.cc.o.d"
  "libgeosir_rangesearch.a"
  "libgeosir_rangesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosir_rangesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
