# Empty dependencies file for geosir_rangesearch.
# This may be replaced when dependencies are built.
