file(REMOVE_RECURSE
  "libgeosir_rangesearch.a"
)
