
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rangesearch/brute_force_index.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/brute_force_index.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/brute_force_index.cc.o.d"
  "/root/repo/src/rangesearch/convex_layers.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/convex_layers.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/convex_layers.cc.o.d"
  "/root/repo/src/rangesearch/grid_index.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/grid_index.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/grid_index.cc.o.d"
  "/root/repo/src/rangesearch/kd_tree_index.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/kd_tree_index.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/kd_tree_index.cc.o.d"
  "/root/repo/src/rangesearch/range_tree_index.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/range_tree_index.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/range_tree_index.cc.o.d"
  "/root/repo/src/rangesearch/tri_box.cc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/tri_box.cc.o" "gcc" "src/CMakeFiles/geosir_rangesearch.dir/rangesearch/tri_box.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geosir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geosir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
