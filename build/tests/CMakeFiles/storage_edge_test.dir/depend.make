# Empty dependencies file for storage_edge_test.
# This may be replaced when dependencies are built.
