file(REMOVE_RECURSE
  "CMakeFiles/storage_edge_test.dir/storage_edge_test.cc.o"
  "CMakeFiles/storage_edge_test.dir/storage_edge_test.cc.o.d"
  "storage_edge_test"
  "storage_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
