file(REMOVE_RECURSE
  "CMakeFiles/dynamic_base_test.dir/dynamic_base_test.cc.o"
  "CMakeFiles/dynamic_base_test.dir/dynamic_base_test.cc.o.d"
  "dynamic_base_test"
  "dynamic_base_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
