# Empty dependencies file for query_planner_edge_test.
# This may be replaced when dependencies are built.
