file(REMOVE_RECURSE
  "CMakeFiles/query_planner_edge_test.dir/query_planner_edge_test.cc.o"
  "CMakeFiles/query_planner_edge_test.dir/query_planner_edge_test.cc.o.d"
  "query_planner_edge_test"
  "query_planner_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_planner_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
