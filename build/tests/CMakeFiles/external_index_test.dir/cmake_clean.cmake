file(REMOVE_RECURSE
  "CMakeFiles/external_index_test.dir/external_index_test.cc.o"
  "CMakeFiles/external_index_test.dir/external_index_test.cc.o.d"
  "external_index_test"
  "external_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
