# Empty compiler generated dependencies file for rangesearch_test.
# This may be replaced when dependencies are built.
