file(REMOVE_RECURSE
  "CMakeFiles/rangesearch_test.dir/rangesearch_test.cc.o"
  "CMakeFiles/rangesearch_test.dir/rangesearch_test.cc.o.d"
  "rangesearch_test"
  "rangesearch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangesearch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
