file(REMOVE_RECURSE
  "CMakeFiles/chamfer_test.dir/chamfer_test.cc.o"
  "CMakeFiles/chamfer_test.dir/chamfer_test.cc.o.d"
  "chamfer_test"
  "chamfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chamfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
