# Empty compiler generated dependencies file for chamfer_test.
# This may be replaced when dependencies are built.
