// Tests of the approximate LSH pre-filter tier (src/lsh/) and the
// CandidateSource seam it plugs into: sketch canonicalization, index
// determinism, recall on jittered instances, source interchangeability in
// EnvelopeMatcher::MatchCandidates, the query-lifecycle contract
// (deadline / cancel / budget), the dynamic-base observer mirror, and a
// concurrent query-vs-insert exercise for TSan.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/candidate_source.h"
#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "lsh/dynamic_lsh.h"
#include "lsh/lsh_index.h"
#include "lsh/sketch.h"
#include "obs/metrics.h"
#include "query/image_base.h"
#include "query/operators.h"
#include "util/rng.h"

namespace geosir::lsh {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

Polyline Jitter(const Polyline& p, util::Rng* rng, double sigma) {
  Polyline out = p;
  for (Point& v : out.mutable_vertices()) {
    v += Point{rng->Gaussian(sigma), rng->Gaussian(sigma)};
  }
  return out;
}

/// Normalized copy of a raw query boundary (the form LshIndex consumes).
Polyline Normalized(const Polyline& q) {
  auto norm = core::NormalizeQuery(q);
  EXPECT_TRUE(norm.ok()) << norm.status().message();
  return norm->shape;
}

// --- Sketch canonicalization -------------------------------------------

TEST(SketchTest, CanonicalStartSurvivesVertexRelabeling) {
  // The same closed geometry entered at a different starting vertex and
  // in the opposite orientation must produce the identical sketch: the
  // canonical start (vertex nearest the origin) and CCW traversal erase
  // the labeling.
  const Polyline base = Normalized(RegularPolygon(9, 1.0, {0.3, -0.1}, 0.4));
  std::vector<Point> rolled(base.vertices().begin() + 3,
                            base.vertices().end());
  rolled.insert(rolled.end(), base.vertices().begin(),
                base.vertices().begin() + 3);
  std::vector<Point> reversed(rolled.rbegin(), rolled.rend());

  for (auto kind : {SketchKind::kVertexSample, SketchKind::kTurningFunction,
                    SketchKind::kEdgeSample}) {
    const auto s0 = ComputeSketch(base, kind, 16);
    const auto s1 = ComputeSketch(Polyline::Closed(rolled), kind, 16);
    ASSERT_EQ(s0.size(), s1.size()) << SketchKindName(kind);
    for (size_t i = 0; i < s0.size(); ++i) {
      EXPECT_NEAR(s0[i], s1[i], 1e-9) << SketchKindName(kind) << " i=" << i;
    }
  }
  // Orientation flip: vertex samples land on the same boundary points.
  const auto s0 = ComputeSketch(base, SketchKind::kVertexSample, 16);
  const auto s2 = ComputeSketch(Polyline::Closed(reversed),
                                SketchKind::kVertexSample, 16);
  ASSERT_EQ(s0.size(), s2.size());
  for (size_t i = 0; i < s0.size(); ++i) {
    EXPECT_NEAR(s0[i], s2[i], 1e-9) << "i=" << i;
  }
}

TEST(SketchTest, SketchSizesMatchKind) {
  const Polyline p = Normalized(RegularPolygon(7, 1.0));
  EXPECT_EQ(ComputeSketch(p, SketchKind::kVertexSample, 12).size(), 24u);
  EXPECT_EQ(ComputeSketch(p, SketchKind::kTurningFunction, 12).size(), 12u);
  EXPECT_EQ(ComputeSketch(p, SketchKind::kEdgeSample, 12).size(), 24u);
  EXPECT_EQ(FeaturesPerSample(SketchKind::kVertexSample), 2u);
  EXPECT_EQ(FeaturesPerSample(SketchKind::kTurningFunction), 1u);
  EXPECT_EQ(FeaturesPerSample(SketchKind::kEdgeSample), 2u);
}

TEST(SketchTest, EdgeSampleStaysCloseUnderJitter) {
  // The locality property holds for edge-index placement too: each
  // sample depends only on its own edge's endpoints, so perturbing
  // vertices by `sigma` moves features by O(sigma) plus the shared
  // normalization-frame noise.
  util::Rng rng(11);
  const Polyline proto = RegularPolygon(10, 1.0);
  const auto s0 =
      ComputeSketch(Normalized(proto), SketchKind::kEdgeSample, 16);
  const auto s1 = ComputeSketch(Normalized(Jitter(proto, &rng, 0.01)),
                                SketchKind::kEdgeSample, 16);
  ASSERT_EQ(s0.size(), s1.size());
  for (size_t i = 0; i < s0.size(); ++i) {
    EXPECT_LT(std::fabs(s0[i] - s1[i]), 0.08) << "i=" << i;
  }
}

TEST(SketchTest, JitteredInstanceStaysClose) {
  // The locality property the banding math depends on: a small vertex
  // perturbation moves every sketch feature by O(noise), not O(1).
  util::Rng rng(5);
  const Polyline proto = RegularPolygon(10, 1.0);
  const auto s0 = ComputeSketch(Normalized(proto),
                                SketchKind::kVertexSample, 16);
  const auto s1 = ComputeSketch(Normalized(Jitter(proto, &rng, 0.01)),
                                SketchKind::kVertexSample, 16);
  ASSERT_EQ(s0.size(), s1.size());
  for (size_t i = 0; i < s0.size(); ++i) {
    EXPECT_LT(std::fabs(s0[i] - s1[i]), 0.08) << "i=" << i;
  }
}

TEST(SketchTest, OpenPolylineSketches) {
  std::vector<Point> v = {{0, 0}, {1, 0.2}, {2, 0}, {3, 0.4}};
  const Polyline open = Polyline::Open(std::move(v));
  const auto norm = core::NormalizeQuery(open);
  ASSERT_TRUE(norm.ok());
  const auto s = ComputeSketch(norm->shape, SketchKind::kVertexSample, 8);
  EXPECT_EQ(s.size(), 16u);
  for (double f : s) EXPECT_TRUE(std::isfinite(f));
}

// --- Options validation ------------------------------------------------

TEST(LshIndexTest, RejectsNonsenseOptions) {
  LshOptions bad;
  bad.tables = 0;
  EXPECT_FALSE(LshIndex::Create(bad).ok());
  bad = LshOptions{};
  bad.bands = -1;
  EXPECT_FALSE(LshIndex::Create(bad).ok());
  bad = LshOptions{};
  bad.rows = 0;
  EXPECT_FALSE(LshIndex::Create(bad).ok());
  bad = LshOptions{};
  bad.quantum = 0.0;
  EXPECT_FALSE(LshIndex::Create(bad).ok());
  bad = LshOptions{};
  bad.quantum = std::nan("");
  EXPECT_FALSE(LshIndex::Create(bad).ok());
  EXPECT_TRUE(LshIndex::Create(LshOptions{}).ok());
}

TEST(LshIndexTest, RemoveRequiresTrackedKeys) {
  auto index = LshIndex::Create(LshOptions{});
  ASSERT_TRUE(index.ok());
  (*index)->Insert(7, Normalized(RegularPolygon(6, 1.0)));
  const util::Status st = (*index)->Remove(7);
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
}

// --- Determinism -------------------------------------------------------

TEST(LshIndexTest, SeedDeterministicQueries) {
  // Two indexes built with identical options and insertion sequences
  // return bit-identical candidate rankings; repeated queries on one
  // index are idempotent.
  LshOptions options;
  options.seed = 42;
  auto a = LshIndex::Create(options);
  auto b = LshIndex::Create(options);
  ASSERT_TRUE(a.ok() && b.ok());
  util::Rng rng(9);
  for (uint64_t id = 0; id < 40; ++id) {
    const Polyline p =
        Normalized(Jitter(RegularPolygon(5 + int(id % 6), 1.0), &rng, 0.01));
    (*a)->Insert(id, p);
    (*b)->Insert(id, p);
  }
  const Polyline q = Normalized(RegularPolygon(7, 1.0));
  std::vector<uint64_t> ra, rb, ra2;
  ASSERT_TRUE((*a)->Query(q, 0, {}, &ra, nullptr).ok());
  ASSERT_TRUE((*b)->Query(q, 0, {}, &rb, nullptr).ok());
  ASSERT_TRUE((*a)->Query(q, 0, {}, &ra2, nullptr).ok());
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra, ra2);
}

TEST(LshIndexTest, TruncationKeepsRankedPrefix) {
  auto index = LshIndex::Create(LshOptions{});
  ASSERT_TRUE(index.ok());
  util::Rng rng(3);
  const Polyline proto = RegularPolygon(8, 1.0);
  for (uint64_t id = 0; id < 30; ++id) {
    (*index)->Insert(id, Normalized(Jitter(proto, &rng, 0.008)));
  }
  std::vector<uint64_t> all, top;
  LshIndex::QueryStats stats_all, stats_top;
  const Polyline q = Normalized(Jitter(proto, &rng, 0.008));
  ASSERT_TRUE((*index)->Query(q, 0, {}, &all, &stats_all).ok());
  ASSERT_TRUE((*index)->Query(q, 5, {}, &top, &stats_top).ok());
  ASSERT_GT(all.size(), 5u);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_TRUE(stats_top.truncated);
  EXPECT_FALSE(stats_all.truncated);
  EXPECT_TRUE(std::equal(top.begin(), top.end(), all.begin()));
}

// --- Recall on jittered instances -------------------------------------

/// Irregular star polygon with a dominant axis: the 1 + 0.35 cos(a) term
/// keeps the alpha-diameter stable under jitter (so query and instance
/// normalize about the same axis), the per-vertex wiggles make each
/// prototype geometrically unique — unlike regular n-gons, whose
/// rotational symmetry makes phase-shifted prototypes normalize
/// identically.
Polyline StarPolygon(int n, util::Rng* rng) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    const double r = 1.0 + 0.35 * std::cos(a) + rng->Uniform(-0.08, 0.08);
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(LshIndexTest, RecallOnJitteredInstances) {
  // 20 distinct prototypes x 10 jittered instances, indexed the way the
  // retrieval pipeline does it (every normalized copy of a finalized
  // base). Querying with a fresh jitter of one prototype must surface
  // (nearly all of) that prototype's instances in the top candidates.
  constexpr int kProtos = 20;
  constexpr int kInstances = 10;
  util::Rng rng(17);
  std::vector<Polyline> protos;
  for (int p = 0; p < kProtos; ++p) {
    protos.push_back(StarPolygon(8 + p % 6, &rng));
  }
  core::ShapeBase base;
  for (int p = 0; p < kProtos; ++p) {
    for (int i = 0; i < kInstances; ++i) {
      ASSERT_TRUE(base.AddShape(Jitter(protos[p], &rng, 0.008)).ok());
    }
  }
  ASSERT_TRUE(base.Finalize().ok());
  auto index = LshIndex::BuildFromBase(base, LshOptions{});
  ASSERT_TRUE(index.ok());

  size_t hits = 0, want = 0;
  for (int p = 0; p < kProtos; ++p) {
    std::vector<uint64_t> out;
    ASSERT_TRUE((*index)
                    ->Query(Normalized(Jitter(protos[p], &rng, 0.008)), 0, {},
                            &out, nullptr)
                    .ok());
    // Candidates are copy indices in preference order; fold to the first
    // kInstances distinct shapes and count the prototype's own.
    std::vector<bool> seen(base.NumShapes(), false);
    size_t distinct = 0;
    want += kInstances;
    for (uint64_t copy_idx : out) {
      const core::ShapeId shape = base.copy(uint32_t(copy_idx)).shape_id;
      if (seen[shape]) continue;
      seen[shape] = true;
      if (int(shape) / kInstances == p) ++hits;
      if (++distinct == kInstances) break;
    }
  }
  // Banding math predicts ~0.99+ per instance at these settings; leave
  // slack for unlucky prototypes.
  EXPECT_GT(double(hits) / double(want), 0.9) << hits << "/" << want;
}

TEST(LshIndexTest, GridModeStillRetrieves) {
  // The per-coordinate grid scheme (project = false) stays supported as
  // the documented baseline: on a small base it must still surface a
  // jittered instance of an indexed prototype, deterministically.
  LshOptions options;
  options.project = false;
  options.quantum = 0.04;  // Grid cells sized for ~1% jitter.
  auto a = LshIndex::Create(options);
  auto b = LshIndex::Create(options);
  ASSERT_TRUE(a.ok() && b.ok());
  util::Rng rng(23);
  std::vector<Polyline> protos;
  for (int p = 0; p < 6; ++p) protos.push_back(StarPolygon(8 + p, &rng));
  for (uint64_t id = 0; id < 6; ++id) {
    const Polyline inst = Normalized(Jitter(protos[id], &rng, 0.006));
    (*a)->Insert(id, inst);
    (*b)->Insert(id, inst);
  }
  const Polyline q = Normalized(Jitter(protos[2], &rng, 0.006));
  std::vector<uint64_t> ra, rb;
  ASSERT_TRUE((*a)->Query(q, 0, {}, &ra, nullptr).ok());
  ASSERT_TRUE((*b)->Query(q, 0, {}, &rb, nullptr).ok());
  EXPECT_EQ(ra, rb);
  ASSERT_FALSE(ra.empty());
  EXPECT_EQ(ra.front(), 2u);
}

TEST(LshIndexTest, SparseIdsMatchDenseCounting) {
  // Query counts collisions in a flat array when ids are small and falls
  // back to a hash map for sparse id spaces; the two paths must produce
  // the identical ranking. Build twin indexes whose ids differ only by a
  // huge offset (forcing the map path) and compare.
  constexpr uint64_t kOffset = uint64_t{1} << 40;
  LshOptions options;
  options.seed = 7;
  auto dense = LshIndex::Create(options);
  auto sparse = LshIndex::Create(options);
  ASSERT_TRUE(dense.ok() && sparse.ok());
  util::Rng rng(29);
  const Polyline proto = RegularPolygon(9, 1.0);
  for (uint64_t id = 0; id < 30; ++id) {
    const Polyline inst = Normalized(Jitter(proto, &rng, 0.008));
    (*dense)->Insert(id, inst);
    (*sparse)->Insert(kOffset + id, inst);
  }
  const Polyline q = Normalized(Jitter(proto, &rng, 0.008));
  std::vector<uint64_t> rd, rs;
  LshIndex::QueryStats sd, ss;
  ASSERT_TRUE((*dense)->Query(q, 0, {}, &rd, &sd).ok());
  ASSERT_TRUE((*sparse)->Query(q, 0, {}, &rs, &ss).ok());
  ASSERT_EQ(rd.size(), rs.size());
  ASSERT_FALSE(rd.empty());
  for (size_t i = 0; i < rd.size(); ++i) {
    EXPECT_EQ(rd[i] + kOffset, rs[i]) << "i=" << i;
  }
  EXPECT_EQ(sd.candidates, ss.candidates);
  EXPECT_EQ(sd.buckets_probed, ss.buckets_probed);
}

TEST(LshIndexTest, EdgeSampleKindRetrieves) {
  // The alternative feature family plugs into the same tables: a
  // kEdgeSample index must surface jittered instances just like the
  // default kind does on a small base.
  LshOptions options;
  options.kind = SketchKind::kEdgeSample;
  auto index = LshIndex::Create(options);
  ASSERT_TRUE(index.ok());
  util::Rng rng(31);
  std::vector<Polyline> protos;
  for (int p = 0; p < 6; ++p) protos.push_back(StarPolygon(9 + p, &rng));
  for (uint64_t id = 0; id < 6; ++id) {
    (*index)->Insert(id, Normalized(Jitter(protos[id], &rng, 0.006)));
  }
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      (*index)
          ->Query(Normalized(Jitter(protos[4], &rng, 0.006)), 0, {}, &out,
                  nullptr)
          .ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), 4u);
}

// --- CandidateSource contract ------------------------------------------

class CandidateSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(23);
    for (int p = 0; p < 8; ++p) {
      const Polyline proto = RegularPolygon(4 + p, 1.0);
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(base_.AddShape(Jitter(proto, &rng, 0.008)).ok());
      }
    }
    ASSERT_TRUE(base_.Finalize().ok());
  }
  core::ShapeBase base_;
};

TEST_F(CandidateSourceTest, ExactEnumerationEmitsEveryCopy) {
  core::ExactEnumerationSource source(&base_);
  std::vector<uint32_t> out;
  core::CandidateSourceStats stats;
  ASSERT_TRUE(source
                  .Generate(Normalized(RegularPolygon(6, 1.0)), 0, {}, &out,
                            &stats)
                  .ok());
  EXPECT_EQ(out.size(), base_.NumCopies());
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.candidates_emitted, base_.NumCopies());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST_F(CandidateSourceTest, ExactEnumerationTruncates) {
  core::ExactEnumerationSource source(&base_);
  std::vector<uint32_t> out;
  core::CandidateSourceStats stats;
  ASSERT_TRUE(source
                  .Generate(Normalized(RegularPolygon(6, 1.0)), 7, {}, &out,
                            &stats)
                  .ok());
  EXPECT_EQ(out.size(), 7u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_FALSE(stats.exhaustive);
}

TEST_F(CandidateSourceTest, SourcesAreInterchangeableInMatchCandidates) {
  // MatchCandidates over the exhaustive source must equal plain Match
  // under the discrete measure (same scoring, same candidate pool) —
  // the interchangeability half of the CandidateSource contract.
  core::EnvelopeMatcher matcher(&base_);
  core::MatchOptions options;
  options.k = 5;
  options.measure = core::MatchMeasure::kDiscreteSymmetric;
  const Polyline q = RegularPolygon(7, 1.0);

  auto exact = matcher.Match(q, options);
  ASSERT_TRUE(exact.ok());

  core::ExactEnumerationSource source(&base_);
  core::MatchStats stats;
  auto tiered = matcher.MatchCandidates(q, &source, options, &stats);
  ASSERT_TRUE(tiered.ok());

  ASSERT_EQ(exact->size(), tiered->size());
  for (size_t i = 0; i < exact->size(); ++i) {
    EXPECT_EQ((*exact)[i].shape_id, (*tiered)[i].shape_id) << "rank " << i;
    EXPECT_NEAR((*exact)[i].distance, (*tiered)[i].distance, 1e-12);
  }
  EXPECT_FALSE(stats.partial);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.candidates_evaluated, base_.NumCopies());
}

TEST_F(CandidateSourceTest, LshSourceFindsTheNearDuplicate) {
  auto source = LshCandidateSource::Build(&base_, LshOptions{});
  ASSERT_TRUE(source.ok());
  core::EnvelopeMatcher matcher(&base_);
  core::MatchOptions options;
  options.k = 3;
  options.measure = core::MatchMeasure::kDiscreteSymmetric;
  util::Rng rng(31);
  const Polyline q = Jitter(RegularPolygon(7, 1.0), &rng, 0.008);

  core::MatchStats stats;
  auto results = matcher.MatchCandidates(q, source->get(), options, &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // The best hit is one of the 7-gon instances (shape ids 15..19).
  EXPECT_EQ(base_.shape((*results)[0].shape_id).boundary.size(), 7u);
  // The pre-filter pruned: fewer candidates scored than the base holds.
  EXPECT_LT(stats.candidates_evaluated, base_.NumCopies());
  EXPECT_GT(stats.candidates_evaluated, 0u);
}

TEST_F(CandidateSourceTest, BudgetTruncationIsDeterministicPartial) {
  core::EnvelopeMatcher matcher(&base_);
  core::MatchOptions options;
  options.k = 3;
  options.measure = core::MatchMeasure::kDiscreteSymmetric;
  options.budget.max_candidates = 6;
  core::ExactEnumerationSource source(&base_);

  core::MatchStats s1, s2;
  auto r1 = matcher.MatchCandidates(RegularPolygon(6, 1.0), &source, options,
                                    &s1);
  auto r2 = matcher.MatchCandidates(RegularPolygon(6, 1.0), &source, options,
                                    &s2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(s1.partial);
  EXPECT_EQ(s1.termination.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(s1.candidates_evaluated, 6u);
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].shape_id, (*r2)[i].shape_id);
    EXPECT_DOUBLE_EQ((*r1)[i].distance, (*r2)[i].distance);
  }
}

TEST_F(CandidateSourceTest, ExpiredDeadlineAtEntryIsAnError) {
  core::EnvelopeMatcher matcher(&base_);
  core::MatchOptions options;
  options.deadline = util::Deadline::AfterMicros(0);
  core::ExactEnumerationSource source(&base_);
  core::MatchStats stats;
  auto result =
      matcher.MatchCandidates(RegularPolygon(6, 1.0), &source, options,
                              &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
}

TEST_F(CandidateSourceTest, CancelledTokenStopsMatchCandidates) {
  core::EnvelopeMatcher matcher(&base_);
  core::MatchOptions options;
  util::CancellationToken token;
  token.Cancel("operator stop");
  options.cancel_token = &token;
  core::ExactEnumerationSource source(&base_);
  auto result =
      matcher.MatchCandidates(RegularPolygon(6, 1.0), &source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
}

TEST_F(CandidateSourceTest, LshQueryHonorsCancellation) {
  auto index = LshIndex::BuildFromBase(base_, LshOptions{});
  ASSERT_TRUE(index.ok());
  util::CancellationToken token;
  token.Cancel();
  util::QueryControl control;
  control.cancel = &token;
  std::vector<uint64_t> out;
  const util::Status st =
      (*index)->Query(Normalized(RegularPolygon(6, 1.0)), 0, control, &out,
                      nullptr);
  EXPECT_EQ(st.code(), util::StatusCode::kCancelled);
}

// --- Query-operator integration ----------------------------------------

TEST(QueryPrefilterTest, ExactPrefilterKeepsOperatorResults) {
  util::Rng rng(41);
  query::ImageBase images;
  for (int img = 0; img < 6; ++img) {
    std::vector<Polyline> boundaries;
    boundaries.push_back(
        Jitter(RegularPolygon(5, 1.0, {0, 0}), &rng, 0.005));
    boundaries.push_back(
        Jitter(RegularPolygon(8, 0.8, {4, 0}), &rng, 0.005));
    ASSERT_TRUE(images.AddImage(boundaries).ok());
  }
  ASSERT_TRUE(images.Finalize().ok());

  const Polyline q = RegularPolygon(5, 1.0);

  query::QueryContext plain(&images);
  auto want = plain.EvalSimilar(q);
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->empty());

  // Exhaustive source through the tiered path: identical image set.
  core::ExactEnumerationSource exact(&images.shape_base());
  query::QueryContextOptions exact_opts;
  exact_opts.prefilter = &exact;
  query::QueryContext tiered(&images, exact_opts);
  auto got = tiered.EvalSimilar(q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
  EXPECT_GT(tiered.stats().prefilter_candidates, 0u);

  // LSH source: a subset of the exact answer (approximate recall), and
  // here the near-duplicates collide reliably, so the full set.
  auto lsh = LshCandidateSource::Build(&images.shape_base(), LshOptions{});
  ASSERT_TRUE(lsh.ok());
  query::QueryContextOptions lsh_opts;
  lsh_opts.prefilter = lsh->get();
  query::QueryContext approx(&images, lsh_opts);
  auto approx_got = approx.EvalSimilar(q);
  ASSERT_TRUE(approx_got.ok());
  for (core::ImageId id : *approx_got) {
    EXPECT_TRUE(std::binary_search(want->begin(), want->end(), id));
  }
  EXPECT_EQ(*approx_got, *want);
}

// --- Dynamic tier ------------------------------------------------------

TEST(DynamicLshTest, ObserverMirrorsInsertsAndRemoves) {
  auto lsh = DynamicLshIndex::Create(LshOptions{});
  ASSERT_TRUE(lsh.ok());
  core::DynamicShapeBase base;
  base.SetObserver(lsh->get());

  util::Rng rng(51);
  const Polyline proto = RegularPolygon(7, 1.0);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    auto id = base.Insert(Jitter(proto, &rng, 0.008));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Distractors.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(base.Insert(Jitter(RegularPolygon(4, 1.0), &rng, 0.008)).ok());
  }
  EXPECT_GT((*lsh)->index().NumSketches(), 0u);

  const Polyline q = Normalized(Jitter(proto, &rng, 0.008));
  std::vector<uint64_t> out;
  ASSERT_TRUE((*lsh)->Query(q, 0, {}, &out, nullptr).ok());
  size_t proto_hits = 0;
  for (uint64_t id : out) {
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) ++proto_hits;
  }
  EXPECT_GE(proto_hits, 10u) << "recall over live instances";

  // Remove half; the candidates must drop them immediately.
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(base.Remove(ids[i]).ok());
  }
  out.clear();
  ASSERT_TRUE((*lsh)->Query(q, 0, {}, &out, nullptr).ok());
  for (uint64_t id : out) {
    EXPECT_TRUE(base.IsLive(id)) << "stale candidate " << id;
  }
}

TEST(DynamicLshTest, CandidatesFeedMatchIds) {
  auto lsh = DynamicLshIndex::Create(LshOptions{});
  ASSERT_TRUE(lsh.ok());
  core::DynamicShapeBase base;
  base.match_options().measure = core::MatchMeasure::kDiscreteSymmetric;
  base.SetObserver(lsh->get());

  util::Rng rng(61);
  for (int p = 0; p < 6; ++p) {
    const Polyline proto = RegularPolygon(4 + p, 1.0);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(base.Insert(Jitter(proto, &rng, 0.008)).ok());
    }
  }

  const Polyline raw_q = Jitter(RegularPolygon(7, 1.0), &rng, 0.008);
  std::vector<uint64_t> candidates;
  ASSERT_TRUE(
      (*lsh)->Query(Normalized(raw_q), 0, {}, &candidates, nullptr).ok());
  ASSERT_FALSE(candidates.empty());

  // Exact verification over the approximate candidates equals the full
  // dynamic Match when the pre-filter recalled the true best.
  auto verified = base.MatchIds(candidates, raw_q, 3);
  ASSERT_TRUE(verified.ok());
  auto full = base.Match(raw_q, 3);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(verified->empty());
  EXPECT_EQ((*verified)[0].first, (*full)[0].first);
  EXPECT_NEAR((*verified)[0].second, (*full)[0].second, 1e-12);
}

TEST(DynamicLshTest, SurvivesCompactionViaStableIds) {
  auto lsh = DynamicLshIndex::Create(LshOptions{});
  ASSERT_TRUE(lsh.ok());
  core::DynamicShapeBase::Options options;
  options.min_compaction_size = 4;
  options.max_delta_fraction = 0.01;  // Compact aggressively.
  core::DynamicShapeBase base(options);
  base.SetObserver(lsh->get());

  util::Rng rng(71);
  const Polyline proto = RegularPolygon(6, 1.0);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = base.Insert(Jitter(proto, &rng, 0.008));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(base.Compact().ok());
  ASSERT_GT(base.NumCompactions(), 0u);

  // Stable ids survived compaction, so candidates stay valid and
  // MatchIds still scores them (now via the main base's reverse map).
  std::vector<uint64_t> out;
  ASSERT_TRUE((*lsh)
                  ->Query(Normalized(Jitter(proto, &rng, 0.008)), 0, {}, &out,
                          nullptr)
                  .ok());
  ASSERT_FALSE(out.empty());
  auto verified = base.MatchIds(out, Jitter(proto, &rng, 0.008), 3);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(verified->empty());
}

TEST(DynamicLshTest, RebuildFromRepopulatesTables) {
  core::DynamicShapeBase base;
  util::Rng rng(81);
  const Polyline proto = RegularPolygon(8, 1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(base.Insert(Jitter(proto, &rng, 0.008)).ok());
  }
  // Attached late: tables are empty until RebuildFrom seeds them.
  auto lsh = DynamicLshIndex::Create(LshOptions{});
  ASSERT_TRUE(lsh.ok());
  EXPECT_EQ((*lsh)->index().NumSketches(), 0u);
  ASSERT_TRUE((*lsh)->RebuildFrom(base).ok());
  EXPECT_GT((*lsh)->index().NumSketches(), 0u);
  std::vector<uint64_t> out;
  ASSERT_TRUE((*lsh)
                  ->Query(Normalized(Jitter(proto, &rng, 0.008)), 0, {}, &out,
                          nullptr)
                  .ok());
  EXPECT_GE(out.size(), 8u);
}

// --- Concurrency (the TSan target) -------------------------------------

TEST(DynamicLshTest, ConcurrentQueriesDuringInserts) {
  auto lsh = DynamicLshIndex::Create(LshOptions{});
  ASSERT_TRUE(lsh.ok());
  core::DynamicShapeBase base;
  base.SetObserver(lsh->get());

  util::Rng seed_rng(91);
  const Polyline proto = RegularPolygon(7, 1.0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(base.Insert(Jitter(proto, &seed_rng, 0.008)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> queries{0};
  const Polyline q = Normalized(RegularPolygon(7, 1.0));
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::vector<uint64_t> out;
      LshIndex::QueryStats stats;
      while (!stop.load(std::memory_order_acquire)) {
        EXPECT_TRUE((*lsh)->Query(q, 16, {}, &out, &stats).ok());
        queries.fetch_add(1, std::memory_order_relaxed);
        // Let the writer through: glibc's rwlock prefers readers, and a
        // tight shared-lock loop would starve the insert thread.
        std::this_thread::yield();
      }
    });
  }
  // The single mutating thread (the base's contract) interleaves inserts
  // and removes while the readers probe.
  util::Rng rng(92);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    auto id = base.Insert(Jitter(proto, &rng, 0.01));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    if (i % 3 == 0 && ids.size() > 4) {
      ASSERT_TRUE(base.Remove(ids[ids.size() - 3]).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ((*lsh)->index().NumSketches() > 0, true);
}

// --- Observability -----------------------------------------------------

TEST(LshMetricsTest, QueryAndMutationCountersAdvance)  {
  auto& registry = obs::MetricRegistry::Default();
  const auto value_of = [&registry](const std::string& name) {
    uint64_t total = 0;
    for (const auto& s : registry.Snapshot().samples) {
      if (s.name == name) total += s.counter_value;
    }
    return total;
  };
  const uint64_t queries_before = value_of("geosir_lsh_queries_total");
  const uint64_t inserts_before = value_of("geosir_lsh_inserts_total");

  auto index = LshIndex::Create(LshOptions{});
  ASSERT_TRUE(index.ok());
  (*index)->Insert(1, Normalized(RegularPolygon(6, 1.0)));
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      (*index)->Query(Normalized(RegularPolygon(6, 1.0)), 0, {}, &out, nullptr)
          .ok());

  EXPECT_GT(value_of("geosir_lsh_queries_total"), queries_before);
  EXPECT_GT(value_of("geosir_lsh_inserts_total"), inserts_before);
}

}  // namespace
}  // namespace geosir::lsh
