#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "storage/appendable_file.h"
#include "storage/base_io.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir::core {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(DynamicShapeBaseTest, InsertQueryWithoutCompaction) {
  DynamicShapeBase base;
  for (int n = 3; n <= 10; ++n) {
    auto id = base.Insert(RegularPolygon(n, 1.0));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint64_t>(n - 3));
  }
  EXPECT_EQ(base.NumLive(), 8u);
  EXPECT_EQ(base.NumCompactions(), 0u);  // Below min_compaction_size.
  auto results = base.Match(RegularPolygon(7, 2.5), 1);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].first, 4u);  // The heptagon.
  EXPECT_NEAR((*results)[0].second, 0.0, 1e-6);
}

TEST(DynamicShapeBaseTest, RemoveHidesShape) {
  DynamicShapeBase base;
  auto tri = base.Insert(RegularPolygon(3, 1.0));
  auto sq = base.Insert(RegularPolygon(4, 1.0));
  ASSERT_TRUE(tri.ok());
  ASSERT_TRUE(sq.ok());
  ASSERT_TRUE(base.Remove(*tri).ok());
  EXPECT_EQ(base.NumLive(), 1u);
  auto results = base.Match(RegularPolygon(3, 1.0), 2);
  ASSERT_TRUE(results.ok());
  for (const auto& [id, distance] : *results) {
    EXPECT_NE(id, *tri);
  }
  // Double delete and unknown ids fail.
  EXPECT_FALSE(base.Remove(*tri).ok());
  EXPECT_FALSE(base.Remove(999).ok());
}

TEST(DynamicShapeBaseTest, CompactionPreservesStableIds) {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;
  options.max_delta_fraction = 0.1;
  DynamicShapeBase base(options);
  util::Rng rng(1);
  workload::PolygonGenOptions gen;
  std::vector<uint64_t> ids;
  std::vector<Polyline> shapes;
  for (int i = 0; i < 120; ++i) {
    shapes.push_back(RandomStarPolygon(&rng, gen));
    auto id = base.Insert(shapes.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_GT(base.NumCompactions(), 0u);
  // Every inserted shape is still retrievable under its original id.
  for (int probe : {0, 17, 63, 119}) {
    auto results = base.Match(shapes[probe], 1);
    ASSERT_TRUE(results.ok());
    ASSERT_FALSE(results->empty());
    EXPECT_EQ((*results)[0].first, ids[probe]) << probe;
    EXPECT_NEAR((*results)[0].second, 0.0, 1e-6);
  }
}

TEST(DynamicShapeBaseTest, TombstoneCompactionReclaims) {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;
  DynamicShapeBase base(options);
  util::Rng rng(2);
  workload::PolygonGenOptions gen;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    auto id = base.Insert(RandomStarPolygon(&rng, gen));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const size_t before = base.NumCompactions();
  // Delete half: tombstones exceed the threshold and trigger a rebuild.
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(base.Remove(ids[i]).ok());
  }
  EXPECT_GT(base.NumCompactions(), before);
  // Tombstones were reclaimed at the compaction; only the deletes after
  // the last rebuild remain, below the trigger threshold.
  EXPECT_LT(base.NumTombstones(), 50u * options.max_tombstone_fraction);
  EXPECT_EQ(base.NumLive(), 50u);
}

TEST(DynamicShapeBaseTest, MixedWorkloadMatchesSnapshotSemantics) {
  // Interleave inserts/deletes/queries; after the dust settles, the
  // dynamic base must return exactly what a freshly-built static base
  // over the live set returns.
  DynamicShapeBase::Options options;
  options.min_compaction_size = 16;
  options.match.measure = MatchMeasure::kDiscreteSymmetric;
  DynamicShapeBase dynamic(options);
  util::Rng rng(3);
  workload::PolygonGenOptions gen;
  std::vector<std::pair<uint64_t, Polyline>> live;
  for (int round = 0; round < 150; ++round) {
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(dynamic.Remove(live[victim].first).ok());
      live.erase(live.begin() + victim);
    } else {
      Polyline shape = RandomStarPolygon(&rng, gen);
      auto id = dynamic.Insert(shape);
      ASSERT_TRUE(id.ok());
      live.emplace_back(*id, std::move(shape));
    }
  }
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(dynamic.NumLive(), live.size());

  ShapeBase snapshot;
  for (const auto& [id, shape] : live) {
    ASSERT_TRUE(snapshot.AddShape(shape).ok());
  }
  ASSERT_TRUE(snapshot.Finalize().ok());
  EnvelopeMatcher matcher(&snapshot);
  util::Rng qrng(4);
  for (int q = 0; q < 5; ++q) {
    const Polyline query = workload::JitterVertices(
        live[q % live.size()].second, 0.01, &qrng);
    auto dyn = dynamic.Match(query, 1);
    MatchOptions static_options;
    static_options.measure = MatchMeasure::kDiscreteSymmetric;
    auto stat = matcher.Match(query, static_options);
    ASSERT_TRUE(dyn.ok());
    ASSERT_TRUE(stat.ok());
    ASSERT_FALSE(dyn->empty());
    ASSERT_FALSE(stat->empty());
    // Same shape geometry wins (compare by distance; ids differ).
    EXPECT_NEAR((*dyn)[0].second, (*stat)[0].distance, 1e-9) << q;
  }
}

TEST(BaseIoTest, SaveLoadRoundTrip) {
  ShapeBase original;
  ASSERT_TRUE(original
                  .AddShape(RegularPolygon(5, 1.0), 7, "penta")
                  .ok());
  ASSERT_TRUE(original
                  .AddShape(Polyline::Open({{0, 0}, {1, 0.3}, {2, 0}}),
                            kNoImage, "arc")
                  .ok());
  const std::string path = "/tmp/geosir_base_io_test.gsir";
  ASSERT_TRUE(storage::SaveShapeBase(original, path).ok());

  auto loaded = storage::LoadShapeBase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->finalized());
  ASSERT_EQ((*loaded)->NumShapes(), 2u);
  EXPECT_EQ((*loaded)->shape(0).label, "penta");
  EXPECT_EQ((*loaded)->shape(0).image, 7u);
  EXPECT_EQ((*loaded)->shape(1).label, "arc");
  EXPECT_FALSE((*loaded)->shape(1).boundary.closed());
  EXPECT_EQ((*loaded)->NumCopies(), original.NumCopies());
  for (size_t v = 0; v < original.shape(0).boundary.size(); ++v) {
    EXPECT_EQ((*loaded)->shape(0).boundary.vertex(v),
              original.shape(0).boundary.vertex(v));
  }
}

TEST(BaseIoTest, ErrorsSurfaced) {
  EXPECT_FALSE(storage::LoadShapeBase("/tmp/does_not_exist.gsir").ok());
  // Corrupt magic.
  const std::string path = "/tmp/geosir_bad_magic.gsir";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE", f);
  std::fclose(f);
  auto result = storage::LoadShapeBase(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST(DurablePropertyTest, RandomizedWorkloadSurvivesRecovery) {
  // Property test: a randomized insert/remove/compact stream mirrored
  // into a std::map reference model. The durable base runs over a MemEnv
  // "disk" and is periodically torn down and recovered from it; after
  // every recovery, and again at the end, the recovered live set with all
  // labels, images and exact geometry must equal the reference — under
  // kEveryRecord, clean recovery loses nothing that was acknowledged.
  storage::MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = storage::WalSyncPolicy::kEveryRecord;
  DynamicShapeBase::Options options;
  options.min_compaction_size = 16;
  options.max_delta_fraction = 0.3;

  struct Ref {
    Polyline boundary;
    ImageId image;
    std::string label;
  };
  std::map<uint64_t, Ref> reference;

  auto reopen = [&](storage::DurableDynamicBase* durable) {
    // Destroy the old handles first: one journal per directory.
    durable->base.reset();
    durable->journal.reset();
    auto opened = storage::OpenDurableDynamicBase("db", options, durability);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    *durable = std::move(*opened);
  };
  auto verify = [&](const storage::DurableDynamicBase& durable) {
    const std::vector<uint64_t> live = durable.base->LiveIds();
    ASSERT_EQ(live.size(), reference.size());
    for (uint64_t id : live) {
      const auto it = reference.find(id);
      ASSERT_NE(it, reference.end()) << "phantom id " << id;
      EXPECT_EQ(durable.base->label(id), it->second.label);
      EXPECT_EQ(durable.base->image(id), it->second.image);
      const Polyline& got = durable.base->boundary(id);
      const Polyline& want = it->second.boundary;
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(got.closed(), want.closed());
      for (size_t v = 0; v < want.size(); ++v) {
        EXPECT_EQ(got.vertex(v).x, want.vertex(v).x);
        EXPECT_EQ(got.vertex(v).y, want.vertex(v).y);
      }
    }
  };

  storage::DurableDynamicBase durable;
  {
    auto opened = storage::OpenDurableDynamicBase("db", options, durability);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    durable = std::move(*opened);
  }

  util::Rng rng(20260814);
  workload::PolygonGenOptions gen;
  for (int op = 0; op < 300; ++op) {
    const double dice = rng.Uniform(0, 1);
    if (dice < 0.62 || reference.empty()) {
      const Polyline poly = workload::RandomStarPolygon(&rng, gen);
      const ImageId image = static_cast<ImageId>(op);
      char label_buf[24];
      std::snprintf(label_buf, sizeof(label_buf), "p%d", op);
      const std::string label = label_buf;
      auto id = durable.base->Insert(poly, image, label);
      ASSERT_TRUE(id.ok()) << id.status().message();
      reference.emplace(*id, Ref{poly, image, label});
    } else if (dice < 0.92) {
      auto victim = reference.begin();
      std::advance(victim, static_cast<long>(rng.UniformInt(
                               0, static_cast<int64_t>(reference.size()) - 1)));
      ASSERT_TRUE(durable.base->Remove(victim->first).ok());
      reference.erase(victim);
    } else {
      ASSERT_TRUE(durable.base->Compact().ok());
    }
    if (op % 60 == 59) {
      reopen(&durable);
      verify(durable);
    }
  }
  reopen(&durable);
  verify(durable);

  // The recovered base must also answer queries: an exact live boundary
  // finds itself at (near-)zero distance.
  ASSERT_FALSE(reference.empty());
  const auto& [probe_id, probe] = *reference.begin();
  auto results = durable.base->Match(probe.boundary, 1);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].first, probe_id);
  EXPECT_NEAR((*results)[0].second, 0.0, 1e-9);
}

}  // namespace
}  // namespace geosir::core
