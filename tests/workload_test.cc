#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "query/operators.h"
#include "workload/image_composer.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"
#include "workload/query_set.h"

namespace geosir::workload {
namespace {

using geom::Polyline;

TEST(PolygonGenTest, StarPolygonsAreValid) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Polyline p = RandomStarPolygon(&rng);
    EXPECT_TRUE(p.Validate().ok()) << "trial " << i;
    EXPECT_GE(p.size(), 12u);
    EXPECT_LE(p.size(), 28u);
  }
}

TEST(PolygonGenTest, ConvexPolygonsAreConvex) {
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Polyline p = RandomConvexPolygon(&rng, 8, 1.0);
    ASSERT_GE(p.size(), 8u);
    const size_t n = p.size();
    for (size_t j = 0; j < n; ++j) {
      const geom::Point a = p.vertex(j);
      const geom::Point b = p.vertex((j + 1) % n);
      const geom::Point c = p.vertex((j + 2) % n);
      EXPECT_GE((b - a).Cross(c - b), 0.0);
    }
  }
}

TEST(PolygonGenTest, OpenPolylinesAreValid) {
  util::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const Polyline p = RandomOpenPolyline(&rng);
    EXPECT_FALSE(p.closed());
    EXPECT_TRUE(p.Validate().ok()) << "trial " << i;
  }
}

TEST(PolygonGenTest, DeterministicUnderSeed) {
  util::Rng a(42), b(42);
  const Polyline pa = RandomStarPolygon(&a);
  const Polyline pb = RandomStarPolygon(&b);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.vertex(i), pb.vertex(i));
  }
}

TEST(NoiseTest, JitterStaysSimpleAndClose) {
  util::Rng rng(4);
  const Polyline shape = RandomStarPolygon(&rng);
  const Polyline noisy = JitterVertices(shape, 0.01, &rng);
  EXPECT_FALSE(noisy.SelfIntersects());
  EXPECT_EQ(noisy.size(), shape.size());
  EXPECT_LT(core::AvgMinDistanceSymmetric(shape, noisy), 0.1);
}

TEST(NoiseTest, ResampleChangesVertexCountNotGeometry) {
  util::Rng rng(5);
  const Polyline shape = RandomStarPolygon(&rng);
  const Polyline resampled = ResampleBoundary(shape, 40);
  EXPECT_EQ(resampled.size(), 40u);
  // Resampled vertices lie exactly on the original boundary; the edges
  // chord across corners, so the continuous measure is small but not 0.
  EXPECT_LT(core::DiscreteAvgMinDistance(resampled, shape), 1e-9);
  EXPECT_LT(core::AvgMinDistance(resampled, shape), 0.05);
}

TEST(NoiseTest, LocalDentAddsOneVertex) {
  util::Rng rng(6);
  const Polyline shape = RandomStarPolygon(&rng);
  const Polyline dented = LocalDent(shape, 0.05, &rng);
  EXPECT_EQ(dented.size(), shape.size() + 1);
  EXPECT_FALSE(dented.SelfIntersects());
}

TEST(ComposerTest, ProducesShapesAndRelations) {
  util::Rng rng(7);
  std::vector<Polyline> protos;
  for (int i = 0; i < 10; ++i) protos.push_back(RandomStarPolygon(&rng));
  size_t total_shapes = 0, total_relations = 0;
  for (int i = 0; i < 30; ++i) {
    const ComposedImage img = ComposeImage(protos, 0.01, &rng);
    EXPECT_GE(img.shapes.size(), 2u);
    EXPECT_LE(img.shapes.size(), 9u);
    EXPECT_EQ(img.shapes.size(), img.prototype.size());
    total_shapes += img.shapes.size();
    total_relations += img.planted.size();
    // Planted relations must actually hold geometrically.
    for (const PlantedRelation& rel : img.planted) {
      EXPECT_TRUE(query::TestRelation(rel.relation, img.shapes[rel.a],
                                      img.shapes[rel.b]))
          << RelationName(rel.relation);
    }
  }
  EXPECT_GT(total_shapes, 100u);
  EXPECT_GT(total_relations, 5u);
}

TEST(GenerateImageBaseTest, EndToEnd) {
  ImageBaseSpec spec;
  spec.num_images = 20;
  spec.num_prototypes = 8;
  spec.seed = 11;
  auto generated = GenerateImageBase(spec);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->images->NumImages(), 20u);
  const core::ShapeBase& base = generated->images->shape_base();
  EXPECT_TRUE(base.finalized());
  EXPECT_GT(base.NumShapes(), 40u);
  EXPECT_EQ(generated->prototype_of_shape.size(), base.NumShapes());
  for (int proto : generated->prototype_of_shape) {
    EXPECT_GE(proto, 0);
    EXPECT_LT(proto, 8);
  }
}

TEST(GenerateImageBaseTest, RetrievalFindsInstancesOfQueriedPrototype) {
  ImageBaseSpec spec;
  spec.num_images = 30;
  spec.num_prototypes = 6;
  spec.instance_noise = 0.005;
  spec.seed = 13;
  auto generated = GenerateImageBase(spec);
  ASSERT_TRUE(generated.ok());

  util::Rng rng(14);
  const auto queries = MakeQuerySet(generated->prototypes, 5, 0.005, &rng);
  core::EnvelopeMatcher matcher(&generated->images->shape_base());
  int correct = 0;
  for (const QueryCase& qc : queries) {
    auto results = matcher.Match(qc.query);
    ASSERT_TRUE(results.ok());
    if (!results->empty() &&
        generated->prototype_of_shape[(*results)[0].shape_id] ==
            qc.prototype) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 4) << "retrieval should recover the prototype";
}

TEST(QuerySetTest, SizesAndDeterminism) {
  util::Rng rng(15);
  std::vector<Polyline> protos;
  for (int i = 0; i < 5; ++i) protos.push_back(RandomStarPolygon(&rng));
  util::Rng q1(20), q2(20);
  const auto a = MakeQuerySet(protos, 15, 0.01, &q1);
  const auto b = MakeQuerySet(protos, 15, 0.01, &q2);
  ASSERT_EQ(a.size(), 15u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prototype, b[i].prototype);
    ASSERT_EQ(a[i].query.size(), b[i].query.size());
  }
}

}  // namespace
}  // namespace geosir::workload
