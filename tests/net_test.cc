// Socket transport tests: deadline-aware socket I/O, the CRC-framed wire
// envelope, wire-protocol codecs, the primary-side ReplicationServer +
// follower-side SocketLogTransport loopback RPC path, and the chaos
// acceptance matrix — two followers converging through a byte-level
// fault proxy (mid-frame truncation, garbage injection, stalls, and
// repeated sever/restore cycles).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "net/chaos_proxy.h"
#include "net/frame.h"
#include "net/socket.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "replication/replication_server.h"
#include "replication/socket_transport.h"
#include "replication/wire_protocol.h"
#include "storage/wal.h"
#include "util/deadline.h"
#include "util/status.h"

namespace geosir {
namespace {

using core::DynamicShapeBase;
using geom::Point;
using geom::Polyline;
using net::ChaosProxy;
using net::ChaosProxyOptions;
using net::Frame;
using net::Listener;
using net::Socket;
using replication::Follower;
using replication::FollowerOptions;
using replication::HelloMessage;
using replication::LogBatch;
using replication::MessageType;
using replication::ReplicationServer;
using replication::ReplicationServerOptions;
using replication::SocketLogTransport;
using replication::SocketTransportOptions;
using storage::MemEnv;
using util::Deadline;
using util::Status;
using util::StatusCode;

constexpr char kHost[] = "127.0.0.1";

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- Socket layer ---

TEST(SocketTest, LoopbackRoundTrip) {
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread server([&] {
    auto accepted = listener->Accept(Deadline::AfterMillis(5000));
    ASSERT_TRUE(accepted.ok());
    uint8_t buf[5] = {};
    ASSERT_TRUE(
        accepted->ReadFull(buf, sizeof(buf), Deadline::AfterMillis(5000))
            .ok());
    ASSERT_TRUE(
        accepted->WriteFull(buf, sizeof(buf), Deadline::AfterMillis(5000))
            .ok());
  });
  auto client =
      Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const uint8_t out[5] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(
      client->WriteFull(out, sizeof(out), Deadline::AfterMillis(5000)).ok());
  uint8_t in[5] = {};
  ASSERT_TRUE(
      client->ReadFull(in, sizeof(in), Deadline::AfterMillis(5000)).ok());
  for (size_t i = 0; i < sizeof(out); ++i) EXPECT_EQ(in[i], out[i]);
  server.join();
}

TEST(SocketTest, ReadDeadlineIsBounded) {
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept(Deadline::AfterMillis(5000));
  ASSERT_TRUE(accepted.ok());
  // The peer sends nothing: the read must expire close to its deadline,
  // not hang and not spin.
  const auto start = std::chrono::steady_clock::now();
  uint8_t buf[8];
  size_t got = 99;
  Status read =
      client->ReadFull(buf, sizeof(buf), Deadline::AfterMillis(50), &got);
  EXPECT_EQ(read.code(), StatusCode::kDeadlineExceeded) << read.ToString();
  EXPECT_EQ(got, 0u);
  const double elapsed = ElapsedSeconds(start);
  EXPECT_GE(elapsed, 0.045);
  // Generous CI bound; the contract is "deadline + poll granularity",
  // the slack here is scheduling noise.
  EXPECT_LT(elapsed, 1.0);
}

TEST(SocketTest, ConnectRefusedIsUnavailable) {
  // Bind-then-close: the port was just proven free, so connecting to it
  // refuses rather than timing out.
  uint16_t port = 0;
  {
    auto listener = Listener::Bind(kHost, 0);
    ASSERT_TRUE(listener.ok());
    port = listener->port();
  }
  auto client = Socket::Connect(kHost, port, Deadline::AfterMillis(2000));
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTest, PeerCloseSurfacesAsUnavailable) {
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(client.ok());
  {
    auto accepted = listener->Accept(Deadline::AfterMillis(5000));
    ASSERT_TRUE(accepted.ok());
  }  // Accepted socket destroyed: clean close.
  uint8_t buf[4];
  size_t got = 99;
  Status read =
      client->ReadFull(buf, sizeof(buf), Deadline::AfterMillis(2000), &got);
  EXPECT_EQ(read.code(), StatusCode::kUnavailable) << read.ToString();
  EXPECT_EQ(got, 0u);
}

TEST(SocketTest, ShutdownUnblocksAccept) {
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());
  std::thread waiter([&] {
    auto accepted = listener->Accept();  // Infinite deadline.
    EXPECT_FALSE(accepted.ok());
    EXPECT_EQ(accepted.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener->Shutdown();
  waiter.join();
}

// --- Frame codec ---

std::vector<uint8_t> Payload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) payload[i] = static_cast<uint8_t>(i * 7 + 3);
  return payload;
}

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = Payload(100);
  std::vector<uint8_t> wire;
  net::AppendFrame(&wire, /*type=*/3, payload);
  EXPECT_EQ(wire.size(),
            net::kFrameHeaderBytes + payload.size() + net::kFrameTrailerBytes);
  size_t consumed = 0;
  auto frame = net::DecodeFrame(wire.data(), wire.size(),
                                net::kDefaultMaxFramePayload, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame->version, net::kProtocolVersion);
  EXPECT_EQ(frame->type, 3);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, ShortBufferIsUnavailable) {
  std::vector<uint8_t> wire;
  net::AppendFrame(&wire, 1, Payload(32));
  size_t consumed = 0;
  for (size_t keep : {size_t{0}, size_t{3}, net::kFrameHeaderBytes,
                      wire.size() - 1}) {
    auto frame = net::DecodeFrame(wire.data(), keep,
                                  net::kDefaultMaxFramePayload, &consumed);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable) << keep;
  }
}

TEST(FrameTest, EverySingleByteFlipIsRejected) {
  std::vector<uint8_t> wire;
  net::AppendFrame(&wire, 2, Payload(24));
  for (size_t i = 0; i < wire.size(); ++i) {
    std::vector<uint8_t> mutated = wire;
    mutated[i] ^= 0x40;
    size_t consumed = 0;
    auto frame = net::DecodeFrame(mutated.data(), mutated.size(),
                                  net::kDefaultMaxFramePayload, &consumed);
    ASSERT_FALSE(frame.ok()) << "flip at byte " << i;
    // A flipped length byte can make the frame look longer than the
    // buffer (kUnavailable); every other flip is caught by magic or CRC.
    EXPECT_TRUE(frame.status().code() == StatusCode::kCorruption ||
                frame.status().code() == StatusCode::kUnavailable)
        << "flip at byte " << i << ": " << frame.status().ToString();
  }
}

TEST(FrameTest, OversizeLengthRejectedBeforeAllocation) {
  std::vector<uint8_t> wire;
  net::AppendFrame(&wire, 1, Payload(8));
  // Forge payload_len = 0xFFFFFFFF. If the decoder allocated first this
  // would be a 4 GiB reserve; the bound check must fire instead.
  wire[8] = 0xFF;
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0xFF;
  size_t consumed = 0;
  auto frame = net::DecodeFrame(wire.data(), wire.size(),
                                net::kDefaultMaxFramePayload, &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);

  // Same forged length over a socket: ReadFrame must reject it without
  // trying to read (or allocate) 4 GiB.
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept(Deadline::AfterMillis(5000));
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(
      accepted->WriteFull(wire.data(), wire.size(), Deadline::AfterMillis(5000))
          .ok());
  auto read = net::ReadFrame(&*client, net::kDefaultMaxFramePayload,
                             Deadline::AfterMillis(2000));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(FrameTest, TornMidFrameIsCorruptionCleanCloseIsUnavailable) {
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());

  // Torn: half a frame, then close.
  {
    auto client =
        Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
    ASSERT_TRUE(client.ok());
    auto accepted = listener->Accept(Deadline::AfterMillis(5000));
    ASSERT_TRUE(accepted.ok());
    std::vector<uint8_t> wire;
    net::AppendFrame(&wire, 4, Payload(64));
    ASSERT_TRUE(accepted
                    ->WriteFull(wire.data(), wire.size() / 2,
                                Deadline::AfterMillis(5000))
                    .ok());
    accepted->Close();
    auto read = net::ReadFrame(&*client, net::kDefaultMaxFramePayload,
                               Deadline::AfterMillis(2000));
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
        << read.status().ToString();
  }

  // Clean: close at a frame boundary (here: before any frame).
  {
    auto client =
        Socket::Connect(kHost, listener->port(), Deadline::AfterMillis(5000));
    ASSERT_TRUE(client.ok());
    {
      auto accepted = listener->Accept(Deadline::AfterMillis(5000));
      ASSERT_TRUE(accepted.ok());
    }
    auto read = net::ReadFrame(&*client, net::kDefaultMaxFramePayload,
                               Deadline::AfterMillis(2000));
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kUnavailable)
        << read.status().ToString();
  }
}

// --- Wire protocol codecs ---

TEST(WireProtocolTest, LogBatchRoundTrip) {
  LogBatch batch;
  batch.primary_next_lsn = 42;
  for (uint64_t lsn = 7; lsn < 10; ++lsn) {
    storage::WalRecord record;
    record.lsn = lsn;
    record.type = storage::WalRecordType::kInsert;
    record.payload = Payload(lsn * 3);
    batch.records.push_back(record);
  }
  auto decoded = replication::DecodeLogBatch(replication::EncodeLogBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->primary_next_lsn, 42u);
  ASSERT_EQ(decoded->records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->records[i].lsn, batch.records[i].lsn);
    EXPECT_EQ(decoded->records[i].type, batch.records[i].type);
    EXPECT_EQ(decoded->records[i].payload, batch.records[i].payload);
  }
}

TEST(WireProtocolTest, ForgedRecordCountCannotOverAllocate) {
  LogBatch batch;
  batch.primary_next_lsn = 1;
  auto bytes = replication::EncodeLogBatch(batch);
  // Forge count = 0x40000000 (2^30 records): must be rejected against the
  // actual payload size, not reserved. The count lives after
  // primary_next_lsn (u64) and primary_epoch (u64).
  bytes[16] = 0x00;
  bytes[17] = 0x00;
  bytes[18] = 0x00;
  bytes[19] = 0x40;
  auto decoded = replication::DecodeLogBatch(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(WireProtocolTest, SnapshotAndLsnRoundTrip) {
  replication::SnapshotPackage package;
  package.generation = 9;
  package.primary_next_lsn = 77;
  package.checkpoint = Payload(200);
  package.head_frame = Payload(57);
  auto decoded = replication::DecodeSnapshotPackage(
      replication::EncodeSnapshotPackage(package));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->generation, 9u);
  EXPECT_EQ(decoded->primary_next_lsn, 77u);
  EXPECT_EQ(decoded->checkpoint, package.checkpoint);
  EXPECT_EQ(decoded->head_frame, package.head_frame);

  auto lsn = replication::DecodeNextLsn(replication::EncodeNextLsn(123));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 123u);
}

TEST(WireProtocolTest, ErrorCarriesStatusCodeAcrossTheWire) {
  for (StatusCode code :
       {StatusCode::kNotFound, StatusCode::kUnavailable,
        StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kDeadlineExceeded}) {
    Status original(code, "boom");
    Status decoded =
        replication::DecodeError(replication::EncodeError(original));
    EXPECT_EQ(decoded.code(), code);
    EXPECT_NE(decoded.message().find("boom"), std::string::npos);
  }
  // An error frame claiming OK is a protocol violation, not a success.
  Status ok_error = replication::DecodeError(
      replication::EncodeError(Status::OK()));
  EXPECT_EQ(ok_error.code(), StatusCode::kCorruption);
}

// --- Server + client RPC over loopback ---

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

Polyline ShapeFor(uint64_t id) {
  return RegularPolygon(3 + static_cast<int>(id % 8),
                        1.0 + 0.05 * static_cast<double>(id % 7));
}
std::string LabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
core::ImageId ImageFor(uint64_t id) {
  return static_cast<core::ImageId>(id * 3 + 1);
}

constexpr char kPrimaryDir[] = "primary";

/// A MemEnv-backed primary plus its socket endpoint: everything a
/// socket-transport test needs on one loopback port.
struct SocketCluster {
  MemEnv env;
  std::unique_ptr<storage::DurableDynamicBase> primary;
  std::unique_ptr<ReplicationServer> server;

  Status Open(DynamicShapeBase::Options base_options =
                  DynamicShapeBase::Options{},
              uint8_t protocol_version = net::kProtocolVersion) {
    storage::DurabilityOptions durability;
    durability.env = &env;
    auto opened =
        storage::OpenDurableDynamicBase(kPrimaryDir, base_options, durability);
    GEOSIR_RETURN_IF_ERROR(opened.status());
    primary =
        std::make_unique<storage::DurableDynamicBase>(std::move(*opened));
    ReplicationServerOptions options;
    options.env = &env;
    options.dir = kPrimaryDir;
    options.journal = primary->journal.get();
    options.protocol_version = protocol_version;
    GEOSIR_ASSIGN_OR_RETURN(server, ReplicationServer::Start(options));
    return Status::OK();
  }

  Status Insert(uint64_t id) {
    return primary->base->Insert(ShapeFor(id), ImageFor(id), LabelFor(id))
        .status();
  }
};

SocketTransportOptions FastTransportOptions(uint16_t port,
                                            uint64_t seed = 1) {
  SocketTransportOptions options;
  options.host = kHost;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.call_timeout_ms = 5000;
  options.reconnect = replication::DefaultReconnectPolicy(seed);
  options.reconnect.base_backoff_us = 500;
  options.reconnect.max_backoff_us = 20000;
  return options;
}

TEST(ReplicationServerTest, ServesFetchSnapshotAndNextLsnOverLoopback) {
  SocketCluster cluster;
  ASSERT_TRUE(cluster.Open().ok());
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(cluster.Insert(i).ok());

  SocketLogTransport transport(FastTransportOptions(cluster.server->port()));
  EXPECT_EQ(transport.Describe(),
            "socket://127.0.0.1:" + std::to_string(cluster.server->port()));

  auto next_lsn = transport.PrimaryNextLsn();
  ASSERT_TRUE(next_lsn.ok()) << next_lsn.status().ToString();
  EXPECT_EQ(*next_lsn, cluster.primary->journal->tail_state().next_lsn);

  auto batch = transport.Fetch(0, 0);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->primary_next_lsn, *next_lsn);
  ASSERT_EQ(batch->records.size(), 11u);  // Head commit + 10 inserts.
  EXPECT_EQ(batch->records.front().type,
            storage::WalRecordType::kCompactCommit);

  // The socket answer must equal the in-process answer byte for byte.
  replication::PrimaryLogSource direct(&cluster.env, kPrimaryDir,
                                       cluster.primary->journal.get());
  auto expected = direct.Fetch(0, 0);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(batch->records.size(), expected->records.size());
  for (size_t i = 0; i < batch->records.size(); ++i) {
    EXPECT_EQ(batch->records[i].lsn, expected->records[i].lsn);
    EXPECT_EQ(batch->records[i].payload, expected->records[i].payload);
  }

  auto snapshot = transport.FetchSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->generation, cluster.primary->journal->generation());
  EXPECT_FALSE(snapshot->checkpoint.empty());
  EXPECT_EQ(transport.connection_generation(), 1u);
}

TEST(ReplicationServerTest, RejectsWrongProtocolVersion) {
  SocketCluster cluster;
  ASSERT_TRUE(cluster.Open().ok());
  auto raw =
      Socket::Connect(kHost, cluster.server->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(net::WriteFrame(&*raw, static_cast<uint8_t>(MessageType::kHello),
                              replication::EncodeHello(HelloMessage{99}),
                              Deadline::AfterMillis(5000))
                  .ok());
  auto reply = net::ReadFrame(&*raw, net::kDefaultMaxFramePayload,
                              Deadline::AfterMillis(5000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kError));
  Status error = replication::DecodeError(reply->payload);
  // Terminal, not transient: retrying the same binary can never succeed,
  // so the server must not hand back a retriable code.
  EXPECT_EQ(error.code(), StatusCode::kFailedPrecondition) << error.ToString();
}

TEST(ReplicationServerTest, VersionMismatchIsTerminalForTheClient) {
  // The server speaks a future protocol; this client must surface the
  // mismatch as kFailedPrecondition in one round trip — a version skew
  // that entered the reconnect-backoff loop would look like a network
  // outage and page the wrong oncall.
  SocketCluster cluster;
  ASSERT_TRUE(cluster.Open(DynamicShapeBase::Options{},
                           net::kProtocolVersion + 1)
                  .ok());
  SocketLogTransport transport(FastTransportOptions(cluster.server->port()));
  const auto start = std::chrono::steady_clock::now();
  auto next_lsn = transport.PrimaryNextLsn();
  ASSERT_FALSE(next_lsn.ok());
  EXPECT_EQ(next_lsn.status().code(), StatusCode::kFailedPrecondition)
      << next_lsn.status().ToString();
  // One handshake, no backoff cycles: well under a single reconnect
  // policy's worth of retries.
  EXPECT_LT(ElapsedSeconds(start), 2.0);
}

TEST(ReplicationServerTest, DropsNonHelloFirstFrame) {
  SocketCluster cluster;
  ASSERT_TRUE(cluster.Open().ok());
  auto raw =
      Socket::Connect(kHost, cluster.server->port(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(net::WriteFrame(&*raw, static_cast<uint8_t>(MessageType::kFetch),
                              replication::EncodeFetchRequest({}),
                              Deadline::AfterMillis(5000))
                  .ok());
  // The server hangs up without serving anything.
  auto reply = net::ReadFrame(&*raw, net::kDefaultMaxFramePayload,
                              Deadline::AfterMillis(5000));
  ASSERT_FALSE(reply.ok());
}

TEST(ReplicationServerTest, StopUnblocksConnectedClientsPromptly) {
  SocketCluster cluster;
  ASSERT_TRUE(cluster.Open().ok());
  SocketLogTransport transport(FastTransportOptions(cluster.server->port()));
  ASSERT_TRUE(transport.PrimaryNextLsn().ok());
  EXPECT_EQ(cluster.server->active_connections(), 1u);

  // Stop with a live, idle connection parked in the server's read loop:
  // must return promptly, not wait out the idle timeout.
  const auto start = std::chrono::steady_clock::now();
  cluster.server->Stop();
  EXPECT_LT(ElapsedSeconds(start), 5.0);
  EXPECT_EQ(cluster.server->active_connections(), 0u);

  // The next call fails (connection dropped, reconnect refused) but
  // returns within the call budget instead of hanging.
  auto after = transport.PrimaryNextLsn();
  EXPECT_FALSE(after.ok());
}

TEST(ReplicationServerTest, StopDrainsAnInFlightReplyBeforeClosing) {
  SocketCluster cluster;
  DynamicShapeBase::Options no_auto_compact;
  no_auto_compact.min_compaction_size = 1u << 20;
  ASSERT_TRUE(cluster.Open(no_auto_compact).ok());
  // Enough records that the single-frame fetch reply overflows the
  // loopback socket buffers: the server worker blocks mid-reply with its
  // busy flag up — exactly the window Stop()'s drain must respect.
  const uint64_t kRecords = 6000;
  for (uint64_t i = 0; i < kRecords; ++i) ASSERT_TRUE(cluster.Insert(i).ok());

  auto raw = Socket::Connect(kHost, cluster.server->port(),
                             Deadline::AfterMillis(5000));
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(net::WriteFrame(&*raw, static_cast<uint8_t>(MessageType::kHello),
                              replication::EncodeHello(HelloMessage{}),
                              Deadline::AfterMillis(5000))
                  .ok());
  auto ack = net::ReadFrame(&*raw, net::kDefaultMaxFramePayload,
                            Deadline::AfterMillis(5000));
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, static_cast<uint8_t>(MessageType::kHelloAck));
  replication::FetchRequest fetch;
  fetch.from_lsn = 0;
  fetch.max_records = 0;
  ASSERT_TRUE(net::WriteFrame(&*raw, static_cast<uint8_t>(MessageType::kFetch),
                              replication::EncodeFetchRequest(fetch),
                              Deadline::AfterMillis(5000))
                  .ok());
  // Let the worker pick up the request and start (and stall) the reply,
  // then stop the server with the reply still in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    cluster.server->Stop();
    stopped.store(true, std::memory_order_release);
  });

  // A follower connecting during the drain is refused with a retriable
  // error frame, not a slammed socket (best effort: by the time this
  // connect lands the drain may already have finished).
  auto late = Socket::Connect(kHost, cluster.server->port(),
                              Deadline::AfterMillis(1000));
  if (late.ok()) {
    auto refused = net::ReadFrame(&*late, net::kDefaultMaxFramePayload,
                                  Deadline::AfterMillis(5000));
    if (refused.ok() &&
        refused->type == static_cast<uint8_t>(MessageType::kError)) {
      EXPECT_EQ(replication::DecodeError(refused->payload).code(),
                StatusCode::kUnavailable);
    }
  }

  // The blocked fetch completes IN FULL: a drain finishes the reply, an
  // amputation would tear the frame mid-payload.
  auto reply = net::ReadFrame(&*raw, net::kDefaultMaxFramePayload,
                              Deadline::AfterMillis(10000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kFetchOk));
  auto batch = replication::DecodeLogBatch(reply->payload);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->records.size(), kRecords + 1);  // Head commit included.
  stopper.join();
  EXPECT_TRUE(stopped.load(std::memory_order_acquire));
  EXPECT_EQ(cluster.server->active_connections(), 0u);
}

TEST(SocketTransportTest, CallNeverBlocksPastItsDeadline) {
  // A listener that accepts and then never speaks: the transport's Hello
  // gets no ack, so every call must die by its own deadline.
  auto listener = Listener::Bind(kHost, 0);
  ASSERT_TRUE(listener.ok());
  std::thread sink([&] {
    std::vector<Socket> parked;
    while (true) {
      auto accepted = listener->Accept();
      if (!accepted.ok()) return;
      parked.push_back(std::move(accepted).value());
    }
  });
  SocketTransportOptions options = FastTransportOptions(listener->port());
  options.call_timeout_ms = 300;
  SocketLogTransport transport(options);
  const auto start = std::chrono::steady_clock::now();
  auto result = transport.PrimaryNextLsn();
  const double elapsed = ElapsedSeconds(start);
  ASSERT_FALSE(result.ok());
  // The boundary contract: timeouts surface as kUnavailable.
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  EXPECT_LT(elapsed, 2.0) << "call overran its 300 ms budget";
  listener->Shutdown();
  sink.join();
}

// --- Chaos acceptance: two followers through the byte-level proxy ---

struct ChaosCluster {
  SocketCluster primary;
  std::unique_ptr<ChaosProxy> proxy;
  std::unique_ptr<SocketLogTransport> transports[2];
  std::unique_ptr<Follower> followers[2];
  std::set<uint64_t> model;
  uint64_t next_insert = 0;

  void Open() {
    ASSERT_TRUE(primary.Open().ok());
    ChaosProxyOptions proxy_options;
    proxy_options.target_host = kHost;
    proxy_options.target_port = primary.server->port();
    proxy_options.seed = 1234;
    auto started = ChaosProxy::Start(proxy_options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    proxy = std::move(started).value();
    for (int i = 0; i < 2; ++i) {
      transports[i] = std::make_unique<SocketLogTransport>(
          FastTransportOptions(proxy->port(), /*seed=*/100 + i));
      FollowerOptions options;
      options.env = &primary.env;
      options.dir = "replica" + std::to_string(i);
      options.replica_index = static_cast<uint32_t>(i);
      options.reconnect.base_backoff_us = 200;
      options.reconnect.max_backoff_us = 5000;
      options.reconnect.decorrelated_jitter = true;
      options.reconnect.jitter_seed = 100 + i;
      auto follower = Follower::Open(std::move(options), transports[i].get());
      ASSERT_TRUE(follower.ok()) << follower.status().ToString();
      followers[i] = std::move(follower).value();
    }
  }

  void Insert(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(primary.Insert(next_insert).ok());
      model.insert(next_insert);
      ++next_insert;
    }
  }

  /// Pumps both followers through whatever the proxy is doing until both
  /// reach the primary's tail (bounded: livelock fails, never hangs).
  void PumpUntilConverged(size_t max_rounds = 3000) {
    const uint64_t tail = primary.primary->journal->tail_state().next_lsn;
    for (size_t round = 0; round < max_rounds; ++round) {
      bool done = true;
      for (auto& follower : followers) {
        if (follower->applied_lsn() < tail) {
          (void)follower->Pump();
          done = false;
        }
      }
      if (done) return;
    }
    FAIL() << "followers did not converge within " << max_rounds
           << " rounds";
  }

  void ExpectConverged() {
    for (auto& follower : followers) {
      const std::vector<uint64_t> live = follower->LiveIds();
      ASSERT_EQ(live.size(), model.size());
      for (uint64_t id : live) {
        EXPECT_EQ(model.count(id), 1u);
        EXPECT_EQ(follower->label(id), LabelFor(id));
      }
      EXPECT_EQ(follower->NextId(), primary.primary->base->NextId());
    }
  }
};

TEST(ChaosProxyTest, FollowersConvergeThroughByteLevelChaos) {
  ChaosCluster cluster;
  cluster.Open();

  // Clean bootstrap through the proxy first.
  cluster.Insert(12);
  cluster.PumpUntilConverged();
  cluster.ExpectConverged();

  // Mid-frame truncation: cut the server->client stream 5 bytes into a
  // reply (inside the frame header). The follower sees a torn frame,
  // reconnects, re-fetches.
  cluster.Insert(6);
  cluster.proxy->TruncateDownstreamAfter(5);
  cluster.PumpUntilConverged();
  cluster.ExpectConverged();
  EXPECT_GE(cluster.proxy->counters().truncations, 1u);

  // Garbage injection: seeded noise bytes prepended to a real reply.
  // CRC framing must reject the frame; no phantom records may apply.
  cluster.Insert(6);
  cluster.proxy->InjectGarbage(64);
  cluster.PumpUntilConverged();
  cluster.ExpectConverged();
  EXPECT_GE(cluster.proxy->counters().garbage_injections, 1u);

  // Stall: the reply is delayed but intact; pumps ride it out.
  cluster.Insert(6);
  cluster.proxy->StallDownstream(100);
  cluster.PumpUntilConverged();
  cluster.ExpectConverged();

  // Three full sever/restore cycles: every cycle forces both followers
  // through disconnect, capped+jittered backoff, reconnect, catch-up.
  for (int cycle = 0; cycle < 3; ++cycle) {
    cluster.proxy->Sever();
    cluster.Insert(4);
    // Pump into the dead link so both followers actually observe the
    // outage (bounded attempts; every call returns by its deadline).
    for (auto& follower : cluster.followers) {
      auto pumped = follower->Pump();
      ASSERT_FALSE(pumped.ok());
      EXPECT_EQ(pumped.status().code(), StatusCode::kUnavailable);
    }
    cluster.proxy->Restore();
    cluster.PumpUntilConverged();
    cluster.ExpectConverged();
  }
  EXPECT_GE(cluster.proxy->counters().severs, 3u);

  for (int i = 0; i < 2; ++i) {
    const replication::FollowerStatus status = cluster.followers[i]->status();
    // Each sever/restore cycle is one observed reconnect; truncation and
    // garbage reconnects may add more.
    EXPECT_GE(status.counters.reconnects, 3u) << "follower " << i;
    EXPECT_GT(status.counters.fetch_errors, 0u) << "follower " << i;
    EXPECT_EQ(status.last_fetch_error, StatusCode::kUnavailable)
        << "follower " << i;
    // The transport re-handshook at least once per sever cycle.
    EXPECT_GE(cluster.transports[i]->connection_generation(), 4u)
        << "follower " << i;
    EXPECT_EQ(status.lag, 0u);
  }
}

}  // namespace
}  // namespace geosir
