#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geom/convex_hull.h"
#include "geom/diameter.h"
#include "geom/distance.h"
#include "geom/envelope.h"
#include "geom/point.h"
#include "geom/polyline.h"
#include "geom/predicates.h"
#include "util/rng.h"
#include "geom/transform.h"
#include "util/rng.h"

namespace geosir::geom {
namespace {

Polyline UnitSquare() {
  return Polyline::Closed({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PointTest, Arithmetic) {
  Point a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_EQ(a * 2.0, (Point{2, 4}));
  EXPECT_EQ(2.0 * a, (Point{2, 4}));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Point{3, 4}).Norm(), 5.0);
  EXPECT_EQ((Point{1, 0}).Perp(), (Point{0, 1}));
}

TEST(BoundingBoxTest, ExtendAndContain) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  box.Extend({1, 1});
  box.Extend({-1, 3});
  EXPECT_TRUE(box.Contains({0, 2}));
  EXPECT_FALSE(box.Contains({2, 2}));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 2.0);
}

TEST(BoundingBoxTest, IntersectsIsSymmetricAndTouching) {
  BoundingBox a({0, 0}, {1, 1});
  BoundingBox b({1, 1}, {2, 2});
  BoundingBox c({1.5, 1.5}, {3, 3});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(TriangleTest, ContainsInteriorBoundaryExterior) {
  Triangle t{{0, 0}, {2, 0}, {0, 2}};
  EXPECT_TRUE(t.Contains({0.5, 0.5}));
  EXPECT_TRUE(t.Contains({1, 0}));    // Edge.
  EXPECT_TRUE(t.Contains({0, 0}));    // Vertex.
  EXPECT_FALSE(t.Contains({2, 2}));
  // Orientation must not matter.
  Triangle rev{{0, 0}, {0, 2}, {2, 0}};
  EXPECT_TRUE(rev.Contains({0.5, 0.5}));
}

TEST(TransformTest, MapSegmentToUnitBase) {
  auto t = AffineTransform::MapSegmentToUnitBase({2, 3}, {4, 7});
  ASSERT_TRUE(t.ok());
  const Point p0 = t->Apply({2, 3});
  const Point p1 = t->Apply({4, 7});
  EXPECT_NEAR(p0.x, 0.0, 1e-12);
  EXPECT_NEAR(p0.y, 0.0, 1e-12);
  EXPECT_NEAR(p1.x, 1.0, 1e-12);
  EXPECT_NEAR(p1.y, 0.0, 1e-12);
}

TEST(TransformTest, DegenerateSegmentRejected) {
  EXPECT_FALSE(AffineTransform::MapSegmentToUnitBase({1, 1}, {1, 1}).ok());
}

TEST(TransformTest, InverseRoundTrip) {
  auto t = AffineTransform::MapSegmentToUnitBase({-1, 2}, {3, 5});
  ASSERT_TRUE(t.ok());
  auto inv = t->Inverse();
  ASSERT_TRUE(inv.ok());
  util::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point q = inv->Apply(t->Apply(p));
    EXPECT_NEAR(q.x, p.x, 1e-9);
    EXPECT_NEAR(q.y, p.y, 1e-9);
  }
}

TEST(TransformTest, CompositionMatchesSequentialApplication) {
  const AffineTransform r = AffineTransform::Rotation(0.7);
  const AffineTransform s = AffineTransform::Scaling(2.5);
  const AffineTransform tr = AffineTransform::Translation({1, -2});
  const AffineTransform all = tr * r * s;
  const Point p{0.3, 0.8};
  const Point expect = tr.Apply(r.Apply(s.Apply(p)));
  const Point got = all.Apply(p);
  EXPECT_NEAR(got.x, expect.x, 1e-12);
  EXPECT_NEAR(got.y, expect.y, 1e-12);
}

TEST(TransformTest, ScaleAndAngleAccessors) {
  const AffineTransform t =
      AffineTransform::Translation({5, 5}) * AffineTransform::Rotation(0.4) *
      AffineTransform::Scaling(3.0);
  EXPECT_NEAR(t.ScaleFactor(), 3.0, 1e-12);
  EXPECT_NEAR(t.RotationAngle(), 0.4, 1e-12);
}

TEST(PolylineTest, EdgesPerimeterArea) {
  Polyline sq = UnitSquare();
  EXPECT_EQ(sq.NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(sq.Perimeter(), 4.0);
  EXPECT_DOUBLE_EQ(sq.SignedArea(), 1.0);  // CCW.
  Polyline open = Polyline::Open({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_EQ(open.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(open.Perimeter(), 2.0);
  EXPECT_DOUBLE_EQ(open.SignedArea(), 0.0);
}

TEST(PolylineTest, AtArcLength) {
  Polyline sq = UnitSquare();
  const Point p = sq.AtArcLength(1.5);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 0.5, 1e-12);
  EXPECT_EQ(sq.AtArcLength(0.0), (Point{0, 0}));
}

TEST(PolylineTest, ValidateAcceptsSimpleRejectsDegenerate) {
  EXPECT_TRUE(UnitSquare().Validate().ok());
  EXPECT_FALSE(Polyline::Open({{0, 0}}).Validate().ok());
  EXPECT_FALSE(Polyline::Closed({{0, 0}, {1, 0}}).Validate().ok());
  EXPECT_FALSE(Polyline::Open({{0, 0}, {0, 0}, {1, 1}}).Validate().ok());
}

TEST(PolylineTest, SelfIntersectionDetected) {
  // Bowtie.
  Polyline bowtie = Polyline::Closed({{0, 0}, {2, 2}, {2, 0}, {0, 2}});
  EXPECT_TRUE(bowtie.SelfIntersects());
  EXPECT_FALSE(UnitSquare().SelfIntersects());
  // Open zig-zag that crosses itself.
  Polyline cross = Polyline::Open({{0, 0}, {2, 0}, {1, 1}, {1, -1}});
  EXPECT_TRUE(cross.SelfIntersects());
  // Folding back along the same line.
  Polyline fold = Polyline::Open({{0, 0}, {2, 0}, {1, 0}});
  EXPECT_TRUE(fold.SelfIntersects());
}

TEST(PredicatesTest, OrientationAndOnSegment) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(Orientation({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);
  EXPECT_TRUE(OnSegment({1, 1}, Segment{{0, 0}, {2, 2}}));
  EXPECT_FALSE(OnSegment({3, 3}, Segment{{0, 0}, {2, 2}}));
}

TEST(PredicatesTest, SegmentsIntersectCases) {
  // Proper crossing.
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {2, 2}},
                                Segment{{0, 2}, {2, 0}}));
  // Endpoint touch.
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {1, 1}},
                                Segment{{1, 1}, {2, 0}}));
  // Collinear overlap.
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {2, 0}},
                                Segment{{1, 0}, {3, 0}}));
  // Disjoint.
  EXPECT_FALSE(SegmentsIntersect(Segment{{0, 0}, {1, 0}},
                                 Segment{{0, 1}, {1, 1}}));
  // Proper-crossing predicate rejects touches.
  EXPECT_FALSE(SegmentsCrossProperly(Segment{{0, 0}, {1, 1}},
                                     Segment{{1, 1}, {2, 0}}));
  EXPECT_TRUE(SegmentsCrossProperly(Segment{{0, 0}, {2, 2}},
                                    Segment{{0, 2}, {2, 0}}));
}

TEST(PredicatesTest, SegmentIntersectionPoint) {
  auto p = SegmentIntersectionPoint(Segment{{0, 0}, {2, 2}},
                                    Segment{{0, 2}, {2, 0}});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
  EXPECT_FALSE(SegmentIntersectionPoint(Segment{{0, 0}, {1, 0}},
                                        Segment{{0, 1}, {1, 1}})
                   .ok());
}

TEST(PredicatesTest, PolygonContainsPoint) {
  Polyline sq = UnitSquare();
  EXPECT_TRUE(PolygonContainsPoint(sq, {0.5, 0.5}));
  EXPECT_TRUE(PolygonContainsPoint(sq, {0.0, 0.5}));   // Boundary.
  EXPECT_FALSE(PolygonContainsPoint(sq, {1.5, 0.5}));
  // Concave polygon (C shape).
  Polyline c = Polyline::Closed(
      {{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 2}, {3, 2}, {3, 3}, {0, 3}});
  EXPECT_TRUE(PolygonContainsPoint(c, {0.5, 1.5}));
  EXPECT_FALSE(PolygonContainsPoint(c, {2, 1.5}));  // In the notch.
}

TEST(PredicatesTest, PolygonContainment) {
  Polyline outer = Polyline::Closed({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Polyline inner = Polyline::Closed({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
  Polyline crossing = Polyline::Closed({{3, 3}, {5, 3}, {5, 5}, {3, 5}});
  EXPECT_TRUE(PolygonContainsPolygon(outer, inner));
  EXPECT_FALSE(PolygonContainsPolygon(inner, outer));
  EXPECT_FALSE(PolygonContainsPolygon(outer, crossing));
}

TEST(PredicatesTest, OverlapAndDisjoint) {
  Polyline a = Polyline::Closed({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polyline b = Polyline::Closed({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  Polyline c = Polyline::Closed({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  Polyline inner = Polyline::Closed({{0.5, 0.5}, {1, 0.5}, {1, 1}, {0.5, 1}});
  EXPECT_TRUE(PolygonsOverlap(a, b));
  EXPECT_FALSE(PolygonsOverlap(a, c));
  EXPECT_FALSE(PolygonsOverlap(a, inner));  // Containment is not overlap.
  EXPECT_TRUE(PolygonsDisjoint(a, c));
  EXPECT_FALSE(PolygonsDisjoint(a, b));
  EXPECT_FALSE(PolygonsDisjoint(a, inner));
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5},
                         {0.2, 0.7}};
  auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, CollinearInput) {
  std::vector<Point> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  auto hull = ConvexHull(pts);
  ASSERT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, IsCounterClockwiseAndConvex) {
  util::Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
  }
  auto hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  for (size_t i = 0; i < hull.size(); ++i) {
    const Point a = hull[i];
    const Point b = hull[(i + 1) % hull.size()];
    const Point c = hull[(i + 2) % hull.size()];
    EXPECT_GT((b - a).Cross(c - b), 0.0);
  }
}

TEST(DiameterTest, MatchesBruteForce) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pts;
    const int n = 3 + static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    }
    const VertexPair d = Diameter(pts);
    double best = 0.0;
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        best = std::max(best, Distance(pts[i], pts[j]));
      }
    }
    EXPECT_NEAR(d.distance, best, 1e-9) << "trial " << trial;
    EXPECT_NEAR(Distance(pts[d.i], pts[d.j]), best, 1e-9);
  }
}

TEST(DiameterTest, AlphaDiametersContainDiameterFirst) {
  std::vector<Point> pts{{0, 0}, {10, 0}, {5, 4}, {1, 3}};
  auto pairs = AlphaDiameters(pts, 0.3);
  ASSERT_FALSE(pairs.empty());
  EXPECT_DOUBLE_EQ(pairs[0].distance, 10.0);
  // All pairs at least (1-alpha)*diameter.
  for (const auto& vp : pairs) {
    EXPECT_GE(vp.distance, 0.7 * 10.0 - 1e-12);
  }
  // alpha = 0 keeps only the diameter (for generic points).
  auto only = AlphaDiameters(pts, 0.0);
  ASSERT_EQ(only.size(), 1u);
}

TEST(DistanceTest, PointSegment) {
  Segment s{{0, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(DistancePointSegment({1, 1}, s), 1.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({-1, 0}, s), 1.0);  // Clamped to a.
  EXPECT_DOUBLE_EQ(DistancePointSegment({3, 0}, s), 1.0);   // Clamped to b.
  EXPECT_DOUBLE_EQ(DistancePointSegment({1, 0}, s), 0.0);
}

TEST(DistanceTest, PointPolyline) {
  Polyline sq = UnitSquare();
  EXPECT_DOUBLE_EQ(DistancePointPolyline({0.5, 0.5}, sq), 0.5);
  EXPECT_DOUBLE_EQ(DistancePointPolyline({2, 0.5}, sq), 1.0);
  EXPECT_DOUBLE_EQ(DistancePointPolyline({0.5, 0}, sq), 0.0);
}

TEST(DistanceTest, SegmentSegment) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment(Segment{{0, 0}, {1, 0}},
                                          Segment{{0, 1}, {1, 1}}),
                   1.0);
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment(Segment{{0, 0}, {2, 2}},
                                          Segment{{0, 2}, {2, 0}}),
                   0.0);
}

TEST(DistanceTest, PolylinePolyline) {
  Polyline a = Polyline::Closed({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polyline b = Polyline::Closed({{3, 0}, {4, 0}, {4, 1}, {3, 1}});
  EXPECT_DOUBLE_EQ(DistancePolylinePolyline(a, b), 2.0);
}

TEST(DistanceTest, PolylinePolylinePruningMatchesBruteForce) {
  // The bbox lower-bound pruning in DistancePolylinePolyline must return
  // exactly what the unpruned pair loop returns — on separated,
  // intersecting, and nested shape pairs.
  util::Rng rng(321);
  for (int round = 0; round < 20; ++round) {
    std::vector<Point> va, vb;
    const double shift = rng.Uniform(-3.0, 3.0);
    for (int i = 0; i < 14; ++i) {
      va.push_back({rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
      vb.push_back({rng.Uniform(-1, 1) + shift, rng.Uniform(-1, 1)});
    }
    const Polyline a = Polyline::Closed(va);
    const Polyline b = Polyline::Closed(vb);
    double brute = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < a.NumEdges(); ++i) {
      for (size_t j = 0; j < b.NumEdges(); ++j) {
        brute = std::min(brute, DistanceSegmentSegment(a.Edge(i), b.Edge(j)));
      }
    }
    EXPECT_EQ(DistancePolylinePolyline(a, b), brute) << "round " << round;
    EXPECT_EQ(DistancePolylinePolyline(b, a), brute) << "round " << round;
  }
}

TEST(DistanceTest, ClosestPointOnSegmentFiniteContract) {
  // Finite inputs always produce a finite point on the segment — in
  // particular for zero-length and denormal-length segments, whose
  // interpolation parameter degenerates.
  const Segment cases[] = {
      {{0, 0}, {2, 0}},
      {{1.5, -2.5}, {1.5, -2.5}},            // Zero length.
      {{0, 0}, {5e-324, 0}},                 // Denormal length.
      {{1e150, 1e150}, {-1e150, -1e150}},    // Huge span.
  };
  for (const Segment& s : cases) {
    for (Point p : {Point{0.3, -0.7}, Point{1e120, -1e120}, s.a, s.b}) {
      const Point c = ClosestPointOnSegment(p, s);
      EXPECT_TRUE(std::isfinite(c.x) && std::isfinite(c.y))
          << "leaked non-finite closest point";
    }
  }
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(DistanceDeathTest, ClosestPointOnSegmentRejectsNonFinite) {
  const Segment s{{0, 0}, {1, 0}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(ClosestPointOnSegment({nan, 0.0}, s), "finite");
  EXPECT_DEATH(
      ClosestPointOnSegment({0.5, 0.5},
                            Segment{{0, 0},
                                    {std::numeric_limits<double>::infinity(),
                                     0.0}}),
      "finite");
}
#endif

TEST(EnvelopeTest, MembershipMatchesDistance) {
  Polyline sq = UnitSquare();
  EXPECT_TRUE(InEnvelope(sq, {1.2, 0.5}, 0.25));
  EXPECT_FALSE(InEnvelope(sq, {1.3, 0.5}, 0.25));
  EXPECT_TRUE(InEnvelope(sq, {0.5, 0.5}, 0.5));   // Center: distance 0.5.
  EXPECT_FALSE(InEnvelope(sq, {0.5, 0.5}, 0.4));
}

TEST(EnvelopeTest, RingMembershipHalfOpen) {
  Polyline sq = UnitSquare();
  // Distance of (1.2, 0.5) to square is 0.2.
  EXPECT_TRUE(InEnvelopeRing(sq, {1.2, 0.5}, 0.1, 0.2));
  EXPECT_FALSE(InEnvelopeRing(sq, {1.2, 0.5}, 0.2, 0.3));
  EXPECT_TRUE(InEnvelopeRing(sq, {0.5, 0.0}, 0.0, 0.1));  // On boundary.
}

TEST(EnvelopeTest, RingCoverContainsRingPoints) {
  Polyline sq = UnitSquare();
  util::Rng rng(23);
  const double inner = 0.05, outer = 0.15;
  const EnvelopeRingCover cover = BuildEnvelopeRingCover(sq, inner, outer);
  EXPECT_LE(cover.triangles.size(), 4 * sq.NumEdges() + 8 * sq.size());
  int ring_points = 0;
  for (int i = 0; i < 3000; ++i) {
    const Point p{rng.Uniform(-0.5, 1.5), rng.Uniform(-0.5, 1.5)};
    if (!InEnvelopeRing(sq, p, inner, outer)) continue;
    ++ring_points;
    bool covered = false;
    for (const Triangle& t : cover.triangles) {
      if (t.Contains(p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "ring point " << p.x << "," << p.y
                         << " missed by cover";
  }
  EXPECT_GT(ring_points, 50);  // Sanity: the sample actually hit the ring.
}

TEST(EnvelopeTest, RingCoverFromZeroEps) {
  Polyline open = Polyline::Open({{0, 0}, {1, 0}, {1, 1}});
  const EnvelopeRingCover cover = BuildEnvelopeRingCover(open, 0.0, 0.2);
  util::Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.Uniform(-0.5, 1.5), rng.Uniform(-0.5, 1.5)};
    if (!InEnvelope(open, p, 0.2)) continue;
    bool covered = false;
    for (const Triangle& t : cover.triangles) {
      if (t.Contains(p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST(EnvelopeTest, AreaEstimateGrowsWithEps) {
  Polyline sq = UnitSquare();
  EXPECT_LT(EnvelopeAreaEstimate(sq, 0.1), EnvelopeAreaEstimate(sq, 0.2));
  EXPECT_NEAR(EnvelopeAreaEstimate(sq, 0.1), 2 * 0.1 * 4.0 + M_PI * 0.01,
              1e-12);
}

}  // namespace
}  // namespace geosir::geom
