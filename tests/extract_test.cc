#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "extract/boundary_trace.h"
#include "extract/chain_trace.h"
#include "extract/clusters.h"
#include "extract/decompose.h"
#include "extract/edge_detect.h"
#include "extract/rasterize.h"
#include "extract/simplify.h"
#include "geom/distance.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace geosir::extract {
namespace {

using geom::Point;
using geom::Polyline;

Polyline Rect(Point lo, Point hi) {
  return Polyline::Closed({lo, {hi.x, lo.y}, hi, {lo.x, hi.y}});
}

TEST(RasterTest, BasicAddressing) {
  Raster r(4, 3, 0.5f);
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 0.5f);
  r.set(2, 1, 0.9f);
  EXPECT_FLOAT_EQ(r.at(2, 1), 0.9f);
  EXPECT_FLOAT_EQ(r.Sample(-1, 0), 0.0f);  // Zero padding.
  EXPECT_TRUE(r.InBounds(3, 2));
  EXPECT_FALSE(r.InBounds(4, 2));
}

TEST(RasterizeTest, FillPolygonCoversInterior) {
  Raster r(32, 32);
  FillPolygon(&r, Rect({8, 8}, {24, 24}), 1.0f);
  EXPECT_FLOAT_EQ(r.at(16, 16), 1.0f);
  EXPECT_FLOAT_EQ(r.at(4, 16), 0.0f);
  EXPECT_FLOAT_EQ(r.at(16, 4), 0.0f);
  // Area roughly 16x16.
  int filled = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (r.at(x, y) > 0.5f) ++filled;
    }
  }
  EXPECT_NEAR(filled, 256, 40);
}

TEST(RasterizeTest, StrokeDrawsLine) {
  Raster r(16, 16);
  StrokePolyline(&r, Polyline::Open({{2, 2}, {13, 13}}), 1.0f);
  EXPECT_FLOAT_EQ(r.at(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(r.at(13, 13), 1.0f);
  EXPECT_FLOAT_EQ(r.at(8, 8), 1.0f);
  EXPECT_FLOAT_EQ(r.at(2, 13), 0.0f);
}

TEST(EdgeDetectTest, SobelHighlightsBoundary) {
  Raster r(32, 32);
  FillPolygon(&r, Rect({8, 8}, {24, 24}), 1.0f);
  const Raster mag = SobelMagnitude(r);
  EXPECT_GT(mag.at(8, 16), 1.0f);    // On the boundary.
  EXPECT_FLOAT_EQ(mag.at(16, 16), 0.0f);  // Deep interior.
  EXPECT_FLOAT_EQ(mag.at(2, 2), 0.0f);    // Background.
  const Mask edges = DetectEdges(r, 0.5f);
  EXPECT_TRUE(edges.at(8, 16));
  EXPECT_FALSE(edges.at(16, 16));
}

TEST(BoundaryTraceTest, SquareBoundary) {
  Raster r(32, 32);
  FillPolygon(&r, Rect({8, 8}, {24, 24}), 1.0f);
  const Mask fg = ThresholdForeground(r, 0.5f);
  const auto boundaries = TraceBoundaries(fg);
  ASSERT_EQ(boundaries.size(), 1u);
  const Polyline& b = boundaries[0];
  EXPECT_TRUE(b.closed());
  // Perimeter of a 16x16 square boundary walk ~ 60-70 pixels.
  EXPECT_GT(b.size(), 40u);
  EXPECT_LT(b.size(), 100u);
  // All boundary points near the rectangle outline.
  const Polyline outline = Rect({8.5, 8.5}, {23.5, 23.5});
  for (Point p : b.vertices()) {
    EXPECT_LT(geom::DistancePointPolyline(p, outline), 1.6);
  }
}

TEST(BoundaryTraceTest, MultipleComponents) {
  Raster r(48, 32);
  FillPolygon(&r, Rect({4, 4}, {16, 16}), 1.0f);
  FillPolygon(&r, Rect({28, 8}, {44, 28}), 1.0f);
  const auto boundaries = TraceBoundaries(ThresholdForeground(r, 0.5f));
  EXPECT_EQ(boundaries.size(), 2u);
}

TEST(BoundaryTraceTest, SmallComponentsFiltered) {
  Raster r(16, 16);
  r.set(3, 3, 1.0f);  // Single pixel.
  FillPolygon(&r, Rect({8, 8}, {14, 14}), 1.0f);
  const auto boundaries =
      TraceBoundaries(ThresholdForeground(r, 0.5f), /*min_pixels=*/8);
  EXPECT_EQ(boundaries.size(), 1u);
}

TEST(ChainTraceTest, OpenLineBecomesOpenPolyline) {
  Mask mask(32, 32);
  // A diagonal thin line.
  for (int i = 4; i < 24; ++i) mask.set(i, i, true);
  const auto chains = TraceEdgeChains(mask, 4);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_FALSE(chains[0].closed());
  EXPECT_EQ(chains[0].size(), 20u);
  // Endpoints are at the line ends.
  const Point first = chains[0].vertex(0);
  const Point last = chains[0].vertex(chains[0].size() - 1);
  EXPECT_NEAR(std::min(first.x, last.x), 4.5, 1e-9);
  EXPECT_NEAR(std::max(first.x, last.x), 23.5, 1e-9);
}

TEST(ChainTraceTest, DiamondOutlineBecomesClosedPolyline) {
  // A diamond outline: every pixel has exactly two 8-neighbors, so the
  // whole ring is one cycle. (Rectilinear outlines put 3 neighbors
  // around the corners, which the tracer conservatively treats as
  // junctions — that case is covered by BranchingSplitsAtJunction.)
  Mask mask(32, 32);
  const int cx = 16, cy = 16, r = 8;
  for (int dx = -r; dx <= r; ++dx) {
    const int dy = r - std::abs(dx);
    mask.set(cx + dx, cy + dy, true);
    if (dy != 0) mask.set(cx + dx, cy - dy, true);
  }
  const auto chains = TraceEdgeChains(mask, 4);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_TRUE(chains[0].closed());
  EXPECT_EQ(chains[0].size(), 32u);  // 4 * r pixels on the ring.
  EXPECT_FALSE(chains[0].SelfIntersects());
}

TEST(ChainTraceTest, BranchingSplitsAtJunction) {
  Mask mask(32, 32);
  // A T shape: horizontal bar plus a vertical stem from its middle.
  for (int x = 4; x <= 24; ++x) mask.set(x, 8, true);
  for (int y = 9; y <= 20; ++y) mask.set(14, y, true);
  const auto chains = TraceEdgeChains(mask, 4);
  // Three simple chains meeting at the junction.
  EXPECT_EQ(chains.size(), 3u);
  for (const auto& chain : chains) {
    EXPECT_FALSE(chain.closed());
    EXPECT_FALSE(chain.SelfIntersects());
  }
}

TEST(ChainTraceTest, ShortNoiseFiltered) {
  Mask mask(16, 16);
  mask.set(2, 2, true);
  mask.set(3, 2, true);  // 2-pixel speck.
  for (int i = 5; i < 14; ++i) mask.set(i, 8, true);
  const auto chains = TraceEdgeChains(mask, 5);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].size(), 9u);
}

TEST(ChainTraceTest, StrokedShapeRoundTripsThroughChains) {
  // Stroke an open polyline into a raster, trace it back, simplify, and
  // compare with the original.
  const Polyline original =
      Polyline::Open({{4, 4}, {24, 6}, {28, 20}, {12, 26}});
  Raster image(32, 32);
  StrokePolyline(&image, original, 1.0f);
  Mask mask(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) mask.set(x, y, image.at(x, y) > 0.5f);
  }
  const auto chains = TraceEdgeChains(mask, 4);
  ASSERT_GE(chains.size(), 1u);
  // The longest chain approximates the original within ~2px.
  size_t longest = 0;
  for (size_t i = 1; i < chains.size(); ++i) {
    if (chains[i].size() > chains[longest].size()) longest = i;
  }
  const Polyline traced = Simplify(chains[longest], 1.5);
  for (Point v : traced.vertices()) {
    EXPECT_LT(geom::DistancePointPolyline(v, original), 2.5);
  }
}

TEST(SimplifyTest, CollinearPointsRemoved) {
  Polyline line = Polyline::Open(
      {{0, 0}, {1, 0.001}, {2, -0.001}, {3, 0}, {4, 2}});
  const Polyline simplified = Simplify(line, 0.05);
  EXPECT_EQ(simplified.size(), 3u);  // Endpoints + the corner at (3,0).
  EXPECT_EQ(simplified.vertex(0), (Point{0, 0}));
  EXPECT_EQ(simplified.vertex(2), (Point{4, 2}));
}

TEST(SimplifyTest, PreservesSharpFeatures) {
  // A square traced densely must simplify back to ~4 corners.
  std::vector<Point> dense;
  for (double t = 0; t < 1.0; t += 0.05) dense.push_back({t * 10, 0});
  for (double t = 0; t < 1.0; t += 0.05) dense.push_back({10, t * 10});
  for (double t = 0; t < 1.0; t += 0.05) dense.push_back({10 - t * 10, 10});
  for (double t = 0; t < 1.0; t += 0.05) dense.push_back({0, 10 - t * 10});
  const Polyline simplified = Simplify(Polyline::Closed(dense), 0.3);
  EXPECT_GE(simplified.size(), 4u);
  EXPECT_LE(simplified.size(), 6u);
  // Corners survive.
  for (Point corner : {Point{0, 0}, Point{10, 0}, Point{10, 10},
                       Point{0, 10}}) {
    EXPECT_LT(geom::DistancePointVertices(corner, simplified), 0.6);
  }
}

TEST(SimplifyTest, ToleranceMonotone) {
  util::Rng rng(9);
  std::vector<Point> noisy;
  for (int i = 0; i < 100; ++i) {
    const double a = 2 * M_PI * i / 100;
    const double r = 10 + rng.Uniform(-0.3, 0.3);
    noisy.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const Polyline circle = Polyline::Closed(noisy);
  const size_t coarse = Simplify(circle, 1.0).size();
  const size_t fine = Simplify(circle, 0.05).size();
  EXPECT_LT(coarse, fine);
  EXPECT_LE(fine, 100u);
}

TEST(ClustersTest, TouchingPolylinesGrouped) {
  std::vector<Polyline> lines;
  lines.push_back(Polyline::Open({{0, 0}, {5, 0}}));
  lines.push_back(Polyline::Open({{5, 0}, {5, 5}}));     // Shares endpoint.
  lines.push_back(Polyline::Open({{20, 20}, {25, 20}}));  // Far away.
  lines.push_back(Polyline::Open({{25, 20}, {25, 25}}));
  const auto clusters = DetectClusters(lines, 0.01);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].members.size(), 2u);
  EXPECT_EQ(clusters[1].members.size(), 2u);
}

TEST(ClustersTest, ToleranceMatters) {
  std::vector<Polyline> lines;
  lines.push_back(Polyline::Open({{0, 0}, {5, 0}}));
  lines.push_back(Polyline::Open({{5.5, 0}, {10, 0}}));  // 0.5 gap.
  EXPECT_EQ(DetectClusters(lines, 0.1).size(), 2u);
  EXPECT_EQ(DetectClusters(lines, 1.0).size(), 1u);
}

TEST(DecomposeTest, SimpleShapeUnchanged) {
  const Polyline square = Rect({0, 0}, {4, 4});
  const auto pieces = DecomposeSelfIntersecting(square);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), 4u);
  EXPECT_TRUE(pieces[0].closed());
}

TEST(DecomposeTest, BowtieSplitsIntoTwoTriangles) {
  const Polyline bowtie =
      Polyline::Closed({{0, 0}, {4, 4}, {4, 0}, {0, 4}});
  const auto pieces = DecomposeSelfIntersecting(bowtie);
  ASSERT_EQ(pieces.size(), 2u);
  for (const Polyline& piece : pieces) {
    EXPECT_FALSE(piece.SelfIntersects());
    EXPECT_TRUE(piece.closed());
    EXPECT_NEAR(piece.Area(), 4.0, 1e-9);  // Two 2x2-ish triangles.
  }
}

TEST(DecomposeTest, OpenCrossingPolyline) {
  const Polyline crossing =
      Polyline::Open({{0, 0}, {4, 0}, {4, 4}, {2, -2}});
  const auto pieces = DecomposeSelfIntersecting(crossing);
  ASSERT_GE(pieces.size(), 2u);
  for (const Polyline& piece : pieces) {
    EXPECT_FALSE(piece.SelfIntersects());
  }
}

TEST(DecomposeTest, PiecesCoverOriginalGeometry) {
  const Polyline bowtie =
      Polyline::Closed({{0, 0}, {4, 4}, {4, 0}, {0, 4}});
  const auto pieces = DecomposeSelfIntersecting(bowtie);
  // Every original vertex appears in some piece.
  for (Point v : bowtie.vertices()) {
    double best = 1e9;
    for (const Polyline& piece : pieces) {
      best = std::min(best, geom::DistancePointVertices(v, piece));
    }
    EXPECT_LT(best, 1e-9);
  }
}

TEST(PipelineTest, RasterToShapeRoundTrip) {
  // Full Section 6 pipeline on a synthetic image: rasterize a polygon,
  // threshold, trace, simplify — the result must be geometrically close
  // to the original.
  const Polyline original = Polyline::Closed(
      {{20, 20}, {100, 24}, {108, 80}, {60, 108}, {16, 72}});
  Raster image(128, 128);
  FillPolygon(&image, original, 1.0f);
  const auto boundaries = TraceBoundaries(ThresholdForeground(image, 0.5f));
  ASSERT_EQ(boundaries.size(), 1u);
  const Polyline shape = Simplify(boundaries[0], 1.2);
  EXPECT_TRUE(shape.closed());
  EXPECT_GE(shape.size(), 5u);
  EXPECT_LE(shape.size(), 12u);
  // Every original corner recovered within ~2px.
  for (Point corner : original.vertices()) {
    EXPECT_LT(geom::DistancePointPolyline(corner, shape), 2.5);
  }
  EXPECT_TRUE(shape.Validate().ok());
}

}  // namespace
}  // namespace geosir::extract
