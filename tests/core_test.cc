#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/envelope_matcher.h"
#include "core/feature_index_baseline.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace geosir::core {
namespace {

using geom::Point;
using geom::Polyline;

/// Regular n-gon of radius r centered at c, slightly rotated by phase.
Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

/// Densely sampled axis-aligned rectangle (vertices every `step`).
Polyline DenseRectangle(double w, double h, double step) {
  std::vector<Point> v;
  for (double x = 0; x < w; x += step) v.push_back({x, 0});
  for (double y = 0; y < h; y += step) v.push_back({w, y});
  for (double x = w; x > 0; x -= step) v.push_back({x, h});
  for (double y = h; y > 0; y -= step) v.push_back({0, y});
  return Polyline::Closed(std::move(v));
}

TEST(SimilarityTest, IdenticalShapesHaveZeroDistance) {
  Polyline p = RegularPolygon(7, 1.0);
  EXPECT_NEAR(AvgMinDistance(p, p), 0.0, 1e-9);
  EXPECT_NEAR(AvgMinDistanceSymmetric(p, p), 0.0, 1e-9);
  EXPECT_NEAR(DiscreteHausdorff(p, p), 0.0, 1e-12);
}

TEST(SimilarityTest, ConcentricSquaresHaveOffsetDistance) {
  // Outer square side 2 centered at origin; inner side 1. Every point of
  // the inner square is exactly 0.5 from the outer square.
  Polyline outer = Polyline::Closed({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  Polyline inner = Polyline::Closed(
      {{-0.5, -0.5}, {0.5, -0.5}, {0.5, 0.5}, {-0.5, 0.5}});
  EXPECT_NEAR(AvgMinDistance(inner, outer), 0.5, 1e-6);
}

TEST(SimilarityTest, DuplicateConsecutiveVerticesMatchDeduplicatedForm) {
  // Zero-length edges contribute nothing to the arc-length integral *and*
  // nothing to the perimeter, so the continuous average must be exactly
  // the deduplicated shape's value in both directions.
  Polyline clean = Polyline::Closed({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  Polyline duplicated =
      Polyline::Closed({{-1, -1}, {1, -1}, {1, -1}, {1, 1}, {-1, 1}, {-1, 1}});
  Polyline other = RegularPolygon(7, 1.3, {0.2, -0.1});
  EXPECT_DOUBLE_EQ(AvgMinDistance(duplicated, other),
                   AvgMinDistance(clean, other));
  EXPECT_NEAR(AvgMinDistance(other, duplicated),
              AvgMinDistance(other, clean), 1e-12);
  EXPECT_NEAR(AvgMinDistanceSymmetric(duplicated, other),
              AvgMinDistanceSymmetric(clean, other), 1e-12);
}

TEST(SimilarityTest, AllDegenerateEdgesFallBackToVertexAverage) {
  // A "polyline" whose every edge has zero length used to divide 0 by 0
  // into a perfect-match score of 0; it must rank like the point it is.
  Polyline point_like = Polyline::Closed({{2, 3}, {2, 3}, {2, 3}});
  Polyline square = Polyline::Closed({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  const double expected = DiscreteAvgMinDistance(point_like, square);
  EXPECT_GT(expected, 1.0);
  EXPECT_DOUBLE_EQ(AvgMinDistance(point_like, square), expected);
}

TEST(SimilarityTest, DirectedMeasureIsAsymmetric) {
  // A short segment lying on the square's boundary: directed distance
  // segment->square is 0, square->segment is large.
  Polyline sq = Polyline::Closed({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polyline seg = Polyline::Open({{0.2, 0.0}, {0.4, 0.0}});
  EXPECT_NEAR(AvgMinDistance(seg, sq), 0.0, 1e-9);
  EXPECT_GT(AvgMinDistance(sq, seg), 0.2);
  EXPECT_GT(AvgMinDistanceSymmetric(seg, sq), 0.2);
}

TEST(SimilarityTest, Figure1RankInversion) {
  // The paper's motivating example: under Hausdorff the query matches A,
  // under h_avg it matches B (which is intuitively closer).
  Polyline q = DenseRectangle(2.0, 1.0, 0.1);
  // B: same rectangle with a single spike vertex pulled far out.
  Polyline b = q;
  b.mutable_vertices()[5].y -= 0.8;  // Spike on the bottom edge.
  // A: uniformly inflated copy (every boundary point ~0.25 away).
  Polyline a = Polyline::Closed([] {
    Polyline r = DenseRectangle(2.5, 1.5, 0.1);
    std::vector<Point> v = r.vertices();
    for (Point& p : v) p += Point{-0.25, -0.25};
    return v;
  }());

  const double haus_a = DiscreteHausdorff(a, q);
  const double haus_b = DiscreteHausdorff(b, q);
  EXPECT_LT(haus_a, haus_b);  // Hausdorff prefers A.

  const double avg_a = AvgMinDistanceSymmetric(a, q);
  const double avg_b = AvgMinDistanceSymmetric(b, q);
  EXPECT_LT(avg_b, avg_a);  // h_avg prefers B.
}

TEST(SimilarityTest, PartialHausdorffIgnoresOutliers) {
  Polyline q = DenseRectangle(2.0, 1.0, 0.1);
  Polyline spiky = q;
  spiky.mutable_vertices()[5].y -= 0.8;
  const double full = DiscreteDirectedHausdorff(spiky, q);
  const double half = PartialDirectedHausdorff(spiky, q, 0.5);
  EXPECT_GT(full, 0.7);
  EXPECT_LT(half, 0.1);
  EXPECT_LE(PartialHausdorff(spiky, q, 0.5), PartialHausdorff(spiky, q, 1.0));
}

TEST(SimilarityTest, PartialHausdorffFullFractionEqualsHausdorff) {
  Polyline a = RegularPolygon(8, 1.0);
  Polyline b = RegularPolygon(8, 1.3);
  EXPECT_NEAR(PartialDirectedHausdorff(a, b, 1.0),
              DiscreteDirectedHausdorff(a, b), 1e-12);
}

TEST(SimilarityTest, ContinuousAverageUsesEdgesNotJustVertices) {
  // Two shapes with identical vertex sets... impossible; instead verify
  // that subdividing edges (no geometric change) barely moves the
  // continuous measure while it can move the discrete one.
  Polyline coarse = Polyline::Closed({{0, 0}, {2, 0}, {2, 1}, {0, 1}});
  Polyline fine = DenseRectangle(2.0, 1.0, 0.05);
  Polyline other = RegularPolygon(16, 0.8, {1.0, 0.5});
  const double c1 = AvgMinDistance(coarse, other);
  const double c2 = AvgMinDistance(fine, other);
  EXPECT_NEAR(c1, c2, 5e-3);
}

TEST(NormalizeTest, DiameterMapsToUnitBase) {
  Shape s;
  s.boundary = RegularPolygon(9, 2.0, {5, 5});
  auto copies = NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  ASSERT_GE(copies->size(), 2u);
  for (const NormalizedCopy& copy : *copies) {
    const Point a = copy.shape.vertex(copy.axis_i);
    const Point b = copy.shape.vertex(copy.axis_j);
    EXPECT_NEAR(a.x, 0.0, 1e-9);
    EXPECT_NEAR(a.y, 0.0, 1e-9);
    EXPECT_NEAR(b.x, 1.0, 1e-9);
    EXPECT_NEAR(b.y, 0.0, 1e-9);
  }
}

TEST(NormalizeTest, TrueDiameterVerticesInsideLune) {
  util::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Shape s;
    s.boundary = RegularPolygon(5 + trial, 1.0 + trial * 0.3,
                                {rng.Uniform(-3, 3), rng.Uniform(-3, 3)},
                                rng.Uniform(0, 1));
    NormalizeOptions opts;
    opts.use_alpha_diameters = false;
    auto copies = NormalizeShape(s, opts);
    ASSERT_TRUE(copies.ok());
    for (const NormalizedCopy& copy : *copies) {
      for (Point p : copy.shape.vertices()) {
        // Inside both unit disks (the lune), small tolerance.
        EXPECT_LE(p.Norm(), 1.0 + 1e-9);
        EXPECT_LE((p - Point{1, 0}).Norm(), 1.0 + 1e-9);
      }
    }
  }
}

TEST(NormalizeTest, PairOfCopiesPerAxis) {
  Shape s;
  s.boundary = RegularPolygon(6, 1.0);
  NormalizeOptions opts;
  opts.alpha = 0.3;
  opts.max_axes = 4;
  auto copies = NormalizeShape(s, opts);
  ASSERT_TRUE(copies.ok());
  EXPECT_EQ(copies->size() % 2, 0u);
  EXPECT_LE(copies->size(), 8u);
  // Copies 2k and 2k+1 share the axis with swapped endpoints.
  for (size_t i = 0; i + 1 < copies->size(); i += 2) {
    EXPECT_EQ((*copies)[i].axis_i, (*copies)[i + 1].axis_j);
    EXPECT_EQ((*copies)[i].axis_j, (*copies)[i + 1].axis_i);
  }
}

TEST(NormalizeTest, InverseTransformRecoversOriginal) {
  Shape s;
  s.boundary = RegularPolygon(7, 1.5, {2, -1}, 0.3);
  auto copies = NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  const NormalizedCopy& c = copies->front();
  const Polyline back = c.shape.Transformed(c.from_normalized);
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back.vertex(i).x, s.boundary.vertex(i).x, 1e-9);
    EXPECT_NEAR(back.vertex(i).y, s.boundary.vertex(i).y, 1e-9);
  }
}

TEST(NormalizeTest, RejectsInvalidInputs) {
  Shape s;
  s.boundary = Polyline::Open({{0, 0}});
  EXPECT_FALSE(NormalizeShape(s).ok());
  EXPECT_FALSE(NormalizeQuery(Polyline::Open({{0, 0}, {0, 0}})).ok());
}

/// Similarity of normalized copies must be invariant under similarity
/// transforms of the input shape — the core normalization property.
class NormalizationInvarianceTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(NormalizationInvarianceTest, QueryNormalizationIsInvariant) {
  const auto [angle, scale, tx] = GetParam();
  Polyline original = RegularPolygon(8, 1.0, {0.3, -0.2}, 0.2);
  const geom::AffineTransform t = geom::AffineTransform::Translation({tx, -tx}) *
                                  geom::AffineTransform::Rotation(angle) *
                                  geom::AffineTransform::Scaling(scale);
  Polyline moved = original.Transformed(t);

  auto n1 = NormalizeQuery(original);
  auto n2 = NormalizeQuery(moved);
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());
  // The normalized copies must be the same point set (the diameter pair is
  // transform-invariant); allow either orientation by comparing the
  // symmetric similarity measure to zero.
  const double d = AvgMinDistanceSymmetric(n1->shape, n2->shape);
  EXPECT_NEAR(d, 0.0, 1e-6) << "angle=" << angle << " scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(
    TransformSweep, NormalizationInvarianceTest,
    ::testing::Combine(::testing::Values(0.0, 0.7, 2.1, 3.9, 5.5),
                       ::testing::Values(0.5, 1.0, 3.0),
                       ::testing::Values(0.0, 10.0)));

TEST(ShapeBaseTest, AddFinalizeQueryLifecycle) {
  ShapeBase base;
  auto id = base.AddShape(RegularPolygon(5, 1.0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_FALSE(base.finalized());
  ASSERT_TRUE(base.Finalize().ok());
  EXPECT_TRUE(base.finalized());
  EXPECT_FALSE(base.AddShape(RegularPolygon(6, 1.0)).ok());
  EXPECT_FALSE(base.Finalize().ok());
  EXPECT_GT(base.NumCopies(), 0u);
  // Each copy pools its vertices except the two axis endpoints, which
  // are pinned at (0,0)/(1,0) and kept implicit.
  EXPECT_EQ(base.NumVertices(), base.NumCopies() * (5 - 2));
}

TEST(ShapeBaseTest, CopiesOfShapeAndVertexOwnership) {
  ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(5, 1.0)).ok());
  ASSERT_TRUE(base.AddShape(RegularPolygon(9, 2.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  for (uint32_t v = 0; v < base.NumVertices(); ++v) {
    const uint32_t c = base.CopyOfVertex(v);
    ASSERT_LT(c, base.NumCopies());
  }
  size_t total = 0;
  for (ShapeId id = 0; id < base.NumShapes(); ++id) {
    total += base.CopiesOfShape(id).size();
  }
  EXPECT_EQ(total, base.NumCopies());
}

TEST(ShapeBaseTest, RejectsInvalidShape) {
  ShapeBase base;
  EXPECT_FALSE(
      base.AddShape(Polyline::Closed({{0, 0}, {2, 2}, {2, 0}, {0, 2}})).ok());
}

class MatcherBackendTest : public ::testing::TestWithParam<IndexBackend> {};

TEST_P(MatcherBackendTest, RetrievesExactCopy) {
  ShapeBaseOptions opts;
  opts.backend = GetParam();
  ShapeBase base(opts);
  // A few clearly distinct shapes.
  ASSERT_TRUE(base.AddShape(RegularPolygon(3, 1.0), kNoImage, "tri").ok());
  ASSERT_TRUE(base.AddShape(RegularPolygon(4, 1.0), kNoImage, "sq").ok());
  ASSERT_TRUE(base.AddShape(RegularPolygon(8, 1.0), kNoImage, "oct").ok());
  ASSERT_TRUE(base.AddShape(DenseRectangle(3.0, 1.0, 0.5), kNoImage,
                            "rect").ok());
  ASSERT_TRUE(base.Finalize().ok());

  EnvelopeMatcher matcher(&base);
  // Query: the square, rotated and scaled (retrieval must be invariant).
  const geom::AffineTransform t = geom::AffineTransform::Translation({9, 9}) *
                                  geom::AffineTransform::Rotation(1.1) *
                                  geom::AffineTransform::Scaling(4.0);
  MatchStats stats;
  auto results = matcher.Match(RegularPolygon(4, 1.0).Transformed(t), {},
                               &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(base.shape((*results)[0].shape_id).label, "sq");
  EXPECT_NEAR((*results)[0].distance, 0.0, 1e-6);
  EXPECT_GE(stats.iterations, 1u);
}

TEST_P(MatcherBackendTest, RetrievesNoisyShape) {
  util::Rng rng(91);
  ShapeBaseOptions opts;
  opts.backend = GetParam();
  ShapeBase base(opts);
  for (int n = 5; n <= 12; ++n) {
    ASSERT_TRUE(base.AddShape(RegularPolygon(n, 1.0)).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());

  // Noisy heptagon: jitter every vertex by up to 2% of the radius.
  Polyline noisy = RegularPolygon(7, 1.0);
  for (Point& p : noisy.mutable_vertices()) {
    p += Point{rng.Gaussian(0.02), rng.Gaussian(0.02)};
  }
  EnvelopeMatcher matcher(&base);
  auto results = matcher.Match(noisy);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(base.shape((*results)[0].shape_id).boundary.size(), 7u);
}

INSTANTIATE_TEST_SUITE_P(Backends, MatcherBackendTest,
                         ::testing::Values(IndexBackend::kBruteForce,
                                           IndexBackend::kGrid,
                                           IndexBackend::kKdTree,
                                           IndexBackend::kRangeTree,
                                           IndexBackend::kConvexLayers),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexBackend::kBruteForce:
                               return std::string("brute");
                             case IndexBackend::kGrid:
                               return std::string("grid");
                             case IndexBackend::kKdTree:
                               return std::string("kd");
                             case IndexBackend::kRangeTree:
                               return std::string("rangetree");
                             case IndexBackend::kConvexLayers:
                               return std::string("layers");
                           }
                           return std::string("unknown");
                         });

TEST(MatcherTest, KBestReturnsSortedDistinctShapes) {
  ShapeBase base;
  for (int n = 4; n <= 16; ++n) {
    ASSERT_TRUE(base.AddShape(RegularPolygon(n, 1.0)).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());
  EnvelopeMatcher matcher(&base);
  MatchOptions opts;
  opts.k = 5;
  auto results = matcher.Match(RegularPolygon(10, 1.0), opts);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 5u);
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].distance, (*results)[i].distance);
    EXPECT_NE((*results)[i - 1].shape_id, (*results)[i].shape_id);
  }
  EXPECT_EQ(base.shape((*results)[0].shape_id).boundary.size(), 10u);
}

TEST(MatcherTest, NoMatchWithinBoundReturnsEmpty) {
  ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(4, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  EnvelopeMatcher matcher(&base);
  MatchOptions opts;
  // Query is wildly different and the envelope is frozen tiny.
  opts.max_epsilon = 1e-7;
  opts.initial_epsilon = 1e-8;
  Polyline far = Polyline::Open({{0, 0}, {0.31, 0.57}, {0.9, 0.1}, {1.4, 0.9}});
  MatchStats stats;
  auto results = matcher.Match(far, opts, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_TRUE(stats.exhausted);
}

TEST(MatcherTest, StatsAndTracePopulated) {
  ShapeBase base;
  for (int n = 4; n <= 9; ++n) {
    ASSERT_TRUE(base.AddShape(RegularPolygon(n, 1.0)).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());
  EnvelopeMatcher matcher(&base);
  MatchStats stats;
  AccessTrace trace;
  auto results = matcher.Match(RegularPolygon(6, 1.0), {}, &stats, &trace);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.vertices_accepted, 0u);
  EXPECT_GE(stats.vertices_reported, stats.vertices_accepted);
  EXPECT_GT(stats.candidates_evaluated, 0u);
  EXPECT_FALSE(trace.empty());
  for (uint32_t copy_idx : trace) {
    EXPECT_LT(copy_idx, base.NumCopies());
  }
}

TEST(MatcherTest, RejectsBadOptions) {
  ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(4, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  EnvelopeMatcher matcher(&base);
  MatchOptions bad_beta;
  bad_beta.beta = 1.5;
  EXPECT_FALSE(matcher.Match(RegularPolygon(4, 1.0), bad_beta).ok());
  MatchOptions bad_growth;
  bad_growth.growth = 0.5;
  EXPECT_FALSE(matcher.Match(RegularPolygon(4, 1.0), bad_growth).ok());
}

TEST(MatcherTest, UnfinalizedBaseRejected) {
  ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(4, 1.0)).ok());
  EnvelopeMatcher matcher(&base);
  EXPECT_FALSE(matcher.Match(RegularPolygon(4, 1.0)).ok());
}

TEST(MatcherTest, ReusableAcrossQueries) {
  ShapeBase base;
  for (int n = 4; n <= 10; ++n) {
    ASSERT_TRUE(base.AddShape(RegularPolygon(n, 1.0)).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());
  EnvelopeMatcher matcher(&base);
  for (int n = 4; n <= 10; ++n) {
    auto results = matcher.Match(RegularPolygon(n, 1.0));
    ASSERT_TRUE(results.ok());
    ASSERT_FALSE(results->empty());
    EXPECT_EQ(base.shape((*results)[0].shape_id).boundary.size(),
              static_cast<size_t>(n))
        << "query n=" << n;
  }
}

TEST(FeatureIndexTest, ExactRetrievalWorks) {
  FeatureIndexBaseline index;
  ASSERT_TRUE(index.Add(0, RegularPolygon(4, 1.0)).ok());
  ASSERT_TRUE(index.Add(1, RegularPolygon(7, 1.0)).ok());
  ASSERT_TRUE(index.Add(2, DenseRectangle(2.0, 1.0, 0.5)).ok());
  auto results = index.Query(RegularPolygon(7, 1.0), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].shape_id, 1u);
  EXPECT_NEAR(results[0].distance, 0.0, 1e-9);
}

TEST(FeatureIndexTest, InvariantUnderSimilarityTransform) {
  FeatureIndexBaseline index;
  ASSERT_TRUE(index.Add(0, RegularPolygon(4, 1.0)).ok());
  ASSERT_TRUE(index.Add(1, RegularPolygon(6, 1.0)).ok());
  const geom::AffineTransform t = geom::AffineTransform::Translation({3, 4}) *
                                  geom::AffineTransform::Rotation(0.8) *
                                  geom::AffineTransform::Scaling(2.0);
  auto results = index.Query(RegularPolygon(6, 1.0).Transformed(t), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].shape_id, 1u);
  EXPECT_NEAR(results[0].distance, 0.0, 1e-9);
}

TEST(FeatureIndexTest, StorageOverheadScalesWithEdges) {
  FeatureIndexBaseline index;
  ASSERT_TRUE(index.Add(0, RegularPolygon(20, 1.0)).ok());
  EXPECT_EQ(index.NumEntries(), 40u);  // 2 per edge.
}

TEST(FeatureIndexTest, LocalDistortionBreaksEdgeNormalization) {
  // Figure 2's claim: distorting edges (splitting one edge into two with
  // a dent) hurts the edge-normalized baseline much more than the
  // diameter-normalized matcher. Here we verify the baseline's distance
  // blows up while h_avg stays small.
  Polyline clean = RegularPolygon(6, 1.0);
  // Distort: split each edge's midpoint outward by 5%.
  std::vector<Point> distorted_v;
  for (size_t i = 0; i < clean.NumEdges(); ++i) {
    const geom::Segment e = clean.Edge(i);
    distorted_v.push_back(e.a);
    distorted_v.push_back(e.Midpoint() * 1.05);
  }
  Polyline distorted = Polyline::Closed(distorted_v);

  FeatureIndexBaseline index;
  ASSERT_TRUE(index.Add(0, clean).ok());
  auto baseline = index.Query(distorted, 1);
  ASSERT_EQ(baseline.size(), 1u);

  const double avg = AvgMinDistanceSymmetric(clean, distorted);
  // The baseline distance is an order of magnitude worse than the
  // geometric-similarity distance.
  EXPECT_GT(baseline[0].distance, 5.0 * avg);
  EXPECT_LT(avg, 0.03);
}

}  // namespace
}  // namespace geosir::core
