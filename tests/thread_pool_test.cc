#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancellation.h"

namespace geosir::util {
namespace {

TEST(ThreadPoolTest, EveryItemRunsExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  pool.ParallelFor(n, 0, [&](size_t, size_t item) {
    counts[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, WorkerSlotsAreDense) {
  ThreadPool pool(4);
  std::atomic<size_t> max_slot{0};
  pool.ParallelFor(1000, 0, [&](size_t worker, size_t) {
    size_t seen = max_slot.load();
    while (worker > seen && !max_slot.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_slot.load(), pool.num_threads());
}

TEST(ThreadPoolTest, MaxParallelismOneRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(64, 1, [&](size_t worker, size_t) {
    if (std::this_thread::get_id() != caller || worker != 0) {
      all_on_caller = false;
    }
  });
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPoolTest, CapBoundsWorkerSlots) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.MaxSlots(3), 3u);
  EXPECT_EQ(pool.MaxSlots(0), 8u);
  EXPECT_EQ(pool.MaxSlots(64), 8u);
  std::atomic<size_t> max_slot{0};
  pool.ParallelFor(4096, 3, [&](size_t worker, size_t) {
    size_t seen = max_slot.load();
    while (worker > seen && !max_slot.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_slot.load(), 3u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  pool.ParallelFor(16, 0, [&](size_t, size_t) {
    // A nested loop on the same pool must not deadlock; it degrades to
    // inline execution on the current worker.
    long long local = 0;
    pool.ParallelFor(10, 0, [&](size_t worker, size_t item) {
      EXPECT_EQ(worker, 0u);
      local += static_cast<long long>(item);
    });
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 16 * 45);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(3);
  long long grand_total = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<long long> out(round + 1, 0);
    pool.ParallelFor(out.size(), 0, [&](size_t, size_t item) {
      out[item] = static_cast<long long>(item) + round;
    });
    grand_total += std::accumulate(out.begin(), out.end(), 0LL);
  }
  long long expected = 0;
  for (int round = 0; round < 200; ++round) {
    for (int item = 0; item <= round; ++item) expected += item + round;
  }
  EXPECT_EQ(grand_total, expected);
}

TEST(ThreadPoolTest, SingleThreadPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int runs = 0;
  pool.ParallelFor(5, 0, [&](size_t worker, size_t) {
    EXPECT_EQ(worker, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 5);
}

TEST(ThreadPoolTest, SharedPoolIsSingletonAndUsable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.ParallelFor(100, 0, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, 0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, BodyExceptionIsRethrownOnCallerAndCancelsRest) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::atomic<size_t> ran{0};
  bool caught = false;
  try {
    pool.ParallelFor(n, 0, [&](size_t, size_t item) {
      if (item == 3) throw std::runtime_error("boom");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(caught);
  // The throwing item never counts, so a full run is impossible; the real
  // assertion is that the loop returned (barrier held) with the exception.
  EXPECT_LT(ran.load(), n);
}

TEST(ThreadPoolTest, FirstExceptionWinsWhenSeveralSlotsThrow) {
  ThreadPool pool(4);
  int caught = 0;
  try {
    pool.ParallelFor(1000, 0, [&](size_t, size_t) {
      throw std::runtime_error("each item throws");
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   100, 0, [](size_t, size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.ParallelFor(500, 0,
                   [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionAtThrowingItem) {
  ThreadPool pool(1);  // helpers == 0: inline path.
  int ran = 0;
  EXPECT_THROW(pool.ParallelFor(10, 0,
                                [&](size_t, size_t item) {
                                  if (item == 4) throw std::runtime_error("x");
                                  ++ran;
                                }),
               std::runtime_error);
  EXPECT_EQ(ran, 4);  // Items after the throw were cancelled.
}

TEST(ThreadPoolTest, CancelStopsClaimingNewItems) {
  ThreadPool pool(4);
  CancellationToken token;
  const size_t n = 1u << 20;
  std::atomic<size_t> ran{0};
  pool.ParallelFor(
      n, 0,
      [&](size_t, size_t item) {
        if (item == 0) token.Cancel("enough");
        ran.fetch_add(1, std::memory_order_relaxed);
      },
      &token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(ran.load(), 1u);  // In-flight items finish (checkpointed exit).
  EXPECT_LT(ran.load(), n);   // But the bulk never starts.
}

TEST(ThreadPoolTest, AlreadyCancelledTokenRunsNothing) {
  CancellationToken token;
  token.Cancel("pre-cancelled");
  std::atomic<int> ran{0};
  ThreadPool pooled(4);
  pooled.ParallelFor(1000, 0, [&](size_t, size_t) { ran.fetch_add(1); },
                     &token);
  EXPECT_EQ(ran.load(), 0);
  ThreadPool inline_pool(1);
  inline_pool.ParallelFor(1000, 0, [&](size_t, size_t) { ran.fetch_add(1); },
                          &token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, ConcurrentExternalCallersSerializeSafely) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kItems = 2000;
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(kItems, 0,
                       [&](size_t, size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& th : callers) th.join();
  // Every caller's loop ran every item exactly once — concurrent callers
  // must queue for the pool, not corrupt each other's job state.
  EXPECT_EQ(total.load(), kCallers * kItems);
}

}  // namespace
}  // namespace geosir::util
