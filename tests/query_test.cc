#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "query/image_base.h"
#include "query/operators.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/selectivity.h"
#include "query/topology.h"
#include "util/rng.h"

namespace geosir::query {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

Polyline Rect(Point lo, Point hi) {
  return Polyline::Closed({lo, {hi.x, lo.y}, hi, {lo.x, hi.y}});
}

TEST(TopologyTest, RelationsDetected) {
  const Polyline outer = Rect({0, 0}, {10, 10});
  const Polyline inner = Rect({2, 2}, {4, 4});
  const Polyline crossing = Rect({8, 8}, {12, 12});
  const Polyline away = Rect({20, 20}, {22, 22});

  EXPECT_TRUE(TestRelation(Relation::kContain, outer, inner));
  EXPECT_FALSE(TestRelation(Relation::kContain, inner, outer));
  EXPECT_TRUE(TestRelation(Relation::kOverlap, outer, crossing));
  EXPECT_FALSE(TestRelation(Relation::kOverlap, outer, inner));
  EXPECT_TRUE(TestRelation(Relation::kDisjoint, outer, away));
  EXPECT_FALSE(TestRelation(Relation::kDisjoint, outer, inner));
}

TEST(TopologyTest, OpenPolylineRelations) {
  const Polyline box = Rect({0, 0}, {10, 10});
  const Polyline inside_path = Polyline::Open({{1, 1}, {3, 2}, {5, 1}});
  const Polyline crossing_path = Polyline::Open({{5, 5}, {15, 5}});
  EXPECT_TRUE(TestRelation(Relation::kContain, box, inside_path));
  EXPECT_FALSE(TestRelation(Relation::kContain, inside_path, box));
  EXPECT_TRUE(TestRelation(Relation::kOverlap, box, crossing_path));
}

TEST(TopologyTest, GraphBuildAndEdgeDirections) {
  const Polyline outer = Rect({0, 0}, {10, 10});
  const Polyline inner = Rect({2, 2}, {4, 4});
  const Polyline lapping = Rect({9, 9}, {12, 12});
  std::vector<core::ShapeId> ids{0, 1, 2};
  std::vector<const Polyline*> shapes{&outer, &inner, &lapping};
  const TopologyGraph graph = TopologyGraph::Build(ids, shapes);

  EXPECT_EQ(graph.RelationBetween(0, 1), Relation::kContain);
  EXPECT_EQ(graph.RelationBetween(1, 0), Relation::kDisjoint);  // No edge.
  EXPECT_EQ(graph.RelationBetween(0, 2), Relation::kOverlap);
  EXPECT_EQ(graph.RelationBetween(2, 0), Relation::kOverlap);
  EXPECT_EQ(graph.RelationBetween(1, 2), Relation::kDisjoint);
  EXPECT_EQ(graph.EdgesFrom(0).size(), 2u);
}

TEST(TopologyTest, DiameterAngle) {
  // Horizontal vs vertical rectangles: diameters are the diagonals, so
  // compare two rects rotated by 90 degrees.
  const Polyline horizontal =
      Polyline::Closed({{0, 0}, {4, 0}, {4, 0.2}, {0, 0.2}});
  const Polyline vertical =
      Polyline::Closed({{0, 0}, {0.2, 0}, {0.2, 4}, {0, 4}});
  const double angle = std::fabs(DiameterAngle(horizontal, vertical));
  // Diameters are near-diagonal; angle should be near pi/2 (within the
  // diagonal skew of the thin rectangles).
  EXPECT_NEAR(angle, M_PI / 2, 0.15);
}

TEST(SelectivityTest, SignificantVerticesBounds) {
  for (int n = 3; n <= 24; n += 3) {
    const Polyline poly = RegularPolygon(n, 1.0);
    const double vs = SignificantVertices(poly);
    EXPECT_GT(vs, 0.0) << n;
    EXPECT_LE(vs, static_cast<double>(n)) << n;
  }
}

TEST(SelectivityTest, PaperWorkedExample) {
  // Figure 9 left: the 5-vertex normalized shape with stated per-vertex
  // contributions summing to 2*(1/2 + sqrt(10)/10) +
  // 2*(3/8 + (2+sqrt2)sqrt10/20) + (1/2 + sqrt5/10).
  // Reconstruct such a shape: a "house" profile with the stated angles
  // is the unit-diameter pentagon below.
  const Polyline house = Polyline::Closed(
      {{0, 0}, {1, 0}, {1, 0.4}, {0.5, 0.6}, {0, 0.4}});
  const double vs = SignificantVertices(house);
  // The construction is not the paper's exact shape; assert the formula
  // produces the expected range (significant but < V(Q) = 5).
  EXPECT_GT(vs, 1.5);
  EXPECT_LT(vs, 5.0);
}

TEST(SelectivityTest, DegenerateVerticesContributeLittle) {
  // A square vs the same square with 4 extra collinear mid-edge vertices:
  // V(Q) grows by 4 but V_S(Q) must grow much less (collinear vertices
  // have angle pi -> zero angle term; only edge-length terms persist).
  const Polyline square = Rect({0, 0}, {1, 1});
  const Polyline subdivided = Polyline::Closed({{0, 0},
                                                {0.5, 0},
                                                {1, 0},
                                                {1, 0.5},
                                                {1, 1},
                                                {0.5, 1},
                                                {0, 1},
                                                {0, 0.5}});
  const double vs_square = SignificantVertices(square);
  const double vs_subdivided = SignificantVertices(subdivided);
  EXPECT_LT(std::fabs(vs_subdivided - vs_square), 1.0);
}

TEST(SelectivityTest, ModelAdapts) {
  SelectivityModel model(10.0);
  EXPECT_NEAR(model.Estimate(2.0), 5.0, 1e-12);
  model.Observe(2.0, 8);  // c sample = 16.
  EXPECT_NEAR(model.c(), 16.0, 1e-12);
  model.Observe(4.0, 2);  // c sample = 8 -> mean 12.
  EXPECT_NEAR(model.c(), 12.0, 1e-12);
  EXPECT_EQ(model.observations(), 2u);
}

TEST(AstTest, BuildersAndToString) {
  QueryPtr q = Intersect(
      Similar(RegularPolygon(5, 1.0)),
      Complement(Overlap(RegularPolygon(4, 1.0), RegularPolygon(3, 1.0))));
  const std::string text = ToString(*q);
  EXPECT_NE(text.find("similar"), std::string::npos);
  EXPECT_NE(text.find("overlap"), std::string::npos);
  EXPECT_NE(text.find("~"), std::string::npos);
}

TEST(AstTest, DnfOfLeafIsSingleTerm) {
  QueryPtr q = Similar(RegularPolygon(5, 1.0));
  auto dnf = ToDnf(*q);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->terms.size(), 1u);
  ASSERT_EQ(dnf->terms[0].factors.size(), 1u);
  EXPECT_FALSE(dnf->terms[0].factors[0].complemented);
}

TEST(AstTest, DnfDistributesIntersectionOverUnion) {
  // (A | B) & C -> A&C | B&C.
  QueryPtr q = Intersect(Union(Similar(RegularPolygon(3, 1.0)),
                               Similar(RegularPolygon(4, 1.0))),
                         Similar(RegularPolygon(5, 1.0)));
  auto dnf = ToDnf(*q);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->terms.size(), 2u);
  for (const DnfTerm& term : dnf->terms) {
    EXPECT_EQ(term.factors.size(), 2u);
  }
}

TEST(AstTest, DnfPushesComplementsWithDeMorgan) {
  // ~(A | B) -> ~A & ~B (one term, both complemented).
  QueryPtr q = Complement(Union(Similar(RegularPolygon(3, 1.0)),
                                Similar(RegularPolygon(4, 1.0))));
  auto dnf = ToDnf(*q);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->terms.size(), 1u);
  ASSERT_EQ(dnf->terms[0].factors.size(), 2u);
  EXPECT_TRUE(dnf->terms[0].factors[0].complemented);
  EXPECT_TRUE(dnf->terms[0].factors[1].complemented);
}

TEST(AstTest, DoubleComplementCancels) {
  QueryPtr q = Complement(Complement(Similar(RegularPolygon(3, 1.0))));
  auto dnf = ToDnf(*q);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->terms.size(), 1u);
  EXPECT_FALSE(dnf->terms[0].factors[0].complemented);
}

/// Shared fixture: a small image base with known ground truth.
///  image 0: big square containing a triangle.
///  image 1: big square overlapping a pentagon-sized square.
///  image 2: triangle and pentagon, disjoint.
///  image 3: only a hexagon.
class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tri_ = RegularPolygon(3, 1.0, {3, 3});
    penta_ = RegularPolygon(5, 1.0, {8, 8});
    hexa_ = RegularPolygon(6, 1.0, {4, 4});
    big_ = Rect({0, 0}, {10, 10});

    ASSERT_TRUE(base_.AddImage({big_, RegularPolygon(3, 1.0, {5, 5})},
                               "contains-tri").ok());
    ASSERT_TRUE(base_.AddImage({Rect({0, 0}, {6, 6}),
                                Rect({5, 5}, {11, 11})},
                               "overlapping-squares").ok());
    ASSERT_TRUE(base_.AddImage({RegularPolygon(3, 1.0, {0, 0}),
                                RegularPolygon(5, 1.0, {8, 8})},
                               "tri-penta-disjoint").ok());
    ASSERT_TRUE(base_.AddImage({RegularPolygon(6, 1.0, {4, 4})},
                               "hexa-only").ok());
    ASSERT_TRUE(base_.Finalize().ok());
    context_ = std::make_unique<QueryContext>(&base_);
  }

  Polyline tri_, penta_, hexa_, big_;
  ImageBase base_;
  std::unique_ptr<QueryContext> context_;
};

TEST_F(QueryFixture, SimilarOperator) {
  auto images = context_->EvalSimilar(RegularPolygon(3, 1.0));
  ASSERT_TRUE(images.ok());
  EXPECT_EQ(*images, (ImageSet{0, 2}));
  auto hexa = context_->EvalSimilar(RegularPolygon(6, 1.0));
  ASSERT_TRUE(hexa.ok());
  EXPECT_EQ(*hexa, (ImageSet{3}));
}

TEST_F(QueryFixture, ContainOperator) {
  for (TopoStrategy strategy :
       {TopoStrategy::kDriveSmaller, TopoStrategy::kIntersectImages}) {
    auto images = context_->EvalTopological(
        Relation::kContain, Rect({0, 0}, {1, 1}), RegularPolygon(3, 1.0),
        std::nullopt, strategy);
    ASSERT_TRUE(images.ok());
    EXPECT_EQ(*images, (ImageSet{0})) << "strategy "
                                      << static_cast<int>(strategy);
  }
}

TEST_F(QueryFixture, OverlapOperator) {
  for (TopoStrategy strategy :
       {TopoStrategy::kDriveSmaller, TopoStrategy::kIntersectImages}) {
    auto images = context_->EvalTopological(
        Relation::kOverlap, Rect({0, 0}, {1, 1}), Rect({0, 0}, {1, 1}),
        std::nullopt, strategy);
    ASSERT_TRUE(images.ok());
    EXPECT_EQ(*images, (ImageSet{1}));
  }
}

TEST_F(QueryFixture, DisjointOperator) {
  for (TopoStrategy strategy :
       {TopoStrategy::kDriveSmaller, TopoStrategy::kIntersectImages}) {
    auto images = context_->EvalTopological(
        Relation::kDisjoint, RegularPolygon(3, 1.0), RegularPolygon(5, 1.0),
        std::nullopt, strategy);
    ASSERT_TRUE(images.ok());
    EXPECT_EQ(*images, (ImageSet{2}));
  }
}

TEST_F(QueryFixture, ComplementViaPlanner) {
  // similar(tri) & ~contain(square, tri): image 0 has the containment,
  // image 2 has a triangle without it.
  QueryPtr q = Intersect(
      Similar(RegularPolygon(3, 1.0)),
      Complement(Contain(Rect({0, 0}, {1, 1}), RegularPolygon(3, 1.0))));
  auto result = ExecuteQuery(*q, context_.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (ImageSet{2}));
}

TEST_F(QueryFixture, UnionViaPlanner) {
  QueryPtr q = Union(Similar(RegularPolygon(6, 1.0)),
                     Similar(RegularPolygon(5, 1.0)));
  auto result = ExecuteQuery(*q, context_.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (ImageSet{2, 3}));
}

TEST_F(QueryFixture, PlannerExplainsAndOrders) {
  QueryPtr q = Intersect(Similar(RegularPolygon(3, 1.0)),
                         Similar(RegularPolygon(5, 1.0)));
  PlanExplanation explanation;
  auto result = ExecuteQuery(*q, context_.get(), {}, &explanation);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (ImageSet{2}));
  EXPECT_EQ(explanation.num_terms, 1u);
  EXPECT_EQ(explanation.num_factors, 2u);
  EXPECT_FALSE(explanation.text.empty());
}

TEST_F(QueryFixture, SimilarSetsAreCached) {
  context_->ResetStats();
  ASSERT_TRUE(context_->EvalSimilar(RegularPolygon(3, 1.0)).ok());
  ASSERT_TRUE(context_->EvalSimilar(RegularPolygon(3, 1.0)).ok());
  EXPECT_EQ(context_->stats().similar_evaluations, 1u);
  EXPECT_EQ(context_->stats().similar_cache_hits, 1u);
}

TEST_F(QueryFixture, AngleConstraintFilters) {
  // Image 1's overlapping squares have parallel diameters (angle ~ 0).
  auto zero = context_->EvalTopological(
      Relation::kOverlap, Rect({0, 0}, {1, 1}), Rect({0, 0}, {1, 1}), 0.0,
      TopoStrategy::kIntersectImages);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, (ImageSet{1}));
  auto perpendicular = context_->EvalTopological(
      Relation::kOverlap, Rect({0, 0}, {1, 1}), Rect({0, 0}, {1, 1}),
      M_PI / 2, TopoStrategy::kIntersectImages);
  ASSERT_TRUE(perpendicular.ok());
  EXPECT_TRUE(perpendicular->empty());
}

TEST_F(QueryFixture, ParserRoundTrip) {
  std::map<std::string, Polyline> shapes;
  shapes["tri"] = RegularPolygon(3, 1.0);
  shapes["sq"] = Rect({0, 0}, {1, 1});

  auto q = ParseQuery("similar(tri) & ~contain(sq, tri)", shapes);
  ASSERT_TRUE(q.ok());
  auto result = ExecuteQuery(**q, context_.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (ImageSet{2}));
}

TEST(ParserTest, Errors) {
  std::map<std::string, Polyline> shapes;
  shapes["a"] = RegularPolygon(3, 1.0);
  EXPECT_FALSE(ParseQuery("similar(b)", shapes).ok());       // Unknown name.
  EXPECT_FALSE(ParseQuery("similar(a", shapes).ok());        // Missing ')'.
  EXPECT_FALSE(ParseQuery("frobnicate(a)", shapes).ok());    // Unknown op.
  EXPECT_FALSE(ParseQuery("similar(a) extra", shapes).ok()); // Trailing.
  EXPECT_FALSE(ParseQuery("contain(a)", shapes).ok());       // Arity.
}

TEST(ParserTest, AngleForms) {
  std::map<std::string, Polyline> shapes;
  shapes["a"] = RegularPolygon(3, 1.0);
  shapes["b"] = RegularPolygon(4, 1.0);
  auto with_angle = ParseQuery("overlap(a, b, 1.57)", shapes);
  ASSERT_TRUE(with_angle.ok());
  ASSERT_TRUE((*with_angle)->theta.has_value());
  EXPECT_NEAR(*(*with_angle)->theta, 1.57, 1e-12);
  auto any = ParseQuery("overlap(a, b, any)", shapes);
  ASSERT_TRUE(any.ok());
  EXPECT_FALSE((*any)->theta.has_value());
  auto omitted = ParseQuery("overlap(a, b)", shapes);
  ASSERT_TRUE(omitted.ok());
  EXPECT_FALSE((*omitted)->theta.has_value());
}

TEST(SetOpsTest, Basics) {
  const ImageSet a{1, 3, 5};
  const ImageSet b{3, 4, 5, 7};
  EXPECT_EQ(SetUnion(a, b), (ImageSet{1, 3, 4, 5, 7}));
  EXPECT_EQ(SetIntersection(a, b), (ImageSet{3, 5}));
  EXPECT_EQ(SetDifference(a, b), (ImageSet{1}));
  EXPECT_EQ(SetUnion({}, b), b);
  EXPECT_TRUE(SetIntersection(a, {}).empty());
}

}  // namespace
}  // namespace geosir::query
