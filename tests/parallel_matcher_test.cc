// Determinism contract of the parallel query engine: for every
// MatchMeasure, Match() and MatchBatch() return bit-identical MatchResult
// vectors at num_threads = 1 and num_threads = 8 (the range-search phase
// is single-threaded and candidate scoring merges in candidate order, so
// parallelism must never change a distance, an ordering, or a tie-break).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir::core {
namespace {

using geom::Polyline;

constexpr size_t kNumShapes = 1000;
constexpr size_t kNumQueries = 6;

struct Fixture {
  std::unique_ptr<ShapeBase> base;
  std::vector<Polyline> queries;
};

Fixture BuildSeededFixture() {
  Fixture out;
  util::Rng rng(20240814);
  ShapeBaseOptions options;
  options.normalize.max_axes = 2;
  out.base = std::make_unique<ShapeBase>(options);

  workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = kNumShapes / 10;
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(workload::RandomStarPolygon(&rng, gen));
  }
  for (size_t s = 0; s < kNumShapes; ++s) {
    const Polyline instance = workload::JitterVertices(
        prototypes[s % num_protos], 0.008, &rng);
    EXPECT_TRUE(out.base->AddShape(instance).ok());
  }
  EXPECT_TRUE(out.base->Finalize().ok());

  util::Rng qrng(7);
  for (size_t q = 0; q < kNumQueries; ++q) {
    out.queries.push_back(workload::JitterVertices(
        prototypes[(3 * q) % num_protos], 0.01, &qrng));
  }
  return out;
}

void ExpectIdentical(const std::vector<MatchResult>& serial,
                     const std::vector<MatchResult>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].shape_id, parallel[i].shape_id) << "rank " << i;
    EXPECT_EQ(serial[i].copy_index, parallel[i].copy_index) << "rank " << i;
    // Bit-identical, not just close.
    EXPECT_EQ(serial[i].distance, parallel[i].distance) << "rank " << i;
  }
}

class ParallelMatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = new Fixture(BuildSeededFixture()); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static Fixture* fixture_;
};

Fixture* ParallelMatcherTest::fixture_ = nullptr;

const MatchMeasure kAllMeasures[] = {
    MatchMeasure::kContinuousSymmetric,
    MatchMeasure::kContinuousDirected,
    MatchMeasure::kDiscreteSymmetric,
    MatchMeasure::kDiscreteDirected,
};

TEST_F(ParallelMatcherTest, MatchIsBitIdenticalAcrossThreadCounts) {
  util::ThreadPool pool(8);
  for (MatchMeasure measure : kAllMeasures) {
    MatchOptions options;
    options.measure = measure;
    options.k = 5;

    options.num_threads = 1;
    EnvelopeMatcher serial_matcher(fixture_->base.get());
    std::vector<std::vector<MatchResult>> serial;
    for (const Polyline& query : fixture_->queries) {
      auto result = serial_matcher.Match(query, options);
      ASSERT_TRUE(result.ok());
      serial.push_back(*std::move(result));
    }

    options.num_threads = 8;
    options.pool = &pool;
    EnvelopeMatcher parallel_matcher(fixture_->base.get());
    for (size_t i = 0; i < fixture_->queries.size(); ++i) {
      auto result = parallel_matcher.Match(fixture_->queries[i], options);
      ASSERT_TRUE(result.ok());
      ExpectIdentical(serial[i], *result);
    }
  }
}

TEST_F(ParallelMatcherTest, MatchBatchIsBitIdenticalAcrossThreadCounts) {
  util::ThreadPool pool(8);
  for (MatchMeasure measure : kAllMeasures) {
    MatchOptions options;
    options.measure = measure;
    options.k = 3;

    options.num_threads = 1;
    auto serial = fixture_->base->MatchBatch(fixture_->queries, options);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(serial->size(), fixture_->queries.size());

    options.num_threads = 8;
    options.pool = &pool;
    std::vector<MatchStats> stats;
    auto parallel =
        fixture_->base->MatchBatch(fixture_->queries, options, &stats);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), fixture_->queries.size());
    ASSERT_EQ(stats.size(), fixture_->queries.size());
    for (size_t i = 0; i < serial->size(); ++i) {
      ExpectIdentical((*serial)[i], (*parallel)[i]);
      EXPECT_GE(stats[i].iterations, 1u);
    }
  }
}

TEST_F(ParallelMatcherTest, MatchBatchAgreesWithSequentialMatchLoop) {
  MatchOptions options;
  options.measure = MatchMeasure::kDiscreteSymmetric;
  options.k = 4;
  options.num_threads = 8;

  auto batch = fixture_->base->MatchBatch(fixture_->queries, options);
  ASSERT_TRUE(batch.ok());
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions serial = options;
  serial.num_threads = 1;
  for (size_t i = 0; i < fixture_->queries.size(); ++i) {
    auto single = matcher.Match(fixture_->queries[i], serial);
    ASSERT_TRUE(single.ok());
    ExpectIdentical(*single, (*batch)[i]);
  }
}

TEST_F(ParallelMatcherTest, RepeatedMatchHitsTheEvalMemo) {
  MatchOptions options;
  options.measure = MatchMeasure::kContinuousSymmetric;
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchStats first_stats;
  auto first = matcher.Match(fixture_->queries[0], options, &first_stats);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first_stats.candidates_evaluated, 0u);
  EXPECT_EQ(first_stats.eval_cache_hits, 0u);

  // Same query again: every component the first pass integrated must come
  // out of the memo (this is what makes DynamicShapeBase's tombstone
  // slack retries cheap).
  MatchStats second_stats;
  auto second = matcher.Match(fixture_->queries[0], options, &second_stats);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second_stats.eval_cache_hits, 0u);
  ExpectIdentical(*first, *second);

  // A different query invalidates the memo.
  MatchStats third_stats;
  auto third = matcher.Match(fixture_->queries[1], options, &third_stats);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third_stats.eval_cache_hits, 0u);
}

TEST_F(ParallelMatcherTest, SymmetricMeasureReusesDirectedComponent) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions directed;
  directed.measure = MatchMeasure::kContinuousDirected;
  MatchStats directed_stats;
  ASSERT_TRUE(
      matcher.Match(fixture_->queries[0], directed, &directed_stats).ok());

  // The symmetric measure on the same query shares the h_avg(copy, q)
  // halves already in the memo.
  MatchOptions symmetric;
  symmetric.measure = MatchMeasure::kContinuousSymmetric;
  MatchStats symmetric_stats;
  ASSERT_TRUE(
      matcher.Match(fixture_->queries[0], symmetric, &symmetric_stats).ok());
  EXPECT_GT(symmetric_stats.eval_cache_hits, 0u);
}

TEST(DynamicBatchTest, MatchBatchAgreesWithMatchLoop) {
  util::Rng rng(99);
  workload::PolygonGenOptions gen;
  DynamicShapeBase::Options options;
  options.base.normalize.max_axes = 2;
  options.match.measure = MatchMeasure::kDiscreteSymmetric;
  options.match.num_threads = 8;
  options.min_compaction_size = 16;
  DynamicShapeBase dynamic(options);

  std::vector<Polyline> prototypes;
  for (int p = 0; p < 12; ++p) {
    prototypes.push_back(workload::RandomStarPolygon(&rng, gen));
  }
  for (int s = 0; s < 150; ++s) {
    ASSERT_TRUE(dynamic
                    .Insert(workload::JitterVertices(prototypes[s % 12], 0.01,
                                                     &rng))
                    .ok());
  }
  for (uint64_t id = 0; id < 150; id += 7) {
    ASSERT_TRUE(dynamic.Remove(id).ok());
  }

  std::vector<Polyline> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back(
        workload::JitterVertices(prototypes[q % 12], 0.015, &rng));
  }
  auto batch = dynamic.MatchBatch(queries, /*k=*/3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = dynamic.Match(queries[i], /*k=*/3);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(single->size(), (*batch)[i].size());
    for (size_t r = 0; r < single->size(); ++r) {
      EXPECT_EQ((*single)[r].first, (*batch)[i][r].first);
      EXPECT_EQ((*single)[r].second, (*batch)[i][r].second);
    }
  }
}

}  // namespace
}  // namespace geosir::core
