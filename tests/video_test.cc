#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "video/video_base.h"
#include "workload/polygon_gen.h"
#include "workload/video_gen.h"

namespace geosir::video {
namespace {

using geom::Polyline;

class VideoBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(42);
    workload::PolygonGenOptions gen;
    gen.min_vertices = 10;
    gen.max_vertices = 16;
    for (int i = 0; i < 8; ++i) {
      prototypes_.push_back(RandomStarPolygon(&rng, gen));
    }
    workload::VideoSpec spec;
    spec.num_videos = 6;
    spec.frames_per_video = 10;
    spec.objects_per_video = 2;
    videos_ = workload::GenerateVideos(prototypes_, spec, &rng);

    for (size_t v = 0; v < videos_.size(); ++v) {
      const uint32_t id = base_.AddVideo("video" + std::to_string(v));
      ASSERT_EQ(id, v);
      for (const auto& frame : videos_[v].frames) {
        ASSERT_TRUE(base_.AddFrame(id, frame).ok());
      }
    }
    ASSERT_TRUE(base_.Finalize().ok());
  }

  std::vector<Polyline> prototypes_;
  std::vector<workload::GeneratedVideo> videos_;
  VideoBase base_;
};

TEST_F(VideoBaseTest, StructureBookkeeping) {
  EXPECT_EQ(base_.NumVideos(), 6u);
  for (uint32_t v = 0; v < base_.NumVideos(); ++v) {
    EXPECT_EQ(base_.video(v).num_frames, 10u);
  }
  // 6 videos x 10 frames x 2 objects (minus any skipped invalid shapes).
  EXPECT_GE(base_.shape_base().NumShapes(), 100u);
  EXPECT_LE(base_.shape_base().NumShapes(), 120u);
}

TEST_F(VideoBaseTest, TracksFollowObjectsAcrossFrames) {
  // Most objects should be tracked through most of their video: expect
  // a substantial number of long tracks.
  size_t long_tracks = 0;
  for (const ShapeTrack& t : base_.tracks()) {
    if (t.length() >= 8) {
      ++long_tracks;
      // A track lives inside one video with strictly increasing frames.
      for (size_t i = 1; i < t.instances.size(); ++i) {
        EXPECT_EQ(t.instances[i].frame, t.instances[i - 1].frame + 1);
      }
      EXPECT_LT(t.mean_step_distance, 0.06);
    }
  }
  EXPECT_GE(long_tracks, 8u);  // Of 12 objects total.
}

TEST_F(VideoBaseTest, EveryShapeBelongsToExactlyOneTrack) {
  std::set<std::pair<uint32_t, core::ShapeId>> seen;
  for (size_t t = 0; t < base_.tracks().size(); ++t) {
    for (const FrameShapeRef& ref : base_.tracks()[t].instances) {
      EXPECT_TRUE(seen.insert({base_.tracks()[t].video, ref.shape}).second)
          << "shape " << ref.shape << " in multiple tracks";
      EXPECT_EQ(base_.TrackOfShape(ref.shape), static_cast<long>(t));
    }
  }
  EXPECT_EQ(seen.size(), base_.shape_base().NumShapes());
}

TEST_F(VideoBaseTest, QueryFindsVideoShowingThePrototype) {
  // Query with the prototype of video 0's first object: video 0 must
  // rank among the top results.
  const int proto = videos_[0].prototypes[0];
  auto results = base_.Query(prototypes_[proto], 3);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  bool found = false;
  for (const VideoMatch& m : *results) {
    if (m.video == 0) {
      found = true;
      EXPECT_GE(m.track_length, 2u);
    }
    EXPECT_LT(m.distance, 0.1);
  }
  EXPECT_TRUE(found);
}

TEST_F(VideoBaseTest, QueryReturnsOneResultPerVideo) {
  auto results = base_.Query(prototypes_[0], 10);
  ASSERT_TRUE(results.ok());
  std::set<uint32_t> videos;
  for (const VideoMatch& m : *results) {
    EXPECT_TRUE(videos.insert(m.video).second);
  }
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].distance, (*results)[i].distance);
  }
}

TEST(VideoBaseErrorsTest, LifecycleEnforced) {
  VideoBase base;
  EXPECT_FALSE(base.AddFrame(0, {}).ok());  // No such video.
  const uint32_t v = base.AddVideo();
  ASSERT_TRUE(base.AddFrame(v, {geom::Polyline::Closed(
                                   {{0, 0}, {1, 0}, {1, 1}})})
                  .ok());
  EXPECT_FALSE(base.Query(geom::Polyline::Closed({{0, 0}, {1, 0}, {1, 1}}))
                   .ok());  // Not finalized.
  ASSERT_TRUE(base.Finalize().ok());
  EXPECT_FALSE(base.AddFrame(v, {}).ok());  // Finalized.
  auto results = base.Query(geom::Polyline::Closed({{0, 0}, {1, 0}, {1, 1}}));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

}  // namespace
}  // namespace geosir::video
