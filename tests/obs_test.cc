/// Observability subsystem tests: metric registry semantics, exporter
/// golden snapshots (Prometheus text format + JSON lines), per-query
/// traces, the slow-query log, and an end-to-end check that the built-in
/// instrumentation across matcher / storage / admission / thread-pool /
/// dynamic-base publishes its metric families into the default registry.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "query/admission.h"
#include "replication/follower.h"
#include "replication/replicated_shape_base.h"
#include "replication/replication_server.h"
#include "replication/socket_transport.h"
#include "storage/appendable_file.h"
#include "storage/external_simplex_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace geosir::obs {
namespace {

using geom::Point;
using geom::Polyline;

// ---------------------------------------------------------------------------
// MetricRegistry semantics.

TEST(MetricRegistryTest, SameSeriesReturnsSamePointer) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("geosir_test_total", "help");
  Counter* b = registry.GetCounter("geosir_test_total", "other help ignored");
  EXPECT_EQ(a, b);
  // Different labels are a different series of the same family.
  Counter* c =
      registry.GetCounter("geosir_test_total", "help", "reason=\"x\"");
  EXPECT_NE(a, c);
  a->Inc();
  a->Inc(4);
  c->Inc();
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("geosir_test_depth", "help");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);
  g->Add(-10);
  EXPECT_EQ(g->value(), -6);
}

TEST(MetricRegistryTest, HistogramBucketsAndSum) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("geosir_test_seconds", "help",
                                       {0.1, 1.0, 10.0});
  h->Observe(0.05);   // Bucket 0.
  h->Observe(0.1);    // Still bucket 0 (le is inclusive).
  h->Observe(0.5);    // Bucket 1.
  h->Observe(100.0);  // Overflow bucket.
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 0u);
  EXPECT_EQ(h->bucket_count(3), 1u);  // +Inf.
  EXPECT_NEAR(h->sum(), 100.65, 1e-6);
}

TEST(MetricRegistryTest, DisarmedOpsAreNoOps) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("geosir_test_total", "help");
  Gauge* g = registry.GetGauge("geosir_test_depth", "help");
  Histogram* h = registry.GetHistogram("geosir_test_seconds", "help", {1.0});
  SetArmed(false);
  c->Inc(5);
  g->Set(9);
  h->Observe(0.5);
  SetArmed(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricRegistryTest, ResetValuesKeepsRegistrations) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("geosir_test_total", "help");
  c->Inc(3);
  registry.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  // The cached pointer is still the live series.
  c->Inc();
  EXPECT_EQ(registry.GetCounter("geosir_test_total", "help")->value(), 1u);
}

// ---------------------------------------------------------------------------
// Exporter golden snapshots. A fixed registry must render byte-for-byte
// stable output in both formats.

RegistrySnapshot GoldenSnapshot() {
  MetricRegistry registry;
  registry.GetCounter("geosir_test_ops_total", "Ops processed")->Inc(3);
  registry
      .GetCounter("geosir_test_shed_total", "Sheds by reason",
                  "reason=\"a\"")
      ->Inc(1);
  registry
      .GetCounter("geosir_test_shed_total", "Sheds by reason",
                  "reason=\"b\"")
      ->Inc(2);
  registry.GetGauge("geosir_test_depth", "Queue depth")->Set(-4);
  Histogram* h = registry.GetHistogram("geosir_test_lat_seconds", "Latency",
                                       {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  return registry.Snapshot();
}

TEST(ExportTest, PrometheusGolden) {
  const std::string got = ToPrometheusText(GoldenSnapshot());
  const std::string want =
      "# HELP geosir_test_depth Queue depth\n"
      "# TYPE geosir_test_depth gauge\n"
      "geosir_test_depth -4\n"
      "# HELP geosir_test_lat_seconds Latency\n"
      "# TYPE geosir_test_lat_seconds histogram\n"
      "geosir_test_lat_seconds_bucket{le=\"0.1\"} 1\n"
      "geosir_test_lat_seconds_bucket{le=\"1\"} 2\n"
      "geosir_test_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "geosir_test_lat_seconds_sum 5.55\n"
      "geosir_test_lat_seconds_count 3\n"
      "# HELP geosir_test_ops_total Ops processed\n"
      "# TYPE geosir_test_ops_total counter\n"
      "geosir_test_ops_total 3\n"
      "# HELP geosir_test_shed_total Sheds by reason\n"
      "# TYPE geosir_test_shed_total counter\n"
      "geosir_test_shed_total{reason=\"a\"} 1\n"
      "geosir_test_shed_total{reason=\"b\"} 2\n";
  EXPECT_EQ(got, want);
}

TEST(ExportTest, JsonLinesGolden) {
  const std::string got = ToJsonLines(GoldenSnapshot());
  const std::string want =
      "{\"metric\":\"geosir_test_depth\",\"type\":\"gauge\",\"value\":-4}\n"
      "{\"metric\":\"geosir_test_lat_seconds\",\"type\":\"histogram\","
      "\"bounds\":[0.1,1],\"buckets\":[1,1,1],\"sum\":5.55,\"count\":3}\n"
      "{\"metric\":\"geosir_test_ops_total\",\"type\":\"counter\","
      "\"value\":3}\n"
      "{\"metric\":\"geosir_test_shed_total\",\"type\":\"counter\","
      "\"labels\":\"reason=\\\"a\\\"\",\"value\":1}\n"
      "{\"metric\":\"geosir_test_shed_total\",\"type\":\"counter\","
      "\"labels\":\"reason=\\\"b\\\"\",\"value\":2}\n";
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// Mini Prometheus parser used by the end-to-end test (and by the CI
// smoke test via the same grammar): every line is a comment or
// `name[{labels}] value`.

void AssertParsesAsPrometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line[0] == '#') {
      ASSERT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string type = line.substr(line.rfind(' ') + 1);
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
      }
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(series.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(series[0])) ||
                series[0] == '_')
        << line;
    const size_t brace = series.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
    // Value parses as a number.
    size_t consumed = 0;
    (void)std::stod(value, &consumed);
    EXPECT_EQ(consumed, value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(ExportTest, GoldenOutputPassesMiniParser) {
  AssertParsesAsPrometheus(ToPrometheusText(GoldenSnapshot()));
}

// ---------------------------------------------------------------------------
// QueryTrace and TraceSpan.

TEST(QueryTraceTest, RecordsRoundsEventsAndSummary) {
  QueryTrace trace;
  trace.Start("q1");
  RoundTrace round;
  round.round = 1;
  round.epsilon = 0.25;
  round.vertices_reported = 10;
  trace.AddRound(round);
  trace.AddEvent("degraded", "2 subtrees skipped");
  trace.Finish("exhausted", /*partial=*/false, /*degraded=*/true);
  EXPECT_EQ(trace.label(), "q1");
  EXPECT_EQ(trace.rounds().size(), 1u);
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.termination(), "exhausted");
  EXPECT_TRUE(trace.degraded());
  EXPECT_FALSE(trace.partial());
  EXPECT_GE(trace.total_ms(), 0.0);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"label\":\"q1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"termination\":\"exhausted\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("degraded"), std::string::npos);
  // Single line: jq/JSONL friendly.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(QueryTraceTest, StartClearsForReuse) {
  QueryTrace trace;
  trace.Start("first");
  trace.AddRound(RoundTrace{});
  trace.Finish("exhausted", false, false);
  trace.Start("second");
  EXPECT_EQ(trace.label(), "second");
  EXPECT_TRUE(trace.rounds().empty());
  EXPECT_TRUE(trace.events().empty());
}

TEST(QueryTraceTest, SpanRecordsEventAndNullIsNoOp) {
  QueryTrace trace;
  trace.Start("spans");
  { TraceSpan span(&trace, "normalize"); }
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, "span");
  EXPECT_NE(trace.events()[0].detail.find("normalize"), std::string::npos);
  { TraceSpan null_span(nullptr, "ignored"); }  // Must not crash.
}

// ---------------------------------------------------------------------------
// SlowQueryLog.

QueryTrace TimedTrace(const std::string& label, int sleep_ms) {
  QueryTrace trace;
  trace.Start(label);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  trace.Finish("exhausted", false, false);
  return trace;
}

TEST(SlowQueryLogTest, DisarmedRejectsEverything) {
  SlowQueryLog log(4);
  EXPECT_FALSE(log.Offer(TimedTrace("t", 0)));
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  SlowQueryLog log(4);
  log.set_armed(true);
  log.set_threshold_ms(10000.0);  // Nothing in a test is this slow.
  EXPECT_FALSE(log.Offer(TimedTrace("fast", 0)));
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowQueryLogTest, BoundedAndSortedWorstFirst) {
  SlowQueryLog log(3);
  log.set_armed(true);
  for (int i = 0; i < 6; ++i) {
    log.Offer(TimedTrace("t" + std::to_string(i), i % 3));
  }
  EXPECT_LE(log.size(), 3u);
  EXPECT_GT(log.size(), 0u);
  const std::vector<QueryTrace> kept = log.Snapshot();
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_GE(kept[i - 1].total_ms(), kept[i].total_ms());
  }
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

// ---------------------------------------------------------------------------
// Matcher integration: the trace the matcher records must reconcile with
// the MatchStats it returns.

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

void PopulateBase(core::ShapeBase* base) {
  util::Rng rng(77);
  for (int proto = 0; proto < 12; ++proto) {
    Polyline poly = RegularPolygon(5 + proto % 7, 1.0, {0, 0}, 0.25 * proto);
    for (Point& p : poly.mutable_vertices()) {
      p += Point{rng.Gaussian(0.01), rng.Gaussian(0.01)};
    }
    ASSERT_TRUE(base->AddShape(poly, proto).ok());
  }
  ASSERT_TRUE(base->Finalize().ok());
}

TEST(MatcherTraceTest, RoundDeltasSumToMatchStats) {
  core::ShapeBase base;
  PopulateBase(&base);
  core::EnvelopeMatcher matcher(&base);
  QueryTrace trace;
  core::MatchOptions options;
  options.k = 3;
  options.query_trace = &trace;
  core::MatchStats stats;
  auto got = matcher.Match(base.shape(0).boundary, options, &stats);
  ASSERT_TRUE(got.ok());
  ASSERT_FALSE(got->empty());

  EXPECT_NE(trace.label().find("match"), std::string::npos);
  EXPECT_EQ(trace.rounds().size(), stats.iterations);
  EXPECT_TRUE(trace.termination() == "early_exit" ||
              trace.termination() == "exhausted")
      << trace.termination();
  uint64_t reported = 0, accepted = 0, admitted = 0, cache_hits = 0;
  for (const RoundTrace& round : trace.rounds()) {
    reported += round.vertices_reported;
    accepted += round.vertices_accepted;
    admitted += round.candidates_admitted;
    cache_hits += round.eval_cache_hits;
    EXPECT_GT(round.epsilon, 0.0);
    EXPECT_GE(round.elapsed_ms, 0.0);
  }
  EXPECT_EQ(reported, stats.vertices_reported);
  EXPECT_EQ(accepted, stats.vertices_accepted);
  EXPECT_EQ(admitted, stats.candidates_evaluated);
  EXPECT_EQ(cache_hits, stats.eval_cache_hits);
}

TEST(MatcherTraceTest, ArmedSlowLogCapturesQueriesWithoutCallerTrace) {
  SlowQueryLog& log = SlowQueryLog::Default();
  log.Clear();
  log.set_threshold_ms(0.0);
  log.set_armed(true);
  {
    core::ShapeBase base;
    PopulateBase(&base);
    core::EnvelopeMatcher matcher(&base);
    core::MatchOptions options;
    options.k = 2;
    auto got = matcher.Match(base.shape(1).boundary, options);
    ASSERT_TRUE(got.ok());
  }
  log.set_armed(false);
  ASSERT_GE(log.size(), 1u);
  const QueryTrace worst = log.Snapshot().front();
  EXPECT_FALSE(worst.rounds().empty());
  EXPECT_FALSE(worst.termination().empty());
  log.Clear();
}

// ---------------------------------------------------------------------------
// End-to-end: exercising matcher + external storage + admission +
// thread pool + dynamic base must leave their metric families in the
// default registry, and the export of the whole registry must parse.

TEST(EndToEndMetricsTest, BuiltInFamiliesPublishToDefaultRegistry) {
  // Matcher over an external (buffered, block-backed) index.
  {
    core::ShapeBaseOptions options;
    options.index_factory = [] {
      return std::make_unique<storage::ExternalSimplexIndex>();
    };
    core::ShapeBase base(options);
    PopulateBase(&base);
    core::EnvelopeMatcher matcher(&base);
    core::MatchOptions match_options;
    match_options.k = 2;
    ASSERT_TRUE(matcher.Match(base.shape(0).boundary, match_options).ok());
  }
  // Admission controller.
  {
    query::AdmissionController controller{query::AdmissionOptions{}};
    auto ticket = controller.Admit(util::Deadline::Infinite());
    ASSERT_TRUE(ticket.ok());
  }
  // Pooled ParallelFor (2 threads forces the pooled path regardless of
  // the host's core count).
  {
    util::ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.ParallelFor(8, 0, [&](size_t, size_t item) {
      sum.fetch_add(static_cast<int>(item));
    });
    EXPECT_EQ(sum.load(), 28);
  }
  // Dynamic base delta + compaction.
  {
    core::DynamicShapeBase dynamic_base;
    ASSERT_TRUE(dynamic_base.Insert(RegularPolygon(6, 1.0), 0).ok());
    ASSERT_TRUE(dynamic_base.Compact().ok());
  }

  const std::string text =
      ToPrometheusText(MetricRegistry::Default().Snapshot());
  AssertParsesAsPrometheus(text);
  for (const char* family :
       {"geosir_matcher_queries_total", "geosir_matcher_latency_seconds",
        "geosir_matcher_terminations_total", "geosir_storage_buffer_hits_total",
        "geosir_storage_buffer_misses_total", "geosir_admission_admitted_total",
        "geosir_admission_wait_seconds", "geosir_threadpool_jobs_total",
        "geosir_threadpool_job_seconds", "geosir_dynamic_inserts_total",
        "geosir_dynamic_compactions_total", "geosir_geom_kernel_level",
        "geosir_geom_kernel_batched_edges_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "),
              std::string::npos)
        << "missing metric family: " << family;
  }
  // The JSONL export of the same snapshot renders one object per line.
  const std::string jsonl = ToJsonLines(MetricRegistry::Default().Snapshot());
  std::istringstream in(jsonl);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"metric\":\"geosir_"), std::string::npos) << line;
    ++lines;
  }
  EXPECT_GT(lines, 10u);
}

TEST(EndToEndMetricsTest, ReplicationFamiliesPublishToDefaultRegistry) {
  storage::MemEnv env;
  replication::ReplicatedOptions options;
  options.env = &env;
  options.base.min_compaction_size = 1u << 20;  // Rotations stay explicit.
  options.start_replication = false;            // Step followers inline.
  std::vector<replication::ReplicaSpec> replicas;
  replicas.emplace_back();
  replicas.back().dir = "replica0";
  auto tier = replication::ReplicatedShapeBase::Open("primary",
                                                     std::move(replicas),
                                                     options);
  ASSERT_TRUE(tier.ok()) << tier.status().message();
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*tier)->Insert(RegularPolygon(5 + static_cast<int>(i) % 4, 1.0), 0)
            .ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp().ok());
  // An explicit compaction rotates the generation, exercising the
  // follower's in-stream rotation counters; the reopen after Stop() is
  // what publishes the recovery families for a non-empty directory.
  ASSERT_TRUE((*tier)->Compact().ok());
  ASSERT_TRUE((*tier)->WaitForCatchUp().ok());
  std::vector<core::MatchStats> stats;
  auto results = (*tier)->MatchBatch({RegularPolygon(5, 1.0)}, 1, &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].replicated);

  const std::string text =
      ToPrometheusText(MetricRegistry::Default().Snapshot());
  AssertParsesAsPrometheus(text);
  for (const char* family :
       {// Satellite: durable-recovery counters surfaced through obs.
        "geosir_recoveries_total", "geosir_recovery_salvaged_total",
        "geosir_recovery_dirty_tail_rotations_total",
        "geosir_recovery_reinitialized_total", "geosir_recovery_generation",
        // Per-replica replication pipeline.
        "geosir_replication_applied_records_total",
        "geosir_replication_apply_batches_total",
        "geosir_replication_rotations_total",
        "geosir_replication_queries_total", "geosir_replication_lag_records",
        "geosir_replication_applied_lsn", "geosir_replication_apply_seconds",
        // Lag-aware batch router.
        "geosir_router_batches_total", "geosir_router_redirected_total",
        "geosir_router_stale_served_total", "geosir_router_shed_total",
        "geosir_router_exhausted_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "),
              std::string::npos)
        << "missing metric family: " << family;
  }
  // Replication series are labeled per replica.
  EXPECT_NE(text.find("replica=\"0\""), std::string::npos);
}

TEST(EndToEndMetricsTest, NetTransportFamiliesPublishToDefaultRegistry) {
  storage::MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  auto opened = storage::OpenDurableDynamicBase(
      "netprimary", core::DynamicShapeBase::Options{}, durability);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto primary =
      std::make_unique<storage::DurableDynamicBase>(std::move(*opened));

  replication::ReplicationServerOptions server_options;
  server_options.env = &env;
  server_options.dir = "netprimary";
  server_options.journal = primary->journal.get();
  auto server = replication::ReplicationServer::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  replication::SocketTransportOptions transport_options;
  transport_options.host = "127.0.0.1";
  transport_options.port = (*server)->port();
  transport_options.reconnect = replication::DefaultReconnectPolicy(7);
  transport_options.reconnect.base_backoff_us = 200;
  transport_options.reconnect.max_backoff_us = 5000;
  replication::SocketLogTransport transport(transport_options);

  replication::FollowerOptions follower_options;
  follower_options.env = &env;
  follower_options.dir = "netreplica0";
  follower_options.reconnect.base_backoff_us = 200;
  follower_options.reconnect.max_backoff_us = 5000;
  auto follower =
      replication::Follower::Open(std::move(follower_options), &transport);
  ASSERT_TRUE(follower.ok()) << follower.status().message();

  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        primary->base->Insert(RegularPolygon(4 + static_cast<int>(i) % 3, 1.0),
                              0)
            .ok());
  }
  const uint64_t tail = primary->journal->tail_state().next_lsn;
  for (int round = 0; round < 100 && (*follower)->applied_lsn() < tail;
       ++round) {
    ASSERT_TRUE((*follower)->Pump().ok());
  }
  EXPECT_EQ((*follower)->applied_lsn(), tail);

  // Stopping the server makes the next pump fail after retries, which
  // publishes the per-code fetch-error counter and sets the last-error
  // gauge — the "why is my follower behind" dashboard path.
  (*server)->Stop();
  auto pump = (*follower)->Pump();
  EXPECT_FALSE(pump.ok());
  EXPECT_EQ((*follower)->status().last_fetch_error,
            util::StatusCode::kUnavailable);
  EXPECT_GT((*follower)->status().counters.fetch_errors, 0u);

  const std::string text =
      ToPrometheusText(MetricRegistry::Default().Snapshot());
  AssertParsesAsPrometheus(text);
  for (const char* family :
       {// Primary-side socket endpoint.
        "geosir_net_server_connections_total",
        "geosir_net_server_active_connections",
        "geosir_net_server_frames_total", "geosir_net_server_bytes_total",
        "geosir_net_server_request_seconds",
        // Client transport.
        "geosir_net_client_connects_total",
        "geosir_net_client_reconnects_total", "geosir_net_client_frames_total",
        "geosir_net_client_bytes_total", "geosir_net_client_call_seconds",
        // Follower transport identity + error surface.
        "geosir_replication_transport_info",
        "geosir_replication_last_fetch_error_code",
        "geosir_replication_fetch_errors_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "),
              std::string::npos)
        << "missing metric family: " << family;
  }
  // The transport identity gauge carries the endpoint as a label, and
  // the fetch-error counter is split per status code.
  EXPECT_NE(text.find("transport=\"socket://127.0.0.1:"), std::string::npos);
  EXPECT_NE(text.find("geosir_replication_fetch_errors_total{"),
            std::string::npos);
  EXPECT_NE(text.find("code=\"Unavailable\""), std::string::npos);
}

}  // namespace
}  // namespace geosir::obs
