// Property-based tests of the similarity measures (Section 2.2): the
// paper's claims about h_avg are checked on randomized shape pairs across
// seeds (TEST_P sweeps).

#include <cmath>

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/similarity.h"
#include "geom/transform.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir::core {
namespace {

using geom::AffineTransform;
using geom::Polyline;

class SimilarityPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng MakeRng() const { return util::Rng(1000 + GetParam()); }
};

TEST_P(SimilarityPropertyTest, NonNegativityAndIdentity) {
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  EXPECT_GE(AvgMinDistance(a, b), 0.0);
  EXPECT_NEAR(AvgMinDistance(a, a), 0.0, 1e-9);
  EXPECT_NEAR(AvgMinDistanceSymmetric(b, b), 0.0, 1e-9);
}

TEST_P(SimilarityPropertyTest, SymmetricVariantIsSymmetric) {
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  EXPECT_NEAR(AvgMinDistanceSymmetric(a, b), AvgMinDistanceSymmetric(b, a),
              1e-9);
  EXPECT_NEAR(DiscreteHausdorff(a, b), DiscreteHausdorff(b, a), 1e-12);
}

TEST_P(SimilarityPropertyTest, SymmetricDominatesDirected) {
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  const double sym = AvgMinDistanceSymmetric(a, b);
  EXPECT_GE(sym + 1e-12, AvgMinDistance(a, b));
  EXPECT_GE(sym + 1e-12, AvgMinDistance(b, a));
}

TEST_P(SimilarityPropertyTest, ScaleEquivariance) {
  // h_avg(sA, sB) == s * h_avg(A, B) for uniform scaling s.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  const double s = rng.Uniform(0.5, 4.0);
  const AffineTransform scale = AffineTransform::Scaling(s);
  const double base = AvgMinDistance(a, b);
  const double scaled = AvgMinDistance(a.Transformed(scale),
                                       b.Transformed(scale));
  EXPECT_NEAR(scaled, s * base, 1e-4 * std::max(1.0, s * base));
}

TEST_P(SimilarityPropertyTest, RigidMotionInvariance) {
  // Moving both shapes by the same rigid motion leaves h_avg unchanged.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  const AffineTransform motion =
      AffineTransform::Translation({rng.Uniform(-5, 5), rng.Uniform(-5, 5)}) *
      AffineTransform::Rotation(rng.Uniform(0, 2 * M_PI));
  const double before = AvgMinDistance(a, b);
  const double after =
      AvgMinDistance(a.Transformed(motion), b.Transformed(motion));
  EXPECT_NEAR(after, before, 1e-4 * std::max(1.0, before));
}

TEST_P(SimilarityPropertyTest, DominatedByHausdorff) {
  // The average of the min-distances can never exceed their maximum:
  // h_avg(A,B) <= h(A,B) (discrete variants, same vertex set).
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  EXPECT_LE(DiscreteAvgMinDistance(a, b),
            DiscreteDirectedHausdorff(a, b) + 1e-12);
}

TEST_P(SimilarityPropertyTest, PartialHausdorffMonotoneInFraction) {
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  double prev = 0.0;
  for (double f : {0.25, 0.5, 0.75, 1.0}) {
    const double v = PartialDirectedHausdorff(a, b, f);
    EXPECT_GE(v + 1e-12, prev) << "fraction " << f;
    prev = v;
  }
  EXPECT_NEAR(prev, DiscreteDirectedHausdorff(a, b), 1e-12);
}

TEST_P(SimilarityPropertyTest, NoiseMovesMeasureProportionally) {
  // Small jitter moves h_avg by at most a small multiple of the jitter
  // magnitude (robustness: no Hausdorff-style outlier blow-up).
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline noisy = workload::JitterVertices(a, 0.01, &rng);
  const double d = AvgMinDistanceSymmetric(a, noisy);
  // Diameter ~2-3, jitter sigma = 1% of diameter; the average distance
  // must be of the same order (not amplified).
  EXPECT_LT(d, 0.12);
}

TEST_P(SimilarityPropertyTest, VertexDensityIndependence) {
  // Core claim: the measure is (nearly) independent of how many vertices
  // describe the same geometry.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::RandomStarPolygon(&rng);
  const Polyline a_dense = workload::ResampleBoundary(a, 3 * (int)a.size());
  const double sparse = AvgMinDistance(a, b);
  const double dense = AvgMinDistance(a_dense, b);
  // Resampling changes the shape slightly (corner chords), so allow a
  // tolerance proportional to the measure.
  EXPECT_NEAR(dense, sparse, 0.1 * std::max(0.05, sparse));
}

TEST_P(SimilarityPropertyTest, NormalizedMatchDistanceInvariantToQueryPose) {
  // End-to-end invariance: the distance between normalized copies does
  // not depend on the pose of the inputs.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  const Polyline b = workload::JitterVertices(a, 0.01, &rng);
  auto na = NormalizeQuery(a);
  auto nb = NormalizeQuery(b);
  ASSERT_TRUE(na.ok());
  ASSERT_TRUE(nb.ok());
  const double d1 = AvgMinDistanceSymmetric(na->shape, nb->shape);

  const AffineTransform pose =
      AffineTransform::Translation({rng.Uniform(-9, 9), rng.Uniform(-9, 9)}) *
      AffineTransform::Rotation(rng.Uniform(0, 2 * M_PI)) *
      AffineTransform::Scaling(rng.Uniform(0.2, 5.0));
  auto nb2 = NormalizeQuery(b.Transformed(pose));
  ASSERT_TRUE(nb2.ok());
  const double d2 = AvgMinDistanceSymmetric(na->shape, nb2->shape);
  EXPECT_NEAR(d1, d2, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace geosir::core
