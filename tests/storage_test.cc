#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "storage/block_file.h"
#include "storage/layout.h"
#include "storage/shape_record.h"
#include "storage/stored_shape_base.h"
#include "util/rng.h"

namespace geosir::storage {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(ShapeRecordTest, RoundTrip) {
  core::Shape s;
  s.boundary = RegularPolygon(9, 1.0, {2, 3}, 0.4);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  hashing::CurveQuadruple quad;
  quad.c[0] = 3;
  quad.c[1] = 17;
  quad.c[2] = 0;
  quad.c[3] = 50;

  const ShapeRecord record = MakeRecord(copies->front(), 42, quad);
  std::vector<uint8_t> buf;
  SerializeRecord(record, &buf);
  EXPECT_EQ(buf.size(), record.ByteSize());

  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(back->shape_id, record.shape_id);
  EXPECT_EQ(back->copy_index, record.copy_index);
  EXPECT_EQ(back->image, 42u);
  EXPECT_EQ(back->closed, true);
  EXPECT_TRUE(back->quadruple == quad);
  ASSERT_EQ(back->vertices.size(), record.vertices.size());
  for (size_t i = 0; i < back->vertices.size(); ++i) {
    EXPECT_NEAR(back->vertices[i].x, record.vertices[i].x, 1e-6);
    EXPECT_NEAR(back->vertices[i].y, record.vertices[i].y, 1e-6);
  }
}

TEST(ShapeRecordTest, TwentyVertexRecordIsAbout200Bytes) {
  // The paper's sizing argument: ~20 vertices -> ~200 bytes -> ~5 records
  // per 1 KiB block.
  core::Shape s;
  s.boundary = RegularPolygon(20, 1.0);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  const ShapeRecord r = MakeRecord(copies->front(), 0, {});
  EXPECT_GE(r.ByteSize(), 180u);
  EXPECT_LE(r.ByteSize(), 220u);
}

TEST(ShapeRecordTest, TruncatedInputRejected) {
  core::Shape s;
  s.boundary = RegularPolygon(5, 1.0);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  std::vector<uint8_t> buf;
  SerializeRecord(MakeRecord(copies->front(), 0, {}), &buf);
  buf.resize(buf.size() - 3);
  size_t offset = 0;
  EXPECT_FALSE(DeserializeRecord(buf, &offset).ok());
}

TEST(BlockFileTest, AppendReadWriteCounts) {
  BlockFile file(64);
  const BlockId id = file.AppendBlock({1, 2, 3});
  EXPECT_EQ(file.NumBlocks(), 1u);
  EXPECT_EQ(file.writes(), 1u);
  auto data = file.ReadBlock(id);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 64u);
  EXPECT_EQ((*data)[0], 1);
  EXPECT_EQ(file.reads(), 1u);
  EXPECT_TRUE(file.WriteBlock(id, {9}).ok());
  EXPECT_EQ(file.writes(), 2u);
  EXPECT_FALSE(file.ReadBlock(7).ok());
  file.ResetCounters();
  EXPECT_EQ(file.reads(), 0u);
}

TEST(BufferManagerTest, LruEviction) {
  BlockFile file(16);
  for (int i = 0; i < 4; ++i) file.AppendBlock({static_cast<uint8_t>(i)});
  BufferManager buffer(&file, 2);
  ASSERT_TRUE(buffer.Pin(0).ok());  // Miss.
  ASSERT_TRUE(buffer.Pin(1).ok());  // Miss.
  ASSERT_TRUE(buffer.Pin(0).ok());  // Hit.
  ASSERT_TRUE(buffer.Pin(2).ok());  // Miss; evicts 1 (LRU).
  ASSERT_TRUE(buffer.Pin(0).ok());  // Hit.
  ASSERT_TRUE(buffer.Pin(1).ok());  // Miss again.
  EXPECT_EQ(buffer.misses(), 4u);
  EXPECT_EQ(buffer.hits(), 2u);
  EXPECT_EQ(buffer.io_reads(), 4u);
}

TEST(BufferManagerTest, CapacityOneStillWorks) {
  BlockFile file(16);
  for (int i = 0; i < 3; ++i) file.AppendBlock({static_cast<uint8_t>(i)});
  BufferManager buffer(&file, 1);
  ASSERT_TRUE(buffer.Pin(0).ok());
  ASSERT_TRUE(buffer.Pin(0).ok());
  ASSERT_TRUE(buffer.Pin(1).ok());
  ASSERT_TRUE(buffer.Pin(0).ok());
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.misses(), 3u);
}

class StorageFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(5);
    // 5 noisy instances of each of 30 prototype polygons: enough volume
    // that layouts with and without locality fault different block
    // counts.
    for (int proto = 0; proto < 30; ++proto) {
      const int n = 5 + proto % 11;
      const double phase = 0.8 * (proto / 11);
      for (int inst = 0; inst < 5; ++inst) {
        Polyline poly = RegularPolygon(n, 1.0, {0, 0}, phase);
        for (Point& p : poly.mutable_vertices()) {
          p += Point{rng.Gaussian(0.015), rng.Gaussian(0.015)};
        }
        ASSERT_TRUE(base_.AddShape(poly, proto).ok());
      }
    }
    ASSERT_TRUE(base_.Finalize().ok());
    auto hash = hashing::GeoHashIndex::Create(&base_);
    ASSERT_TRUE(hash.ok());
    quadruples_.reserve(base_.NumCopies());
    for (size_t i = 0; i < base_.NumCopies(); ++i) {
      quadruples_.push_back(hash->QuadrupleOfCopy(i));
    }
  }

  core::ShapeBase base_;
  std::vector<hashing::CurveQuadruple> quadruples_;
};

TEST_F(StorageFixture, AllLayoutsArePermutations) {
  for (LayoutPolicy policy :
       {LayoutPolicy::kInsertionOrder, LayoutPolicy::kMeanCurve,
        LayoutPolicy::kLexicographic, LayoutPolicy::kMedianCurve,
        LayoutPolicy::kLocalOptimization}) {
    const std::vector<uint32_t> order =
        ComputeLayout(policy, base_, quadruples_);
    EXPECT_EQ(order.size(), base_.NumCopies()) << LayoutPolicyName(policy);
    std::set<uint32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size()) << LayoutPolicyName(policy);
  }
}

TEST_F(StorageFixture, SortedLayoutsAreSortedByTheirKey) {
  const auto mean_order =
      ComputeLayout(LayoutPolicy::kMeanCurve, base_, quadruples_);
  for (size_t i = 1; i < mean_order.size(); ++i) {
    EXPECT_LE(quadruples_[mean_order[i - 1]].MeanCurve(),
              quadruples_[mean_order[i]].MeanCurve());
  }
  const auto lex_order =
      ComputeLayout(LayoutPolicy::kLexicographic, base_, quadruples_);
  for (size_t i = 1; i < lex_order.size(); ++i) {
    const auto& a = quadruples_[lex_order[i - 1]];
    const auto& b = quadruples_[lex_order[i]];
    bool le = true;
    for (int q = 0; q < 4; ++q) {
      if (a.c[q] != b.c[q]) {
        le = a.c[q] < b.c[q];
        break;
      }
    }
    EXPECT_TRUE(le);
  }
  const auto med_order =
      ComputeLayout(LayoutPolicy::kMedianCurve, base_, quadruples_);
  for (size_t i = 1; i < med_order.size(); ++i) {
    EXPECT_LE(quadruples_[med_order[i - 1]].MedianCurve(),
              quadruples_[med_order[i]].MedianCurve());
  }
}

TEST_F(StorageFixture, StoredBaseRoundTripsRecords) {
  const auto order =
      ComputeLayout(LayoutPolicy::kMeanCurve, base_, quadruples_);
  auto stored = StoredShapeBase::Create(base_, quadruples_, order);
  ASSERT_TRUE(stored.ok());
  EXPECT_GT(stored->NumBlocks(), 1u);
  BufferManager buffer(&stored->file(), 10);
  for (uint32_t c = 0; c < base_.NumCopies(); c += 7) {
    auto record = stored->ReadCopy(c, &buffer);
    ASSERT_TRUE(record.ok()) << "copy " << c;
    EXPECT_EQ(record->shape_id, base_.copy(c).shape_id);
    EXPECT_EQ(record->vertices.size(), base_.copy(c).shape.size());
  }
}

TEST_F(StorageFixture, PackingRespectsBlockCapacity) {
  const auto order =
      ComputeLayout(LayoutPolicy::kInsertionOrder, base_, quadruples_);
  auto stored = StoredShapeBase::Create(base_, quadruples_, order, 1024);
  ASSERT_TRUE(stored.ok());
  // Average record ~ header + 8 * ~12 vertices; expect >= 3 copies/block.
  EXPECT_LE(stored->NumBlocks(), base_.NumCopies() / 3 + 1);
}

TEST_F(StorageFixture, ReplayTraceCountsIo) {
  const auto order =
      ComputeLayout(LayoutPolicy::kMeanCurve, base_, quadruples_);
  auto stored = StoredShapeBase::Create(base_, quadruples_, order);
  ASSERT_TRUE(stored.ok());

  core::EnvelopeMatcher matcher(&base_);
  core::AccessTrace trace;
  auto results = matcher.Match(base_.shape(3).boundary, {}, nullptr, &trace);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(trace.empty());

  BufferManager buffer(&stored->file(), 10);
  auto io = stored->ReplayTrace(trace, &buffer);
  ASSERT_TRUE(io.ok());
  EXPECT_GT(*io, 0u);
  EXPECT_LE(*io, trace.size());

  // A second replay with a warm buffer can only do better or equal.
  auto io2 = stored->ReplayTrace(trace, &buffer);
  ASSERT_TRUE(io2.ok());
  EXPECT_LE(*io2, *io);
}

TEST_F(StorageFixture, ClusteredLayoutBeatsScatteredOnLocalTraces) {
  // Synthetic locality check: a trace that touches copies of the same
  // few shapes should fault fewer blocks under a mean-curve layout than
  // under a deliberately scattered one.
  const auto good_order =
      ComputeLayout(LayoutPolicy::kMeanCurve, base_, quadruples_);
  // Adversarial layout: round-robin over the mean-curve order.
  std::vector<uint32_t> bad_order;
  const size_t stride = 7;
  for (size_t start = 0; start < stride; ++start) {
    for (size_t i = start; i < good_order.size(); i += stride) {
      bad_order.push_back(good_order[i]);
    }
  }
  auto good = StoredShapeBase::Create(base_, quadruples_, good_order);
  auto bad = StoredShapeBase::Create(base_, quadruples_, bad_order);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());

  core::EnvelopeMatcher matcher(&base_);
  uint64_t good_io = 0, bad_io = 0;
  for (core::ShapeId id = 0; id < base_.NumShapes(); id += 4) {
    core::AccessTrace trace;
    core::MatchOptions options;
    options.k = 3;
    options.max_epsilon = 0.3;  // Search deep enough to touch many copies.
    auto results =
        matcher.Match(base_.shape(id).boundary, options, nullptr, &trace);
    ASSERT_TRUE(results.ok());
    BufferManager gb(&good->file(), 4);
    BufferManager bb(&bad->file(), 4);
    auto g = good->ReplayTrace(trace, &gb);
    auto b = bad->ReplayTrace(trace, &bb);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(b.ok());
    good_io += *g;
    bad_io += *b;
  }
  EXPECT_LT(good_io, bad_io);
}

TEST(StoredShapeBaseErrorsTest, SizeMismatchRejected) {
  core::ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(5, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  std::vector<hashing::CurveQuadruple> quads(base.NumCopies());
  EXPECT_FALSE(StoredShapeBase::Create(base, quads, {0, 1}).ok());
}

}  // namespace
}  // namespace geosir::storage
