// Property-based tests of the geometric substrate on randomized inputs.

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "extract/decompose.h"
#include "geom/convex_hull.h"
#include "geom/diameter.h"
#include "geom/distance.h"
#include "geom/edge_grid.h"
#include "geom/edge_soa.h"
#include "geom/envelope.h"
#include "geom/kernel_dispatch.h"
#include "geom/predicates.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

namespace geosir::geom {
namespace {

class GeomPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng MakeRng() const { return util::Rng(5000 + GetParam()); }
};

TEST_P(GeomPropertyTest, ConvexHullContainsAllPoints) {
  util::Rng rng = MakeRng();
  std::vector<Point> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.Uniform(-3, 3), rng.Uniform(-3, 3)});
  }
  const auto hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  const Polyline hull_poly = Polyline::Closed(hull);
  for (Point p : pts) {
    EXPECT_TRUE(PolygonContainsPoint(hull_poly, p, 1e-9));
  }
}

TEST_P(GeomPropertyTest, DiameterIsMaxPairwiseDistance) {
  util::Rng rng = MakeRng();
  const Polyline poly = workload::RandomStarPolygon(&rng);
  const VertexPair d = Diameter(poly.vertices());
  for (size_t i = 0; i < poly.size(); ++i) {
    for (size_t j = i + 1; j < poly.size(); ++j) {
      EXPECT_LE(Distance(poly.vertex(i), poly.vertex(j)),
                d.distance + 1e-9);
    }
  }
}

TEST_P(GeomPropertyTest, RelationTrichotomyOnRandomPolygonPairs) {
  // For generic (non-touching) simple polygons exactly one of
  // {a contains b, b contains a, overlap, disjoint} holds.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  Polyline b = workload::RandomStarPolygon(&rng);
  // Random relative placement, biased to produce all four relations.
  const double spread = rng.Uniform(0.0, 3.0);
  const double scale = rng.Uniform(0.2, 1.8);
  const geom::AffineTransform t =
      AffineTransform::Translation({rng.Uniform(-spread, spread),
                                    rng.Uniform(-spread, spread)}) *
      AffineTransform::Scaling(scale);
  b = b.Transformed(t);

  const bool a_in_b = PolygonContainsPolygon(b, a);
  const bool b_in_a = PolygonContainsPolygon(a, b);
  const bool overlap = PolygonsOverlap(a, b);
  const bool disjoint = PolygonsDisjoint(a, b);
  const int count = static_cast<int>(a_in_b) + static_cast<int>(b_in_a) +
                    static_cast<int>(overlap) + static_cast<int>(disjoint);
  EXPECT_EQ(count, 1) << "a_in_b=" << a_in_b << " b_in_a=" << b_in_a
                      << " overlap=" << overlap << " disjoint=" << disjoint;
}

TEST_P(GeomPropertyTest, EnvelopeMembershipMonotoneInEps) {
  util::Rng rng = MakeRng();
  const Polyline shape = workload::RandomStarPolygon(&rng);
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    const double d = DistancePointPolyline(p, shape);
    EXPECT_EQ(InEnvelope(shape, p, d + 1e-9), true);
    if (d > 1e-9) {
      EXPECT_EQ(InEnvelope(shape, p, d - 1e-9), false);
    }
  }
}

TEST_P(GeomPropertyTest, RingCoverIsSupersetAcrossSchedules) {
  util::Rng rng = MakeRng();
  const Polyline shape = workload::RandomStarPolygon(&rng);
  double prev = 0.0;
  for (double eps : {0.01, 0.03, 0.09, 0.27}) {
    const EnvelopeRingCover cover = BuildEnvelopeRingCover(shape, prev, eps);
    for (int i = 0; i < 200; ++i) {
      const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
      if (!InEnvelopeRing(shape, p, prev, eps)) continue;
      bool covered = false;
      for (const Triangle& t : cover.triangles) {
        if (t.Contains(p)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "eps=" << eps << " p=(" << p.x << "," << p.y
                           << ")";
    }
    prev = eps;
  }
}

TEST_P(GeomPropertyTest, SegmentDistanceSymmetryAndZeroOnIntersect) {
  util::Rng rng = MakeRng();
  for (int i = 0; i < 40; ++i) {
    const Segment s1{{rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                     {rng.Uniform(-1, 1), rng.Uniform(-1, 1)}};
    const Segment s2{{rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                     {rng.Uniform(-1, 1), rng.Uniform(-1, 1)}};
    const double d12 = DistanceSegmentSegment(s1, s2);
    const double d21 = DistanceSegmentSegment(s2, s1);
    EXPECT_NEAR(d12, d21, 1e-12);
    EXPECT_EQ(d12 == 0.0, SegmentsIntersect(s1, s2));
  }
}

TEST_P(GeomPropertyTest, DecomposePreservesTotalEdgeLength) {
  // The decomposition only splits edges at crossing points, so the total
  // boundary length of the pieces equals the input's (no degenerate
  // drops for these inputs).
  util::Rng rng = MakeRng();
  // Build a self-intersecting polyline: a random closed walk.
  std::vector<Point> v;
  const int n = 6 + static_cast<int>(rng.UniformInt(0, 4));
  for (int i = 0; i < n; ++i) {
    v.push_back({rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
  }
  const Polyline tangle = Polyline::Closed(v);
  const auto pieces = extract::DecomposeSelfIntersecting(tangle);
  ASSERT_FALSE(pieces.empty());
  double total = 0.0;
  for (const Polyline& piece : pieces) {
    EXPECT_FALSE(piece.SelfIntersects());
    total += piece.Perimeter();
  }
  EXPECT_NEAR(total, tangle.Perimeter(), 1e-6 * tangle.Perimeter());
}

// ---------------------------------------------------------------------------
// Differential fuzzing of the batch distance kernels: the dispatched
// kernel (AVX2 where selected), the AVX2 kernel called directly (even
// under GEOSIR_FORCE_SCALAR, so the forced-scalar CI job still exercises
// it), and the portable scalar oracle must agree BIT FOR BIT on every
// input — random and adversarial alike.
// ---------------------------------------------------------------------------

/// Asserts exact equality of all kernel tiers on one (span, point) pair
/// and returns the agreed value.
double ExpectKernelsAgree(const EdgeSpanView& span, Point p) {
  const double scalar = BatchMinDistanceSqScalar(span, p);
  const double dispatched = BatchMinDistanceSq(span, p);
  // EXPECT_EQ on doubles is bitwise here: the kernels never produce NaN
  // for finite inputs and -0.0 == 0.0 folds the one benign ambiguity.
  EXPECT_EQ(scalar, dispatched) << "dispatched kernel diverged at p=(" << p.x
                                << "," << p.y << ")";
  if (internal::Avx2KernelCompiledIn() && CpuSupportsAvx2Kernel()) {
    const double avx2 = internal::BatchMinDistanceSqAvx2(span, p);
    EXPECT_EQ(scalar, avx2) << "avx2 kernel diverged at p=(" << p.x << ","
                            << p.y << ")";
  }
  return scalar;
}

TEST_P(GeomPropertyTest, BatchKernelMatchesScalarOnRandomShapes) {
  util::Rng rng = MakeRng();
  workload::PolygonGenOptions gen;
  gen.min_vertices = 3;
  gen.max_vertices = 60;
  const Polyline shape = workload::RandomStarPolygon(&rng, gen);
  const EdgeSoA soa(shape);
  const EdgeSpanView span = soa.PaddedView();
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
    const double d2 = ExpectKernelsAgree(span, p);
    // Sanity against the legacy hypot-based scan: same value up to a few
    // ulps (the two formulations differ in rounding, not in math).
    const double legacy = DistancePointPolyline(p, shape);
    EXPECT_NEAR(std::sqrt(d2), legacy, 1e-12 * std::max(1.0, legacy));
    // EdgeSoA::MinDistance is the dispatched kernel + sqrt.
    EXPECT_EQ(soa.MinDistance(p), std::sqrt(BatchMinDistanceSq(span, p)));
  }
}

TEST_P(GeomPropertyTest, BatchKernelMatchesScalarOnAdversarialInputs) {
  util::Rng rng = MakeRng();
  // Corpora chosen to hit the kernel's numeric edge regimes: denormal
  // coordinate deltas, huge magnitudes (d2 up to ~1e240), duplicate
  // vertices (zero-length edges, inv_len2 == 0), and near-collinear
  // slivers whose projection parameter cancels catastrophically.
  const std::vector<std::vector<Point>> corpora = {
      // Denormal-scale geometry around the origin.
      {{5e-324, 0.0}, {1e-310, 1e-315}, {0.0, 3e-320}, {2e-310, 2e-310}},
      // Huge magnitudes.
      {{1e120, -1e119}, {-5e119, 1e120}, {1e120, 1e120}},
      // Duplicate vertices: every edge degenerate.
      {{0.25, -0.75}, {0.25, -0.75}, {0.25, -0.75}},
      // Mixed scales: edge lengths spanning ~240 orders of magnitude.
      {{0.0, 0.0}, {1e-200, 0.0}, {1.0, 1e-200}, {1e100, 1.0}},
      // Near-collinear sliver.
      {{0.0, 0.0}, {1.0, 1e-17}, {2.0, -1e-17}, {3.0, 0.0}},
  };
  for (const auto& vertices : corpora) {
    const Polyline shape = Polyline::Closed(vertices);
    const EdgeSoA soa(shape);
    const EdgeSpanView span = soa.PaddedView();
    // Probe with the shape's own vertices (distance 0 lanes), tiny
    // perturbations, and far-away points.
    for (Point v : vertices) {
      ExpectKernelsAgree(span, v);
      ExpectKernelsAgree(span, {v.x + 1e-300, v.y - 1e-300});
    }
    for (int i = 0; i < 50; ++i) {
      const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
      const double d2 = ExpectKernelsAgree(span, p);
      EXPECT_FALSE(std::isnan(d2)) << "kernel leaked NaN for finite input";
    }
  }
}

TEST_P(GeomPropertyTest, EdgeGridMatchesBatchKernelBitForBit) {
  // The grid's bucket scans and the flat SoA scan run the same canonical
  // arithmetic, and its ring stopping rule is sound, so the two must
  // agree exactly — not just within tolerance.
  util::Rng rng = MakeRng();
  workload::PolygonGenOptions gen;
  gen.min_vertices = 24;
  gen.max_vertices = 120;
  const Polyline shape = workload::RandomStarPolygon(&rng, gen);
  const EdgeGrid grid(shape);
  const EdgeSoA soa(shape);
  for (int i = 0; i < 300; ++i) {
    const Point p{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    EXPECT_EQ(grid.Distance(p), soa.MinDistance(p))
        << "grid diverged from flat scan at p=(" << p.x << "," << p.y << ")";
  }
}

// ---------------------------------------------------------------------------
// Exact orientation predicate.
// ---------------------------------------------------------------------------

TEST_P(GeomPropertyTest, ExactOrientationMatchesIntegerOracle) {
  // On an integer lattice the determinant fits __int128 exactly, giving
  // a ground-truth sign for every triple. The small range makes exactly
  // collinear and duplicate-point triples common.
  util::Rng rng = MakeRng();
  for (int i = 0; i < 4000; ++i) {
    const int64_t range = (i % 2 == 0) ? 8 : (int64_t{1} << 26);
    const auto coord = [&] { return rng.UniformInt(-range, range); };
    const int64_t ax = coord(), ay = coord(), bx = coord(), by = coord(),
                  cx = coord(), cy = coord();
    const __int128 det = static_cast<__int128>(bx - ax) * (cy - ay) -
                         static_cast<__int128>(by - ay) * (cx - ax);
    const int want = det > 0 ? 1 : (det < 0 ? -1 : 0);
    EXPECT_EQ(Orientation({static_cast<double>(ax), static_cast<double>(ay)},
                          {static_cast<double>(bx), static_cast<double>(by)},
                          {static_cast<double>(cx), static_cast<double>(cy)}),
              want)
        << "a=(" << ax << "," << ay << ") b=(" << bx << "," << by << ") c=("
        << cx << "," << cy << ")";
  }
}

TEST_P(GeomPropertyTest, ExactOrientationOnNearCollinearGrid) {
  // Shewchuk-style degenerate grid: c sits a tiny exact offset k*2^-40
  // off the diagonal through a and b. Every coordinate is exactly
  // representable (M <= 2^10, so M + k*2^-40 needs <= 52 mantissa bits),
  // and det = N*k*2^-40 exactly — sign(k). The float filter is
  // inconclusive here, so this drives the expansion path.
  util::Rng rng = MakeRng();
  const double tiny = std::ldexp(1.0, -40);
  for (int i = 0; i < 2000; ++i) {
    const double n = static_cast<double>(rng.UniformInt(1, 1024));
    const double m = static_cast<double>(rng.UniformInt(1, 1024));
    const int k = static_cast<int>(rng.UniformInt(-2, 2));
    const Point a{0.0, 0.0};
    const Point b{n, n};
    const Point c{m, m + static_cast<double>(k) * tiny};
    const int want = k > 0 ? 1 : (k < 0 ? -1 : 0);
    EXPECT_EQ(Orientation(a, b, c), want)
        << "n=" << n << " m=" << m << " k=" << k;
    // Translation by an exactly representable offset must not change the
    // answer (the predicate is exact, not merely translation-robust).
    const Point shift{512.0, -256.0};
    EXPECT_EQ(Orientation(a + shift, b + shift, c + shift), want);
  }
}

TEST_P(GeomPropertyTest, TriangleContainsConsistentWithOrientation) {
  // Triangle::Contains now runs on exact orientations: a point ON any
  // edge's supporting line inside the triangle is contained, and sliver
  // triangles classify their own vertices correctly.
  util::Rng rng = MakeRng();
  for (int i = 0; i < 500; ++i) {
    const auto coord = [&] {
      return static_cast<double>(rng.UniformInt(-64, 64));
    };
    const Triangle t{{coord(), coord()}, {coord(), coord()}, {coord(), coord()}};
    EXPECT_TRUE(t.Contains(t.a));
    EXPECT_TRUE(t.Contains(t.b));
    EXPECT_TRUE(t.Contains(t.c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeomPropertyTest, ::testing::Range(0, 10));

// Non-parameterized regression cases for the exact predicate.
TEST(ExactOrientationTest, DecidesBelowLegacyEpsilon) {
  // 200.0 lies in [128, 256), where the ulp is exactly 2^-45, so
  // 200 +/- 2^-45 is representable. det = 4 * 2^-45 = 2^-43 ~ 1.1e-13:
  // smaller than the old 1e-12 epsilon (which wrongly reported
  // collinear), exactly nonzero.
  const double off = std::ldexp(1.0, -45);
  const Point a{0.0, 0.0};
  const Point b{4.0, 4.0};
  ASSERT_NE(200.0 + off, 200.0);
  EXPECT_EQ(Orientation(a, b, {200.0, 200.0 + off}), 1);
  EXPECT_EQ(Orientation(a, b, {200.0, 200.0 - off}), -1);
  EXPECT_EQ(Orientation(a, b, {200.0, 200.0}), 0);
}

TEST(ExactOrientationTest, DegenerateTriples) {
  const Point p{3.5, -1.25};
  const Point q{-2.0, 7.0};
  EXPECT_EQ(Orientation(p, p, q), 0);
  EXPECT_EQ(Orientation(p, q, q), 0);
  EXPECT_EQ(Orientation(p, q, p), 0);
  EXPECT_EQ(Orientation(p, p, p), 0);
  // Exactly collinear with huge and mixed magnitudes.
  EXPECT_EQ(Orientation({1e100, 1e100}, {2e100, 2e100}, {-3e100, -3e100}), 0);
  EXPECT_EQ(Orientation({0.0, 0.0}, {1e-160, 1e-160}, {1e160, 1e160}), 0);
}

}  // namespace
}  // namespace geosir::geom
