// Property-based tests of the geometric substrate on randomized inputs.

#include <cmath>

#include <gtest/gtest.h>

#include "extract/decompose.h"
#include "geom/convex_hull.h"
#include "geom/diameter.h"
#include "geom/distance.h"
#include "geom/envelope.h"
#include "geom/predicates.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

namespace geosir::geom {
namespace {

class GeomPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng MakeRng() const { return util::Rng(5000 + GetParam()); }
};

TEST_P(GeomPropertyTest, ConvexHullContainsAllPoints) {
  util::Rng rng = MakeRng();
  std::vector<Point> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.Uniform(-3, 3), rng.Uniform(-3, 3)});
  }
  const auto hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  const Polyline hull_poly = Polyline::Closed(hull);
  for (Point p : pts) {
    EXPECT_TRUE(PolygonContainsPoint(hull_poly, p, 1e-9));
  }
}

TEST_P(GeomPropertyTest, DiameterIsMaxPairwiseDistance) {
  util::Rng rng = MakeRng();
  const Polyline poly = workload::RandomStarPolygon(&rng);
  const VertexPair d = Diameter(poly.vertices());
  for (size_t i = 0; i < poly.size(); ++i) {
    for (size_t j = i + 1; j < poly.size(); ++j) {
      EXPECT_LE(Distance(poly.vertex(i), poly.vertex(j)),
                d.distance + 1e-9);
    }
  }
}

TEST_P(GeomPropertyTest, RelationTrichotomyOnRandomPolygonPairs) {
  // For generic (non-touching) simple polygons exactly one of
  // {a contains b, b contains a, overlap, disjoint} holds.
  util::Rng rng = MakeRng();
  const Polyline a = workload::RandomStarPolygon(&rng);
  Polyline b = workload::RandomStarPolygon(&rng);
  // Random relative placement, biased to produce all four relations.
  const double spread = rng.Uniform(0.0, 3.0);
  const double scale = rng.Uniform(0.2, 1.8);
  const geom::AffineTransform t =
      AffineTransform::Translation({rng.Uniform(-spread, spread),
                                    rng.Uniform(-spread, spread)}) *
      AffineTransform::Scaling(scale);
  b = b.Transformed(t);

  const bool a_in_b = PolygonContainsPolygon(b, a);
  const bool b_in_a = PolygonContainsPolygon(a, b);
  const bool overlap = PolygonsOverlap(a, b);
  const bool disjoint = PolygonsDisjoint(a, b);
  const int count = static_cast<int>(a_in_b) + static_cast<int>(b_in_a) +
                    static_cast<int>(overlap) + static_cast<int>(disjoint);
  EXPECT_EQ(count, 1) << "a_in_b=" << a_in_b << " b_in_a=" << b_in_a
                      << " overlap=" << overlap << " disjoint=" << disjoint;
}

TEST_P(GeomPropertyTest, EnvelopeMembershipMonotoneInEps) {
  util::Rng rng = MakeRng();
  const Polyline shape = workload::RandomStarPolygon(&rng);
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    const double d = DistancePointPolyline(p, shape);
    EXPECT_EQ(InEnvelope(shape, p, d + 1e-9), true);
    if (d > 1e-9) {
      EXPECT_EQ(InEnvelope(shape, p, d - 1e-9), false);
    }
  }
}

TEST_P(GeomPropertyTest, RingCoverIsSupersetAcrossSchedules) {
  util::Rng rng = MakeRng();
  const Polyline shape = workload::RandomStarPolygon(&rng);
  double prev = 0.0;
  for (double eps : {0.01, 0.03, 0.09, 0.27}) {
    const EnvelopeRingCover cover = BuildEnvelopeRingCover(shape, prev, eps);
    for (int i = 0; i < 200; ++i) {
      const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
      if (!InEnvelopeRing(shape, p, prev, eps)) continue;
      bool covered = false;
      for (const Triangle& t : cover.triangles) {
        if (t.Contains(p)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "eps=" << eps << " p=(" << p.x << "," << p.y
                           << ")";
    }
    prev = eps;
  }
}

TEST_P(GeomPropertyTest, SegmentDistanceSymmetryAndZeroOnIntersect) {
  util::Rng rng = MakeRng();
  for (int i = 0; i < 40; ++i) {
    const Segment s1{{rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                     {rng.Uniform(-1, 1), rng.Uniform(-1, 1)}};
    const Segment s2{{rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                     {rng.Uniform(-1, 1), rng.Uniform(-1, 1)}};
    const double d12 = DistanceSegmentSegment(s1, s2);
    const double d21 = DistanceSegmentSegment(s2, s1);
    EXPECT_NEAR(d12, d21, 1e-12);
    EXPECT_EQ(d12 == 0.0, SegmentsIntersect(s1, s2));
  }
}

TEST_P(GeomPropertyTest, DecomposePreservesTotalEdgeLength) {
  // The decomposition only splits edges at crossing points, so the total
  // boundary length of the pieces equals the input's (no degenerate
  // drops for these inputs).
  util::Rng rng = MakeRng();
  // Build a self-intersecting polyline: a random closed walk.
  std::vector<Point> v;
  const int n = 6 + static_cast<int>(rng.UniformInt(0, 4));
  for (int i = 0; i < n; ++i) {
    v.push_back({rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
  }
  const Polyline tangle = Polyline::Closed(v);
  const auto pieces = extract::DecomposeSelfIntersecting(tangle);
  ASSERT_FALSE(pieces.empty());
  double total = 0.0;
  for (const Polyline& piece : pieces) {
    EXPECT_FALSE(piece.SelfIntersects());
    total += piece.Perimeter();
  }
  EXPECT_NEAR(total, tangle.Perimeter(), 1e-6 * tangle.Perimeter());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeomPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace geosir::geom
