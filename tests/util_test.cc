#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/numeric.h"
#include "util/relaxed_counter.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace geosir::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kCorruption, StatusCode::kNotSupported,
        StatusCode::kInternal, StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  GEOSIR_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(NumericTest, AdaptiveSimpsonPolynomial) {
  // Integral of x^3 over [0, 2] is 4.
  const double v =
      AdaptiveSimpson([](double x) { return x * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 4.0, 1e-9);
}

TEST(NumericTest, AdaptiveSimpsonTranscendental) {
  const double v = AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                                   M_PI);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(NumericTest, AdaptiveSimpsonHandlesKink) {
  // |x| over [-1, 2]: 0.5 + 2.
  const double v =
      AdaptiveSimpson([](double x) { return std::fabs(x); }, -1.0, 2.0);
  EXPECT_NEAR(v, 2.5, 1e-7);
}

TEST(NumericTest, CompositeSimpsonMatchesAdaptive) {
  auto f = [](double x) { return std::exp(-x * x); };
  const double a = CompositeSimpson(f, 0.0, 1.5, 2000);
  const double b = AdaptiveSimpson(f, 0.0, 1.5);
  EXPECT_NEAR(a, b, 1e-8);
}

TEST(NumericTest, EmptyIntervalIntegratesToZero) {
  EXPECT_EQ(AdaptiveSimpson([](double) { return 1.0; }, 3.0, 3.0), 0.0);
  EXPECT_EQ(CompositeSimpson([](double) { return 1.0; }, 3.0, 3.0, 10), 0.0);
}

TEST(NumericTest, FindRootSqrtTwo) {
  auto r = FindRootBracketed([](double x) { return x * x - 2.0; },
                             [](double x) { return 2.0 * x; }, 0.0, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-10);
}

TEST(NumericTest, FindRootWithoutDerivative) {
  auto r = FindRootBracketed([](double x) { return std::cos(x) - x; }, nullptr,
                             0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(std::cos(*r), *r, 1e-9);
}

TEST(NumericTest, FindRootRejectsUnbracketed) {
  auto r = FindRootBracketed([](double x) { return x * x + 1.0; }, nullptr,
                             -1.0, 1.0);
  EXPECT_FALSE(r.ok());
}

TEST(NumericTest, FindRootAcceptsEndpointRoot) {
  auto r = FindRootBracketed([](double x) { return x; }, nullptr, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0.0);
}

TEST(NumericTest, GoldenSectionFindsMinimum) {
  const double x = GoldenSectionMinimize(
      [](double v) { return (v - 1.3) * (v - 1.3) + 2.0; }, -5.0, 5.0);
  EXPECT_NEAR(x, 1.3, 1e-7);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsSeed) {
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("", 0, 123u), 123u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const std::string data = "geometric-similarity";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 7);
  const uint32_t chained = Crc32(data.data() + 7, data.size() - 7, first);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{100}, data.size() - 1}) {
    std::string flipped = data;
    flipped[byte] ^= 1;
    EXPECT_NE(Crc32(flipped.data(), flipped.size()), clean);
  }
}

TEST(RetryTest, SucceedsWithoutRetryOnOk) {
  int calls = 0, attempts = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{}, [&] { ++calls; return Status::OK(); }, &attempts);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  Result<int> r = RetryWithBackoff(policy, [&]() -> Result<int> {
    if (++calls < 3) return Status::Unavailable("flaky");
    return 7;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, GivesUpAfterBudget) {
  int calls = 0, attempts = 0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  Status s = RetryWithBackoff(
      policy, [&] { ++calls; return Status::Unavailable("down"); }, &attempts);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(attempts, 4);
}

TEST(RetryTest, NonRetriableFailsImmediately) {
  int calls = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{}, [&] { ++calls; return Status::Corruption("rot"); });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);  // Corruption does not heal; no retry.
}

TEST(RetryTest, AtMostOneAttemptWhenDisabled) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 0;  // <= 1 disables retrying.
  Status s = RetryWithBackoff(
      policy, [&] { ++calls; return Status::Unavailable("down"); });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffCapBoundsEverySleep) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.multiplier = 10.0;
  policy.max_backoff_us = 500;
  int64_t prev = 0;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const int64_t us = NextBackoffUs(policy, attempt, prev);
    EXPECT_GE(us, 100) << "attempt " << attempt;
    EXPECT_LE(us, 500) << "attempt " << attempt;
    prev = us;
  }
  // Without a cap the legacy exponential schedule is unchanged.
  policy.max_backoff_us = 0;
  EXPECT_EQ(NextBackoffUs(policy, 1, 0), 100);
  EXPECT_EQ(NextBackoffUs(policy, 2, 0), 1000);
  EXPECT_EQ(NextBackoffUs(policy, 3, 0), 10000);
  // Zero base still disables sleeping entirely.
  policy.base_backoff_us = 0;
  EXPECT_EQ(NextBackoffUs(policy, 5, 0), 0);
}

TEST(RetryTest, DecorrelatedJitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.multiplier = 3.0;
  policy.max_backoff_us = 2000;
  policy.decorrelated_jitter = true;
  policy.jitter_seed = 42;
  std::vector<int64_t> draws;
  int64_t prev = 0;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    const int64_t us = NextBackoffUs(policy, attempt, prev);
    // Every draw sits in [base, min(cap, max(base, prev * multiplier))].
    EXPECT_GE(us, 100) << "attempt " << attempt;
    EXPECT_LE(us, 2000) << "attempt " << attempt;
    const int64_t window =
        std::max<int64_t>(100, static_cast<int64_t>(
                                   (prev > 0 ? prev : 100) * 3.0));
    EXPECT_LE(us, std::min<int64_t>(2000, window)) << "attempt " << attempt;
    draws.push_back(us);
    prev = us;
  }
  // Same seed reproduces the exact schedule (chaos tests depend on it).
  prev = 0;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    EXPECT_EQ(NextBackoffUs(policy, attempt, prev), draws[attempt - 1]);
    prev = draws[attempt - 1];
  }
  // A different seed decorrelates: two "clients" severed at the same
  // instant must not sleep in lockstep.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  int differing = 0;
  int64_t prev_a = 0, prev_b = 0;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    const int64_t a = NextBackoffUs(policy, attempt, prev_a);
    const int64_t b = NextBackoffUs(other, attempt, prev_b);
    if (a != b) ++differing;
    prev_a = a;
    prev_b = b;
  }
  EXPECT_GT(differing, 0);
}

TEST(RelaxedCounterTest, ConcurrentIncrementsAllLand) {
  RelaxedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) ++counter;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(static_cast<uint64_t>(counter), 40000u);
}

TEST(RelaxedCounterTest, CopyAndAssignTransferValue) {
  RelaxedCounter counter;
  counter += 7;
  RelaxedCounter copy(counter);
  EXPECT_EQ(static_cast<uint64_t>(copy), 7u);
  RelaxedCounter assigned;
  assigned = counter;
  assigned += 1;
  EXPECT_EQ(static_cast<uint64_t>(assigned), 8u);
  EXPECT_EQ(static_cast<uint64_t>(counter), 7u);  // Copies are independent.
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // Not a strong statistical test; just checks streams are decoupled and
  // deterministic.
  Rng a2(5);
  Rng child2 = a2.Fork();
  EXPECT_EQ(child.UniformInt(0, 1 << 30), child2.UniformInt(0, 1 << 30));
}

}  // namespace
}  // namespace geosir::util
