// Replication tier tests: WAL tailing with the committed-offset bound,
// the in-process log transport, follower catch-up (in-stream, restart,
// snapshot resync), deterministic transport-fault convergence, the
// lag-aware batch router, and the snapshot-consistency contract under
// concurrent writes (the TSan target of the suite).

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "replication/fault_transport.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "replication/replicated_shape_base.h"
#include "replication/replication_server.h"
#include "replication/socket_transport.h"
#include "storage/appendable_file.h"
#include "storage/wal.h"

namespace geosir::replication {
namespace {

using core::DynamicShapeBase;
using geom::Point;
using geom::Polyline;
using storage::MemEnv;
using storage::WalOptions;
using storage::WalRecordType;
using storage::WalSyncPolicy;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

/// Deterministic per-id fixtures (same scheme as the crash suite): the
/// model needs no stored state.
Polyline ShapeFor(uint64_t id) {
  return RegularPolygon(3 + static_cast<int>(id % 8),
                        1.0 + 0.05 * static_cast<double>(id % 7));
}
std::string LabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
core::ImageId ImageFor(uint64_t id) {
  return static_cast<core::ImageId>(id * 3 + 1);
}

constexpr char kPrimaryDir[] = "primary";

DynamicShapeBase::Options SmallBaseOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;
  options.max_delta_fraction = 0.5;
  return options;
}

/// Rotations rotate the retained log away, so a follower that is even
/// one record behind at that instant must snapshot-resync. Tests that
/// assert a resync-free stream therefore keep compaction explicit.
DynamicShapeBase::Options NoAutoCompactOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 1u << 20;
  return options;
}

/// Is the follower's live state exactly the primary's reference model?
bool FollowerMatches(const Follower& follower,
                     const std::set<uint64_t>& model) {
  const std::vector<uint64_t> live = follower.LiveIds();
  if (live.size() != model.size()) return false;
  for (uint64_t id : live) {
    if (model.count(id) == 0) return false;
    if (follower.label(id) != LabelFor(id)) return false;
    if (follower.image(id) != ImageFor(id)) return false;
    const Polyline expected = ShapeFor(id);
    const Polyline got = follower.boundary(id);
    if (got.size() != expected.size() || got.closed() != expected.closed()) {
      return false;
    }
    for (size_t v = 0; v < expected.size(); ++v) {
      if (got.vertex(v).x != expected.vertex(v).x ||
          got.vertex(v).y != expected.vertex(v).y) {
        return false;
      }
    }
  }
  return true;
}

// --- WAL tailing: the committed-offset reader bound ---

TEST(WalTailing, ReaderStopsAtCommittedOffset) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  std::vector<uint8_t> bytes;
  std::vector<size_t> frame_end;
  for (uint64_t lsn = 0; lsn < 3; ++lsn) {
    const std::vector<uint8_t> payload(16, static_cast<uint8_t>(lsn));
    storage::AppendWalFrame(&bytes, lsn,
                            lsn == 0 ? WalRecordType::kCompactCommit
                                     : WalRecordType::kInsert,
                            payload);
    frame_end.push_back(bytes.size());
  }
  ASSERT_TRUE(env.WriteFileAtomic(storage::WalPath("db", 0), bytes).ok());

  // A committed bound at a frame boundary: exactly those frames, no
  // truncation report — the third frame is simply not trusted yet.
  storage::WalReadReport report;
  auto records = storage::ReadWalRecordsSince(&env, "db", /*generation=*/0,
                                              /*from_lsn=*/0,
                                              /*committed_bytes=*/frame_end[1],
                                              /*max_records=*/0, &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(report.truncated_bytes, 0u);

  // A bound in the middle of a frame (the appender is mid-Append): the
  // half frame past the last full one is ignored, not decoded as a torn
  // tail of garbage.
  auto mid = storage::ReadWalRecordsSince(&env, "db", 0, 0,
                                          frame_end[1] + 7, 0, &report);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->size(), 2u);
  EXPECT_GT(report.truncated_bytes, 0u);

  // Cursor resume: a second read from the new bound returns only the
  // newly committed frame, without re-decoding the prefix.
  storage::WalTailCursor cursor;
  auto first = storage::ReadWalRecordsSince(&env, "db", 0, 0, frame_end[1], 0,
                                            &report, &cursor);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 2u);
  EXPECT_EQ(cursor.offset, frame_end[1]);
  auto second = storage::ReadWalRecordsSince(&env, "db", 0, /*from_lsn=*/2,
                                             bytes.size(), 0, &report,
                                             &cursor);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ(second->front().lsn, 2u);
  EXPECT_EQ(cursor.offset, bytes.size());
}

TEST(WalTailing, LiveLogPublishesCommittedBytes) {
  MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryN;
  durability.wal.sync_every_n = 64;  // Committed must not wait for sync.
  auto opened = storage::OpenDurableDynamicBase(kPrimaryDir,
                                                SmallBaseOptions(),
                                                durability);
  ASSERT_TRUE(opened.ok());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  const storage::WalTailState tail = opened->journal->tail_state();
  EXPECT_EQ(tail.next_lsn, 6u);  // Head commit + 5 inserts.
  // All five inserts are readable through the committed bound even though
  // the sync policy has not fsynced them.
  auto records = storage::ReadWalRecordsSince(&env, kPrimaryDir,
                                              tail.generation, /*from_lsn=*/0,
                                              tail.committed_bytes);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 6u);
  EXPECT_LT(tail.synced_upto, tail.next_lsn);
}

// --- Transport ---

TEST(Transport, FetchWindowsAndSnapshotResync) {
  MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  auto opened = storage::OpenDurableDynamicBase(kPrimaryDir,
                                                SmallBaseOptions(),
                                                durability);
  ASSERT_TRUE(opened.ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  PrimaryLogSource source(&env, kPrimaryDir, opened->journal.get());

  auto batch = source.Fetch(/*from_lsn=*/0, /*max_records=*/100);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->records.size(), 5u);
  EXPECT_EQ(batch->records.front().type, WalRecordType::kCompactCommit);
  EXPECT_EQ(batch->primary_next_lsn, 5u);

  // Caught up: empty batch, not an error.
  auto caught_up = source.Fetch(5, 100);
  ASSERT_TRUE(caught_up.ok());
  EXPECT_TRUE(caught_up->records.empty());

  // Ahead of the tail: a different primary wrote this cursor.
  EXPECT_EQ(source.Fetch(42, 100).status().code(),
            util::StatusCode::kOutOfRange);

  // Rotate the log away. A pre-rotation cursor is answered with a batch
  // that leaps to the new generation's commit head: it is the follower's
  // convergence check, not the transport, that decides between an
  // in-stream rotation and a snapshot resync.
  ASSERT_TRUE(opened->base->Compact().ok());
  PrimaryLogSource fresh(&env, kPrimaryDir, opened->journal.get());
  auto leap = fresh.Fetch(1, 100);
  ASSERT_TRUE(leap.ok());
  ASSERT_FALSE(leap->records.empty());
  EXPECT_EQ(leap->records.front().type, WalRecordType::kCompactCommit);
  EXPECT_GT(leap->records.front().lsn, 4u);

  auto snapshot = fresh.FetchSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->generation, opened->journal->generation());
  EXPECT_FALSE(snapshot->checkpoint.empty());
  std::vector<storage::WalRecord> head =
      storage::ReadWalRecords(snapshot->head_frame);
  ASSERT_EQ(head.size(), 1u);
  EXPECT_EQ(head.front().type, WalRecordType::kCompactCommit);
}

// --- Follower catch-up ---

struct Cluster {
  MemEnv env;
  std::unique_ptr<storage::DurableDynamicBase> primary;
  std::unique_ptr<LogTransport> transport;
  std::unique_ptr<Follower> follower;
  /// Base options for primary and follower alike. Tests that assert a
  /// resync-free stream disable auto-compaction, so the only rotations
  /// are explicit Compact() calls issued at a converged cursor.
  DynamicShapeBase::Options base_options = SmallBaseOptions();

  util::Status OpenPrimary(WalSyncPolicy policy = WalSyncPolicy::kEveryRecord) {
    storage::DurabilityOptions durability;
    durability.env = &env;
    durability.wal.sync_policy = policy;
    auto opened = storage::OpenDurableDynamicBase(kPrimaryDir, base_options,
                                                  durability);
    GEOSIR_RETURN_IF_ERROR(opened.status());
    primary = std::make_unique<storage::DurableDynamicBase>(
        std::move(*opened));
    return util::Status::OK();
  }

  util::Status OpenFollower(TransportFaultPlan* plan = nullptr) {
    auto source = std::make_unique<PrimaryLogSource>(&env, kPrimaryDir,
                                                     primary->journal.get());
    if (plan != nullptr) {
      transport = std::make_unique<FaultInjectingTransport>(std::move(source),
                                                            *plan);
    } else {
      transport = std::move(source);
    }
    FollowerOptions options;
    options.env = &env;
    options.dir = "replica0";
    options.base = base_options;
    options.wal.sync_policy = WalSyncPolicy::kEveryRecord;
    GEOSIR_ASSIGN_OR_RETURN(follower,
                            Follower::Open(std::move(options),
                                           transport.get()));
    return util::Status::OK();
  }

  /// Pumps through transient faults until the follower reaches the
  /// primary's tail (bounded, so a livelock fails the test instead of
  /// hanging it).
  void PumpUntilConverged(size_t max_rounds = 10000) {
    const uint64_t tail = primary->journal->tail_state().next_lsn;
    for (size_t round = 0; round < max_rounds; ++round) {
      if (follower->applied_lsn() >= tail) return;
      (void)follower->Pump();
    }
    FAIL() << "follower did not converge within " << max_rounds << " rounds";
  }
};

TEST(Follower, TailsAndConvergesInStream) {
  Cluster cluster;
  cluster.base_options = NoAutoCompactOptions();
  ASSERT_TRUE(cluster.OpenPrimary().ok());
  ASSERT_TRUE(cluster.OpenFollower().ok());
  std::set<uint64_t> model;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
    if (i % 4 == 3) {
      const uint64_t victim = i - 3;
      ASSERT_TRUE(cluster.primary->base->Remove(victim).ok());
      model.erase(victim);
    }
  }
  cluster.PumpUntilConverged();
  EXPECT_TRUE(FollowerMatches(*cluster.follower, model));
  EXPECT_EQ(cluster.follower->NextId(), cluster.primary->base->NextId());
  EXPECT_EQ(cluster.follower->status().counters.resyncs, 0u);
  EXPECT_EQ(cluster.follower->lag(), 0u);

  // The follower's local WAL mirror is byte-identical to the primary's:
  // same head frame, same verbatim-mirrored records.
  auto primary_wal = cluster.env.ReadFileBytes(
      storage::WalPath(kPrimaryDir, cluster.primary->journal->generation()));
  auto follower_wal = cluster.env.ReadFileBytes(
      storage::WalPath("replica0", cluster.follower->generation()));
  ASSERT_TRUE(primary_wal.ok());
  ASSERT_TRUE(follower_wal.ok());
  EXPECT_EQ(*primary_wal, *follower_wal);
}

TEST(Follower, RotationProducesIdenticalCheckpoint) {
  Cluster cluster;
  cluster.base_options = NoAutoCompactOptions();
  ASSERT_TRUE(cluster.OpenPrimary(WalSyncPolicy::kOnCheckpoint).ok());
  ASSERT_TRUE(cluster.OpenFollower().ok());
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    if (i == 5) {
      ASSERT_TRUE(cluster.primary->base->Remove(2).ok());
    }
    // Pump to the tail BEFORE compacting: a rotation is streamable only
    // by a converged follower (the old generation's log is deleted), so
    // this is the one schedule where rotations cost no resync.
    (void)cluster.follower->Pump();
    if (i % 5 == 4) {
      ASSERT_TRUE(cluster.primary->base->Compact().ok());
      (void)cluster.follower->Pump();
    }
  }
  cluster.PumpUntilConverged();
  const uint64_t generation = cluster.primary->journal->generation();
  ASSERT_GT(generation, 0u);
  EXPECT_EQ(cluster.follower->generation(), generation);
  EXPECT_GT(cluster.follower->status().counters.rotations, 0u);
  EXPECT_EQ(cluster.follower->status().counters.resyncs, 0u);

  // The follower rebuilt the checkpoint from its own replica of the
  // stream; the WAL carries original boundaries, so the bytes match the
  // primary's checkpoint exactly.
  auto primary_ckpt =
      cluster.env.ReadFileBytes(storage::CheckpointPath(kPrimaryDir,
                                                        generation));
  auto follower_ckpt =
      cluster.env.ReadFileBytes(storage::CheckpointPath("replica0",
                                                        generation));
  ASSERT_TRUE(primary_ckpt.ok());
  ASSERT_TRUE(follower_ckpt.ok());
  EXPECT_EQ(*primary_ckpt, *follower_ckpt);
}

TEST(Follower, RestartResumesFromLocalStateWithoutResync) {
  Cluster cluster;
  cluster.base_options = NoAutoCompactOptions();
  ASSERT_TRUE(cluster.OpenPrimary().ok());
  ASSERT_TRUE(cluster.OpenFollower().ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
  }
  cluster.PumpUntilConverged();
  const uint64_t resumed_from = cluster.follower->applied_lsn();
  cluster.follower.reset();

  // More writes while the follower is down.
  std::set<uint64_t> model;
  for (uint64_t i = 0; i < 10; ++i) model.insert(i);
  for (uint64_t i = 10; i < 16; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
  }

  ASSERT_TRUE(cluster.OpenFollower().ok());
  // Local recovery restored everything the first incarnation applied —
  // no snapshot, no restart from zero.
  EXPECT_EQ(cluster.follower->applied_lsn(), resumed_from);
  cluster.PumpUntilConverged();
  EXPECT_TRUE(FollowerMatches(*cluster.follower, model));
  EXPECT_EQ(cluster.follower->status().counters.resyncs, 0u);
}

TEST(Follower, ReconnectAcrossRotationLeapsToTheNewHeadWithoutGapAbort) {
  Cluster cluster;
  cluster.base_options = NoAutoCompactOptions();
  ASSERT_TRUE(cluster.OpenPrimary().ok());
  ASSERT_TRUE(cluster.OpenFollower().ok());
  std::set<uint64_t> model;
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
  }
  cluster.PumpUntilConverged();
  const uint64_t cursor = cluster.follower->applied_lsn();
  const FollowerCounters before = cluster.follower->status().counters;

  // The follower goes dark across a rotation that ships NO mutations:
  // the advisory compact-begin record at the follower's cursor is
  // deleted with the old generation's log, so on reconnect the stream
  // resumes at the new head commit, whose LSN lies PAST the cursor.
  // That is a legal commit-leap (the skipped record was advisory, state
  // converges), and it must be absorbed in-stream — neither reported as
  // a lost-record gap nor escalated to a snapshot resync.
  ASSERT_TRUE(cluster.primary->base->Compact().ok());
  ASSERT_GT(cluster.primary->journal->tail_state().next_lsn, cursor + 1);
  cluster.PumpUntilConverged();

  EXPECT_TRUE(FollowerMatches(*cluster.follower, model));
  EXPECT_EQ(cluster.follower->generation(),
            cluster.primary->journal->generation());
  const FollowerCounters counters = cluster.follower->status().counters;
  EXPECT_EQ(counters.rotations, before.rotations + 1);
  EXPECT_EQ(counters.gap_batches, before.gap_batches);
  EXPECT_EQ(counters.resyncs, 0u);
}

TEST(Follower, LaggedPastRotationSnapshotResyncs) {
  Cluster cluster;
  ASSERT_TRUE(cluster.OpenPrimary().ok());
  ASSERT_TRUE(cluster.OpenFollower().ok());
  std::set<uint64_t> model;
  // Two full rotations while the follower never pumps: the records it
  // needs no longer exist as a log.
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
    if (i % 6 == 5) {
      ASSERT_TRUE(cluster.primary->base->Compact().ok());
    }
  }
  ASSERT_GT(cluster.primary->journal->generation(), 1u);
  cluster.PumpUntilConverged();
  EXPECT_TRUE(FollowerMatches(*cluster.follower, model));
  EXPECT_EQ(cluster.follower->status().counters.resyncs, 1u);
  EXPECT_EQ(cluster.follower->generation(),
            cluster.primary->journal->generation());
}

TEST(Follower, FaultyTransportConvergesDeterministically) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    TransportFaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.2;
    plan.duplicate_rate = 0.2;
    plan.reorder_rate = 0.2;
    plan.disconnect_rate = 0.05;
    plan.disconnect_ops = 3;
    plan.delay_rate = 0.0;

    Cluster cluster;
    ASSERT_TRUE(cluster.OpenPrimary().ok());
    ASSERT_TRUE(cluster.OpenFollower(&plan).ok());
    // Small fetch windows force many transport ops → many fault draws.
    std::set<uint64_t> model;
    for (uint64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(cluster.primary->base
                      ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                      .ok());
      model.insert(i);
      if (i % 5 == 4) {
        ASSERT_TRUE(cluster.primary->base->Remove(i - 4).ok());
        model.erase(i - 4);
      }
      (void)cluster.follower->Pump();
    }
    cluster.PumpUntilConverged();
    EXPECT_TRUE(FollowerMatches(*cluster.follower, model))
        << "seed " << seed;
    auto* faulty = static_cast<FaultInjectingTransport*>(
        cluster.transport.get());
    EXPECT_GT(faulty->injected_drops() + faulty->injected_duplicates() +
                  faulty->injected_reorders() + faulty->injected_disconnects(),
              0u)
        << "seed " << seed << " injected nothing — rates too low for "
        << faulty->ops() << " ops";
  }
}

TEST(Follower, DuplicatesAndReordersAreAbsorbedIdempotently) {
  TransportFaultPlan plan;
  plan.seed = 3;
  plan.duplicate_rate = 0.5;
  plan.reorder_rate = 0.3;

  Cluster cluster;
  ASSERT_TRUE(cluster.OpenPrimary().ok());
  ASSERT_TRUE(cluster.OpenFollower(&plan).ok());
  std::set<uint64_t> model;
  for (uint64_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
    (void)cluster.follower->Pump();
    (void)cluster.follower->Pump();
  }
  cluster.PumpUntilConverged();
  EXPECT_TRUE(FollowerMatches(*cluster.follower, model));
  const FollowerCounters counters = cluster.follower->status().counters;
  // The fault plan redelivered whole batches and swapped record pairs;
  // idempotent replay must have skipped and refetched rather than
  // double-applying (which FollowerMatches above would catch) — and the
  // paths must actually have fired.
  EXPECT_GT(counters.duplicates_skipped, 0u);
  EXPECT_GT(counters.gap_batches, 0u);
}

// --- Socket-backed followers (real loopback TCP) ---

TEST(Follower, ConvergesOverRealSocketsWithIdenticalMirror) {
  // The same catch-up contract as the in-process transport, but the log
  // ships through ReplicationServer + SocketLogTransport over loopback:
  // two followers, each on its own connection, one primary endpoint.
  Cluster cluster;
  cluster.base_options = NoAutoCompactOptions();
  ASSERT_TRUE(cluster.OpenPrimary().ok());

  ReplicationServerOptions server_options;
  server_options.env = &cluster.env;
  server_options.dir = kPrimaryDir;
  server_options.journal = cluster.primary->journal.get();
  auto server = ReplicationServer::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::unique_ptr<SocketLogTransport> transports[2];
  std::unique_ptr<Follower> followers[2];
  for (int i = 0; i < 2; ++i) {
    SocketTransportOptions transport_options;
    transport_options.host = "127.0.0.1";
    transport_options.port = (*server)->port();
    transport_options.reconnect = DefaultReconnectPolicy(/*jitter_seed=*/i + 1);
    transport_options.reconnect.base_backoff_us = 200;
    transport_options.reconnect.max_backoff_us = 5000;
    transports[i] = std::make_unique<SocketLogTransport>(transport_options);
    FollowerOptions options;
    options.env = &cluster.env;
    options.dir = "replica" + std::to_string(i);
    options.base = cluster.base_options;
    options.wal.sync_policy = WalSyncPolicy::kEveryRecord;
    options.replica_index = static_cast<uint32_t>(i);
    auto follower = Follower::Open(std::move(options), transports[i].get());
    ASSERT_TRUE(follower.ok()) << follower.status().ToString();
    followers[i] = std::move(follower).value();
  }

  std::set<uint64_t> model;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
    if (i % 5 == 4) {
      const uint64_t victim = i - 2;
      ASSERT_TRUE(cluster.primary->base->Remove(victim).ok());
      model.erase(victim);
    }
  }
  const uint64_t tail = cluster.primary->journal->tail_state().next_lsn;
  for (auto& follower : followers) {
    for (size_t round = 0; round < 10000 && follower->applied_lsn() < tail;
         ++round) {
      (void)follower->Pump();
    }
    ASSERT_EQ(follower->applied_lsn(), tail);
    EXPECT_TRUE(FollowerMatches(*follower, model));
    EXPECT_EQ(follower->NextId(), cluster.primary->base->NextId());
    EXPECT_EQ(follower->lag(), 0u);
    EXPECT_EQ(follower->status().counters.resyncs, 0u);
  }

  // Byte-shipped means byte-identical: each follower's WAL mirror equals
  // the primary's log, record for record, through the framed wire.
  auto primary_wal = cluster.env.ReadFileBytes(
      storage::WalPath(kPrimaryDir, cluster.primary->journal->generation()));
  ASSERT_TRUE(primary_wal.ok());
  for (int i = 0; i < 2; ++i) {
    auto follower_wal = cluster.env.ReadFileBytes(storage::WalPath(
        "replica" + std::to_string(i), followers[i]->generation()));
    ASSERT_TRUE(follower_wal.ok());
    EXPECT_EQ(*primary_wal, *follower_wal) << "replica " << i;
  }

  // A rotation (explicit compaction at a converged cursor) streams over
  // the socket exactly as in-process: checkpoint + fresh generation.
  ASSERT_TRUE(cluster.primary->base->Compact().ok());
  for (uint64_t i = 20; i < 26; ++i) {
    ASSERT_TRUE(cluster.primary->base
                    ->Insert(ShapeFor(i), ImageFor(i), LabelFor(i))
                    .ok());
    model.insert(i);
  }
  const uint64_t tail2 = cluster.primary->journal->tail_state().next_lsn;
  for (auto& follower : followers) {
    for (size_t round = 0; round < 10000 && follower->applied_lsn() < tail2;
         ++round) {
      (void)follower->Pump();
    }
    ASSERT_EQ(follower->applied_lsn(), tail2);
    EXPECT_TRUE(FollowerMatches(*follower, model));
    EXPECT_EQ(follower->generation(), cluster.primary->journal->generation());
    EXPECT_GT(follower->status().counters.rotations, 0u);
  }

  // Graceful teardown while clients hold live connections.
  (*server)->Stop();
  EXPECT_EQ((*server)->active_connections(), 0u);
}

// --- The replicated serving tier ---

ReplicatedOptions TierOptions() {
  ReplicatedOptions options;
  options.base = SmallBaseOptions();
  options.primary_wal.sync_policy = WalSyncPolicy::kEveryRecord;
  options.follower_wal.sync_policy = WalSyncPolicy::kEveryRecord;
  options.start_replication = false;
  return options;
}

std::vector<ReplicaSpec> Replicas(size_t n) {
  std::vector<ReplicaSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].dir = "replica" + std::to_string(i);
  }
  return specs;
}

TEST(ReplicatedTier, QueriesPinReplicaLsnAndReportStaleness) {
  MemEnv env;
  ReplicatedOptions options = TierOptions();
  options.env = &env;
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2), options);
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());

  std::vector<core::MatchStats> stats;
  auto results = (*tier)->MatchBatch({ShapeFor(3), ShapeFor(7)}, /*k=*/1,
                                     &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].front().first, 3u);
  EXPECT_EQ((*results)[1].front().first, 7u);
  ASSERT_EQ(stats.size(), 2u);
  for (const core::MatchStats& entry : stats) {
    EXPECT_TRUE(entry.replicated);
    EXPECT_EQ(entry.replica_lsn, (*tier)->primary_next_lsn());
    EXPECT_EQ(entry.replica_lag, 0u);
  }
}

TEST(ReplicatedTier, RouterRedirectsAroundStaleFollower) {
  MemEnv env;
  ReplicatedOptions options = TierOptions();
  options.env = &env;
  options.max_staleness_records = 4;
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2), options);
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());

  // Stall replica 1: ten more writes that only replica 0 applies.
  for (uint64_t i = 8; i < 18; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  while ((*tier)->follower(0).applied_lsn() < (*tier)->primary_next_lsn()) {
    ASSERT_TRUE((*tier)->StepFollower(0).ok());
  }

  // Every batch lands on the fresh replica, none errors, and the fresh
  // replica's staleness stamp stays within the bound.
  for (int round = 0; round < 8; ++round) {
    std::vector<core::MatchStats> stats;
    auto results = (*tier)->MatchBatch({ShapeFor(12)}, 1, &stats);
    ASSERT_TRUE(results.ok()) << results.status().message();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].replica, 0u);
    EXPECT_LE(stats[0].replica_lag, options.max_staleness_records);
    EXPECT_EQ((*results)[0].front().first, 12u);
  }
}

TEST(ReplicatedTier, ServeStalePolicyRoundRobinsThroughLaggards) {
  MemEnv env;
  ReplicatedOptions options = TierOptions();
  options.env = &env;
  options.max_staleness_records = 4;
  options.stale_policy = StaleRoutePolicy::kServeStale;
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2), options);
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());
  for (uint64_t i = 8; i < 18; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  while ((*tier)->follower(0).applied_lsn() < (*tier)->primary_next_lsn()) {
    ASSERT_TRUE((*tier)->StepFollower(0).ok());
  }

  bool served_stale = false;
  for (int round = 0; round < 8; ++round) {
    std::vector<core::MatchStats> stats;
    auto results = (*tier)->MatchBatch({ShapeFor(3)}, 1, &stats);
    ASSERT_TRUE(results.ok());
    if (stats[0].replica == 1) {
      served_stale = true;
      EXPECT_GT(stats[0].replica_lag, options.max_staleness_records);
    }
  }
  EXPECT_TRUE(served_stale)
      << "round-robin never reached the stale replica in 8 rounds";
}

TEST(ReplicatedTier, PrimaryServesWhenNoFollowers) {
  MemEnv env;
  ReplicatedOptions options = TierOptions();
  options.env = &env;
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, {}, options);
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  std::vector<core::MatchStats> stats;
  auto results = (*tier)->MatchBatch({ShapeFor(2)}, 1, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].front().first, 2u);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].replicated);
  EXPECT_EQ(stats[0].replica_lag, 0u);
}

// --- Snapshot consistency under concurrent writes (TSan target) ---
//
// The contract: a query admitted at replica LSN L never observes a shape
// whose insert was logged at or after L. The writer records every
// insert's LSN; query threads check every id they get back against it,
// while the pump threads replay, rotate and compact underneath them.

TEST(ReplicatedTier, SnapshotConsistencyUnderConcurrentWrites) {
  constexpr uint64_t kInserts = 160;
  MemEnv env;
  ReplicatedOptions options = TierOptions();
  options.env = &env;
  options.start_replication = true;
  options.idle_backoff_us = 20;
  auto tier_or = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2), options);
  ASSERT_TRUE(tier_or.ok());
  ReplicatedShapeBase& tier = **tier_or;

  // insert_lsns[id] is published by the writer before the insert is
  // acknowledged; UINT64_MAX means "never inserted".
  std::vector<std::atomic<uint64_t>> insert_lsns(kInserts);
  for (auto& lsn : insert_lsns) lsn.store(UINT64_MAX);
  std::atomic<uint64_t> inserted{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      uint64_t probe = static_cast<uint64_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t upper = inserted.load(std::memory_order_acquire);
        if (upper == 0) continue;
        probe = (probe * 31 + 17) % upper;
        std::vector<core::MatchStats> stats;
        auto results = tier.MatchBatch({ShapeFor(probe)}, /*k=*/2, &stats);
        if (!results.ok()) continue;  // Shed under load: retriable.
        for (const auto& per_query : *results) {
          for (const auto& [id, distance] : per_query) {
            if (id >= kInserts) {
              ++violations;
              continue;
            }
            const uint64_t lsn = insert_lsns[id].load();
            // Each of the ids served was applied on the replica, so its
            // insert LSN must lie strictly below the pinned bound.
            if (lsn == UINT64_MAX || lsn >= stats[0].replica_lsn) {
              ++violations;
            }
          }
        }
      }
    });
  }

  for (uint64_t i = 0; i < kInserts; ++i) {
    insert_lsns[i].store(tier.primary_next_lsn());
    ASSERT_TRUE(tier.Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    inserted.store(i + 1, std::memory_order_release);
    if (i % 9 == 8) {
      ASSERT_TRUE(tier.Remove(i - 8).ok());
    }
    if (i % 40 == 39) {
      ASSERT_TRUE(tier.Compact().ok());
    }
  }
  ASSERT_TRUE(tier.WaitForCatchUp(util::Deadline::AfterMillis(20000)).ok());
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);

  // Convergence after the dust settles.
  for (size_t i = 0; i < tier.replica_count(); ++i) {
    EXPECT_EQ(tier.follower(i).NextId(), tier.PrimaryNextId());
    EXPECT_EQ(tier.follower(i).LiveIds(), tier.PrimaryLiveIds());
  }
}

}  // namespace
}  // namespace geosir::replication
