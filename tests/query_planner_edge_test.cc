// Edge-case coverage for the query algebra, planner, and selectivity
// model beyond the happy paths in query_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "query/planner.h"
#include "query/selectivity.h"
#include "util/rng.h"
#include "workload/query_set.h"

namespace geosir::query {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0}) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

class PlannerEdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::ImageBaseSpec spec;
    spec.num_images = 25;
    spec.num_prototypes = 6;
    spec.seed = 777;
    auto generated = workload::GenerateImageBase(spec);
    ASSERT_TRUE(generated.ok());
    generated_ = new workload::GeneratedBase(std::move(*generated));
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }
  static workload::GeneratedBase* generated_;
};

workload::GeneratedBase* PlannerEdgeTest::generated_ = nullptr;

TEST_F(PlannerEdgeTest, ComplementOfEverythingIsEmpty) {
  QueryContext context(generated_->images.get());
  // similar(P) | ~similar(P) == DB; its complement is empty.
  const Polyline& p = generated_->prototypes[0];
  QueryPtr q = Complement(
      Union(Similar(p), Complement(Similar(p))));
  auto result = ExecuteQuery(*q, &context);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(PlannerEdgeTest, DeepNestingExecutes) {
  QueryContext context(generated_->images.get());
  const auto& protos = generated_->prototypes;
  // ((A & B) | (C & ~A)) & ~(B | C) — 3 leaves, heavy nesting.
  QueryPtr q = Intersect(
      Union(Intersect(Similar(protos[0]), Similar(protos[1])),
            Intersect(Similar(protos[2]),
                      Complement(Similar(protos[0])))),
      Complement(Union(Similar(protos[1]), Similar(protos[2]))));
  PlanExplanation plan;
  auto result = ExecuteQuery(*q, &context, {}, &plan);
  ASSERT_TRUE(result.ok());
  // The query demands (B or C) and not-(B or C) pieces: must be empty.
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(plan.num_terms, 2u);
}

TEST_F(PlannerEdgeTest, UnionIsCommutative) {
  QueryContext context(generated_->images.get());
  const auto& protos = generated_->prototypes;
  QueryPtr ab = Union(Similar(protos[0]), Similar(protos[1]));
  QueryPtr ba = Union(Similar(protos[1]), Similar(protos[0]));
  auto r1 = ExecuteQuery(*ab, &context);
  auto r2 = ExecuteQuery(*ba, &context);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(PlannerEdgeTest, CloneProducesIndependentEqualTree) {
  const auto& protos = generated_->prototypes;
  QueryPtr q = Intersect(Similar(protos[0]),
                         Complement(Overlap(protos[1], protos[2], 0.5)));
  QueryPtr clone = q->Clone();
  EXPECT_EQ(ToString(*q), ToString(*clone));
  QueryContext context(generated_->images.get());
  auto r1 = ExecuteQuery(*q, &context);
  auto r2 = ExecuteQuery(*clone, &context);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(PlannerEdgeTest, OrderedAndUnorderedPlansAgree) {
  const auto& protos = generated_->prototypes;
  QueryPtr q = Intersect(
      Intersect(Similar(protos[0]), Similar(protos[3])),
      Complement(Similar(protos[4])));
  for (bool ordered : {false, true}) {
    QueryContext context(generated_->images.get());
    PlanOptions options;
    options.order_by_selectivity = ordered;
    auto result = ExecuteQuery(*q, &context, options);
    ASSERT_TRUE(result.ok());
    // Both plans compute the same set (checked against each other via
    // the deterministic base: recompute unordered as reference).
    QueryContext reference(generated_->images.get());
    PlanOptions unordered;
    unordered.order_by_selectivity = false;
    auto expect = ExecuteQuery(*q, &reference, unordered);
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(*result, *expect);
  }
}

TEST(SelectivityEdgeTest, SignificantVerticesDegenerateInputs) {
  // Too-small shapes yield 0 (NormalizeQuery fails).
  EXPECT_EQ(SignificantVertices(Polyline::Open({{0, 0}})), 0.0);
  // Open two-vertex polyline: both endpoints degenerate (angle pi), one
  // edge of length 1 after normalization -> V_S = 2 * (1/2 * 1/2) = 0.5.
  const double vs =
      SignificantVertices(Polyline::Open({{0, 0}, {2, 0}}));
  EXPECT_NEAR(vs, 0.5, 1e-9);
}

TEST(SelectivityEdgeTest, SquareWorkedByHand) {
  // Normalized unit square: diameter = diagonal = 1, edges 1/sqrt(2).
  // Each vertex: angle pi/2 -> angle term 1; edge term (2/sqrt2)/2 =
  // 1/sqrt2. Contribution 0.5 * (1 + 1/sqrt2) each, 4 vertices.
  const double vs = SignificantVertices(RegularPolygon(4, 1.0));
  EXPECT_NEAR(vs, 4 * 0.5 * (1.0 + 1.0 / std::sqrt(2.0)), 1e-6);
}

TEST(SelectivityEdgeTest, ScaleInvariant) {
  const Polyline small = RegularPolygon(7, 0.3, {5, 5});
  const Polyline big = RegularPolygon(7, 30.0, {-2, 8});
  EXPECT_NEAR(SignificantVertices(small), SignificantVertices(big), 1e-9);
}

TEST(SelectivityEdgeTest, ModelIgnoresInvalidObservations) {
  SelectivityModel model(5.0);
  model.Observe(0.0, 100);   // vs = 0 must be ignored.
  model.Observe(-1.0, 100);  // Negative too.
  EXPECT_EQ(model.observations(), 0u);
  EXPECT_NEAR(model.c(), 5.0, 1e-12);
}

}  // namespace
}  // namespace geosir::query
