/// Fault-injection harness for the storage fault-tolerance layer: drives
/// BufferManager, ExternalRTree, the matcher (through
/// ExternalSimplexIndex) and shape-file load across seeded fault
/// schedules and rate sweeps, asserting the stack's contract — every
/// outcome is a correct result, a degraded result that says so, or a
/// clean non-OK Status. Never a crash, never a silent wrong answer.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "rangesearch/brute_force_index.h"
#include "storage/base_io.h"
#include "storage/block_file.h"
#include "storage/external_index.h"
#include "storage/external_simplex_index.h"
#include "storage/fault_injection.h"
#include "util/rng.h"

namespace geosir::storage {
namespace {

using geom::Point;
using geom::Polyline;
using geom::Triangle;
using rangesearch::IndexedPoint;

std::vector<IndexedPoint> FloatPoints(size_t n, util::Rng* rng) {
  std::vector<IndexedPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(IndexedPoint{{static_cast<float>(rng->Uniform(0, 1)),
                                static_cast<float>(rng->Uniform(-0.8, 0.8))},
                               static_cast<uint32_t>(i)});
  }
  return pts;
}

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

// ---------------------------------------------------------------------------
// FaultInjectingDevice semantics.

TEST(FaultInjectingDeviceTest, ScheduledTransientFaultHitsExactOp) {
  BlockFile file(64);
  file.AppendBlock({1, 2, 3});
  FaultPlan plan;
  plan.read_schedule = {{1, FaultKind::kTransientFailure}};
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
  EXPECT_TRUE(faulty.Read(0).ok());  // Op 0: clean.
  auto failed = faulty.Read(0);      // Op 1: injected.
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(faulty.Read(0).ok());  // Op 2: clean again (transient).
  EXPECT_EQ(faulty.injected_read_failures(), 1u);
}

TEST(FaultInjectingDeviceTest, DeterministicAcrossRuns) {
  BlockFile file(64);
  for (int i = 0; i < 8; ++i) file.AppendBlock({static_cast<uint8_t>(i)});
  FaultPlan plan;
  plan.seed = 7;
  plan.read_failure_rate = 0.3;
  plan.read_flip_rate = 0.3;
  const auto run = [&]() {
    FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
    std::vector<int> outcomes;
    for (int op = 0; op < 32; ++op) {
      auto r = faulty.Read(op % 8);
      outcomes.push_back(r.ok() ? (*r)[0] : -1);
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectingDeviceTest, StickyFlipCorruptsSameBlockEveryRead) {
  BlockFile file(64);
  std::vector<uint8_t> block(64, 0xAB);
  StampBlockChecksum(&block, 64);
  file.AppendBlock(block);
  FaultPlan plan;
  plan.sticky_flip_rate = 1.0;  // Every block rots.
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
  auto first = faulty.Read(0);
  auto second = faulty.Read(0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // Same flip, every time.
  EXPECT_FALSE(VerifyBlockChecksum(*first).ok());
}

TEST(FaultInjectingDeviceTest, ReadOnlyDecorationRejectsWrites) {
  BlockFile file(64);
  file.AppendBlock({1});
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file),
                              FaultPlan{});
  EXPECT_EQ(faulty.Write(0, {2}).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(faulty.Append({2}).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(FaultInjectingDeviceTest, TornWritePersistsPrefixOnly) {
  BlockFile file(64);
  std::vector<uint8_t> original(64, 0x11);
  file.AppendBlock(original);
  FaultPlan plan;
  plan.write_schedule = {{0, FaultKind::kTornWrite}};
  FaultInjectingDevice faulty(static_cast<BlockDevice*>(&file), plan);
  std::vector<uint8_t> update(64, 0x22);
  auto status = faulty.Write(0, update);
  ASSERT_FALSE(status.ok());  // Torn writes report the fault...
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  auto after = file.ReadBlock(0);
  ASSERT_TRUE(after.ok());
  // ...but the medium now holds a prefix of the new bytes followed by the
  // old suffix (the tear point is seed-derived and may sit anywhere,
  // including the ends).
  ASSERT_EQ(after->size(), original.size());
  size_t tear = 0;
  while (tear < after->size() && (*after)[tear] == 0x22) ++tear;
  for (size_t i = tear; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i], 0x11) << "byte " << i << " (tear at " << tear << ")";
  }
  EXPECT_EQ(faulty.injected_torn_writes(), 1u);
}

// ---------------------------------------------------------------------------
// BufferManager retry + verify.

std::vector<uint8_t> ChecksummedBlock(size_t block_size, uint8_t fill) {
  std::vector<uint8_t> block(block_size, fill);
  StampBlockChecksum(&block, block_size);
  return block;
}

TEST(BufferManagerFaultTest, TransientReadFaultHealsViaRetry) {
  BlockFile file(64);
  file.AppendBlock(ChecksummedBlock(64, 0x5A));
  FaultPlan plan;
  plan.read_schedule = {{0, FaultKind::kTransientFailure}};
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
  BufferOptions options;
  options.verify_checksums = true;
  options.retry.max_attempts = 3;
  BufferManager buffer(&faulty, 4, options);
  auto pinned = buffer.Pin(0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ((**pinned)[0], 0x5A);
  EXPECT_EQ(buffer.retries(), 1u);
}

TEST(BufferManagerFaultTest, ExhaustedRetriesSurfaceUnavailable) {
  BlockFile file(64);
  file.AppendBlock(ChecksummedBlock(64, 0x5A));
  FaultPlan plan;
  plan.read_failure_rate = 1.0;
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
  BufferOptions options;
  options.retry.max_attempts = 3;
  BufferManager buffer(&faulty, 4, options);
  auto pinned = buffer.Pin(0);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(faulty.injected_read_failures(), 3u);  // Whole budget spent.
}

TEST(BufferManagerFaultTest, TransientBitFlipHealsPersistentRotSurfaces) {
  BlockFile file(64);
  file.AppendBlock(ChecksummedBlock(64, 0x5A));
  {
    // A flip on the read path: the re-read comes back clean.
    FaultPlan plan;
    plan.read_schedule = {{0, FaultKind::kBitFlip}};
    FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
    BufferOptions options;
    options.verify_checksums = true;
    options.retry.max_attempts = 3;
    BufferManager buffer(&faulty, 4, options);
    auto pinned = buffer.Pin(0);
    ASSERT_TRUE(pinned.ok());
    EXPECT_EQ((**pinned)[0], 0x5A);
    EXPECT_EQ(buffer.checksum_failures(), 1u);
  }
  {
    // Sticky rot: every re-read is corrupt; Pin must report kCorruption,
    // never return the garbage bytes.
    FaultPlan plan;
    plan.sticky_flip_rate = 1.0;
    FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
    BufferOptions options;
    options.verify_checksums = true;
    options.retry.max_attempts = 3;
    BufferManager buffer(&faulty, 4, options);
    auto pinned = buffer.Pin(0);
    ASSERT_FALSE(pinned.ok());
    EXPECT_EQ(pinned.status().code(), util::StatusCode::kCorruption);
  }
}

TEST(BufferManagerFaultTest, WithoutVerificationBitRotPassesThrough) {
  // Documents why verify_checksums exists: a bare buffer happily caches
  // rotted bytes.
  BlockFile file(64);
  file.AppendBlock(ChecksummedBlock(64, 0x5A));
  FaultPlan plan;
  plan.sticky_flip_rate = 1.0;
  FaultInjectingDevice faulty(static_cast<const BlockDevice*>(&file), plan);
  BufferManager buffer(&faulty, 4);  // Default: no verification.
  auto pinned = buffer.Pin(0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_FALSE(VerifyBlockChecksum(**pinned).ok());
}

TEST(BufferManagerPinContract, EvictionInvalidatesEarlierPointers) {
  // Regression test for the documented Pin() lifetime rule: the returned
  // pointer aliases a buffer frame, and an evicting Pin() redirects that
  // frame to the new block. Callers holding the old pointer would now
  // read the *new* block's bytes — copy before re-pinning.
  BlockFile file(32);
  file.AppendBlock({0xAA});
  file.AppendBlock({0xBB});
  BufferManager buffer(&file, 1);  // Single frame: every miss evicts.
  auto first = buffer.Pin(0);
  ASSERT_TRUE(first.ok());
  const std::vector<uint8_t>* held = *first;
  EXPECT_EQ((*held)[0], 0xAA);
  auto second = buffer.Pin(1);  // Evicts block 0's frame.
  ASSERT_TRUE(second.ok());
  // The frame object was reused, so the stale pointer aliases the new
  // contents — exactly the hazard the contract warns about.
  EXPECT_EQ(held, *second);
  EXPECT_EQ((*held)[0], 0xBB);
}

// ---------------------------------------------------------------------------
// ExternalRTree degradation policies.

TEST(ExternalRTreeFaultTest, FailFastPropagatesUnavailable) {
  util::Rng rng(11);
  auto points = FloatPoints(2000, &rng);
  auto tree = ExternalRTree::Build(points, 512);
  ASSERT_TRUE(tree.ok());
  FaultPlan plan;
  plan.read_failure_rate = 1.0;
  FaultInjectingDevice faulty(
      static_cast<const BlockDevice*>(&tree->file()), plan);
  BufferManager buffer(&faulty, 16);
  auto count = tree->CountInTriangle(Triangle{{0, -1}, {1, -1}, {0.5, 1}},
                                     &buffer);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), util::StatusCode::kUnavailable);
}

TEST(ExternalRTreeFaultTest, SkipUnreadableReturnsFlaggedLowerBound) {
  util::Rng rng(12);
  auto points = FloatPoints(5000, &rng);
  rangesearch::BruteForceIndex oracle;
  oracle.Build(points);
  auto tree = ExternalRTree::Build(points, 512);
  ASSERT_TRUE(tree.ok());
  const Triangle big{{-0.1, -1}, {1.1, -1}, {0.5, 1.5}};
  const size_t truth = oracle.CountInTriangle(big);

  FaultPlan plan;
  plan.seed = 3;
  plan.read_failure_rate = 0.5;  // Heavy faults; no retries: must skip.
  FaultInjectingDevice faulty(
      static_cast<const BlockDevice*>(&tree->file()), plan);
  BufferOptions boptions;
  boptions.retry.max_attempts = 1;
  BufferManager buffer(&faulty, 16, boptions);
  RTreeQueryConfig config;
  config.policy = DegradePolicy::kSkipUnreadable;
  RTreeDegradation degradation;
  auto count = tree->CountInTriangle(big, &buffer, config, &degradation);
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(degradation.degraded);
  EXPECT_GT(degradation.skipped_subtrees, 0u);
  EXPECT_LT(*count, truth);  // Strictly less at 50% faults on this seed.
}

TEST(ExternalRTreeFaultTest, CorruptBlockDetectedByChecksummingBuffer) {
  util::Rng rng(13);
  auto points = FloatPoints(3000, &rng);
  auto tree = ExternalRTree::Build(points, 512);
  ASSERT_TRUE(tree.ok());
  FaultPlan plan;
  plan.sticky_flip_rate = 1.0;  // Every block rotted.
  FaultInjectingDevice faulty(
      static_cast<const BlockDevice*>(&tree->file()), plan);
  BufferOptions boptions;
  boptions.verify_checksums = true;
  boptions.retry.max_attempts = 2;
  BufferManager buffer(&faulty, 16, boptions);
  auto count = tree->CountInTriangle(Triangle{{0, -1}, {1, -1}, {0.5, 1}},
                                     &buffer);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), util::StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: at read-fault rates {0, 0.01, 0.1} and bit-flip
// rates {0, 1e-4}, every query either matches the fault-free oracle, is
// flagged degraded, or returns a clean non-OK status.

TEST(FaultSweepTest, RTreeQueriesNeverSilentlyWrong) {
  util::Rng rng(21);
  auto points = FloatPoints(8000, &rng);
  rangesearch::BruteForceIndex oracle;
  oracle.Build(points);
  auto tree = ExternalRTree::Build(points, 1024);
  ASSERT_TRUE(tree.ok());

  size_t outcomes_ok = 0, outcomes_degraded = 0, outcomes_error = 0;
  for (double fail_rate : {0.0, 0.01, 0.1}) {
    for (double flip_rate : {0.0, 1e-4}) {
      for (DegradePolicy policy :
           {DegradePolicy::kFailFast, DegradePolicy::kSkipUnreadable}) {
        FaultPlan plan;
        plan.seed = static_cast<uint64_t>(fail_rate * 1000) * 31 +
                    static_cast<uint64_t>(flip_rate * 1e6) + 1;
        plan.read_failure_rate = fail_rate;
        plan.read_flip_rate = flip_rate;
        plan.sticky_flip_rate = flip_rate;
        FaultInjectingDevice faulty(
            static_cast<const BlockDevice*>(&tree->file()), plan);
        BufferOptions boptions;
        boptions.verify_checksums = true;
        boptions.retry.max_attempts = 3;
        RTreeQueryConfig config;
        config.policy = policy;
        util::Rng qrng(99);
        for (int q = 0; q < 25; ++q) {
          // Cold cache per query so faults keep biting.
          BufferManager buffer(&faulty, 8, boptions);
          const Triangle t{{qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                           {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                           {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)}};
          RTreeDegradation degradation;
          auto count = tree->CountInTriangle(t, &buffer, config, &degradation);
          if (!count.ok()) {
            // Clean failure: one of the declared fault codes.
            EXPECT_TRUE(
                count.status().code() == util::StatusCode::kUnavailable ||
                count.status().code() == util::StatusCode::kCorruption)
                << count.status().ToString();
            ++outcomes_error;
            continue;
          }
          const size_t truth = oracle.CountInTriangle(t);
          if (degradation.degraded) {
            EXPECT_LE(*count, truth);  // A flagged lower bound.
            ++outcomes_degraded;
          } else {
            EXPECT_EQ(*count, truth);  // Silent means correct.
            ++outcomes_ok;
          }
        }
      }
    }
  }
  // The sweep exercises all three contract outcomes.
  EXPECT_GT(outcomes_ok, 0u);
  EXPECT_GT(outcomes_degraded, 0u);
  EXPECT_GT(outcomes_error, 0u);
}

// ---------------------------------------------------------------------------
// Whole-matcher sweeps through ExternalSimplexIndex.

core::ShapeBaseOptions ExternalBaseOptions(ExternalSimplexIndex::Options idx) {
  core::ShapeBaseOptions options;
  options.index_factory = [idx]() {
    return std::make_unique<ExternalSimplexIndex>(idx);
  };
  return options;
}

void PopulateBase(core::ShapeBase* base) {
  util::Rng rng(31);
  for (int proto = 0; proto < 20; ++proto) {
    const int n = 5 + proto % 9;
    for (int inst = 0; inst < 3; ++inst) {
      Polyline poly = RegularPolygon(n, 1.0, {0, 0}, 0.3 * proto);
      for (Point& p : poly.mutable_vertices()) {
        p += Point{rng.Gaussian(0.01), rng.Gaussian(0.01)};
      }
      ASSERT_TRUE(base->AddShape(poly, proto).ok());
    }
  }
  ASSERT_TRUE(base->Finalize().ok());
}

TEST(ExternalMatcherTest, FaultFreeExternalIndexMatchesLikeInMemory) {
  core::ShapeBase external_base(ExternalBaseOptions({}));
  PopulateBase(&external_base);
  core::ShapeBase memory_base;  // Default kd-tree.
  PopulateBase(&memory_base);

  core::EnvelopeMatcher external_matcher(&external_base);
  core::EnvelopeMatcher memory_matcher(&memory_base);
  for (core::ShapeId id = 0; id < memory_base.NumShapes(); id += 7) {
    core::MatchOptions options;
    options.k = 3;
    core::MatchStats stats;
    auto ext = external_matcher.Match(memory_base.shape(id).boundary, options,
                                      &stats);
    auto mem = memory_matcher.Match(memory_base.shape(id).boundary, options);
    ASSERT_TRUE(ext.ok());
    ASSERT_TRUE(mem.ok());
    EXPECT_FALSE(stats.degraded);
    ASSERT_FALSE(ext->empty());
    // The external tree stores f32 vertices, so candidate sets can differ
    // at envelope boundaries; the top-1 must agree regardless.
    EXPECT_EQ((*ext)[0].shape_id, (*mem)[0].shape_id) << "query " << id;
  }
}

TEST(ExternalMatcherTest, DynamicBasePropagatesDegradationStats) {
  // DynamicShapeBase::Match forwards the main-base matcher stats; with a
  // skip-everything faulty external index behind it, the degraded flag
  // must reach the caller.
  ExternalSimplexIndex::Options idx;
  idx.inject_faults = true;
  idx.faults.read_failure_rate = 1.0;  // Root unreadable on every query.
  idx.buffer.retry.max_attempts = 1;
  idx.query.policy = DegradePolicy::kSkipUnreadable;
  core::DynamicShapeBase::Options options;
  options.base = ExternalBaseOptions(idx);
  options.min_compaction_size = 1;  // Compact eagerly into the main base.
  core::DynamicShapeBase base(options);
  util::Rng rng(41);
  for (int i = 0; i < 8; ++i) {
    Polyline poly = RegularPolygon(6 + i % 3, 1.0, {0, 0}, 0.2 * i);
    for (Point& p : poly.mutable_vertices()) {
      p += Point{rng.Gaussian(0.01), rng.Gaussian(0.01)};
    }
    ASSERT_TRUE(base.Insert(poly, i).ok());
  }
  ASSERT_TRUE(base.Compact().ok());
  core::MatchStats stats;
  auto got = base.Match(RegularPolygon(6, 1.0), 1, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.skipped_subtrees, 0u);
}

TEST(FaultSweepTest, MatchNeverSilentlyWrong) {
  // Fault-free reference through the same (f32) external index.
  core::ShapeBase reference_base(ExternalBaseOptions({}));
  PopulateBase(&reference_base);
  core::EnvelopeMatcher reference_matcher(&reference_base);

  size_t outcomes_ok = 0, outcomes_degraded = 0, outcomes_error = 0;
  for (double fail_rate : {0.0, 0.01, 0.1}) {
    for (double flip_rate : {0.0, 1e-4}) {
      for (DegradePolicy policy :
           {DegradePolicy::kFailFast, DegradePolicy::kSkipUnreadable}) {
        ExternalSimplexIndex::Options idx;
        idx.inject_faults = true;
        idx.faults.seed =
            static_cast<uint64_t>(fail_rate * 1000) * 127 +
            static_cast<uint64_t>(flip_rate * 1e6) * 7 + 5;
        idx.faults.read_failure_rate = fail_rate;
        idx.faults.read_flip_rate = flip_rate;
        idx.faults.sticky_flip_rate = flip_rate;
        idx.buffer.retry.max_attempts = 3;
        idx.query.policy = policy;
        idx.buffer_capacity_blocks = 8;  // Cold-ish: faults keep biting.
        core::ShapeBase base(ExternalBaseOptions(idx));
        PopulateBase(&base);
        core::EnvelopeMatcher matcher(&base);

        for (core::ShapeId id = 0; id < base.NumShapes(); id += 9) {
          core::MatchOptions options;
          options.k = 2;
          core::MatchStats stats;
          auto got = matcher.Match(base.shape(id).boundary, options, &stats);
          if (!got.ok()) {
            EXPECT_TRUE(
                got.status().code() == util::StatusCode::kUnavailable ||
                got.status().code() == util::StatusCode::kCorruption)
                << got.status().ToString();
            ++outcomes_error;
            continue;
          }
          if (stats.degraded) {
            EXPECT_GT(stats.skipped_subtrees, 0u);
            ++outcomes_degraded;
            continue;  // Flagged: any subset ranking is acceptable.
          }
          auto want =
              reference_matcher.Match(base.shape(id).boundary, options);
          ASSERT_TRUE(want.ok());
          ASSERT_EQ(got->size(), want->size());
          for (size_t i = 0; i < got->size(); ++i) {
            EXPECT_EQ((*got)[i].shape_id, (*want)[i].shape_id);
            EXPECT_NEAR((*got)[i].distance, (*want)[i].distance, 1e-12);
          }
          ++outcomes_ok;
        }
      }
    }
  }
  EXPECT_GT(outcomes_ok, 0u);
  EXPECT_GT(outcomes_degraded + outcomes_error, 0u);
}

// ---------------------------------------------------------------------------
// QueryStats aggregation under degraded reads: nodes_visited must count
// blocks actually scanned — every pin the traversal attempted minus the
// ones that failed — so the index's work counters stay consistent with
// the buffer manager's own figures even when subtrees are being skipped.

TEST(QueryStatsDegradedTest, CleanRunNodesVisitedEqualsBufferPins) {
  util::Rng rng(51);
  ExternalSimplexIndex index;
  index.Build(FloatPoints(4000, &rng));
  index.buffer()->ResetCounters();
  index.ResetStats();
  util::Rng qrng(52);
  for (int q = 0; q < 10; ++q) {
    const Triangle t{{qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                     {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                     {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)}};
    index.CountInTriangle(t);
  }
  EXPECT_EQ(static_cast<uint64_t>(index.stats().subtrees_skipped), 0u);
  // No faults: every attempted pin is a visited node (cached blocks are
  // still visits from the traversal's perspective).
  EXPECT_GT(static_cast<uint64_t>(index.stats().nodes_visited), 0u);
  EXPECT_EQ(static_cast<uint64_t>(index.stats().nodes_visited),
            index.buffer()->pins());
}

TEST(QueryStatsDegradedTest, SkipUnreadableKeepsCountersConsistent) {
  ExternalSimplexIndex::Options idx;
  idx.inject_faults = true;
  idx.faults.seed = 9;
  idx.faults.read_failure_rate = 0.3;
  idx.buffer.retry.max_attempts = 1;  // No retries: failed pins stay failed.
  idx.buffer_capacity_blocks = 4;     // Cold-ish cache: faults keep biting.
  idx.query.policy = DegradePolicy::kSkipUnreadable;
  ExternalSimplexIndex index(idx);
  util::Rng rng(53);
  index.Build(FloatPoints(6000, &rng));
  index.buffer()->ResetCounters();
  index.ResetStats();
  util::Rng qrng(54);
  for (int q = 0; q < 25; ++q) {
    const Triangle t{{qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                     {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)},
                     {qrng.Uniform(0, 1), qrng.Uniform(-0.8, 0.8)}};
    index.CountInTriangle(t);
    // Invariant after EVERY query: each skipped subtree is exactly one
    // failed pin, and everything else that was pinned was scanned.
    EXPECT_EQ(static_cast<uint64_t>(index.stats().nodes_visited) +
                  static_cast<uint64_t>(index.stats().subtrees_skipped),
              index.buffer()->pins())
        << "query " << q;
  }
  // At a 30% fault rate with no retries the sweep is genuinely degraded.
  EXPECT_GT(static_cast<uint64_t>(index.stats().subtrees_skipped), 0u);
  EXPECT_GT(static_cast<uint64_t>(index.stats().nodes_visited), 0u);
}

TEST(QueryStatsDegradedTest, WholeMatchPreservesInvariant) {
  // The same invariant through full EnvelopeMatcher queries: a degraded
  // Match aggregates many index operations, and the counters must still
  // reconcile with the buffer afterwards.
  ExternalSimplexIndex::Options idx;
  idx.inject_faults = true;
  idx.faults.seed = 17;
  idx.faults.read_failure_rate = 0.15;
  idx.buffer.retry.max_attempts = 1;
  idx.buffer_capacity_blocks = 8;
  idx.query.policy = DegradePolicy::kSkipUnreadable;
  ExternalSimplexIndex* raw = nullptr;
  core::ShapeBaseOptions options;
  options.index_factory = [&raw, idx]() {
    auto index = std::make_unique<ExternalSimplexIndex>(idx);
    raw = index.get();
    return index;
  };
  core::ShapeBase base(options);
  PopulateBase(&base);
  ASSERT_NE(raw, nullptr);
  raw->buffer()->ResetCounters();
  raw->ResetStats();

  size_t degraded_matches = 0;
  for (core::ShapeId id = 0; id < base.NumShapes(); id += 5) {
    core::EnvelopeMatcher matcher(&base);
    core::MatchOptions match_options;
    match_options.k = 2;
    core::MatchStats stats;
    auto got = matcher.Match(base.shape(id).boundary, match_options, &stats);
    if (got.ok() && stats.degraded) ++degraded_matches;
    EXPECT_EQ(static_cast<uint64_t>(raw->stats().nodes_visited) +
                  static_cast<uint64_t>(raw->stats().subtrees_skipped),
              raw->buffer()->pins())
        << "query shape " << id;
  }
  EXPECT_GT(degraded_matches, 0u);
}

// ---------------------------------------------------------------------------
// Shape-file (base_io) fault tolerance.

class BaseIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(base_.AddShape(RegularPolygon(5, 1.0), 7, "penta").ok());
    ASSERT_TRUE(base_.AddShape(RegularPolygon(8, 2.0, {3, 1}), 8, "octa").ok());
    ASSERT_TRUE(
        base_.AddShape(Polyline::Open({{0, 0}, {1, 0.3}, {2, 0}}), 9, "arc")
            .ok());
    path_ = testing::TempDir() + "geosir_fault_io.gsir";
    ASSERT_TRUE(SaveShapeBase(base_, path_).ok());
  }

  std::vector<uint8_t> ReadFile() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<uint8_t>(c));
    std::fclose(f);
    return bytes;
  }

  void WriteFile(const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    }
    std::fclose(f);
  }

  core::ShapeBase base_;
  std::string path_;
};

TEST_F(BaseIoFaultTest, V2RoundTripsWithReport) {
  LoadReport report;
  auto loaded = LoadShapeBase(path_, {}, {}, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.version, 2u);
  EXPECT_EQ(report.shapes_loaded, 3u);
  EXPECT_FALSE(report.salvaged);
  EXPECT_EQ((*loaded)->NumShapes(), 3u);
  EXPECT_EQ((*loaded)->shape(1).label, "octa");
  // No temp file left behind.
  std::FILE* tmp = std::fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST_F(BaseIoFaultTest, EverySingleByteFlipIsDetected) {
  const std::vector<uint8_t> clean = ReadFile();
  // Flip one byte at a spread of offsets covering header, labels,
  // vertices and the stored CRCs themselves.
  for (size_t at = 0; at < clean.size(); at += 13) {
    std::vector<uint8_t> bytes = clean;
    bytes[at] ^= 0x40;
    WriteFile(bytes);
    auto loaded = LoadShapeBase(path_);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << at;
    EXPECT_TRUE(loaded.status().code() == util::StatusCode::kCorruption ||
                loaded.status().code() == util::StatusCode::kNotSupported)
        << "flip at byte " << at << ": " << loaded.status().ToString();
  }
}

TEST_F(BaseIoFaultTest, EveryTruncationIsDetectedAndSalvageable) {
  const std::vector<uint8_t> clean = ReadFile();
  for (size_t keep = 0; keep < clean.size(); keep += 17) {
    WriteFile(std::vector<uint8_t>(clean.begin(), clean.begin() + keep));
    auto strict = LoadShapeBase(path_);
    ASSERT_FALSE(strict.ok()) << "truncated to " << keep;

    LoadOptions salvage;
    salvage.salvage = true;
    LoadReport report;
    auto salvaged = LoadShapeBase(path_, {}, salvage, &report);
    if (keep < 20) {
      // Inside the header: nothing to salvage.
      EXPECT_FALSE(salvaged.ok()) << "truncated to " << keep;
      continue;
    }
    ASSERT_TRUE(salvaged.ok()) << "truncated to " << keep;
    EXPECT_TRUE(report.salvaged);
    EXPECT_LT(report.shapes_loaded, 3u);
    EXPECT_EQ((*salvaged)->NumShapes(), report.shapes_loaded);
    // The salvaged prefix is intact data.
    if (report.shapes_loaded >= 1) {
      EXPECT_EQ((*salvaged)->shape(0).label, "penta");
    }
  }
}

TEST_F(BaseIoFaultTest, SalvageRecoversPrefixBeforeCorruptRecord) {
  std::vector<uint8_t> bytes = ReadFile();
  bytes[bytes.size() - 6] ^= 0xFF;  // Rot inside the last record.
  WriteFile(bytes);
  EXPECT_FALSE(LoadShapeBase(path_).ok());
  LoadOptions salvage;
  salvage.salvage = true;
  LoadReport report;
  auto loaded = LoadShapeBase(path_, {}, salvage, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.shapes_loaded, 2u);
  EXPECT_EQ((*loaded)->shape(0).label, "penta");
  EXPECT_EQ((*loaded)->shape(1).label, "octa");
}

TEST_F(BaseIoFaultTest, V1FilesStillLoad) {
  // Hand-written v1 image of a one-shape base (no checksums anywhere).
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const auto put32 = [&](uint32_t v) { std::fwrite(&v, 4, 1, f); };
  const auto put16 = [&](uint16_t v) { std::fwrite(&v, 2, 1, f); };
  const auto put8 = [&](uint8_t v) { std::fwrite(&v, 1, 1, f); };
  const auto put64 = [&](uint64_t v) { std::fwrite(&v, 8, 1, f); };
  const auto putd = [&](double v) { std::fwrite(&v, 8, 1, f); };
  put32(0x52495347);  // "GSIR"
  put32(1);           // v1
  put64(1);           // One shape.
  put32(4);           // image
  put16(3);
  std::fwrite("tri", 1, 3, f);
  put8(1);  // closed
  put32(3);
  putd(0.0); putd(0.0);
  putd(1.0); putd(0.0);
  putd(0.4); putd(0.9);
  std::fclose(f);

  LoadReport report;
  auto loaded = LoadShapeBase(path_, {}, {}, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ((*loaded)->NumShapes(), 1u);
  EXPECT_EQ((*loaded)->shape(0).label, "tri");
  EXPECT_EQ((*loaded)->shape(0).image, 4u);
}

TEST_F(BaseIoFaultTest, CorruptVertexCountRejectedWithoutHugeAllocation) {
  // v1 file claiming 0xFFFFFFFF vertices: must fail with kCorruption
  // after comparing against the actual file size, not attempt a ~64 GB
  // reserve.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const auto put32 = [&](uint32_t v) { std::fwrite(&v, 4, 1, f); };
  const auto put16 = [&](uint16_t v) { std::fwrite(&v, 2, 1, f); };
  const auto put8 = [&](uint8_t v) { std::fwrite(&v, 1, 1, f); };
  const auto put64 = [&](uint64_t v) { std::fwrite(&v, 8, 1, f); };
  put32(0x52495347);
  put32(1);
  put64(1);
  put32(0);
  put16(0);
  put8(1);
  put32(0xFFFFFFFFu);  // Corrupt vertex count.
  std::fclose(f);
  auto loaded = LoadShapeBase(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST(BaseIoLimitsTest, OversizedLabelRejectedAtSave) {
  core::ShapeBase base;
  ASSERT_TRUE(
      base.AddShape(RegularPolygon(5, 1.0), 0, std::string(70000, 'x')).ok());
  const std::string path = testing::TempDir() + "geosir_oversized_label.gsir";
  auto status = SaveShapeBase(base, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  // Nothing (not even a temp file) was left behind.
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
}

TEST(FaultInjectingDeviceTest, ScheduledSyncFailureHitsExactSyncOp) {
  BlockFile file(64);
  file.AppendBlock({1, 2, 3});
  FaultPlan plan;
  plan.sync_schedule = {{1, FaultKind::kSyncFailure}};
  FaultInjectingDevice faulty(static_cast<BlockDevice*>(&file), plan);

  // Syncs draw from their own operation stream, so interleaved writes
  // must not shift the scheduled index.
  EXPECT_TRUE(faulty.Sync().ok());  // sync op 0
  ASSERT_TRUE(faulty.Write(0, std::vector<uint8_t>(64, 0x5A)).ok());
  auto failed = faulty.Sync();      // sync op 1: injected fsync failure
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(faulty.Sync().ok());  // sync op 2
  EXPECT_EQ(faulty.sync_ops(), 3u);
  EXPECT_EQ(faulty.injected_sync_failures(), 1u);
  // The failure was injected above the medium: the inner device never saw
  // the failing barrier, and the written bytes are intact.
  auto after = file.ReadBlock(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0], 0x5A);
}

TEST(FaultInjectingDeviceTest, SyncFailureRateIsDeterministic) {
  BlockFile file(64);
  file.AppendBlock({9});
  FaultPlan plan;
  plan.seed = 77;
  plan.sync_failure_rate = 0.5;
  std::vector<bool> first_run;
  for (int run = 0; run < 2; ++run) {
    FaultInjectingDevice faulty(static_cast<BlockDevice*>(&file), plan);
    std::vector<bool> outcomes;
    for (int op = 0; op < 32; ++op) {
      outcomes.push_back(faulty.Sync().ok());
    }
    // At rate 0.5 over 32 draws both outcomes must occur...
    EXPECT_GT(faulty.injected_sync_failures(), 0u);
    EXPECT_LT(faulty.injected_sync_failures(), 32u);
    if (run == 0) {
      first_run = outcomes;
    } else {
      // ...and the draw sequence is a pure function of (seed, op index).
      EXPECT_EQ(outcomes, first_run);
    }
  }
}

}  // namespace
}  // namespace geosir::storage
