// Query-lifecycle resilience: deadlines, cooperative cancellation, work
// budgets, admission control and the partial-result contract.
//
// Determinism notes: budget stops run entirely on the single-threaded
// control path, so every budget test asserts bit-identical results and
// stats between num_threads = 1 and num_threads = 8. Deadline tests that
// depend on wall-clock timing only assert coarse bounds (the query stops
// "soon", not "at instant X"); the precise mid-flight cancellation test
// triggers the cancel from inside the range-search traversal at an exact
// vertex-report ordinal, which is timing-free and therefore exact.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "query/admission.h"
#include "rangesearch/simplex_index.h"
#include "util/query_control.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir {
namespace {

using core::EnvelopeMatcher;
using core::MatchMeasure;
using core::MatchOptions;
using core::MatchResult;
using core::MatchStats;
using core::ShapeBase;
using core::ShapeBaseOptions;
using geom::Polyline;

const MatchMeasure kAllMeasures[] = {
    MatchMeasure::kContinuousSymmetric,
    MatchMeasure::kContinuousDirected,
    MatchMeasure::kDiscreteSymmetric,
    MatchMeasure::kDiscreteDirected,
};

// Instrumentation plan shared with InstrumentedIndex: fires `token` after
// the `cancel_at`-th vertex report, optionally sleeps per triangle query
// (to make wall-clock tests slow enough to interrupt). The range-search
// phase is single-threaded, so plain counters suffice.
struct CancelPlan {
  util::CancellationToken* token = nullptr;
  uint64_t cancel_at = 0;  // Report ordinal that triggers Cancel; 0 = never.
  uint64_t seen = 0;
  int64_t sleep_us_per_triangle = 0;

  void Reset(util::CancellationToken* t, uint64_t at) {
    token = t;
    cancel_at = at;
    seen = 0;
  }
};

// SimplexIndex decorator used as the test's fault/cancel injection point.
// Mirrors the external backends' behavior: when the operation is already
// cancelled it aborts the traversal and surfaces the stop through the
// TakeLastError() channel instead of returning a silently partial report.
class InstrumentedIndex : public rangesearch::SimplexIndex {
 public:
  InstrumentedIndex(std::unique_ptr<rangesearch::SimplexIndex> inner,
                    CancelPlan* plan)
      : inner_(std::move(inner)), plan_(plan) {}

  void Build(std::vector<rangesearch::IndexedPoint> points) override {
    inner_->Build(std::move(points));
  }
  size_t CountInTriangle(const geom::Triangle& t) const override {
    return inner_->CountInTriangle(t);
  }
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override {
    if (plan_->sleep_us_per_triangle > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan_->sleep_us_per_triangle));
    }
    if (plan_->token != nullptr && plan_->token->cancelled()) {
      last_error_ = util::Status::Cancelled(plan_->token->reason());
      return;
    }
    inner_->ReportInTriangle(t, [&](const rangesearch::IndexedPoint& ip) {
      ++plan_->seen;
      if (plan_->cancel_at != 0 && plan_->seen == plan_->cancel_at &&
          plan_->token != nullptr) {
        plan_->token->Cancel("test cancel point");
      }
      visit(ip);
    });
  }
  size_t CountInRect(const geom::BoundingBox& box) const override {
    return inner_->CountInRect(box);
  }
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override {
    inner_->ReportInRect(box, visit);
  }
  std::string name() const override { return "instrumented:" + inner_->name(); }
  size_t size() const override { return inner_->size(); }
  util::Status TakeLastError() const override {
    util::Status out = last_error_;
    last_error_ = util::Status::OK();
    if (!out.ok()) return out;
    return inner_->TakeLastError();
  }

 private:
  std::unique_ptr<rangesearch::SimplexIndex> inner_;
  CancelPlan* plan_;
  mutable util::Status last_error_;
};

struct Fixture {
  CancelPlan plan;  // Must outlive the base (captured by the factory).
  std::unique_ptr<ShapeBase> base;
  std::vector<Polyline> queries;
};

std::unique_ptr<Fixture> BuildFixture(size_t num_shapes, uint64_t seed) {
  auto out = std::make_unique<Fixture>();
  util::Rng rng(seed);
  ShapeBaseOptions options;
  options.normalize.max_axes = 2;
  CancelPlan* plan = &out->plan;
  options.index_factory = [plan]() {
    return std::make_unique<InstrumentedIndex>(
        core::MakeSimplexIndex(core::IndexBackend::kKdTree), plan);
  };
  out->base = std::make_unique<ShapeBase>(options);

  workload::PolygonGenOptions gen;
  std::vector<Polyline> prototypes;
  const size_t num_protos = std::max<size_t>(1, num_shapes / 10);
  for (size_t p = 0; p < num_protos; ++p) {
    prototypes.push_back(workload::RandomStarPolygon(&rng, gen));
  }
  for (size_t s = 0; s < num_shapes; ++s) {
    const Polyline instance =
        workload::JitterVertices(prototypes[s % num_protos], 0.008, &rng);
    EXPECT_TRUE(out->base->AddShape(instance).ok());
  }
  EXPECT_TRUE(out->base->Finalize().ok());

  util::Rng qrng(7);
  for (size_t q = 0; q < 4; ++q) {
    out->queries.push_back(
        workload::JitterVertices(prototypes[(3 * q) % num_protos], 0.01, &qrng));
  }
  return out;
}

void ExpectIdentical(const std::vector<MatchResult>& a,
                     const std::vector<MatchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].shape_id, b[i].shape_id) << "rank " << i;
    EXPECT_EQ(a[i].copy_index, b[i].copy_index) << "rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

void ExpectSameLifecycleStats(const MatchStats& a, const MatchStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.vertices_reported, b.vertices_reported);
  EXPECT_EQ(a.vertices_accepted, b.vertices_accepted);
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
  EXPECT_EQ(a.candidates_skipped, b.candidates_skipped);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.termination.code(), b.termination.code());
}

class QueryLifecycleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = BuildFixture(1000, 20240814).release();
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  void TearDown() override {
    // Leave the injection plan inert for the next test.
    fixture_->plan = CancelPlan{};
  }
  static Fixture* fixture_;
};

Fixture* QueryLifecycleTest::fixture_ = nullptr;

TEST_F(QueryLifecycleTest, ExpiredDeadlineAtEntryDoesZeroWork) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions options;
  options.deadline = util::Deadline::AfterMicros(0);
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  // Zero work: not a single round, vertex report or similarity integral.
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_EQ(stats.vertices_reported, 0u);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(stats.termination.code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(QueryLifecycleTest, PreCancelledTokenPropagatesReason) {
  EnvelopeMatcher matcher(fixture_->base.get());
  util::CancellationToken token;
  token.Cancel("client went away");
  MatchOptions options;
  options.cancel_token = &token;
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  EXPECT_NE(result.status().message().find("client went away"),
            std::string::npos);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
}

TEST_F(QueryLifecycleTest, CancelBeatsDeadlineWhenBothFired) {
  EnvelopeMatcher matcher(fixture_->base.get());
  util::CancellationToken token;
  token.Cancel("explicit cancel");
  MatchOptions options;
  options.cancel_token = &token;
  options.deadline = util::Deadline::AfterMicros(0);
  auto result = matcher.Match(fixture_->queries[0], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
}

TEST_F(QueryLifecycleTest, MidFlightCancelIsDeterministicAndPartial) {
  const Polyline& query = fixture_->queries[0];
  util::ThreadPool pool(8);

  // Reference run: how many rounds does this query take naturally?
  MatchOptions options;
  options.k = 5;
  options.stop_factor = 0.3;  // Delay the early exit past first candidates.
  EnvelopeMatcher probe_matcher(fixture_->base.get());
  MatchStats full_stats;
  auto full = probe_matcher.Match(query, options, &full_stats);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->empty());
  ASSERT_GE(full_stats.iterations, 2u)
      << "fixture too easy: cannot cancel mid-flight";

  // Probe: smallest round budget that already holds ranked candidates.
  std::vector<MatchResult> probe_results;
  MatchStats probe_stats;
  size_t partial_rounds = 0;
  for (size_t r = 1; r < full_stats.iterations; ++r) {
    MatchOptions bounded = options;
    bounded.budget.max_rounds = r;
    auto result = probe_matcher.Match(query, bounded, &probe_stats);
    if (result.ok() && !result->empty() && probe_stats.partial) {
      probe_results = *std::move(result);
      partial_rounds = r;
      break;
    }
  }
  ASSERT_GT(partial_rounds, 0u)
      << "no round budget yields a non-empty partial result";

  // Cancel exactly at the first vertex report after those rounds: the
  // traversal observes the token, aborts, and the match returns the
  // best-so-far ranking of the completed rounds — identically for every
  // thread count, because the range-search phase is single-threaded.
  const uint64_t cancel_at = probe_stats.vertices_reported + 1;
  std::vector<MatchResult> outcomes[2];
  MatchStats stat_pair[2];
  for (int run = 0; run < 2; ++run) {
    util::CancellationToken token;
    fixture_->plan.Reset(&token, cancel_at);
    MatchOptions cancelled = options;
    cancelled.cancel_token = &token;
    if (run == 1) {
      cancelled.num_threads = 8;
      cancelled.pool = &pool;
    }
    EnvelopeMatcher matcher(fixture_->base.get());
    auto result = matcher.Match(query, cancelled, &stat_pair[run]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    outcomes[run] = *std::move(result);
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(stat_pair[run].partial);
    EXPECT_EQ(stat_pair[run].termination.code(),
              util::StatusCode::kCancelled);
    EXPECT_FALSE(outcomes[run].empty());
  }
  ExpectIdentical(outcomes[0], outcomes[1]);
  ExpectSameLifecycleStats(stat_pair[0], stat_pair[1]);
  // The cancelled run returns exactly the completed rounds' ranking.
  ExpectIdentical(outcomes[0], probe_results);
}

TEST_F(QueryLifecycleTest, BudgetStopsAreBitIdenticalAcrossThreadCounts) {
  util::ThreadPool pool(8);
  for (MatchMeasure measure : kAllMeasures) {
    for (int variant = 0; variant < 3; ++variant) {
      MatchOptions options;
      options.measure = measure;
      options.k = 5;
      switch (variant) {
        case 0:
          options.budget.max_rounds = 1;
          break;
        case 1:
          options.budget.max_candidates = 3;
          break;
        case 2:
          options.budget.max_vertex_reports = 512;
          break;
      }
      std::vector<std::vector<MatchResult>> serial(fixture_->queries.size());
      std::vector<MatchStats> serial_stats(fixture_->queries.size());
      std::vector<util::StatusCode> serial_codes(fixture_->queries.size());
      EnvelopeMatcher serial_matcher(fixture_->base.get());
      for (size_t i = 0; i < fixture_->queries.size(); ++i) {
        auto result =
            serial_matcher.Match(fixture_->queries[i], options,
                                 &serial_stats[i]);
        serial_codes[i] = result.ok() ? util::StatusCode::kOk
                                      : result.status().code();
        if (result.ok()) serial[i] = *std::move(result);
      }

      MatchOptions parallel_options = options;
      parallel_options.num_threads = 8;
      parallel_options.pool = &pool;
      EnvelopeMatcher parallel_matcher(fixture_->base.get());
      for (size_t i = 0; i < fixture_->queries.size(); ++i) {
        MatchStats stats;
        auto result = parallel_matcher.Match(fixture_->queries[i],
                                             parallel_options, &stats);
        const util::StatusCode code =
            result.ok() ? util::StatusCode::kOk : result.status().code();
        EXPECT_EQ(code, serial_codes[i]) << "query " << i;
        if (result.ok() && serial_codes[i] == util::StatusCode::kOk) {
          ExpectIdentical(serial[i], *result);
          ExpectSameLifecycleStats(serial_stats[i], stats);
        }
      }
    }
  }
}

TEST_F(QueryLifecycleTest, CandidateBudgetCapsEvaluationsAndMarksPartial) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions options;
  options.k = 5;
  options.budget.max_candidates = 1;
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  EXPECT_LE(stats.candidates_evaluated, 1u);
  if (result.ok()) {
    if (stats.partial) {
      EXPECT_EQ(stats.termination.code(),
                util::StatusCode::kResourceExhausted);
      EXPECT_GT(stats.candidates_skipped, 0u);
    }
  } else {
    EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
  }
}

TEST_F(QueryLifecycleTest, RoundBudgetBoundsIterations) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions options;
  options.budget.max_rounds = 1;
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  (void)result;
  EXPECT_LE(stats.iterations, 1u);
  EXPECT_LE(stats.rounds_completed, 1u);
}

TEST_F(QueryLifecycleTest, UnlimitedBudgetIsNotPartial) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions options;
  EXPECT_TRUE(options.budget.Unlimited());
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(stats.partial);
  EXPECT_TRUE(stats.termination.ok());
}

TEST_F(QueryLifecycleTest, BatchWithExpiredDeadlineReturnsEmptyPerQuery) {
  MatchOptions options;
  options.deadline = util::Deadline::AfterMicros(0);
  std::vector<MatchStats> stats;
  auto batch = core::MatchBatch(*fixture_->base, fixture_->queries, options,
                                &stats);
  // Lifecycle stops never fail the batch; every query reports its own
  // termination with an empty ranking.
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), fixture_->queries.size());
  for (size_t i = 0; i < batch->size(); ++i) {
    EXPECT_TRUE((*batch)[i].empty()) << "query " << i;
    EXPECT_EQ(stats[i].termination.code(),
              util::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(stats[i].iterations, 0u);
  }
}

TEST_F(QueryLifecycleTest, SerialBatchSkipsQueriesAfterCancel) {
  // The injected plan cancels the shared token on the very first vertex
  // report, i.e. during query 0: the serial loop must then skip queries
  // 1.. entirely and stamp their termination.
  util::CancellationToken token;
  fixture_->plan.Reset(&token, 1);
  MatchOptions options;
  options.cancel_token = &token;
  std::vector<MatchStats> stats;
  auto batch = core::MatchBatch(*fixture_->base, fixture_->queries, options,
                                &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(token.cancelled());
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_TRUE((*batch)[i].empty()) << "query " << i;
    EXPECT_EQ(stats[i].termination.code(), util::StatusCode::kCancelled)
        << "query " << i;
    EXPECT_EQ(stats[i].iterations, 0u) << "query " << i;
  }
}

TEST_F(QueryLifecycleTest, PooledBatchWithPreCancelledTokenRunsNothing) {
  util::ThreadPool pool(4);
  util::CancellationToken token;
  token.Cancel("shed the whole batch");
  MatchOptions options;
  options.cancel_token = &token;
  options.num_threads = 4;
  options.pool = &pool;
  std::vector<MatchStats> stats;
  auto batch = core::MatchBatch(*fixture_->base, fixture_->queries, options,
                                &stats);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_TRUE((*batch)[i].empty()) << "query " << i;
    EXPECT_EQ(stats[i].termination.code(), util::StatusCode::kCancelled);
    EXPECT_EQ(stats[i].iterations, 0u);
  }
}

// ---------------------------------------------------------------------------
// Wall-clock behavior (coarse bounds only; the index sleeps per triangle
// query to stretch the match far beyond the deadline/cancel horizon).
// ---------------------------------------------------------------------------

class SlowMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = BuildFixture(200, 99).release(); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  void SetUp() override {
    fixture_->plan = CancelPlan{};
    fixture_->plan.sleep_us_per_triangle = 1000;
  }
  void TearDown() override { fixture_->plan = CancelPlan{}; }

  // Disable the natural stops so the match would run for a long time.
  static MatchOptions SlowOptions() {
    MatchOptions options;
    options.stop_factor = 0.0;  // No early exit.
    options.max_epsilon = 10.0;  // Far beyond the normalized lune.
    return options;
  }
  static Fixture* fixture_;
};

Fixture* SlowMatchTest::fixture_ = nullptr;

TEST_F(SlowMatchTest, DeadlineStopsALongMatchPromptly) {
  EnvelopeMatcher matcher(fixture_->base.get());
  MatchOptions options = SlowOptions();
  options.deadline = util::Deadline::AfterMillis(25);
  const auto start = std::chrono::steady_clock::now();
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Generous bound: without the deadline this match sleeps for hundreds of
  // milliseconds in the index alone and then integrates every shape.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  if (result.ok()) {
    EXPECT_TRUE(stats.partial);
    EXPECT_FALSE(result->empty());
  }
  EXPECT_EQ(stats.termination.code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(SlowMatchTest, CrossThreadCancelStopsALongMatchPromptly) {
  EnvelopeMatcher matcher(fixture_->base.get());
  util::CancellationToken token;
  MatchOptions options = SlowOptions();
  options.cancel_token = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    token.Cancel("operator abort");
  });
  const auto start = std::chrono::steady_clock::now();
  MatchStats stats;
  auto result = matcher.Match(fixture_->queries[0], options, &stats);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  if (result.ok()) {
    EXPECT_TRUE(stats.partial);
    EXPECT_FALSE(result->empty());
  }
  EXPECT_EQ(stats.termination.code(), util::StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// DynamicShapeBase lifecycle (main base + delta evaluation path).
// ---------------------------------------------------------------------------

TEST(DynamicLifecycleTest, ControlsApplyToMainAndDelta) {
  util::Rng rng(42);
  workload::PolygonGenOptions gen;
  core::DynamicShapeBase::Options options;
  options.base.normalize.max_axes = 2;
  options.min_compaction_size = 16;
  core::DynamicShapeBase dynamic(options);

  std::vector<Polyline> prototypes;
  for (int p = 0; p < 12; ++p) {
    prototypes.push_back(workload::RandomStarPolygon(&rng, gen));
  }
  for (int s = 0; s < 150; ++s) {
    ASSERT_TRUE(
        dynamic.Insert(workload::JitterVertices(prototypes[s % 12], 0.01, &rng))
            .ok());
  }
  ASSERT_GT(dynamic.NumDelta(), 0u);  // Both paths exercised below.
  const Polyline query =
      workload::JitterVertices(prototypes[2], 0.015, &rng);

  // An expired deadline fails before any work.
  dynamic.match_options().deadline = util::Deadline::AfterMicros(0);
  MatchStats stats;
  auto expired = dynamic.Match(query, 3, &stats);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.candidates_evaluated, 0u);

  // A pre-cancelled token, likewise.
  dynamic.match_options().deadline = util::Deadline();
  util::CancellationToken token;
  token.Cancel("closing");
  dynamic.match_options().cancel_token = &token;
  auto cancelled = dynamic.Match(query, 3, &stats);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), util::StatusCode::kCancelled);

  // A round budget bounds the main-base search; the outcome is either a
  // (partial or complete) ranking or a clean lifecycle error.
  dynamic.match_options().cancel_token = nullptr;
  dynamic.match_options().budget.max_rounds = 1;
  auto bounded = dynamic.Match(query, 3, &stats);
  EXPECT_LE(stats.iterations, 1u);
  if (bounded.ok()) {
    if (stats.partial) {
      EXPECT_EQ(stats.termination.code(),
                util::StatusCode::kResourceExhausted);
    }
  } else {
    EXPECT_EQ(bounded.status().code(), util::StatusCode::kResourceExhausted);
  }

  // Clearing the controls restores normal matching.
  dynamic.match_options().budget = core::WorkBudget{};
  auto clean = dynamic.Match(query, 3, &stats);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->empty());
  EXPECT_FALSE(stats.partial);
}

// ---------------------------------------------------------------------------
// ScopedQueryControl and retry integration.
// ---------------------------------------------------------------------------

TEST(ScopedQueryControlTest, NestingRestoresPreviousBinding) {
  EXPECT_EQ(util::ScopedQueryControl::Active(), nullptr);
  util::QueryControl outer;
  {
    util::ScopedQueryControl bind_outer(&outer);
    EXPECT_EQ(util::ScopedQueryControl::Active(), &outer);
    util::QueryControl inner;
    {
      util::ScopedQueryControl bind_inner(&inner);
      EXPECT_EQ(util::ScopedQueryControl::Active(), &inner);
    }
    EXPECT_EQ(util::ScopedQueryControl::Active(), &outer);
  }
  EXPECT_EQ(util::ScopedQueryControl::Active(), nullptr);
}

TEST(ScopedQueryControlTest, CheckPrefersCancelOverDeadline) {
  util::CancellationToken token;
  token.Cancel("stop");
  util::QueryControl control;
  control.cancel = &token;
  control.deadline = util::Deadline::AfterMicros(0);
  EXPECT_EQ(control.Check().code(), util::StatusCode::kCancelled);
  EXPECT_FALSE(control.Inert());
  EXPECT_TRUE(util::QueryControl{}.Inert());
}

TEST(RetryLifecycleTest, NoRetriesPastAnExpiredControl) {
  util::QueryControl control;
  control.deadline = util::Deadline::AfterMicros(0);
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  int attempts = 0;
  util::Status status = util::RetryWithBackoff(
      policy, [] { return util::Status::Unavailable("flaky"); }, &attempts,
      &control);
  // The first attempt always runs; the expired control gates retries only.
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryLifecycleTest, ThreadLocalBindingGatesRetriesImplicitly) {
  util::CancellationToken token;
  token.Cancel("shutting down");
  util::QueryControl control;
  control.cancel = &token;
  util::ScopedQueryControl scoped(&control);
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  int attempts = 0;
  util::Status status = util::RetryWithBackoff(
      policy, [] { return util::Status::Unavailable("flaky"); }, &attempts);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryLifecycleTest, HealthyControlStillRetries) {
  util::QueryControl control;  // Inert.
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  int attempts = 0;
  int calls = 0;
  util::Status status = util::RetryWithBackoff(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? util::Status::Unavailable("flaky")
                         : util::Status::OK();
      },
      &attempts, &control);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(AdmissionTest, FastPathAdmitsUpToCapacity) {
  query::AdmissionOptions options;
  options.max_concurrent = 2;
  options.max_queued = 4;
  options.queue_timeout_ms = 20;
  query::AdmissionController controller(options);

  auto first = controller.Admit();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->valid());
  auto second = controller.Admit();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(controller.stats().inflight, 2u);

  // Capacity reached: the third caller queues and times out.
  auto third = controller.Admit();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(controller.stats().shed_timeout, 1u);

  // Releasing a ticket frees the slot again.
  *first = query::AdmissionController::Ticket();
  auto fourth = controller.Admit();
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(controller.stats().admitted, 3u);
}

TEST(AdmissionTest, FullQueueShedsImmediately) {
  query::AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 0;
  query::AdmissionController controller(options);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok());
  const auto start = std::chrono::steady_clock::now();
  auto shed = controller.Admit();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(controller.stats().shed_queue_full, 1u);
  // Shed at arrival, not after a timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(AdmissionTest, ExpiredDeadlineIsShedBeforeQueueing) {
  query::AdmissionController controller;
  auto shed = controller.Admit(util::Deadline::AfterMicros(0));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(controller.stats().shed_expired, 1u);
  EXPECT_EQ(controller.stats().inflight, 0u);
}

TEST(AdmissionTest, CallerDeadlineBoundsQueueWait) {
  query::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_timeout_ms = 60000;  // The caller's deadline is tighter.
  query::AdmissionController controller(options);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok());
  const auto start = std::chrono::steady_clock::now();
  auto shed = controller.Admit(util::Deadline::AfterMillis(30));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(controller.stats().shed_expired, 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(AdmissionTest, ReleaseWakesTheQueuedWaiter) {
  query::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_timeout_ms = 0;  // Wait indefinitely.
  query::AdmissionController controller(options);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto ticket = controller.Admit();
    EXPECT_TRUE(ticket.ok());
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load());
  *held = query::AdmissionController::Ticket();  // Release the slot.
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(controller.stats().admitted, 2u);
}

TEST(AdmissionTest, WaitersAreAdmittedInFifoOrder) {
  query::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_timeout_ms = 0;
  query::AdmissionController controller(options);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok());

  std::mutex order_mutex;
  std::vector<int> order;
  const auto wait_and_record = [&](int id) {
    auto ticket = controller.Admit();
    EXPECT_TRUE(ticket.ok());
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
    // Ticket released on scope exit; the next waiter gets the slot.
  };
  std::thread first(wait_and_record, 1);
  // Give the first waiter ample time to enqueue before the second arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread second(wait_and_record, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  *held = query::AdmissionController::Ticket();
  first.join();
  second.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

class AdmittedBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = BuildFixture(400, 11).release(); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static Fixture* fixture_;
};

Fixture* AdmittedBatchTest::fixture_ = nullptr;

TEST_F(AdmittedBatchTest, AdmittedBatchMatchesDirectBatch) {
  query::AdmissionController controller;
  MatchOptions options;
  options.k = 3;
  auto direct = core::MatchBatch(*fixture_->base, fixture_->queries, options);
  ASSERT_TRUE(direct.ok());
  auto admitted = query::AdmittedMatchBatch(&controller, *fixture_->base,
                                            fixture_->queries, options);
  ASSERT_TRUE(admitted.ok());
  ASSERT_EQ(admitted->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    ExpectIdentical((*direct)[i], (*admitted)[i]);
  }
  EXPECT_EQ(controller.stats().admitted, 1u);
  EXPECT_EQ(controller.stats().inflight, 0u);  // Ticket released.
}

TEST_F(AdmittedBatchTest, OverloadedControllerShedsTheBatch) {
  query::AdmissionOptions admission;
  admission.max_concurrent = 1;
  admission.max_queued = 0;
  query::AdmissionController controller(admission);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok());
  auto shed = query::AdmittedMatchBatch(&controller, *fixture_->base,
                                        fixture_->queries);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace geosir
