#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "hashing/geo_hash_index.h"
#include "hashing/hash_curves.h"
#include "hashing/lune.h"
#include "util/rng.h"

namespace geosir::hashing {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0},
                        double phase = 0.0) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = phase + 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(LuneTest, QuarterClassification) {
  EXPECT_EQ(LuneQuarter({0.2, 0.3}), 0);
  EXPECT_EQ(LuneQuarter({0.8, 0.3}), 1);
  EXPECT_EQ(LuneQuarter({0.2, -0.3}), 2);
  EXPECT_EQ(LuneQuarter({0.8, -0.3}), 3);
  EXPECT_EQ(LuneQuarter({0.5, 0.0}), 1);  // Boundary conventions.
}

TEST(LuneTest, InsideLune) {
  EXPECT_TRUE(InsideLune({0.5, 0.0}));
  EXPECT_TRUE(InsideLune({0.5, 0.8}));
  EXPECT_FALSE(InsideLune({0.5, 0.9}));   // sqrt(3)/2 ~ 0.866.
  EXPECT_FALSE(InsideLune({-0.1, 0.0}));
  EXPECT_TRUE(InsideLune({0.0, 0.0}));
  EXPECT_TRUE(InsideLune({1.0, 0.0}));
}

TEST(LuneTest, ClampProjectsOutsidePoints) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.Uniform(-1.5, 2.5), rng.Uniform(-1.5, 1.5)};
    const Point q = ClampToLune(p);
    EXPECT_TRUE(InsideLune(q, 1e-9)) << p.x << "," << p.y;
    if (InsideLune(p)) {
      EXPECT_EQ(p, q);  // Inside points are untouched.
    }
  }
}

TEST(HashCurvesTest, EIsMonotoneWithCorrectEndpoints) {
  EXPECT_NEAR(LuneAreaE(0.0), 0.0, 1e-12);
  EXPECT_NEAR(LuneAreaE(1.0), kLuneAreaA0 / 4.0, 1e-8);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double e = LuneAreaE(x);
    EXPECT_GT(e, prev) << "x=" << x;
    prev = e;
  }
}

TEST(HashCurvesTest, DerivativeIsNonNegativeAndContinuousLooking) {
  // dE/dx is continuous on [0,1] but steepens sharply near x = 1; check
  // step-continuity on [0, 0.9] and only non-negativity beyond.
  double prev = LuneAreaEDerivative(0.01);
  for (double x = 0.05; x <= 0.99; x += 0.02) {
    const double d = LuneAreaEDerivative(x);
    EXPECT_GE(d, -1e-6);
    if (x <= 0.9) {
      EXPECT_LT(std::fabs(d - prev), 0.2) << "jump at x=" << x;
    }
    prev = d;
  }
}

TEST(HashCurvesTest, ArcFamilyEqualAreas) {
  auto family = ArcFamily::Create(50);
  ASSERT_TRUE(family.ok());
  ASSERT_EQ(family->size(), 50);
  const double quarter = kLuneAreaA0 / 4.0;
  for (int i = 1; i <= 50; ++i) {
    EXPECT_NEAR(LuneAreaE(family->x(i - 1)), quarter * i / 50.0, 1e-6)
        << "arc " << i;
  }
  // Strictly increasing parameters, last one at 1.
  for (int i = 1; i < 50; ++i) {
    EXPECT_LT(family->x(i - 1), family->x(i));
  }
  EXPECT_DOUBLE_EQ(family->x(49), 1.0);
}

TEST(HashCurvesTest, ArcsPassThroughLuneTips) {
  // q1/q3 circles pass through (0,0); q2/q4 through (1,0).
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(ArcDistance({0, 0}, x, 0), 0.0, 1e-12);
    EXPECT_NEAR(ArcDistance({0, 0}, x, 2), 0.0, 1e-12);
    EXPECT_NEAR(ArcDistance({1, 0}, x, 1), 0.0, 1e-12);
    EXPECT_NEAR(ArcDistance({1, 0}, x, 3), 0.0, 1e-12);
  }
}

TEST(HashCurvesTest, CharacteristicCurveOfPointsOnArc) {
  auto family = ArcFamily::Create(25);
  ASSERT_TRUE(family.ok());
  // Sample points exactly on the arc with parameter x_10 inside q1 and
  // check the characteristic curve comes back as that arc.
  const int target = 10;
  const double x = family->x(target);
  const Point center = ArcCenter(x, 0);
  std::vector<Point> pts;
  for (double a = 0.02; a < 1.5; a += 0.02) {
    const Point p = center + Point{std::cos(M_PI / 2 + a),
                                   std::sin(M_PI / 2 + a)};
    if (InsideLune(p) && LuneQuarter(p) == 0 && p.y > 1e-3) pts.push_back(p);
  }
  ASSERT_GE(pts.size(), 3u);
  EXPECT_EQ(family->CharacteristicCurve(pts, 0), target);
}

TEST(HashCurvesTest, EmptyVertexSetHasNoCurve) {
  auto family = ArcFamily::Create(10);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->CharacteristicCurve({}, 0), -1);
}

TEST(HashCurvesTest, QuadrupleKeys) {
  CurveQuadruple quad;
  quad.c[0] = 10;
  quad.c[1] = 20;
  quad.c[2] = 30;
  quad.c[3] = 44;
  EXPECT_EQ(quad.MeanCurve(), 26);
  EXPECT_EQ(quad.MedianCurve(), 30);  // Medians 20/30; mean 26 -> 30 closer.
  CurveQuadruple other = quad;
  EXPECT_TRUE(quad == other);
  other.c[3] = 45;
  EXPECT_FALSE(quad == other);
}

TEST(HashCurvesTest, SimilarShapesShareOrNeighborCurves) {
  auto family = ArcFamily::Create(50);
  ASSERT_TRUE(family.ok());
  util::Rng rng(11);
  core::Shape s;
  s.boundary = RegularPolygon(12, 1.0);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  const CurveQuadruple base_quad =
      ComputeQuadruple(*family, copies->front().shape);

  // Small jitter: curves should move at most a couple of indices.
  Polyline noisy = RegularPolygon(12, 1.0);
  for (Point& p : noisy.mutable_vertices()) {
    p += Point{rng.Gaussian(0.004), rng.Gaussian(0.004)};
  }
  core::Shape s2;
  s2.boundary = noisy;
  auto copies2 = core::NormalizeShape(s2);
  ASSERT_TRUE(copies2.ok());
  const CurveQuadruple noisy_quad =
      ComputeQuadruple(*family, copies2->front().shape);
  for (int q = 0; q < 4; ++q) {
    EXPECT_LE(std::abs(base_quad.c[q] - noisy_quad.c[q]), 3) << "quarter " << q;
  }
}

TEST(CurveFamilyTest, VerticalLinesEqualAreas) {
  auto family = ArcFamily::Create(20, CurveFamilyKind::kVerticalLines);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->kind(), CurveFamilyKind::kVerticalLines);
  const double quarter = kLuneAreaA0 / 4.0;
  for (int i = 1; i <= 20; ++i) {
    EXPECT_NEAR(LuneSlabArea(family->x(i - 1)), quarter * i / 20.0, 1e-6)
        << "line " << i;
  }
  EXPECT_DOUBLE_EQ(family->x(19), 0.5);
}

TEST(CurveFamilyTest, LineDistanceIsHorizontal) {
  auto family = ArcFamily::Create(10, CurveFamilyKind::kVerticalLines);
  ASSERT_TRUE(family.ok());
  const double x = family->x(4);
  // Left quarters measure |p.x - x|, right quarters mirror about 1/2.
  EXPECT_NEAR(family->CurveDistance({x + 0.07, 0.3}, x, 0), 0.07, 1e-12);
  EXPECT_NEAR(family->CurveDistance({x + 0.07, -0.3}, x, 2), 0.07, 1e-12);
  EXPECT_NEAR(family->CurveDistance({1.0 - x, 0.3}, x, 1), 0.0, 1e-12);
}

TEST(CurveFamilyTest, CharacteristicLineOfVerticalCluster) {
  auto family = ArcFamily::Create(25, CurveFamilyKind::kVerticalLines);
  ASSERT_TRUE(family.ok());
  const int target = 12;
  const double x = family->x(target);
  std::vector<Point> pts;
  for (double y = 0.05; y < 0.4; y += 0.05) pts.push_back({x, y});
  EXPECT_EQ(family->CharacteristicCurve(pts, 0), target);
}

TEST(CurveFamilyTest, BothFamiliesDriveRetrieval) {
  core::ShapeBase base;
  for (int n = 4; n <= 9; ++n) {
    std::vector<Point> v;
    for (int i = 0; i < n; ++i) {
      const double a = 2.0 * M_PI * i / n;
      v.push_back({std::cos(a), std::sin(a)});
    }
    ASSERT_TRUE(base.AddShape(Polyline::Closed(std::move(v))).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());
  for (auto kind : {CurveFamilyKind::kUnitCircleArcs,
                    CurveFamilyKind::kVerticalLines}) {
    GeoHashOptions options;
    options.family = kind;
    auto index = GeoHashIndex::Create(&base, options);
    ASSERT_TRUE(index.ok()) << CurveFamilyKindName(kind);
    auto results = index->Query(RegularPolygon(7, 1.0), 1);
    ASSERT_TRUE(results.ok());
    ASSERT_FALSE(results->empty());
    EXPECT_EQ(base.shape((*results)[0].shape_id).boundary.size(), 7u)
        << CurveFamilyKindName(kind);
  }
}

class GeoHashIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int n = 4; n <= 12; ++n) {
      ASSERT_TRUE(base_.AddShape(RegularPolygon(n, 1.0)).ok());
    }
    ASSERT_TRUE(base_.Finalize().ok());
  }
  core::ShapeBase base_;
};

TEST_F(GeoHashIndexTest, RetrievesExactShape) {
  auto index = GeoHashIndex::Create(&base_);
  ASSERT_TRUE(index.ok());
  auto results = index->Query(RegularPolygon(9, 1.0), 1);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(base_.shape((*results)[0].shape_id).boundary.size(), 9u);
  EXPECT_NEAR((*results)[0].distance, 0.0, 1e-6);
}

TEST_F(GeoHashIndexTest, ApproximateRetrievalUnderDistortion) {
  auto index = GeoHashIndex::Create(&base_);
  ASSERT_TRUE(index.ok());
  util::Rng rng(21);
  Polyline distorted = RegularPolygon(10, 1.0);
  for (Point& p : distorted.mutable_vertices()) {
    p += Point{rng.Gaussian(0.015), rng.Gaussian(0.015)};
  }
  auto results = index->Query(distorted, 3);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(base_.shape((*results)[0].shape_id).boundary.size(), 10u);
}

TEST_F(GeoHashIndexTest, InvariantUnderSimilarityTransform) {
  auto index = GeoHashIndex::Create(&base_);
  ASSERT_TRUE(index.ok());
  const geom::AffineTransform t = geom::AffineTransform::Translation({7, -3}) *
                                  geom::AffineTransform::Rotation(2.2) *
                                  geom::AffineTransform::Scaling(0.4);
  auto results = index->Query(RegularPolygon(6, 1.0).Transformed(t), 1);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(base_.shape((*results)[0].shape_id).boundary.size(), 6u);
}

TEST_F(GeoHashIndexTest, BucketOccupancyIsModest) {
  auto index = GeoHashIndex::Create(&base_);
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->AverageBucketOccupancy(), 0.0);
  EXPECT_LT(index->AverageBucketOccupancy(), 20.0);
}

TEST_F(GeoHashIndexTest, QuadruplesStoredPerCopy) {
  auto index = GeoHashIndex::Create(&base_);
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < base_.NumCopies(); ++i) {
    const CurveQuadruple& quad = index->QuadrupleOfCopy(i);
    for (int q = 0; q < 4; ++q) {
      EXPECT_GE(quad.c[q], 0);
      EXPECT_LE(quad.c[q], index->options().curves_per_quarter);
    }
  }
}

// --- CandidateSource contract edge cases -------------------------------
// The GeoHash index doubles as a CandidateSource behind the shared tiered
// retrieval seam (core/candidate_source.h); these cases pin the corners
// every implementation must agree on.

TEST(GeoHashCandidateSourceTest, EmptyBaseEmitsNothing) {
  core::ShapeBase base;
  ASSERT_TRUE(base.Finalize().ok());
  auto index = GeoHashIndex::Create(&base);
  ASSERT_TRUE(index.ok());
  GeoHashCandidateSource source(&*index);
  auto norm = core::NormalizeQuery(RegularPolygon(6, 1.0));
  ASSERT_TRUE(norm.ok());
  std::vector<uint32_t> out = {99};  // Must be cleared.
  core::CandidateSourceStats stats;
  ASSERT_TRUE(source.Generate(norm->shape, 0, {}, &out, &stats).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.candidates_emitted, 0u);
  EXPECT_FALSE(stats.truncated);
}

TEST(GeoHashCandidateSourceTest, SingleShapeBaseFindsIt) {
  core::ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(7, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  auto index = GeoHashIndex::Create(&base);
  ASSERT_TRUE(index.ok());
  GeoHashCandidateSource source(&*index);
  auto norm = core::NormalizeQuery(RegularPolygon(7, 1.0));
  ASSERT_TRUE(norm.ok());
  std::vector<uint32_t> out;
  core::CandidateSourceStats stats;
  ASSERT_TRUE(source.Generate(norm->shape, 0, {}, &out, &stats).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(base.copy(out[0]).shape_id, 0u);
  EXPECT_GT(stats.tables_probed, 0u);
}

TEST(GeoHashCandidateSourceTest, DuplicateShapesAllEmitted) {
  // Exact duplicates and a near-duplicate hash to the same (or
  // neighboring) curve quadruples; the candidate set must carry every
  // copy, not collapse them.
  core::ShapeBase base;
  util::Rng rng(33);
  ASSERT_TRUE(base.AddShape(RegularPolygon(8, 1.0)).ok());
  ASSERT_TRUE(base.AddShape(RegularPolygon(8, 1.0)).ok());
  Polyline near_dup = RegularPolygon(8, 1.0);
  for (Point& p : near_dup.mutable_vertices()) {
    p += Point{rng.Gaussian(0.002), rng.Gaussian(0.002)};
  }
  ASSERT_TRUE(base.AddShape(near_dup).ok());
  ASSERT_TRUE(base.AddShape(RegularPolygon(4, 1.0)).ok());  // Distractor.
  ASSERT_TRUE(base.Finalize().ok());

  auto index = GeoHashIndex::Create(&base);
  ASSERT_TRUE(index.ok());
  GeoHashCandidateSource source(&*index);
  auto norm = core::NormalizeQuery(RegularPolygon(8, 1.0));
  ASSERT_TRUE(norm.ok());
  std::vector<uint32_t> out;
  ASSERT_TRUE(source.Generate(norm->shape, 0, {}, &out, nullptr).ok());
  std::vector<bool> seen(base.NumShapes(), false);
  for (uint32_t c : out) seen[base.copy(c).shape_id] = true;
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

TEST(GeoHashCandidateSourceTest, RepeatedQueriesAreDeterministic) {
  core::ShapeBase base;
  util::Rng rng(37);
  for (int n = 4; n <= 11; ++n) {
    for (int i = 0; i < 3; ++i) {
      Polyline p = RegularPolygon(n, 1.0);
      for (Point& v : p.mutable_vertices()) {
        v += Point{rng.Gaussian(0.01), rng.Gaussian(0.01)};
      }
      ASSERT_TRUE(base.AddShape(p).ok());
    }
  }
  ASSERT_TRUE(base.Finalize().ok());
  auto index = GeoHashIndex::Create(&base);
  ASSERT_TRUE(index.ok());
  GeoHashCandidateSource source(&*index);
  auto norm = core::NormalizeQuery(RegularPolygon(9, 1.0));
  ASSERT_TRUE(norm.ok());

  std::vector<uint32_t> first;
  ASSERT_TRUE(source.Generate(norm->shape, 0, {}, &first, nullptr).ok());
  ASSERT_FALSE(first.empty());
  for (int run = 0; run < 5; ++run) {
    std::vector<uint32_t> again;
    ASSERT_TRUE(source.Generate(norm->shape, 0, {}, &again, nullptr).ok());
    EXPECT_EQ(first, again) << "run " << run;
  }
  // No duplicates in the emitted sequence (contract).
  std::vector<uint32_t> sorted = first;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());

  // Truncation keeps the ranked prefix.
  std::vector<uint32_t> top;
  core::CandidateSourceStats stats;
  ASSERT_TRUE(source.Generate(norm->shape, 2, {}, &top, &stats).ok());
  if (first.size() > 2) {
    EXPECT_TRUE(stats.truncated);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_TRUE(std::equal(top.begin(), top.end(), first.begin()));
  }
}

TEST(GeoHashIndexErrorsTest, UnfinalizedBaseRejected) {
  core::ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(5, 1.0)).ok());
  EXPECT_FALSE(GeoHashIndex::Create(&base).ok());
}

TEST(GeoHashIndexErrorsTest, BadCurveCountRejected) {
  core::ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(5, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  GeoHashOptions opts;
  opts.curves_per_quarter = 0;
  EXPECT_FALSE(GeoHashIndex::Create(&base, opts).ok());
}

}  // namespace
}  // namespace geosir::hashing
