#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rangesearch/brute_force_index.h"
#include "storage/external_index.h"
#include "util/rng.h"

namespace geosir::storage {
namespace {

using geom::BoundingBox;
using geom::Point;
using geom::Triangle;
using rangesearch::IndexedPoint;

/// Random points with float-representable coordinates (the on-disk
/// format stores f32), so oracle comparisons are exact.
std::vector<IndexedPoint> FloatPoints(size_t n, util::Rng* rng) {
  std::vector<IndexedPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(IndexedPoint{
        {static_cast<float>(rng->Uniform(0, 1)),
         static_cast<float>(rng->Uniform(-0.8, 0.8))},
        static_cast<uint32_t>(i)});
  }
  return pts;
}

TEST(ExternalRTreeTest, BuildStatsReasonable) {
  util::Rng rng(1);
  auto points = FloatPoints(5000, &rng);
  auto tree = ExternalRTree::Build(points, 1024);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 5000u);
  // Leaf capacity = (1024-2)/12 = 85 -> ~59 leaves, height 2.
  EXPECT_GE(tree->stats().num_leaves, 5000u / 86 + 1);
  EXPECT_GE(tree->stats().height, 2u);
  EXPECT_LE(tree->stats().height, 4u);
  EXPECT_EQ(tree->file().NumBlocks(),
            tree->stats().num_leaves + tree->stats().num_internal);
}

TEST(ExternalRTreeTest, MatchesBruteForce) {
  util::Rng rng(2);
  auto points = FloatPoints(3000, &rng);
  rangesearch::BruteForceIndex oracle;
  oracle.Build(points);
  auto tree = ExternalRTree::Build(points, 512);
  ASSERT_TRUE(tree.ok());
  BufferManager buffer(&tree->file(), 32);

  for (int q = 0; q < 40; ++q) {
    const Triangle t{{rng.Uniform(0, 1), rng.Uniform(-0.8, 0.8)},
                     {rng.Uniform(0, 1), rng.Uniform(-0.8, 0.8)},
                     {rng.Uniform(0, 1), rng.Uniform(-0.8, 0.8)}};
    auto count = tree->CountInTriangle(t, &buffer);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, oracle.CountInTriangle(t)) << "triangle query " << q;

    std::multiset<uint32_t> got, expect;
    ASSERT_TRUE(tree->ReportInTriangle(t, &buffer,
                                       [&got](const IndexedPoint& ip) {
                                         got.insert(ip.id);
                                       })
                    .ok());
    oracle.ReportInTriangle(t, [&expect](const IndexedPoint& ip) {
      expect.insert(ip.id);
    });
    EXPECT_EQ(got, expect);

    BoundingBox box;
    box.Extend({rng.Uniform(0, 1), rng.Uniform(-0.8, 0.8)});
    box.Extend({rng.Uniform(0, 1), rng.Uniform(-0.8, 0.8)});
    auto rect_count = tree->CountInRect(box, &buffer);
    ASSERT_TRUE(rect_count.ok());
    EXPECT_EQ(*rect_count, oracle.CountInRect(box)) << "rect query " << q;
  }
}

TEST(ExternalRTreeTest, QueriesCostBoundedIo) {
  util::Rng rng(3);
  auto points = FloatPoints(20000, &rng);
  auto tree = ExternalRTree::Build(points, 1024);
  ASSERT_TRUE(tree.ok());
  // Cold buffer per query: a small rectangle must touch far fewer blocks
  // than the file holds.
  const BoundingBox small_box({0.45, -0.05}, {0.55, 0.05});
  BufferManager cold(&tree->file(), 8);
  auto count = tree->CountInRect(small_box, &cold);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 50u);
  EXPECT_LT(cold.io_reads(), tree->file().NumBlocks() / 4);
}

TEST(ExternalRTreeTest, WarmBufferServesFromCache) {
  util::Rng rng(4);
  auto points = FloatPoints(4000, &rng);
  auto tree = ExternalRTree::Build(points, 1024);
  ASSERT_TRUE(tree.ok());
  BufferManager buffer(&tree->file(), 256);  // Holds the whole tree.
  const BoundingBox box({0.2, -0.3}, {0.6, 0.3});
  ASSERT_TRUE(tree->CountInRect(box, &buffer).ok());
  const uint64_t first = buffer.io_reads();
  ASSERT_TRUE(tree->CountInRect(box, &buffer).ok());
  EXPECT_EQ(buffer.io_reads(), first);  // Second pass: all hits.
}

TEST(ExternalRTreeTest, EmptyAndTiny) {
  auto empty = ExternalRTree::Build({}, 1024);
  ASSERT_TRUE(empty.ok());
  BufferManager buffer(&empty->file(), 4);
  auto count = empty->CountInRect(BoundingBox({0, 0}, {1, 1}), &buffer);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);

  auto one = ExternalRTree::Build({IndexedPoint{{0.5f, 0.5f}, 9}}, 1024);
  ASSERT_TRUE(one.ok());
  BufferManager b2(&one->file(), 4);
  auto c2 = one->CountInTriangle(Triangle{{0, 0}, {1, 0}, {0.5, 1}}, &b2);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, 1u);
}

TEST(ExternalRTreeTest, RejectsTinyBlocks) {
  EXPECT_FALSE(ExternalRTree::Build({}, 16).ok());
}

}  // namespace
}  // namespace geosir::storage
