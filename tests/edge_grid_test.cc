#include "geom/edge_grid.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geom/distance.h"
#include "geom/polyline.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

namespace geosir::geom {
namespace {

/// Query points exercising every regime: inside the bbox, on the
/// boundary, near vertices, and far outside the grid.
std::vector<Point> ProbePoints(const Polyline& shape, util::Rng* rng,
                               int count) {
  std::vector<Point> probes;
  BoundingBox box = shape.Bounds();
  box.Inflate(std::max(box.Width(), box.Height()) * 0.5 + 0.1);
  for (int i = 0; i < count; ++i) {
    probes.push_back({rng->Uniform(box.min_x, box.max_x),
                      rng->Uniform(box.min_y, box.max_y)});
  }
  // On-boundary points (the quadrature's common case: similar shapes).
  for (size_t e = 0; e < shape.NumEdges(); ++e) {
    probes.push_back(shape.Edge(e).At(0.37));
    probes.push_back(shape.Edge(e).a);
  }
  // Far outside the grid in all four quadrants.
  const double reach = 10.0 * (box.Width() + box.Height() + 1.0);
  probes.push_back({box.min_x - reach, box.min_y - reach});
  probes.push_back({box.max_x + reach, box.min_y - 0.5 * reach});
  probes.push_back({box.Center().x, box.max_y + reach});
  probes.push_back({box.min_x - 0.5 * reach, box.Center().y});
  return probes;
}

void ExpectMatchesBruteForce(const Polyline& shape, util::Rng* rng,
                             int probe_count = 60) {
  const EdgeGrid grid(shape);
  ASSERT_EQ(grid.num_edges(), shape.NumEdges());
  for (Point p : ProbePoints(shape, rng, probe_count)) {
    const double expected = DistancePointPolyline(p, shape);
    const double actual = grid.Distance(p);
    ASSERT_NEAR(actual, expected, 1e-12)
        << "at (" << p.x << ", " << p.y << ")";
  }
}

TEST(EdgeGridTest, RandomStarPolygons) {
  util::Rng rng(1234);
  workload::PolygonGenOptions gen;
  for (int trial = 0; trial < 30; ++trial) {
    ExpectMatchesBruteForce(workload::RandomStarPolygon(&rng, gen), &rng);
  }
}

TEST(EdgeGridTest, LargeManyEdgePolygons) {
  util::Rng rng(99);
  workload::PolygonGenOptions gen;
  gen.min_vertices = 64;
  gen.max_vertices = 256;
  for (int trial = 0; trial < 10; ++trial) {
    ExpectMatchesBruteForce(workload::RandomStarPolygon(&rng, gen), &rng);
  }
}

TEST(EdgeGridTest, RandomOpenPolylines) {
  util::Rng rng(4321);
  workload::PolygonGenOptions gen;
  for (int trial = 0; trial < 20; ++trial) {
    ExpectMatchesBruteForce(workload::RandomOpenPolyline(&rng, gen), &rng);
  }
}

TEST(EdgeGridTest, CollinearDegenerateBoundingBox) {
  util::Rng rng(7);
  // Horizontal: the grid's y extent is zero.
  std::vector<Point> horizontal;
  for (int i = 0; i <= 20; ++i) horizontal.push_back({0.1 * i, 2.0});
  ExpectMatchesBruteForce(Polyline::Open(horizontal), &rng);
  // Vertical: the x extent is zero.
  std::vector<Point> vertical;
  for (int i = 0; i <= 20; ++i) vertical.push_back({-1.0, 0.05 * i});
  ExpectMatchesBruteForce(Polyline::Open(vertical), &rng);
  // Diagonal collinear vertices.
  std::vector<Point> diagonal;
  for (int i = 0; i <= 15; ++i) diagonal.push_back({1.0 * i, 2.0 * i});
  ExpectMatchesBruteForce(Polyline::Open(diagonal), &rng);
}

TEST(EdgeGridTest, SingleEdge) {
  util::Rng rng(11);
  ExpectMatchesBruteForce(Polyline::Open({{0.0, 0.0}, {3.0, 1.0}}), &rng);
}

TEST(EdgeGridTest, ClusteredVertices) {
  util::Rng rng(5);
  // Many vertices crammed into a tiny cluster plus one distant vertex:
  // the average edge length is dominated by the single long edge, so the
  // cluster's edges pile into few cells.
  std::vector<Point> v;
  for (int i = 0; i < 40; ++i) {
    v.push_back({1e-4 * rng.Uniform(0.0, 1.0), 1e-4 * rng.Uniform(0.0, 1.0)});
  }
  v.push_back({50.0, 30.0});
  ExpectMatchesBruteForce(Polyline::Open(v), &rng);
}

TEST(EdgeGridTest, ZeroLengthEdges) {
  util::Rng rng(3);
  // Duplicate consecutive vertices produce zero-length edges; the grid
  // must bucket and measure them like the brute-force scan does.
  ExpectMatchesBruteForce(
      Polyline::Closed({{0, 0}, {1, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 1}}),
      &rng);
}

TEST(EdgeGridTest, EdgelessShapes) {
  const EdgeGrid empty((Polyline()));
  EXPECT_TRUE(std::isinf(empty.Distance({0.0, 0.0})));

  const EdgeGrid lone_vertex(Polyline::Open({{2.0, -1.0}}));
  EXPECT_DOUBLE_EQ(lone_vertex.Distance({2.0, 3.0}), 4.0);
}

}  // namespace
}  // namespace geosir::geom
