// Property-based tests of the envelope matcher (Section 2.5): on
// randomized shape bases the matcher must agree with exhaustive scans and
// behave monotonically in its parameters.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/envelope_matcher.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir::core {
namespace {

using geom::Polyline;

class MatcherPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    util::Rng rng(3000 + GetParam());
    workload::PolygonGenOptions gen;
    gen.min_vertices = 8;
    gen.max_vertices = 16;
    for (int s = 0; s < 25; ++s) {
      shapes_.push_back(RandomStarPolygon(&rng, gen));
      ASSERT_TRUE(base_.AddShape(shapes_.back()).ok());
    }
    ASSERT_TRUE(base_.Finalize().ok());
    query_ = workload::JitterVertices(shapes_[GetParam() % 25], 0.01, &rng);
  }

  /// Exhaustive ground truth: best shape under the matcher's measure.
  MatchResult BruteForceBest(const Polyline& query,
                             const MatchOptions& options) const {
    auto qnorm = NormalizeQuery(query);
    MatchResult best{0, 1e300, 0};
    for (uint32_t c = 0; c < base_.NumCopies(); ++c) {
      const NormalizedCopy& copy = base_.copy(c);
      double d = 0.0;
      switch (options.measure) {
        case MatchMeasure::kContinuousSymmetric:
          d = AvgMinDistanceSymmetric(copy.shape, qnorm->shape,
                                      options.similarity);
          break;
        case MatchMeasure::kDiscreteSymmetric:
          d = std::max(DiscreteAvgMinDistance(copy.shape, qnorm->shape),
                       DiscreteAvgMinDistance(qnorm->shape, copy.shape));
          break;
        default:
          d = AvgMinDistance(copy.shape, qnorm->shape, options.similarity);
          break;
      }
      if (d < best.distance) {
        best = MatchResult{copy.shape_id, d, c};
      }
    }
    return best;
  }

  ShapeBase base_;
  std::vector<Polyline> shapes_;
  Polyline query_;
};

TEST_P(MatcherPropertyTest, AgreesWithExhaustiveScan) {
  EnvelopeMatcher matcher(&base_);
  MatchOptions options;
  options.measure = MatchMeasure::kDiscreteSymmetric;
  options.max_epsilon = 2.0;  // Never give up before the scan would.
  auto results = matcher.Match(query_, options);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const MatchResult truth = BruteForceBest(query_, options);
  EXPECT_EQ((*results)[0].shape_id, truth.shape_id);
  EXPECT_NEAR((*results)[0].distance, truth.distance, 1e-9);
}

TEST_P(MatcherPropertyTest, TopResultStableAcrossK) {
  EnvelopeMatcher matcher(&base_);
  MatchOptions k1;
  k1.k = 1;
  MatchOptions k5;
  k5.k = 5;
  auto r1 = matcher.Match(query_, k1);
  auto r5 = matcher.Match(query_, k5);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r5.ok());
  ASSERT_FALSE(r1->empty());
  ASSERT_GE(r5->size(), r1->size());
  EXPECT_EQ((*r1)[0].shape_id, (*r5)[0].shape_id);
}

TEST_P(MatcherPropertyTest, CollectThresholdIsMonotone) {
  EnvelopeMatcher matcher(&base_);
  MatchOptions tight;
  tight.collect_threshold = 0.02;
  tight.measure = MatchMeasure::kDiscreteSymmetric;
  MatchOptions loose = tight;
  loose.collect_threshold = 0.06;
  auto small_set = matcher.Match(query_, tight);
  auto large_set = matcher.Match(query_, loose);
  ASSERT_TRUE(small_set.ok());
  ASSERT_TRUE(large_set.ok());
  std::set<ShapeId> large_ids;
  for (const auto& r : *large_set) large_ids.insert(r.shape_id);
  for (const auto& r : *small_set) {
    EXPECT_TRUE(large_ids.count(r.shape_id))
        << "shape " << r.shape_id << " lost when loosening the threshold";
    EXPECT_LE(r.distance, 0.02 + 1e-12);
  }
}

TEST_P(MatcherPropertyTest, ExactCopyHasNearZeroDistance) {
  EnvelopeMatcher matcher(&base_);
  util::Rng rng(7777 + GetParam());
  const geom::AffineTransform pose =
      geom::AffineTransform::Translation({rng.Uniform(-20, 20),
                                          rng.Uniform(-20, 20)}) *
      geom::AffineTransform::Rotation(rng.Uniform(0, 2 * M_PI)) *
      geom::AffineTransform::Scaling(rng.Uniform(0.1, 10.0));
  const int target = GetParam() % 25;
  auto results = matcher.Match(shapes_[target].Transformed(pose));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].shape_id, static_cast<ShapeId>(target));
  EXPECT_NEAR((*results)[0].distance, 0.0, 1e-5);
}

TEST_P(MatcherPropertyTest, StatsAreInternallyConsistent) {
  EnvelopeMatcher matcher(&base_);
  MatchStats stats;
  auto results = matcher.Match(query_, {}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GE(stats.vertices_reported, stats.vertices_accepted);
  EXPECT_LE(stats.vertices_accepted, base_.NumVertices());
  EXPECT_GE(stats.final_epsilon, stats.initial_epsilon);
  EXPECT_LE(stats.final_epsilon, stats.max_epsilon + 1e-12);
  EXPECT_TRUE(stats.stopped_early || stats.exhausted);
  EXPECT_GE(stats.iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace geosir::core
