#include <cmath>

#include <gtest/gtest.h>

#include "core/chamfer_baseline.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir::core {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r, Point c = {0, 0}) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(ChamferBaselineTest, ExactShapeScoresNearZero) {
  ChamferBaseline chamfer;
  ASSERT_TRUE(chamfer.Add(0, RegularPolygon(7, 1.0)).ok());
  auto results = chamfer.Query(RegularPolygon(7, 1.0), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].shape_id, 0u);
  // Within a couple of grid cells of zero.
  EXPECT_LT(results[0].distance, 0.03);
}

TEST(ChamferBaselineTest, RanksCorrectShapeFirst) {
  ChamferBaseline chamfer;
  for (int n = 3; n <= 10; ++n) {
    ASSERT_TRUE(chamfer.Add(n, RegularPolygon(n, 1.0)).ok());
  }
  EXPECT_EQ(chamfer.NumMaps(), 16u);  // Two orientations each.
  util::Rng rng(5);
  const Polyline noisy =
      workload::JitterVertices(RegularPolygon(6, 1.0), 0.01, &rng);
  auto results = chamfer.Query(noisy, 3);
  ASSERT_GE(results.size(), 1u);
  EXPECT_EQ(results[0].shape_id, 6u);
}

TEST(ChamferBaselineTest, PoseInvariantViaNormalization) {
  ChamferBaseline chamfer;
  ASSERT_TRUE(chamfer.Add(0, RegularPolygon(5, 1.0)).ok());
  ASSERT_TRUE(chamfer.Add(1, RegularPolygon(9, 1.0)).ok());
  const geom::AffineTransform pose =
      geom::AffineTransform::Translation({30, -12}) *
      geom::AffineTransform::Rotation(2.4) *
      geom::AffineTransform::Scaling(7.0);
  auto results = chamfer.Query(RegularPolygon(9, 1.0).Transformed(pose), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].shape_id, 1u);
  EXPECT_LT(results[0].distance, 0.03);
}

TEST(ChamferBaselineTest, DistanceGrowsWithDissimilarity) {
  ChamferBaseline chamfer;
  ASSERT_TRUE(chamfer.Add(0, RegularPolygon(8, 1.0)).ok());
  util::Rng rng(6);
  const auto score = [&](const Polyline& q) {
    auto r = chamfer.Query(q, 1);
    return r.empty() ? 1e9 : r[0].distance;
  };
  const double clean = score(RegularPolygon(8, 1.0));
  const double light =
      score(workload::JitterVertices(RegularPolygon(8, 1.0), 0.01, &rng));
  const double heavy =
      score(workload::JitterVertices(RegularPolygon(8, 1.0), 0.06, &rng));
  EXPECT_LE(clean, light + 1e-9);
  EXPECT_LT(light, heavy);
}

TEST(ChamferBaselineTest, MapStorageIsHeavy) {
  // The related-work critique: distance maps cost orders of magnitude
  // more memory than the ~200-byte records of the shape base.
  ChamferBaseline chamfer;
  ASSERT_TRUE(chamfer.Add(0, RegularPolygon(20, 1.0)).ok());
  EXPECT_GT(chamfer.MapBytes(), 100000u);  // ~120 KB for one shape.
}

TEST(ChamferBaselineTest, RejectsInvalidShape) {
  ChamferBaseline chamfer;
  EXPECT_FALSE(
      chamfer.Add(0, Polyline::Closed({{0, 0}, {2, 2}, {2, 0}, {0, 2}}))
          .ok());
  EXPECT_TRUE(chamfer.Query(RegularPolygon(4, 1.0)).empty());
}

}  // namespace
}  // namespace geosir::core
