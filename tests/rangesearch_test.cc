#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rangesearch/brute_force_index.h"
#include "rangesearch/convex_layers.h"
#include "rangesearch/grid_index.h"
#include "rangesearch/kd_tree_index.h"
#include "rangesearch/range_tree_index.h"
#include "rangesearch/tri_box.h"
#include "util/rng.h"

namespace geosir::rangesearch {
namespace {

using geom::BoundingBox;
using geom::Point;
using geom::Triangle;

std::vector<IndexedPoint> RandomPoints(size_t n, util::Rng* rng,
                                       double lo = 0.0, double hi = 1.0) {
  std::vector<IndexedPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(
        IndexedPoint{{rng->Uniform(lo, hi), rng->Uniform(lo, hi)},
                     static_cast<uint32_t>(i)});
  }
  return pts;
}

std::multiset<uint32_t> CollectTriangle(const SimplexIndex& index,
                                        const Triangle& t) {
  std::multiset<uint32_t> ids;
  index.ReportInTriangle(t, [&](const IndexedPoint& ip) { ids.insert(ip.id); });
  return ids;
}

std::multiset<uint32_t> CollectRect(const SimplexIndex& index,
                                    const BoundingBox& box) {
  std::multiset<uint32_t> ids;
  index.ReportInRect(box, [&](const IndexedPoint& ip) { ids.insert(ip.id); });
  return ids;
}

TEST(TriBoxTest, IntersectionCases) {
  Triangle t{{0, 0}, {4, 0}, {0, 4}};
  EXPECT_TRUE(TriangleIntersectsBox(t, BoundingBox({1, 1}, {2, 2})));
  // Box outside the hypotenuse but inside the bounding box of t.
  EXPECT_FALSE(TriangleIntersectsBox(t, BoundingBox({3.5, 3.5}, {3.9, 3.9})));
  // Box containing the whole triangle.
  EXPECT_TRUE(TriangleIntersectsBox(t, BoundingBox({-1, -1}, {5, 5})));
  // Touching at a vertex.
  EXPECT_TRUE(TriangleIntersectsBox(t, BoundingBox({4, 0}, {5, 1})));
  // Fully disjoint.
  EXPECT_FALSE(TriangleIntersectsBox(t, BoundingBox({5, 5}, {6, 6})));
}

TEST(TriBoxTest, Containment) {
  Triangle t{{0, 0}, {4, 0}, {0, 4}};
  EXPECT_TRUE(TriangleContainsBox(t, BoundingBox({0.5, 0.5}, {1, 1})));
  EXPECT_FALSE(TriangleContainsBox(t, BoundingBox({2, 2}, {3, 3})));
}

class SimplexIndexParamTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<SimplexIndex> MakeIndex() const {
    const std::string which = GetParam();
    if (which == "brute") return std::make_unique<BruteForceIndex>();
    if (which == "grid") return std::make_unique<GridIndex>();
    if (which == "kd") return std::make_unique<KdTreeIndex>();
    if (which == "layers") return std::make_unique<ConvexLayersIndex>();
    return std::make_unique<RangeTreeIndex>();
  }
};

TEST_P(SimplexIndexParamTest, MatchesBruteForceOnRandomTriangles) {
  util::Rng rng(101);
  auto points = RandomPoints(600, &rng);
  BruteForceIndex oracle;
  oracle.Build(points);
  auto index = MakeIndex();
  index->Build(points);
  ASSERT_EQ(index->size(), 600u);

  for (int q = 0; q < 60; ++q) {
    const Triangle t{{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)},
                     {rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)},
                     {rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)}};
    const auto expect = CollectTriangle(oracle, t);
    const auto got = CollectTriangle(*index, t);
    EXPECT_EQ(got, expect) << index->name() << " query " << q;
    EXPECT_EQ(index->CountInTriangle(t), expect.size());
  }
}

TEST_P(SimplexIndexParamTest, MatchesBruteForceOnRandomRects) {
  util::Rng rng(202);
  auto points = RandomPoints(500, &rng);
  BruteForceIndex oracle;
  oracle.Build(points);
  auto index = MakeIndex();
  index->Build(points);

  for (int q = 0; q < 60; ++q) {
    Point a{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    Point b{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    BoundingBox box;
    box.Extend(a);
    box.Extend(b);
    const auto expect = CollectRect(oracle, box);
    const auto got = CollectRect(*index, box);
    EXPECT_EQ(got, expect) << index->name() << " query " << q;
    EXPECT_EQ(index->CountInRect(box), expect.size());
  }
}

TEST_P(SimplexIndexParamTest, HandlesDuplicatesAndCollinear) {
  util::Rng rng(303);
  std::vector<IndexedPoint> points;
  // Grid-aligned duplicates and collinear rows.
  uint32_t id = 0;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      points.push_back(IndexedPoint{{x * 0.1, y * 0.1}, id++});
      if ((x + y) % 3 == 0) {
        points.push_back(IndexedPoint{{x * 0.1, y * 0.1}, id++});
      }
    }
  }
  BruteForceIndex oracle;
  oracle.Build(points);
  auto index = MakeIndex();
  index->Build(points);
  for (int q = 0; q < 40; ++q) {
    const Triangle t{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                     {rng.Uniform(0, 1), rng.Uniform(0, 1)},
                     {rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    EXPECT_EQ(CollectTriangle(*index, t), CollectTriangle(oracle, t));
  }
  // Rect query exactly on the lattice lines (boundary inclusivity).
  const BoundingBox exact({0.2, 0.2}, {0.5, 0.5});
  EXPECT_EQ(CollectRect(*index, exact), CollectRect(oracle, exact));
}

TEST_P(SimplexIndexParamTest, EmptyIndex) {
  auto index = MakeIndex();
  index->Build({});
  const Triangle t{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(index->CountInTriangle(t), 0u);
  EXPECT_EQ(index->CountInRect(BoundingBox({0, 0}, {1, 1})), 0u);
}

TEST_P(SimplexIndexParamTest, SinglePoint) {
  auto index = MakeIndex();
  index->Build({IndexedPoint{{0.5, 0.5}, 7}});
  const Triangle hit{{0, 0}, {1, 0}, {0.5, 1}};
  const Triangle miss{{2, 2}, {3, 2}, {2, 3}};
  EXPECT_EQ(index->CountInTriangle(hit), 1u);
  EXPECT_EQ(index->CountInTriangle(miss), 0u);
}

TEST_P(SimplexIndexParamTest, DegenerateTriangleQuery) {
  util::Rng rng(404);
  auto points = RandomPoints(100, &rng);
  auto index = MakeIndex();
  index->Build(points);
  BruteForceIndex oracle;
  oracle.Build(points);
  // Zero-area triangle (a segment).
  const Triangle t{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}};
  EXPECT_EQ(index->CountInTriangle(t), oracle.CountInTriangle(t));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimplexIndexParamTest,
                         ::testing::Values("brute", "grid", "kd", "rangetree",
                                           "layers"),
                         [](const auto& info) { return info.param; });

TEST(RangeTreeTest, SpaceIsNLogN) {
  util::Rng rng(55);
  auto points = RandomPoints(4096, &rng);
  RangeTreeIndex index;
  index.Build(points);
  // Each level stores ~n entries; depth ~ log2(n / leaf).
  EXPECT_LT(index.TotalListEntries(), 4096u * 16u);
  EXPECT_GT(index.TotalListEntries(), 4096u * 8u);
}

TEST(RangeTreeTest, CountingDoesLogarithmicWork) {
  util::Rng rng(56);
  auto points = RandomPoints(32768, &rng);
  RangeTreeIndex index;
  index.Build(points);
  index.ResetStats();
  const BoundingBox box({0.4, 0.4}, {0.6, 0.6});
  const size_t count = index.CountInRect(box);
  EXPECT_GT(count, 500u);  // ~4% of 32768.
  // Counting must not touch reported points: nodes visited should be
  // O(log^1 n) canonical + path nodes, far below the output size.
  EXPECT_LT(index.stats().nodes_visited, 200u);
  EXPECT_LT(index.stats().points_tested, 64u);  // Only partial leaves.
}

TEST(ConvexLayersTest, MatchesBruteForceHalfPlanes) {
  util::Rng rng(77);
  auto points = RandomPoints(400, &rng, -1.0, 1.0);
  ConvexLayersIndex layers;
  layers.Build(points);
  EXPECT_EQ(layers.size(), 400u);
  for (int q = 0; q < 50; ++q) {
    const double angle = rng.Uniform(0, 2 * M_PI);
    const HalfPlane hp{{std::cos(angle), std::sin(angle)},
                       rng.Uniform(-0.8, 0.8)};
    size_t expect = 0;
    for (const auto& ip : points) {
      if (hp.Contains(ip.p)) ++expect;
    }
    std::set<uint32_t> got;
    layers.ReportInHalfPlane(hp, [&](const IndexedPoint& ip) {
      EXPECT_TRUE(hp.Contains(ip.p));
      EXPECT_TRUE(got.insert(ip.id).second) << "duplicate report";
    });
    EXPECT_EQ(got.size(), expect) << "query " << q;
    EXPECT_EQ(layers.CountInHalfPlane(hp), expect);
  }
}

TEST(ConvexLayersTest, LayerCountReasonable) {
  util::Rng rng(78);
  auto points = RandomPoints(1000, &rng);
  ConvexLayersIndex layers;
  layers.Build(points);
  EXPECT_GT(layers.NumLayers(), 5u);
  EXPECT_LT(layers.NumLayers(), 500u);
}

TEST(ConvexLayersTest, EmptyAndTiny) {
  ConvexLayersIndex layers;
  layers.Build({});
  EXPECT_EQ(layers.CountInHalfPlane(HalfPlane{{1, 0}, 0.0}), 0u);
  ConvexLayersIndex one;
  one.Build({IndexedPoint{{0.5, 0.5}, 1}});
  EXPECT_EQ(one.CountInHalfPlane(HalfPlane{{1, 0}, 1.0}), 1u);
  EXPECT_EQ(one.CountInHalfPlane(HalfPlane{{1, 0}, 0.0}), 0u);
}

TEST(ConvexLayersTest, CollinearPoints) {
  std::vector<IndexedPoint> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(IndexedPoint{{i * 0.1, i * 0.1}, static_cast<uint32_t>(i)});
  }
  ConvexLayersIndex layers;
  layers.Build(pts);
  const HalfPlane hp{{1, 0}, 0.45};  // x <= 0.45 -> first 5 points.
  EXPECT_EQ(layers.CountInHalfPlane(hp), 5u);
}

}  // namespace
}  // namespace geosir::rangesearch
