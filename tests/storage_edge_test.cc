// Edge-case coverage for the storage layer beyond storage_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "storage/block_file.h"
#include "storage/layout.h"
#include "storage/shape_record.h"
#include "storage/stored_shape_base.h"
#include "util/rng.h"

namespace geosir::storage {
namespace {

using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

TEST(BlockFileEdgeTest, OversizePayloadTruncated) {
  BlockFile file(32);
  std::vector<uint8_t> big(100, 7);
  const BlockId id = file.AppendBlock(big);
  auto data = file.ReadBlock(id);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 32u);
  EXPECT_EQ((*data)[31], 7);
}

TEST(BlockFileEdgeTest, WriteOutOfRangeFails) {
  BlockFile file(32);
  EXPECT_FALSE(file.WriteBlock(0, {1}).ok());
  file.AppendBlock({1});
  EXPECT_TRUE(file.WriteBlock(0, {2}).ok());
  auto data = file.ReadBlock(0);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 2);
}

TEST(BufferManagerEdgeTest, SequentialScanWithTinyBufferMissesEverything) {
  BlockFile file(16);
  for (int i = 0; i < 20; ++i) file.AppendBlock({static_cast<uint8_t>(i)});
  BufferManager buffer(&file, 2);
  // Two sequential passes over 20 blocks with 2 frames: all misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (BlockId b = 0; b < 20; ++b) {
      ASSERT_TRUE(buffer.Pin(b).ok());
    }
  }
  EXPECT_EQ(buffer.misses(), 40u);
  EXPECT_EQ(buffer.hits(), 0u);
}

TEST(BufferManagerEdgeTest, ResetCountersKeepsCache) {
  BlockFile file(16);
  file.AppendBlock({1});
  BufferManager buffer(&file, 2);
  ASSERT_TRUE(buffer.Pin(0).ok());
  buffer.ResetCounters();
  ASSERT_TRUE(buffer.Pin(0).ok());
  EXPECT_EQ(buffer.hits(), 1u);  // Still cached after counter reset.
  EXPECT_EQ(buffer.misses(), 0u);
}

TEST(ShapeRecordEdgeTest, EmptyQuarterQuadrupleSurvives) {
  core::Shape s;
  s.boundary = RegularPolygon(6, 1.0);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  hashing::CurveQuadruple quad;  // All zeros (every quarter empty).
  std::vector<uint8_t> buf;
  SerializeRecord(MakeRecord(copies->front(), core::kNoImage, quad), &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->quadruple == quad);
  // kNoImage round-trips through the u32 field.
  EXPECT_EQ(back->image, core::kNoImage);
}

TEST(ShapeRecordEdgeTest, MultipleRecordsInOneBuffer) {
  core::Shape s;
  s.boundary = RegularPolygon(5, 1.0);
  auto copies = core::NormalizeShape(s);
  ASSERT_TRUE(copies.ok());
  std::vector<uint8_t> buf;
  for (int i = 0; i < 3; ++i) {
    SerializeRecord(MakeRecord((*copies)[i], i, {}), &buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 3; ++i) {
    auto record = DeserializeRecord(buf, &offset);
    ASSERT_TRUE(record.ok()) << i;
    EXPECT_EQ(record->image, static_cast<uint32_t>(i));
    EXPECT_EQ(record->copy_index, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(LayoutEdgeTest, EmptyBase) {
  core::ShapeBase base;
  ASSERT_TRUE(base.Finalize().ok());
  std::vector<hashing::CurveQuadruple> quads;
  for (auto policy : {LayoutPolicy::kInsertionOrder, LayoutPolicy::kMeanCurve,
                      LayoutPolicy::kLocalOptimization}) {
    EXPECT_TRUE(ComputeLayout(policy, base, quads).empty());
  }
  auto stored = StoredShapeBase::Create(base, quads, {});
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->NumBlocks(), 0u);
}

TEST(LayoutEdgeTest, SingleShape) {
  core::ShapeBase base;
  ASSERT_TRUE(base.AddShape(RegularPolygon(5, 1.0)).ok());
  ASSERT_TRUE(base.Finalize().ok());
  std::vector<hashing::CurveQuadruple> quads(base.NumCopies());
  for (auto policy : {LayoutPolicy::kMedianCurve,
                      LayoutPolicy::kLocalOptimization}) {
    const auto order = ComputeLayout(policy, base, quads);
    EXPECT_EQ(order.size(), base.NumCopies());
  }
}

TEST(LayoutEdgeTest, RecordsPerBlockRespectedByLocalOpt) {
  core::ShapeBase base;
  util::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    Polyline p = RegularPolygon(5 + i % 7, 1.0);
    for (Point& v : p.mutable_vertices()) {
      v += Point{rng.Gaussian(0.02), rng.Gaussian(0.02)};
    }
    ASSERT_TRUE(base.AddShape(p).ok());
  }
  ASSERT_TRUE(base.Finalize().ok());
  std::vector<hashing::CurveQuadruple> quads(base.NumCopies());
  LayoutOptions options;
  options.records_per_block = 3;
  const auto order =
      ComputeLayout(LayoutPolicy::kLocalOptimization, base, quads, options);
  EXPECT_EQ(order.size(), base.NumCopies());
  std::set<uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

}  // namespace
}  // namespace geosir::storage
