// Deterministic crash-recovery tests for the durable DynamicShapeBase.
//
// The core instrument is the crash matrix: run a scripted workload over a
// MemEnv where every file append, file sync and mutating env operation
// consumes one tick of a shared CrashClock; a first pass with the clock
// set to "never" counts the write/sync boundaries, then one run per
// boundary kills the process at exactly that operation, materializes the
// disk as a CrashImage (sweeping how much of the unsynced tail survives),
// recovers, and checks the recovered base against a reference model:
//
//   * the recovered live set must equal the model after some prefix of
//     the acknowledged operations (no phantoms, no reordering),
//   * the prefix must cover every acknowledged mutation whose WAL record
//     was covered by a successful sync (acked + synced => durable),
//   * at most one in-flight (unacknowledged) mutation may additionally
//     appear.

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "storage/appendable_file.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"

namespace geosir::storage {
namespace {

using core::DynamicShapeBase;
using geom::Point;
using geom::Polyline;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

/// Deterministic per-id geometry/metadata so the reference model needs no
/// stored state: insert i always produces ShapeFor(i).
Polyline ShapeFor(uint64_t id) {
  return RegularPolygon(3 + static_cast<int>(id % 8),
                        1.0 + 0.05 * static_cast<double>(id % 7));
}
std::string LabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
core::ImageId ImageFor(uint64_t id) {
  return static_cast<core::ImageId>(id * 3 + 1);
}

struct ScriptOp {
  enum Kind { kInsert, kRemove, kCompact } kind;
  uint64_t id = 0;  // Insert: the id it must get. Remove: the target.
};

/// Mixed workload: inserts with interleaved removes of earlier ids plus
/// optional explicit compactions. Ids are assigned sequentially by the
/// base, so the script can predict them.
std::vector<ScriptOp> MakeScript(size_t inserts, size_t remove_every,
                                 size_t compact_every) {
  std::vector<ScriptOp> script;
  uint64_t next_id = 0;
  std::vector<uint64_t> live;
  for (size_t i = 0; i < inserts; ++i) {
    script.push_back({ScriptOp::kInsert, next_id});
    live.push_back(next_id);
    ++next_id;
    if (remove_every != 0 && i % remove_every == remove_every - 1) {
      // Remove the oldest live shape: exercises tombstones in main and
      // delta removals alike.
      script.push_back({ScriptOp::kRemove, live.front()});
      live.erase(live.begin());
    }
    if (compact_every != 0 && i % compact_every == compact_every - 1) {
      script.push_back({ScriptOp::kCompact});
    }
  }
  return script;
}

/// Live ids after the first `prefix` script ops.
std::set<uint64_t> ModelPrefix(const std::vector<ScriptOp>& script,
                               size_t prefix) {
  std::set<uint64_t> live;
  for (size_t i = 0; i < prefix && i < script.size(); ++i) {
    switch (script[i].kind) {
      case ScriptOp::kInsert:
        live.insert(script[i].id);
        break;
      case ScriptOp::kRemove:
        live.erase(script[i].id);
        break;
      case ScriptOp::kCompact:
        break;
    }
  }
  return live;
}

/// Does the recovered base hold exactly the model's live set, with every
/// shape's geometry and metadata intact?
bool MatchesModel(const DynamicShapeBase& base,
                  const std::set<uint64_t>& model) {
  const std::vector<uint64_t> live = base.LiveIds();
  if (live.size() != model.size()) return false;
  for (uint64_t id : live) {
    if (model.count(id) == 0) return false;
    if (base.label(id) != LabelFor(id)) return false;
    if (base.image(id) != ImageFor(id)) return false;
    const Polyline expected = ShapeFor(id);
    const Polyline& got = base.boundary(id);
    if (got.size() != expected.size() || got.closed() != expected.closed()) {
      return false;
    }
    for (size_t v = 0; v < expected.size(); ++v) {
      // Bit-exact: the WAL and checkpoint store raw f64s.
      if (got.vertex(v).x != expected.vertex(v).x ||
          got.vertex(v).y != expected.vertex(v).y) {
        return false;
      }
    }
  }
  return true;
}

/// Wires a shared CrashClock into a MemEnv: file appends/syncs tick via
/// CrashInjectingFile, mutating env ops (atomic writes, opens, removes,
/// mkdir) tick via the op gate.
void WireCrashClock(MemEnv* env, CrashClock* clock) {
  env->set_file_wrapper(
      [clock](std::unique_ptr<AppendableFile> inner, const std::string&) {
        return std::make_unique<CrashInjectingFile>(std::move(inner), clock);
      });
  env->set_op_gate([clock](const char*, const std::string&) {
    return clock->Tick()
               ? util::Status::OK()
               : util::Status::Unavailable("simulated crash (env op)");
  });
}

DynamicShapeBase::Options SmallBaseOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;  // Auto-compaction inside the matrix.
  options.max_delta_fraction = 0.5;
  return options;
}

constexpr char kDir[] = "db";

struct LiveRunResult {
  bool open_ok = false;
  /// Script ops acknowledged (OK), counted from the start.
  size_t acked_ops = 0;
  /// Acked mutations as (script index, WAL lsn of the mutation record).
  std::vector<std::pair<size_t, uint64_t>> acked_mutations;
  /// True when an op failed after open succeeded (one mutation may be
  /// in-flight: logged and possibly durable, but never acknowledged).
  bool had_failure = false;
  /// Exclusive LSN durability bound at crash time.
  uint64_t synced_upto = 0;
};

/// Runs the script against a freshly opened durable base on `env`,
/// stopping at the first failure (everything fails once the clock dies).
LiveRunResult RunScript(const std::vector<ScriptOp>& script, MemEnv* env,
                        const WalOptions& wal_options,
                        const DynamicShapeBase::Options& base_options) {
  LiveRunResult run;
  DurabilityOptions durability;
  durability.env = env;
  durability.wal = wal_options;
  auto opened = OpenDurableDynamicBase(kDir, base_options, durability);
  if (!opened.ok()) return run;
  run.open_ok = true;
  DynamicShapeBase* base = opened->base.get();
  WalJournal* journal = opened->journal.get();
  for (size_t i = 0; i < script.size(); ++i) {
    const ScriptOp& op = script[i];
    const uint64_t mutation_lsn = journal->next_lsn();
    util::Status status;
    bool is_mutation = true;
    switch (op.kind) {
      case ScriptOp::kInsert: {
        auto id = base->Insert(ShapeFor(op.id), ImageFor(op.id),
                               LabelFor(op.id));
        status = id.status();
        if (id.ok() && *id != op.id) {
          ADD_FAILURE() << "script expected id " << op.id << " got " << *id;
        }
        break;
      }
      case ScriptOp::kRemove:
        status = base->Remove(op.id);
        break;
      case ScriptOp::kCompact:
        status = base->Compact();
        is_mutation = false;
        break;
    }
    if (!status.ok()) {
      run.had_failure = true;
      break;
    }
    ++run.acked_ops;
    if (is_mutation) run.acked_mutations.emplace_back(i, mutation_lsn);
  }
  run.synced_upto = journal->synced_upto();
  return run;
}

/// The crash matrix proper (see the file comment).
void RunCrashMatrix(const std::vector<ScriptOp>& script,
                    const WalOptions& wal_options) {
  const DynamicShapeBase::Options base_options = SmallBaseOptions();

  // Pass 1: count boundaries with a clock that never fires.
  uint64_t total_boundaries = 0;
  {
    MemEnv env;
    CrashClock clock(CrashClock::kNever);
    WireCrashClock(&env, &clock);
    LiveRunResult run = RunScript(script, &env, wal_options, base_options);
    ASSERT_TRUE(run.open_ok);
    ASSERT_FALSE(run.had_failure);
    ASSERT_EQ(run.acked_ops, script.size());
    total_boundaries = clock.ops();
  }
  ASSERT_GT(total_boundaries, 0u);
  ASSERT_LT(total_boundaries, 2000u) << "matrix would be too slow";

  // Pass 2: one run per crash point, three tail-survival fractions each.
  for (uint64_t crash_at = 0; crash_at < total_boundaries; ++crash_at) {
    MemEnv env;
    CrashClock clock(crash_at);
    WireCrashClock(&env, &clock);
    const LiveRunResult run =
        RunScript(script, &env, wal_options, base_options);

    // Prefix bounds. Low: every acked mutation whose record a successful
    // sync covered must survive. High: everything acked plus at most one
    // in-flight mutation.
    size_t lo = 0;
    for (const auto& [script_index, lsn] : run.acked_mutations) {
      if (lsn < run.synced_upto) lo = script_index + 1;
    }
    const size_t hi =
        std::min(script.size(),
                 run.acked_ops + ((run.open_ok && run.had_failure) ? 1 : 0));

    for (double keep_fraction : {0.0, 0.5, 1.0}) {
      const std::unique_ptr<MemEnv> image = env.CrashImage(keep_fraction);
      RecoveryReport report;
      DurabilityOptions durability;
      durability.env = image.get();
      durability.wal = wal_options;
      auto recovered =
          OpenDurableDynamicBase(kDir, base_options, durability, &report);
      ASSERT_TRUE(recovered.ok())
          << "crash at op " << crash_at << " keep " << keep_fraction << ": "
          << recovered.status().message();

      bool matched = false;
      size_t matched_prefix = 0;
      for (size_t j = lo; j <= hi && !matched; ++j) {
        if (MatchesModel(*recovered->base, ModelPrefix(script, j))) {
          matched = true;
          matched_prefix = j;
        }
      }
      ASSERT_TRUE(matched)
          << "crash at op " << crash_at << " keep " << keep_fraction
          << ": recovered live set is not a model prefix in [" << lo << ", "
          << hi << "] (acked " << run.acked_ops << ", synced_upto "
          << run.synced_upto << ", applied " << report.applied
          << ", truncated " << report.truncated_bytes << ", salvaged "
          << report.salvaged << ", generation " << report.generation << ")";
      (void)matched_prefix;

      // The recovered base must keep working: its journal is live, so a
      // mutation after recovery must be accepted.
      auto post = recovered->base->Insert(ShapeFor(9999), ImageFor(9999),
                                          LabelFor(9999));
      EXPECT_TRUE(post.ok())
          << "crash at op " << crash_at << ": " << post.status().message();
    }
  }
}

// --- The matrices ---

TEST(CrashMatrix, EveryNPolicyMixedWorkload) {
  WalOptions wal;
  wal.sync_policy = WalSyncPolicy::kEveryN;
  wal.sync_every_n = 4;
  RunCrashMatrix(MakeScript(/*inserts=*/18, /*remove_every=*/5,
                            /*compact_every=*/0),
                 wal);
}

TEST(CrashMatrix, EveryRecordPolicyNothingAckedIsLost) {
  WalOptions wal;
  wal.sync_policy = WalSyncPolicy::kEveryRecord;
  RunCrashMatrix(MakeScript(/*inserts=*/12, /*remove_every=*/4,
                            /*compact_every=*/0),
                 wal);
}

TEST(CrashMatrix, ExplicitCompactionRotation) {
  // Explicit Compact() ops put the checkpoint-rotation protocol (atomic
  // checkpoint write, new-generation WAL creation, old-generation
  // removal) directly under the boundary sweep: several crash points land
  // between the checkpoint publication and the old WAL's deletion, and
  // recovery must pick a consistent generation at each of them.
  WalOptions wal;
  wal.sync_policy = WalSyncPolicy::kOnCheckpoint;
  RunCrashMatrix(MakeScript(/*inserts=*/10, /*remove_every=*/3,
                            /*compact_every=*/4),
                 wal);
}

// --- Targeted pieces ---

TEST(CrashRecovery, CleanRestartAttachesAndPreservesState) {
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  uint64_t generation = 0;
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    }
    ASSERT_TRUE(opened->base->Remove(2).ok());
    generation = opened->journal->generation();
  }
  RecoveryReport report;
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability, &report);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(report.truncated_bytes, 0u);
  EXPECT_FALSE(report.salvaged);
  EXPECT_FALSE(report.reinitialized);
  EXPECT_EQ(report.generation, generation);
  EXPECT_EQ(report.applied, 6u);  // 5 inserts + 1 remove replayed.
  EXPECT_TRUE(
      MatchesModel(*reopened->base, std::set<uint64_t>{0, 1, 3, 4}));
  // The clean tail was append-attached, not rotated.
  EXPECT_EQ(reopened->journal->generation(), generation);
  // And the reopened base still matches queries.
  auto results = reopened->base->Match(ShapeFor(3), 1);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].first, 3u);
}

TEST(CrashRecovery, AttachSyncsReplayedTailBeforeTrustingIt) {
  // A clean close under a lazy sync policy leaves appended records that
  // were never fsynced. The clean-tail reopen attaches to the same WAL
  // and must issue a REAL durability barrier before reporting those
  // records durable: a power cut right after the reopen may otherwise
  // drop bytes that synced_upto() already promised would survive.
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryN;
  durability.wal.sync_every_n = 1000;  // No sync fires during the run.
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    }
    // Clean close: no crash, but nothing past the head was synced.
  }
  const std::string wal_path = WalPath(kDir, 0);
  const uint64_t synced_before = env.SyncedSize(wal_path);
  ASSERT_LT(synced_before, (*env.ReadFileBytes(wal_path)).size());
  {
    auto reopened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->journal->synced_upto(),
              reopened->journal->next_lsn());
  }
  // The attach barrier made the replayed tail durable.
  EXPECT_EQ(env.SyncedSize(wal_path), (*env.ReadFileBytes(wal_path)).size());
  // A power cut that drops every unsynced byte now loses nothing.
  const std::unique_ptr<MemEnv> image = env.CrashImage(0.0);
  DurabilityOptions image_durability = durability;
  image_durability.env = image.get();
  auto recovered = OpenDurableDynamicBase(kDir, {}, image_durability);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(
      MatchesModel(*recovered->base, std::set<uint64_t>{0, 1, 2, 3}));
}

TEST(CrashRecovery, RejectedInsertLeavesNoJournalRecord) {
  // A misconfigured normalization (alpha outside [0,1)) fails every
  // apply while the WAL encoding itself would succeed. The failure must
  // happen BEFORE the journal write: a WAL insert record that cannot
  // apply would abort every future recovery, and its id would be reused
  // by the next successful insert.
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  {
    DynamicShapeBase::Options bad_options;
    bad_options.base.normalize.alpha = 1.5;
    auto opened = OpenDurableDynamicBase(kDir, bad_options, durability);
    ASSERT_TRUE(opened.ok());
    const uint64_t lsn_before = opened->journal->next_lsn();
    ASSERT_FALSE(
        opened->base->Insert(ShapeFor(0), ImageFor(0), LabelFor(0)).ok());
    EXPECT_EQ(opened->journal->next_lsn(), lsn_before);
  }
  // The store stays recoverable under sane options, holds nothing, and
  // the rejected insert burned no id.
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(MatchesModel(*reopened->base, std::set<uint64_t>{}));
  auto good = reopened->base->Insert(ShapeFor(0), ImageFor(0), LabelFor(0));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 0u);
}

TEST(CrashRecovery, FabricatedHugeNextIdIsCorruptionNotOom) {
  // A CRC-valid head whose next_id is fabricated must be rejected before
  // RestoreCheckpoint materializes one record per id.
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
  }
  WalCommitPayload commit;
  commit.generation = 0;
  commit.next_id = uint64_t{1} << 40;
  std::vector<uint8_t> forged;
  AppendWalFrame(&forged, /*lsn=*/0, WalRecordType::kCompactCommit,
                 EncodeCommit(commit));
  ASSERT_TRUE(env.WriteFileAtomic(WalPath(kDir, 0), forged).ok());
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), util::StatusCode::kCorruption);
}

TEST(CrashRecovery, DirtyTailRotatesToFreshGeneration) {
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    }
  }
  // Corrupt a byte in the middle of the last record: the reader salvages
  // the prefix and recovery must abandon the damaged file.
  const std::string wal_path = WalPath(kDir, 0);
  auto bytes = env.ReadFileBytes(wal_path);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> damaged = *bytes;
  damaged[damaged.size() - 5] ^= 0x40;
  ASSERT_TRUE(env.WriteFileAtomic(wal_path, damaged).ok());

  RecoveryReport report;
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability, &report);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(report.salvaged);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_TRUE(MatchesModel(*reopened->base, std::set<uint64_t>{0, 1}));
  // Dirty tail => immediate rotation to generation 1, and the damaged
  // generation-0 files are gone.
  EXPECT_EQ(reopened->journal->generation(), 1u);
  EXPECT_FALSE(env.FileExists(WalPath(kDir, 0)));
  EXPECT_FALSE(env.FileExists(CheckpointPath(kDir, 0)));
  EXPECT_TRUE(env.FileExists(WalPath(kDir, 1)));
  EXPECT_TRUE(env.FileExists(CheckpointPath(kDir, 1)));
}

TEST(CrashRecovery, TornTailIsTruncatedSilently) {
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    }
  }
  const std::string wal_path = WalPath(kDir, 0);
  auto bytes = env.ReadFileBytes(wal_path);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> torn = *bytes;
  torn.resize(torn.size() - 9);  // Mid-frame cut.
  ASSERT_TRUE(env.WriteFileAtomic(wal_path, torn).ok());

  RecoveryReport report;
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability, &report);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(report.salvaged);  // A torn tail is normal, not salvage.
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_TRUE(MatchesModel(*reopened->base, std::set<uint64_t>{0, 1}));
}

TEST(CrashRecovery, ReplayIsIdempotent) {
  // Replaying the same mutations twice (the checkpoint already absorbed
  // them) must be a no-op, and a gap must be rejected.
  DynamicShapeBase base;
  ASSERT_TRUE(base.ReplayInsert(0, ShapeFor(0), ImageFor(0), LabelFor(0)).ok());
  ASSERT_TRUE(base.ReplayInsert(1, ShapeFor(1), ImageFor(1), LabelFor(1)).ok());
  ASSERT_TRUE(base.ReplayRemove(1).ok());
  // Second replay of the identical prefix: all no-ops.
  EXPECT_TRUE(base.ReplayInsert(0, ShapeFor(0), ImageFor(0), LabelFor(0)).ok());
  EXPECT_TRUE(base.ReplayInsert(1, ShapeFor(1), ImageFor(1), LabelFor(1)).ok());
  EXPECT_TRUE(base.ReplayRemove(1).ok());
  EXPECT_EQ(base.LiveIds(), (std::vector<uint64_t>{0}));
  // A gap means the log disagrees with the checkpoint.
  auto gap = base.ReplayInsert(7, ShapeFor(7), ImageFor(7), LabelFor(7));
  EXPECT_EQ(gap.code(), util::StatusCode::kCorruption);
  // An unknown remove target likewise.
  EXPECT_EQ(base.ReplayRemove(9).code(), util::StatusCode::kCorruption);
}

TEST(CrashRecovery, CheckpointWithoutLogIsCorruption) {
  MemEnv env;
  DurabilityOptions durability;
  durability.env = &env;
  {
    auto opened = OpenDurableDynamicBase(kDir, {}, durability);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        opened->base->Insert(ShapeFor(0), ImageFor(0), LabelFor(0)).ok());
    ASSERT_TRUE(opened->base->Compact().ok());  // ckpt-1 now holds data.
    ASSERT_EQ(opened->journal->generation(), 1u);
  }
  ASSERT_TRUE(env.RemoveFile(WalPath(kDir, 1)).ok());
  auto reopened = OpenDurableDynamicBase(kDir, {}, durability);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), util::StatusCode::kCorruption);
}

TEST(CrashRecovery, EmptyLeftoversReinitialize) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir(kDir).ok());
  // A crash during the very first initialization: a torn (empty) WAL and
  // an orphan temp file, no checkpoint. Nothing was ever acknowledged, so
  // reinitializing silently is correct.
  ASSERT_TRUE(env.WriteFileAtomic(WalPath(kDir, 0), {0x01, 0x02}).ok());
  ASSERT_TRUE(
      env.WriteFileAtomic(kDir + std::string("/ckpt-0.gsir.tmp"), {0x00})
          .ok());
  DurabilityOptions durability;
  durability.env = &env;
  RecoveryReport report;
  auto opened = OpenDurableDynamicBase(kDir, {}, durability, &report);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(report.reinitialized);
  EXPECT_EQ(opened->base->NumLive(), 0u);
  ASSERT_TRUE(
      opened->base->Insert(ShapeFor(0), ImageFor(0), LabelFor(0)).ok());
}

TEST(CrashInjectingFileTest, ScheduledFaultsAreExact) {
  MemEnv env;
  auto inner = env.NewAppendableFile("f", /*truncate=*/true);
  ASSERT_TRUE(inner.ok());
  FileFaultPlan plan;
  plan.schedule = {{1, FaultKind::kShortWrite}, {3, FaultKind::kSyncFailure}};
  CrashInjectingFile file(std::move(*inner), /*clock=*/nullptr, plan);

  const std::vector<uint8_t> payload(32, 0xAB);
  EXPECT_TRUE(file.Append(payload.data(), payload.size()).ok());             // op 0
  EXPECT_FALSE(file.Append(payload.data(), payload.size()).ok());            // op 1: short write
  EXPECT_EQ(file.injected_short_writes(), 1u);
  EXPECT_LT(file.Size() - 32, 32u);  // A strict prefix of op 1 persisted.
  EXPECT_TRUE(file.Sync().ok());                      // op 2
  EXPECT_FALSE(file.Sync().ok());                     // op 3: sync failure
  EXPECT_EQ(file.injected_sync_failures(), 1u);
  EXPECT_EQ(file.ops(), 4u);
}

TEST(CrashInjectingFileTest, ClockKillsEverythingAfterCrashPoint) {
  MemEnv env;
  auto inner = env.NewAppendableFile("f", /*truncate=*/true);
  ASSERT_TRUE(inner.ok());
  CrashClock clock(2);
  CrashInjectingFile file(std::move(*inner), &clock);
  const std::vector<uint8_t> payload(8, 0x11);
  EXPECT_TRUE(file.Append(payload.data(), payload.size()).ok());   // op 0
  EXPECT_TRUE(file.Sync().ok());            // op 1
  EXPECT_FALSE(file.Append(payload.data(), payload.size()).ok());  // op 2: dead
  EXPECT_FALSE(file.Sync().ok());
  EXPECT_EQ(file.Size(), 8u);  // Nothing of the dead append persisted.
}

TEST(MemEnvTest, CrashImageKeepsSyncedPrefix) {
  MemEnv env;
  auto file = env.NewAppendableFile("f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> a(10, 0x01);
  const std::vector<uint8_t> b(10, 0x02);
  ASSERT_TRUE((*file)->Append(a).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(b).ok());  // Unsynced tail.
  EXPECT_EQ(env.SyncedSize("f"), 10u);

  auto lost = env.CrashImage(0.0);
  auto all = env.CrashImage(1.0);
  auto half = env.CrashImage(0.5);
  EXPECT_EQ((*lost->ReadFileBytes("f")).size(), 10u);
  EXPECT_EQ((*all->ReadFileBytes("f")).size(), 20u);
  EXPECT_EQ((*half->ReadFileBytes("f")).size(), 15u);
}

TEST(PosixEnvTest, DurableBaseRoundTripOnDisk) {
  // The real-filesystem path: fresh create, mutate, destroy, reopen.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "geosir_crash_recovery_posix").string();
  fs::remove_all(dir);
  DurabilityOptions durability;  // Env::Posix() by default.
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  {
    auto opened = OpenDurableDynamicBase(dir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          opened->base->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
    }
    ASSERT_TRUE(opened->base->Remove(5).ok());
    ASSERT_TRUE(opened->base->Compact().ok());
    ASSERT_TRUE(opened->base->Remove(6).ok());
  }
  RecoveryReport report;
  auto reopened = OpenDurableDynamicBase(dir, {}, durability, &report);
  ASSERT_TRUE(reopened.ok());
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < 12; ++i) {
    if (i != 5 && i != 6) expected.insert(i);
  }
  EXPECT_TRUE(MatchesModel(*reopened->base, expected));
  EXPECT_EQ(report.generation, 1u);  // The explicit compaction rotated.
  EXPECT_EQ(report.applied, 1u);     // Only the post-compaction remove.
  fs::remove_all(dir);
}

}  // namespace
}  // namespace geosir::storage
