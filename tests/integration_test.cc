// Cross-module integration tests: exercise the full pipelines the
// examples and benchmarks rely on, with assertions instead of prose.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/envelope_matcher.h"
#include "extract/boundary_trace.h"
#include "extract/edge_detect.h"
#include "extract/rasterize.h"
#include "extract/simplify.h"
#include "hashing/geo_hash_index.h"
#include "query/planner.h"
#include "storage/layout.h"
#include "storage/stored_shape_base.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/query_set.h"

namespace geosir {
namespace {

using geom::Point;
using geom::Polyline;

class GeneratedBaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::ImageBaseSpec spec;
    spec.num_images = 60;
    spec.num_prototypes = 12;
    spec.instance_noise = 0.008;
    spec.seed = 20260705;
    auto generated = workload::GenerateImageBase(spec);
    ASSERT_TRUE(generated.ok());
    generated_ = new workload::GeneratedBase(std::move(*generated));
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }

  static workload::GeneratedBase* generated_;
};

workload::GeneratedBase* GeneratedBaseTest::generated_ = nullptr;

TEST_F(GeneratedBaseTest, MatcherAndHashingAgreeOnEasyQueries) {
  const auto& base = generated_->images->shape_base();
  core::EnvelopeMatcher matcher(&base);
  auto hash = hashing::GeoHashIndex::Create(&base);
  ASSERT_TRUE(hash.ok());

  util::Rng rng(1);
  int agreements = 0;
  const int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const Polyline query = workload::JitterVertices(
        generated_->prototypes[t % generated_->prototypes.size()], 0.005,
        &rng);
    auto exact = matcher.Match(query);
    auto approx = hash->Query(query, 1);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    ASSERT_FALSE(exact->empty());
    ASSERT_FALSE(approx->empty());
    const int proto_exact =
        generated_->prototype_of_shape[(*exact)[0].shape_id];
    const int proto_approx =
        generated_->prototype_of_shape[(*approx)[0].shape_id];
    if (proto_exact == proto_approx) ++agreements;
  }
  // Hashing is approximate; it must agree with the exact matcher on the
  // large majority of clean queries.
  EXPECT_GE(agreements, kTrials - 2);
}

TEST_F(GeneratedBaseTest, CollectModeIsConsistentWithKBest) {
  const auto& base = generated_->images->shape_base();
  core::EnvelopeMatcher matcher(&base);
  util::Rng rng(2);
  const Polyline query =
      workload::JitterVertices(generated_->prototypes[3], 0.005, &rng);

  core::MatchOptions top;
  top.k = 1;
  auto best = matcher.Match(query, top);
  ASSERT_TRUE(best.ok());
  ASSERT_FALSE(best->empty());

  core::MatchOptions collect;
  collect.collect_threshold = 0.03;
  auto all = matcher.Match(query, collect);
  ASSERT_TRUE(all.ok());
  // The single best match must be in the collected set with the same
  // distance, and every collected distance respects the threshold.
  bool found = false;
  for (const auto& r : *all) {
    EXPECT_LE(r.distance, 0.03);
    if (r.shape_id == (*best)[0].shape_id) {
      EXPECT_NEAR(r.distance, (*best)[0].distance, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Collected results are sorted ascending.
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LE((*all)[i - 1].distance, (*all)[i].distance);
  }
}

TEST_F(GeneratedBaseTest, StorageRoundTripPreservesEveryCopy) {
  const auto& base = generated_->images->shape_base();
  auto hash = hashing::GeoHashIndex::Create(&base);
  ASSERT_TRUE(hash.ok());
  std::vector<hashing::CurveQuadruple> quads;
  for (size_t i = 0; i < base.NumCopies(); ++i) {
    quads.push_back(hash->QuadrupleOfCopy(i));
  }
  for (auto policy : {storage::LayoutPolicy::kMeanCurve,
                      storage::LayoutPolicy::kLocalOptimization}) {
    const auto order = storage::ComputeLayout(policy, base, quads);
    auto stored = storage::StoredShapeBase::Create(base, quads, order);
    ASSERT_TRUE(stored.ok());
    storage::BufferManager buffer(&stored->file(), 16);
    for (uint32_t c = 0; c < base.NumCopies(); c += 97) {
      auto record = stored->ReadCopy(c, &buffer);
      ASSERT_TRUE(record.ok());
      EXPECT_EQ(record->shape_id, base.copy(c).shape_id);
      EXPECT_TRUE(record->quadruple == quads[c]);
      ASSERT_EQ(record->vertices.size(), base.copy(c).shape.size());
      for (size_t v = 0; v < record->vertices.size(); ++v) {
        EXPECT_NEAR(record->vertices[v].x, base.copy(c).shape.vertex(v).x,
                    1e-5);
      }
    }
  }
}

TEST_F(GeneratedBaseTest, BiggerBufferNeverIncreasesIo) {
  const auto& base = generated_->images->shape_base();
  auto hash = hashing::GeoHashIndex::Create(&base);
  ASSERT_TRUE(hash.ok());
  std::vector<hashing::CurveQuadruple> quads;
  for (size_t i = 0; i < base.NumCopies(); ++i) {
    quads.push_back(hash->QuadrupleOfCopy(i));
  }
  const auto order =
      storage::ComputeLayout(storage::LayoutPolicy::kMeanCurve, base, quads);
  auto stored = storage::StoredShapeBase::Create(base, quads, order);
  ASSERT_TRUE(stored.ok());

  core::EnvelopeMatcher matcher(&base);
  util::Rng rng(3);
  const Polyline query =
      workload::JitterVertices(generated_->prototypes[5], 0.008, &rng);
  core::AccessTrace trace;
  core::MatchOptions options;
  options.measure = core::MatchMeasure::kDiscreteSymmetric;
  ASSERT_TRUE(matcher.Match(query, options, nullptr, &trace).ok());
  ASSERT_FALSE(trace.empty());

  uint64_t prev_io = ~0ull;
  for (size_t blocks : {1, 4, 16, 64, 256}) {
    storage::BufferManager buffer(&stored->file(), blocks);
    auto io = stored->ReplayTrace(trace, &buffer);
    ASSERT_TRUE(io.ok());
    EXPECT_LE(*io, prev_io) << blocks;  // LRU is monotone here.
    prev_io = *io;
  }
}

TEST_F(GeneratedBaseTest, QueryAlgebraLawsHoldOnRealBase) {
  query::QueryContext context(generated_->images.get());
  const auto& protos = generated_->prototypes;
  const query::ImageSet all = context.AllImages();

  // similar(P) U ~similar(P) == DB.
  query::QueryPtr p = query::Similar(protos[2]);
  auto pos = query::ExecuteQuery(*p, &context);
  query::QueryPtr np = query::Complement(query::Similar(protos[2]));
  auto neg = query::ExecuteQuery(*np, &context);
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(query::SetUnion(*pos, *neg), all);
  EXPECT_TRUE(query::SetIntersection(*pos, *neg).empty());

  // Idempotence: P & P == P; P | P == P.
  query::QueryPtr pp = query::Intersect(query::Similar(protos[2]),
                                        query::Similar(protos[2]));
  auto both = query::ExecuteQuery(*pp, &context);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(*both, *pos);

  // De Morgan executed through the planner:
  // ~(A | B) == ~A & ~B.
  query::QueryPtr lhs = query::Complement(query::Union(
      query::Similar(protos[0]), query::Similar(protos[1])));
  query::QueryPtr rhs = query::Intersect(
      query::Complement(query::Similar(protos[0])),
      query::Complement(query::Similar(protos[1])));
  auto l = query::ExecuteQuery(*lhs, &context);
  auto r = query::ExecuteQuery(*rhs, &context);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*l, *r);
}

TEST(RasterPipelineIntegration, ExtractedShapesMatchTheirPrototypes) {
  util::Rng rng(11);
  workload::PolygonGenOptions gen;
  gen.min_vertices = 6;
  gen.max_vertices = 9;
  gen.spikiness = 0.2;
  std::vector<Polyline> prototypes;
  for (int i = 0; i < 4; ++i) prototypes.push_back(RandomStarPolygon(&rng, gen));

  core::ShapeBase base;
  std::vector<int> proto_of_shape;
  for (int p = 0; p < 4; ++p) {
    extract::Raster image(192, 192);
    const auto t = geom::AffineTransform::Translation({96, 96}) *
                   geom::AffineTransform::Rotation(rng.Uniform(0, 6.28)) *
                   geom::AffineTransform::Scaling(60.0);
    extract::FillPolygon(&image, prototypes[p].Transformed(t), 1.0f);
    const auto boundaries =
        extract::TraceBoundaries(extract::ThresholdForeground(image, 0.5f));
    ASSERT_EQ(boundaries.size(), 1u) << "prototype " << p;
    const Polyline shape = extract::Simplify(boundaries[0], 1.2);
    ASSERT_TRUE(base.AddShape(shape).ok());
    proto_of_shape.push_back(p);
  }
  ASSERT_TRUE(base.Finalize().ok());

  core::EnvelopeMatcher matcher(&base);
  for (int p = 0; p < 4; ++p) {
    auto results = matcher.Match(prototypes[p]);
    ASSERT_TRUE(results.ok());
    ASSERT_FALSE(results->empty());
    EXPECT_EQ(proto_of_shape[(*results)[0].shape_id], p);
    EXPECT_LT((*results)[0].distance, 0.05);
  }
}

}  // namespace
}  // namespace geosir
