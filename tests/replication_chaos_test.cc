// Chaos matrix for the replicated serving tier: kill-and-restart the
// FOLLOWER at every ship/apply/sync boundary of a deterministic
// primary+follower schedule, materialize its disk under three unsynced
// tail-survival fractions, reopen, and assert that
//
//   * the recovered replica state equals the reference model after SOME
//     prefix of the primary's journal, no shorter than the prefix the
//     follower's own durability bound acknowledged (acked + synced =>
//     durable, mirrored from the crash suite's primary contract),
//   * a freshly reconnected incarnation converges to the primary's exact
//     final state — streaming when its cursor is still retained, snapshot
//     resync when the primary rotated past it.
//
// The boundary set is the union of the follower's local file operations
// (mirror appends, syncs, checkpoint writes, generation swaps — one
// CrashClock tick each via the MemEnv wiring) and every transport
// operation (the FaultInjectingTransport ticks the same clock), so the
// matrix lands between ship and apply, mid-apply, mid-rotation, and
// mid-resync. The primary runs faultlessly on its own MemEnv throughout:
// this suite is about follower failover, the primary's own crash matrix
// lives in crash_recovery_test.
//
// A second matrix (SnapshotCatchUpBoundaries) holds the follower idle
// until the primary has rotated twice, so every crash point lands inside
// the snapshot bootstrap path instead of steady-state tailing.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "replication/fault_transport.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "storage/appendable_file.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"

namespace geosir::replication {
namespace {

using core::DynamicShapeBase;
using geom::Point;
using geom::Polyline;
using storage::CrashClock;
using storage::CrashInjectingFile;
using storage::MemEnv;
using storage::WalSyncPolicy;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

Polyline ShapeFor(uint64_t id) {
  return RegularPolygon(3 + static_cast<int>(id % 8),
                        1.0 + 0.05 * static_cast<double>(id % 7));
}
std::string LabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
core::ImageId ImageFor(uint64_t id) {
  return static_cast<core::ImageId>(id * 3 + 1);
}

struct ScriptOp {
  enum Kind { kInsert, kRemove, kCompact } kind;
  uint64_t id = 0;
};

std::vector<ScriptOp> MakeScript(size_t inserts, size_t remove_every,
                                 size_t compact_every) {
  std::vector<ScriptOp> script;
  uint64_t next_id = 0;
  std::vector<uint64_t> live;
  for (size_t i = 0; i < inserts; ++i) {
    script.push_back({ScriptOp::kInsert, next_id});
    live.push_back(next_id);
    ++next_id;
    if (remove_every != 0 && i % remove_every == remove_every - 1) {
      script.push_back({ScriptOp::kRemove, live.front()});
      live.erase(live.begin());
    }
    if (compact_every != 0 && i % compact_every == compact_every - 1) {
      script.push_back({ScriptOp::kCompact});
    }
  }
  return script;
}

std::set<uint64_t> ModelPrefix(const std::vector<ScriptOp>& script,
                               size_t prefix) {
  std::set<uint64_t> live;
  for (size_t i = 0; i < prefix && i < script.size(); ++i) {
    switch (script[i].kind) {
      case ScriptOp::kInsert:
        live.insert(script[i].id);
        break;
      case ScriptOp::kRemove:
        live.erase(script[i].id);
        break;
      case ScriptOp::kCompact:
        break;
    }
  }
  return live;
}

bool FollowerMatches(const Follower& follower,
                     const std::set<uint64_t>& model) {
  const std::vector<uint64_t> live = follower.LiveIds();
  if (live.size() != model.size()) return false;
  for (uint64_t id : live) {
    if (model.count(id) == 0) return false;
    if (follower.label(id) != LabelFor(id)) return false;
    if (follower.image(id) != ImageFor(id)) return false;
    const Polyline expected = ShapeFor(id);
    const Polyline got = follower.boundary(id);
    if (got.size() != expected.size() || got.closed() != expected.closed()) {
      return false;
    }
    for (size_t v = 0; v < expected.size(); ++v) {
      if (got.vertex(v).x != expected.vertex(v).x ||
          got.vertex(v).y != expected.vertex(v).y) {
        return false;
      }
    }
  }
  return true;
}

void WireCrashClock(MemEnv* env, CrashClock* clock) {
  env->set_file_wrapper(
      [clock](std::unique_ptr<storage::AppendableFile> inner,
              const std::string&) {
        return std::make_unique<CrashInjectingFile>(std::move(inner), clock);
      });
  env->set_op_gate([clock](const char*, const std::string&) {
    return clock->Tick()
               ? util::Status::OK()
               : util::Status::Unavailable("simulated crash (env op)");
  });
}

DynamicShapeBase::Options SmallBaseOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;
  options.max_delta_fraction = 0.5;
  return options;
}

constexpr char kPrimaryDir[] = "primary";
constexpr char kReplicaDir[] = "replica0";

FollowerOptions ReplicaOptions(storage::Env* env) {
  FollowerOptions options;
  options.env = env;
  options.dir = kReplicaDir;
  options.base = SmallBaseOptions();
  options.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  // Fail fast: the matrix wants one boundary per transport op, not
  // hidden retries that each consume several.
  options.reconnect.max_attempts = 1;
  options.fetch_batch_records = 4;
  return options;
}

struct ScheduleResult {
  /// Primary-side acked mutations as (script index, WAL lsn).
  std::vector<std::pair<size_t, uint64_t>> acked_mutations;
  /// Highest follower durability bound observed before the crash (the
  /// follower's own status is unreadable mid-run only after env death, so
  /// the schedule samples it after every pump).
  uint64_t follower_durable = 0;
  bool follower_converged = false;
};

/// Runs the deterministic schedule: the primary (faultless, own env)
/// executes the script; the follower pumps at fixed points. `pump_after`
/// delays the first pump until that many script ops completed (the
/// snapshot-path matrix sets it past two rotations).
ScheduleResult RunSchedule(const std::vector<ScriptOp>& script,
                           MemEnv* primary_env,
                           storage::DurableDynamicBase* primary,
                           Follower* follower, size_t pump_after) {
  ScheduleResult result;
  auto sample = [&] {
    result.follower_durable =
        std::max(result.follower_durable, follower->status().durable_lsn);
  };
  for (size_t i = 0; i < script.size(); ++i) {
    const ScriptOp& op = script[i];
    const uint64_t mutation_lsn = primary->journal->next_lsn();
    switch (op.kind) {
      case ScriptOp::kInsert: {
        auto id = primary->base->Insert(ShapeFor(op.id), ImageFor(op.id),
                                        LabelFor(op.id));
        if (!id.ok() || *id != op.id) {
          ADD_FAILURE() << "primary insert failed at op " << i;
          return result;
        }
        result.acked_mutations.emplace_back(i, mutation_lsn);
        break;
      }
      case ScriptOp::kRemove:
        if (!primary->base->Remove(op.id).ok()) {
          ADD_FAILURE() << "primary remove failed at op " << i;
          return result;
        }
        result.acked_mutations.emplace_back(i, mutation_lsn);
        break;
      case ScriptOp::kCompact:
        if (!primary->base->Compact().ok()) {
          ADD_FAILURE() << "primary compact failed at op " << i;
          return result;
        }
        break;
    }
    if (i >= pump_after && i % 2 == 1) {
      (void)follower->Pump();
      sample();
    }
  }
  // Bounded convergence drive: pumps fail forever once the clock died.
  const uint64_t tail = primary->journal->tail_state().next_lsn;
  for (int round = 0; round < 300; ++round) {
    if (follower->applied_lsn() >= tail) {
      result.follower_converged = true;
      break;
    }
    (void)follower->Pump();
    sample();
  }
  (void)primary_env;
  return result;
}

void RunChaosMatrix(const std::vector<ScriptOp>& script, size_t pump_after,
                    const TransportFaultPlan& plan) {
  const std::set<uint64_t> final_model = ModelPrefix(script, script.size());

  // Pass 1: count boundaries with a clock that never fires.
  uint64_t total_boundaries = 0;
  {
    MemEnv primary_env;
    storage::DurabilityOptions durability;
    durability.env = &primary_env;
    durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
    auto primary = storage::OpenDurableDynamicBase(
        kPrimaryDir, SmallBaseOptions(), durability);
    ASSERT_TRUE(primary.ok());

    MemEnv replica_env;
    CrashClock clock(CrashClock::kNever);
    WireCrashClock(&replica_env, &clock);
    auto source = std::make_unique<PrimaryLogSource>(&primary_env, kPrimaryDir,
                                                     primary->journal.get());
    FaultInjectingTransport transport(std::move(source), plan, &clock);
    auto follower = Follower::Open(ReplicaOptions(&replica_env), &transport);
    ASSERT_TRUE(follower.ok());
    ScheduleResult run = RunSchedule(script, &primary_env, &*primary,
                                     follower->get(), pump_after);
    ASSERT_TRUE(run.follower_converged);
    ASSERT_TRUE(FollowerMatches(**follower, final_model));
    total_boundaries = clock.ops();
  }
  ASSERT_GT(total_boundaries, 0u);
  std::cerr << "chaos matrix: " << total_boundaries << " boundaries\n";
  ASSERT_LT(total_boundaries, 2500u) << "matrix would be too slow";

  // Pass 2: one run per boundary, three unsynced-tail fractions each.
  for (uint64_t crash_at = 0; crash_at < total_boundaries; ++crash_at) {
    MemEnv primary_env;
    storage::DurabilityOptions durability;
    durability.env = &primary_env;
    durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
    auto primary = storage::OpenDurableDynamicBase(
        kPrimaryDir, SmallBaseOptions(), durability);
    ASSERT_TRUE(primary.ok());

    MemEnv replica_env;
    CrashClock clock(crash_at);
    WireCrashClock(&replica_env, &clock);
    auto source = std::make_unique<PrimaryLogSource>(&primary_env, kPrimaryDir,
                                                     primary->journal.get());
    FaultInjectingTransport transport(std::move(source), plan, &clock);
    auto follower = Follower::Open(ReplicaOptions(&replica_env), &transport);
    if (!follower.ok()) {
      // The clock died inside Open's local recovery of an empty dir:
      // nothing was ever stored, nothing to check.
      continue;
    }
    const ScheduleResult run = RunSchedule(script, &primary_env, &*primary,
                                           follower->get(), pump_after);
    follower->reset();

    // Lower bound: every primary mutation the follower's own WAL mirror
    // durably acknowledged must survive any keep fraction.
    size_t lo = 0;
    for (const auto& [script_index, lsn] : run.acked_mutations) {
      if (lsn < run.follower_durable) lo = script_index + 1;
    }

    for (double keep_fraction : {0.0, 0.5, 1.0}) {
      const std::unique_ptr<MemEnv> image =
          replica_env.CrashImage(keep_fraction);
      auto recovered =
          Follower::Open(ReplicaOptions(image.get()), &transport);
      // Reuse of the dead-clock transport is irrelevant here: recovery is
      // purely local. A fresh transport drives reconnection below.
      ASSERT_TRUE(recovered.ok())
          << "crash at op " << crash_at << " keep " << keep_fraction << ": "
          << recovered.status().message();

      bool matched = false;
      for (size_t j = lo; j <= script.size() && !matched; ++j) {
        if (FollowerMatches(**recovered, ModelPrefix(script, j))) {
          matched = true;
        }
      }
      ASSERT_TRUE(matched)
          << "crash at op " << crash_at << " keep " << keep_fraction
          << ": recovered replica is not an acked-prefix of the journal "
             "(durable bound "
          << run.follower_durable << ", lo " << lo << ")";

      // Reconnect cleanly and converge to the primary's exact final
      // state — in-stream when retained, via snapshot resync when the
      // primary rotated past the replica's cursor.
      PrimaryLogSource clean(&primary_env, kPrimaryDir,
                             primary->journal.get());
      auto reconnected =
          Follower::Open(ReplicaOptions(image.get()), &clean);
      ASSERT_TRUE(reconnected.ok());
      const uint64_t tail = primary->journal->tail_state().next_lsn;
      bool converged = false;
      for (int round = 0; round < 500 && !converged; ++round) {
        (void)(*reconnected)->Pump();
        converged = (*reconnected)->applied_lsn() >= tail;
      }
      ASSERT_TRUE(converged)
          << "crash at op " << crash_at << " keep " << keep_fraction;
      ASSERT_TRUE(FollowerMatches(**reconnected, final_model))
          << "crash at op " << crash_at << " keep " << keep_fraction;
    }
  }
}

TEST(ReplicationChaos, SteadyStateTailingBoundaries) {
  TransportFaultPlan plan;
  plan.seed = 11;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.1;
  RunChaosMatrix(MakeScript(/*inserts=*/12, /*remove_every=*/4,
                            /*compact_every=*/5),
                 /*pump_after=*/0, plan);
}

TEST(ReplicationChaos, SnapshotCatchUpBoundaries) {
  // The follower sleeps through the first two rotations, so its very
  // first pump requires a snapshot bootstrap — every boundary of the
  // matrix lands in the install/catch-up path.
  TransportFaultPlan plan;
  plan.seed = 13;
  RunChaosMatrix(MakeScript(/*inserts=*/10, /*remove_every=*/3,
                            /*compact_every=*/3),
                 /*pump_after=*/9, plan);
}

}  // namespace
}  // namespace geosir::replication
