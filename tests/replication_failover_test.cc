// Failover matrix for the replicated serving tier: kill the PRIMARY at
// every WAL-record boundary of a deterministic schedule, promote each
// follower in turn, and assert the three failover invariants:
//
//   * nothing replicated is lost — the promoted primary's state is
//     exactly the model after the prefix of mutations below its applied
//     floor (the new term's epoch_start_lsn),
//   * a divergent suffix on a rejoining replica (the deposed primary's
//     unreplicated tail, or a survivor that out-pumped the promoted
//     follower) is truncated, never replayed — post-promotion writes use
//     distinct labels so a replayed suffix cannot masquerade as repair,
//   * every replica converges to the new primary's exact state, with a
//     byte-identical WAL mirror when the repair was surgical.
//
// The matrix enumerates every schedule boundary because each mutation is
// one WAL record: killing after op k is killing at record boundary k.
// Two pump cadences (every op / every third op) put the two followers'
// applied floors at different LSNs, so promoting each in turn exercises
// both the behind-survivor catch-up path and the ahead-survivor
// divergence-repair path.
//
// A second set of tests drives the ReplicatedShapeBase orchestration:
// controlled switchover, rejoin via AddFollower, and the health-probe
// auto-failover monitor. The zombie-fence test keeps the deposed
// primary's journal alive and asserts fenced replicas refuse it
// terminally (kFailedPrecondition, no resync, no retry).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "replication/replicated_shape_base.h"
#include "storage/wal.h"
#include "util/deadline.h"

namespace geosir::replication {
namespace {

using core::DynamicShapeBase;
using geom::Point;
using geom::Polyline;
using storage::MemEnv;
using storage::WalSyncPolicy;

Polyline RegularPolygon(int n, double r) {
  std::vector<Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return Polyline::Closed(std::move(v));
}

Polyline ShapeFor(uint64_t id) {
  return RegularPolygon(3 + static_cast<int>(id % 8),
                        1.0 + 0.05 * static_cast<double>(id % 7));
}
std::string LabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
/// Post-promotion writes use a distinct label space: if a divergent
/// suffix were replayed instead of truncated, the old "s" labels would
/// survive on ids the new term rewrote as "n".
std::string NewTermLabelFor(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "n%llu",
                static_cast<unsigned long long>(id));
  return buf;
}
core::ImageId ImageFor(uint64_t id) {
  return static_cast<core::ImageId>(id * 3 + 1);
}

constexpr char kPrimaryDir[] = "primary";

/// Explicit rotations only: the matrix tracks the primary's generation
/// head LSN to predict surgical-truncation vs snapshot-fallback repair,
/// so auto-compaction must not rotate behind its back.
DynamicShapeBase::Options NoAutoCompactOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 1u << 20;
  return options;
}

DynamicShapeBase::Options SmallBaseOptions() {
  DynamicShapeBase::Options options;
  options.min_compaction_size = 8;
  options.max_delta_fraction = 0.5;
  return options;
}

struct ScriptOp {
  enum Kind { kInsert, kRemove, kCompact } kind;
  uint64_t id = 0;
};

std::vector<ScriptOp> MakeScript(size_t inserts, size_t remove_every,
                                 size_t compact_every) {
  std::vector<ScriptOp> script;
  uint64_t next_id = 0;
  std::vector<uint64_t> live;
  for (size_t i = 0; i < inserts; ++i) {
    script.push_back({ScriptOp::kInsert, next_id});
    live.push_back(next_id);
    ++next_id;
    if (remove_every != 0 && i % remove_every == remove_every - 1) {
      script.push_back({ScriptOp::kRemove, live.front()});
      live.erase(live.begin());
    }
    if (compact_every != 0 && i % compact_every == compact_every - 1) {
      script.push_back({ScriptOp::kCompact});
    }
  }
  return script;
}

/// One acked primary mutation, stamped with the LSN its record took.
struct AckedMutation {
  uint64_t lsn = 0;
  ScriptOp op;
};

/// The live-id model after every mutation whose record lies strictly
/// below `floor` — what a replica whose applied cursor is `floor` must
/// hold, no more and no less.
std::set<uint64_t> ModelBelow(const std::vector<AckedMutation>& mutations,
                              uint64_t floor) {
  std::set<uint64_t> live;
  for (const AckedMutation& m : mutations) {
    if (m.lsn >= floor) continue;
    if (m.op.kind == ScriptOp::kInsert) live.insert(m.op.id);
    if (m.op.kind == ScriptOp::kRemove) live.erase(m.op.id);
  }
  return live;
}

/// Bit-level logical equality between a replica and a primary base:
/// same live set, same id horizon, and per-id identical label, image,
/// and boundary vertices.
::testing::AssertionResult StatesMatch(const Follower& follower,
                                       const DynamicShapeBase& base) {
  if (follower.NextId() != base.NextId()) {
    return ::testing::AssertionFailure()
           << "NextId " << follower.NextId() << " vs " << base.NextId();
  }
  const std::vector<uint64_t> live = follower.LiveIds();
  const std::vector<uint64_t> expected = base.LiveIds();
  if (live != expected) {
    return ::testing::AssertionFailure()
           << "live sets differ: " << live.size() << " vs "
           << expected.size() << " ids";
  }
  for (uint64_t id : live) {
    if (follower.label(id) != base.label(id)) {
      return ::testing::AssertionFailure()
             << "id " << id << " label '" << follower.label(id) << "' vs '"
             << base.label(id) << "'";
    }
    if (follower.image(id) != base.image(id)) {
      return ::testing::AssertionFailure() << "id " << id << " image";
    }
    const Polyline& want = base.boundary(id);
    const Polyline got = follower.boundary(id);
    if (got.size() != want.size() || got.closed() != want.closed()) {
      return ::testing::AssertionFailure() << "id " << id << " boundary shape";
    }
    for (size_t v = 0; v < want.size(); ++v) {
      if (got.vertex(v).x != want.vertex(v).x ||
          got.vertex(v).y != want.vertex(v).y) {
        return ::testing::AssertionFailure() << "id " << id << " vertex " << v;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

FollowerOptions ReplicaOptions(storage::Env* env, const std::string& dir,
                               uint32_t index) {
  FollowerOptions options;
  options.env = env;
  options.dir = dir;
  options.base = NoAutoCompactOptions();
  options.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  options.reconnect.max_attempts = 1;
  options.fetch_batch_records = 4;
  options.replica_index = index;
  return options;
}

/// Pumps `follower` until its cursor reaches `tail`; returns false on a
/// livelock (bounded so a wedge fails the test instead of hanging it).
bool PumpTo(Follower* follower, uint64_t tail, int max_rounds = 300) {
  for (int round = 0; round < max_rounds; ++round) {
    if (follower->applied_lsn() >= tail) return true;
    (void)follower->Pump();
  }
  return false;
}

// --- The kill-promote-rejoin matrix ---

struct MatrixTotals {
  uint64_t surgical_repairs = 0;
  uint64_t snapshot_repairs = 0;
  uint64_t survivor_repairs = 0;
  uint64_t promotions = 0;
};

/// One cell of the matrix: run `script` on a primary up to op
/// `kill_after`, with follower 0 pumping every op and follower 1 every
/// third op; kill the primary; promote follower `target`; drive the
/// survivor and the deposed primary's rejoin to convergence.
void RunFailoverCell(const std::vector<ScriptOp>& script, size_t kill_after,
                     size_t target, MatrixTotals* totals) {
  SCOPED_TRACE("kill_after=" + std::to_string(kill_after) +
               " target=" + std::to_string(target));
  MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  auto opened = storage::OpenDurableDynamicBase(kPrimaryDir,
                                                NoAutoCompactOptions(),
                                                durability);
  ASSERT_TRUE(opened.ok());
  storage::DurableDynamicBase primary = std::move(*opened);

  auto source0 = std::make_unique<PrimaryLogSource>(&env, kPrimaryDir,
                                                    primary.journal.get());
  auto source1 = std::make_unique<PrimaryLogSource>(&env, kPrimaryDir,
                                                    primary.journal.get());
  auto follower0 = Follower::Open(ReplicaOptions(&env, "replica0", 0),
                                  source0.get());
  auto follower1 = Follower::Open(ReplicaOptions(&env, "replica1", 1),
                                  source1.get());
  ASSERT_TRUE(follower0.ok());
  ASSERT_TRUE(follower1.ok());
  Follower* followers[2] = {follower0->get(), follower1->get()};

  // The schedule, with the primary's generation-head LSN tracked so the
  // cell can predict which repair path the rejoin must take.
  std::vector<AckedMutation> mutations;
  uint64_t old_head_lsn = 0;  // the initial generation head sits at lsn 0
  for (size_t i = 0; i < kill_after && i < script.size(); ++i) {
    const ScriptOp& op = script[i];
    const uint64_t lsn = primary.journal->next_lsn();
    switch (op.kind) {
      case ScriptOp::kInsert: {
        auto id = primary.base->Insert(ShapeFor(op.id), ImageFor(op.id),
                                       LabelFor(op.id));
        ASSERT_TRUE(id.ok());
        ASSERT_EQ(*id, op.id);
        mutations.push_back({lsn, op});
        break;
      }
      case ScriptOp::kRemove:
        ASSERT_TRUE(primary.base->Remove(op.id).ok());
        mutations.push_back({lsn, op});
        break;
      case ScriptOp::kCompact:
        ASSERT_TRUE(primary.base->Compact().ok());
        old_head_lsn = primary.journal->tail_state().next_lsn - 1;
        break;
    }
    (void)followers[0]->Pump();
    if (i % 3 == 2) (void)followers[1]->Pump();
  }
  const uint64_t old_tail = primary.journal->tail_state().next_lsn;

  // Kill the primary: its journal and serving state die; its generation
  // files stay on disk with whatever unreplicated suffix it had. The
  // transports now dangle, so nothing pumps until it is re-pointed.
  primary.base.reset();
  primary.journal.reset();

  Follower* promoted_follower = followers[target];
  Follower* survivor = followers[1 - target];
  const uint64_t floor = promoted_follower->applied_lsn();
  auto promoted = promoted_follower->Promote();
  if (floor == 0) {
    // Never pumped: no local generation to take over. Sealed either way.
    ASSERT_FALSE(promoted.ok());
    return;
  }
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  ++totals->promotions;
  storage::DurableDynamicBase next = std::move(*promoted);
  const storage::WalTailState tail = next.journal->tail_state();
  EXPECT_EQ(tail.epoch, 1u);
  EXPECT_EQ(tail.epoch_start_lsn, floor)
      << "promotion must not burn LSNs: the new term starts at the "
         "promoted replica's applied floor";
  EXPECT_TRUE(promoted_follower->promoted());

  // Invariant 1: everything replicated below the floor survives, and
  // nothing above it leaked in.
  const std::set<uint64_t> floor_model = ModelBelow(mutations, floor);
  {
    const std::vector<uint64_t> live = next.base->LiveIds();
    EXPECT_EQ(live.size(), floor_model.size());
    for (uint64_t id : live) {
      EXPECT_EQ(floor_model.count(id), 1u) << "id " << id;
      EXPECT_EQ(next.base->label(id), LabelFor(id));
    }
  }

  // New-term writes under distinct labels (ids may collide with the dead
  // primary's unreplicated suffix — that is the point).
  for (int i = 0; i < 3; ++i) {
    const uint64_t id = next.base->NextId();
    auto inserted = next.base->Insert(ShapeFor(id), ImageFor(id),
                                      NewTermLabelFor(id));
    ASSERT_TRUE(inserted.ok());
  }
  const uint64_t new_tail = next.journal->tail_state().next_lsn;

  // Survivor: fence to the new term, re-point, converge. A survivor that
  // out-pumped the promoted follower holds records the new primary never
  // had — they were never acked as replicated by the new term, so they
  // are truncated like any divergent suffix.
  const uint64_t survivor_cursor = survivor->applied_lsn();
  PrimaryLogSource next_source(promoted_follower->env(),
                               promoted_follower->dir(), next.journal.get());
  survivor->Fence(tail.epoch);
  survivor->SetTransport(&next_source);
  ASSERT_TRUE(PumpTo(survivor, new_tail));
  EXPECT_TRUE(StatesMatch(*survivor, *next.base));
  if (survivor_cursor > floor) {
    EXPECT_GE(survivor->status().counters.divergence_repairs +
                  survivor->status().counters.resyncs,
              1u);
    totals->survivor_repairs +=
        survivor->status().counters.divergence_repairs;
  }

  // Rejoin: the deposed primary's own files come back as a follower of
  // the new term. Its unreplicated suffix [floor, old_tail) must be
  // truncated — surgically when its generation head predates the floor,
  // via snapshot resync when the head itself is divergent.
  PrimaryLogSource rejoin_source(promoted_follower->env(),
                                 promoted_follower->dir(),
                                 next.journal.get());
  auto rejoined = Follower::Open(ReplicaOptions(&env, kPrimaryDir, 2),
                                 &rejoin_source);
  ASSERT_TRUE(rejoined.ok()) << rejoined.status().message();
  ASSERT_TRUE(PumpTo(rejoined->get(), new_tail));
  EXPECT_TRUE(StatesMatch(**rejoined, *next.base));
  const FollowerCounters counters = (*rejoined)->status().counters;
  if (old_tail > floor) {
    EXPECT_GE(counters.divergence_repairs, 1u)
        << "divergent suffix [" << floor << ", " << old_tail
        << ") rejoined without a repair";
    if (old_head_lsn < floor) {
      EXPECT_EQ(counters.truncated_records, old_tail - floor);
      EXPECT_EQ(counters.resyncs, 0u)
          << "surgical truncation degraded to a snapshot resync";
      ++totals->surgical_repairs;
    } else {
      EXPECT_GE(counters.resyncs, 1u);
      ++totals->snapshot_repairs;
    }
  }
  // No old-term label may survive on an id the new term rewrote, and the
  // fence is at the new term everywhere.
  EXPECT_GE((*rejoined)->fence_epoch(), tail.epoch);
  EXPECT_GE(survivor->fence_epoch(), tail.epoch);
}

TEST(FailoverChaos, KillPrimaryAtEveryRecordBoundaryAndPromoteEach) {
  const std::vector<ScriptOp> script =
      MakeScript(/*inserts=*/12, /*remove_every=*/4, /*compact_every=*/5);
  MatrixTotals totals;
  for (size_t kill_after = 0; kill_after <= script.size(); ++kill_after) {
    for (size_t target = 0; target < 2; ++target) {
      RunFailoverCell(script, kill_after, target, &totals);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The matrix must exercise every repair path at least once, or the
  // boundary enumeration has silently stopped covering them.
  EXPECT_GT(totals.promotions, 0u);
  EXPECT_GT(totals.surgical_repairs, 0u);
  EXPECT_GT(totals.snapshot_repairs, 0u);
  EXPECT_GT(totals.survivor_repairs, 0u);
}

// --- Zombie fencing ---

TEST(Failover, FencedReplicaRefusesZombiePrimaryTerminally) {
  MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  auto opened = storage::OpenDurableDynamicBase(kPrimaryDir,
                                                NoAutoCompactOptions(),
                                                durability);
  ASSERT_TRUE(opened.ok());
  storage::DurableDynamicBase zombie = std::move(*opened);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(zombie.base->Insert(ShapeFor(i), ImageFor(i),
                                    LabelFor(i)).ok());
  }

  PrimaryLogSource zombie_source(&env, kPrimaryDir, zombie.journal.get());
  auto follower = Follower::Open(ReplicaOptions(&env, "replica0", 0),
                                 &zombie_source);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(PumpTo(follower->get(), zombie.journal->next_lsn()));

  // The replica learns of a newer term (promotion elsewhere) while the
  // old primary keeps serving, oblivious. Every fetch from it must be
  // rejected terminally — kFailedPrecondition is not retriable, so the
  // pump neither loops nor falls back to a resync off stale data.
  (*follower)->Fence(zombie.journal->tail_state().epoch + 1);
  const uint64_t before = (*follower)->applied_lsn();
  ASSERT_TRUE(zombie.base->Insert(ShapeFor(6), ImageFor(6),
                                  LabelFor(6)).ok());
  for (int round = 0; round < 3; ++round) {
    auto pumped = (*follower)->Pump();
    ASSERT_FALSE(pumped.ok());
    EXPECT_EQ(pumped.status().code(), util::StatusCode::kFailedPrecondition);
  }
  const FollowerStatus status = (*follower)->status();
  EXPECT_GE(status.counters.fence_rejections, 3u);
  EXPECT_EQ(status.counters.resyncs, 0u);
  EXPECT_EQ((*follower)->applied_lsn(), before)
      << "a fenced replica applied records from a zombie term";
}

TEST(Failover, PromotedFollowerSealsItsReplicaRole) {
  MemEnv env;
  storage::DurabilityOptions durability;
  durability.env = &env;
  durability.wal.sync_policy = WalSyncPolicy::kEveryRecord;
  auto opened = storage::OpenDurableDynamicBase(kPrimaryDir,
                                                NoAutoCompactOptions(),
                                                durability);
  ASSERT_TRUE(opened.ok());
  storage::DurableDynamicBase primary = std::move(*opened);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary.base->Insert(ShapeFor(i), ImageFor(i),
                                     LabelFor(i)).ok());
  }
  PrimaryLogSource source(&env, kPrimaryDir, primary.journal.get());
  auto follower = Follower::Open(ReplicaOptions(&env, "replica0", 0),
                                 &source);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(PumpTo(follower->get(), primary.journal->next_lsn()));

  auto promoted = (*follower)->Promote();
  ASSERT_TRUE(promoted.ok());
  // Sealed: no more replica queries, no more pumps, and a second
  // promotion cannot mint another term from the same carcass.
  EXPECT_FALSE((*follower)->Match(ShapeFor(1)).ok());
  auto pumped = (*follower)->Pump();
  ASSERT_FALSE(pumped.ok());
  EXPECT_EQ(pumped.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE((*follower)->Promote().ok());

  // The promoted store serves writes durably under the new term.
  auto id = promoted->base->Insert(ShapeFor(9), ImageFor(9),
                                   NewTermLabelFor(9));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(promoted->journal->Sync().ok());
  EXPECT_EQ(promoted->journal->tail_state().epoch, 1u);
}

// --- Orchestrated failover: the ReplicatedShapeBase control plane ---

ReplicatedOptions TierOptions(MemEnv* env) {
  ReplicatedOptions options;
  options.base = SmallBaseOptions();
  options.env = env;
  options.primary_wal.sync_policy = WalSyncPolicy::kEveryRecord;
  options.follower_wal.sync_policy = WalSyncPolicy::kEveryRecord;
  options.start_replication = false;
  return options;
}

std::vector<ReplicaSpec> Replicas(size_t n) {
  std::vector<ReplicaSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].dir = "replica" + std::to_string(i);
  }
  return specs;
}

TEST(OrchestratedFailover, ControlledSwitchoverAndRejoin) {
  MemEnv env;
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2),
                                        TierOptions(&env));
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());
  const uint64_t epoch_before = (*tier)->primary_epoch();

  ASSERT_TRUE((*tier)->PromoteFollower(1).ok());
  EXPECT_EQ((*tier)->failovers(), 1u);
  EXPECT_GT((*tier)->primary_epoch(), epoch_before);
  EXPECT_TRUE((*tier)->follower(1).promoted());

  // Writes flow under the new term; the survivor keeps serving reads and
  // follows the new primary.
  for (uint64_t i = 10; i < 14; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());
  std::vector<core::MatchStats> stats;
  auto results = (*tier)->MatchBatch({ShapeFor(12)}, 1, &stats);
  ASSERT_TRUE(results.ok()) << results.status().message();
  EXPECT_EQ((*results)[0].front().first, 12u);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].replica, 0u) << "router still offered the sealed slot";
  EXPECT_EQ((*tier)->follower(0).fence_epoch(), (*tier)->primary_epoch());

  // The deposed primary's files rejoin as a new follower of the tier.
  ReplicaSpec rejoin;
  rejoin.dir = kPrimaryDir;
  ASSERT_TRUE((*tier)->AddFollower(std::move(rejoin)).ok());
  ASSERT_EQ((*tier)->replica_count(), 3u);
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());
  EXPECT_EQ((*tier)->follower(2).applied_lsn(), (*tier)->primary_next_lsn());
  EXPECT_EQ((*tier)->follower(2).NextId(), (*tier)->PrimaryNextId());
  EXPECT_EQ((*tier)->follower(2).LiveIds(), (*tier)->PrimaryLiveIds());
  for (uint64_t id : (*tier)->follower(2).LiveIds()) {
    EXPECT_EQ((*tier)->follower(2).label(id), LabelFor(id));
  }
  EXPECT_EQ((*tier)->follower(2).fence_epoch(), (*tier)->primary_epoch());
}

TEST(OrchestratedFailover, MonitorAutoPromotesOnHealthProbeFailure) {
  MemEnv env;
  std::atomic<bool> healthy{true};
  ReplicatedOptions options = TierOptions(&env);
  options.start_replication = true;
  options.failover_failures_to_trip = 2;
  options.failover_probe_interval_ms = 2;
  options.health_probe = [&healthy] {
    return healthy.load() ? util::Status::OK()
                          : util::Status::Unavailable("probe: primary dead");
  };
  auto tier = ReplicatedShapeBase::Open(kPrimaryDir, Replicas(2), options);
  ASSERT_TRUE(tier.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*tier)->Insert(ShapeFor(i), ImageFor(i), LabelFor(i)).ok());
  }
  ASSERT_TRUE((*tier)->WaitForCatchUp(util::Deadline::AfterMillis(5000)).ok());

  healthy.store(false);
  const util::Deadline deadline = util::Deadline::AfterMillis(5000);
  while ((*tier)->failovers() == 0) {
    ASSERT_FALSE(deadline.expired()) << "monitor never tripped";
  }
  healthy.store(true);

  // The write path may answer kUnavailable during the drain window; it
  // must come back under the new term.
  const util::Deadline write_deadline = util::Deadline::AfterMillis(5000);
  bool wrote = false;
  while (!wrote && !write_deadline.expired()) {
    auto id = (*tier)->Insert(ShapeFor(100), ImageFor(100), LabelFor(100));
    if (id.ok()) {
      wrote = true;
    } else {
      ASSERT_EQ(id.status().code(), util::StatusCode::kUnavailable);
    }
  }
  ASSERT_TRUE(wrote) << "writes never recovered after auto-failover";
  EXPECT_GE((*tier)->primary_epoch(), 1u);
  EXPECT_GE((*tier)->failovers(), 1u);
}

}  // namespace
}  // namespace geosir::replication
