// Fuzz and input-hardening tests: byte-mutated shape files (v1 and v2)
// through LoadShapeBase, random query strings through ParseQuery, and
// non-finite (NaN/Inf) inputs through every public entry point. The
// invariant under fuzz is uniform: never crash, never hang, never accept
// garbage silently — return a clean error Status (or a valid salvaged
// prefix) instead. All randomness is seeded, so a failure reproduces.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_shape_base.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "net/frame.h"
#include "query/parser.h"
#include "replication/wire_protocol.h"
#include "storage/appendable_file.h"
#include "storage/base_io.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"

namespace geosir {
namespace {

using geom::Polyline;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Polyline MakeTriangle(double x0 = 0.0) {
  return Polyline({{x0, 0.0}, {x0 + 1.0, 0.0}, {x0 + 0.5, 0.8}}, true);
}

Polyline MakeNonFiniteTriangle(double bad) {
  return Polyline({{0.0, 0.0}, {1.0, bad}, {0.5, 0.8}}, true);
}

// Little-endian append helpers for hand-crafting v1 files.
template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

// A v1 shape file (no checksums): magic, version, count, then records.
std::vector<uint8_t> BuildV1File(const std::vector<Polyline>& shapes) {
  std::vector<uint8_t> out;
  Append<uint32_t>(&out, 0x52495347);  // "GSIR"
  Append<uint32_t>(&out, 1);
  Append<uint64_t>(&out, shapes.size());
  for (const Polyline& shape : shapes) {
    Append<uint32_t>(&out, 0);                 // image
    Append<uint16_t>(&out, 0);                 // label length
    Append<uint8_t>(&out, shape.closed() ? 1 : 0);
    Append<uint32_t>(&out, static_cast<uint32_t>(shape.size()));
    for (size_t v = 0; v < shape.size(); ++v) {
      Append<double>(&out, shape.vertex(v).x);
      Append<double>(&out, shape.vertex(v).y);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Non-finite input hardening (regressions for the NaN/Inf validation).
// ---------------------------------------------------------------------------

TEST(InputHardeningTest, AddShapeRejectsNonFiniteVertices) {
  for (double bad : {kNan, kInf, -kInf}) {
    core::ShapeBase base;
    auto id = base.AddShape(MakeNonFiniteTriangle(bad));
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(InputHardeningTest, DynamicInsertRejectsNonFiniteVertices) {
  for (double bad : {kNan, kInf}) {
    core::DynamicShapeBase dynamic;
    auto id = dynamic.Insert(MakeNonFiniteTriangle(bad));
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), util::StatusCode::kInvalidArgument);
  }
}

class HardenedMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new core::ShapeBase();
    util::Rng rng(5);
    workload::PolygonGenOptions gen;
    for (int s = 0; s < 20; ++s) {
      ASSERT_TRUE(base_->AddShape(workload::RandomStarPolygon(&rng, gen)).ok());
    }
    ASSERT_TRUE(base_->Finalize().ok());
  }
  static void TearDownTestSuite() {
    delete base_;
    base_ = nullptr;
  }
  static core::ShapeBase* base_;
};

core::ShapeBase* HardenedMatchTest::base_ = nullptr;

TEST_F(HardenedMatchTest, MatchRejectsNonFiniteQuery) {
  core::EnvelopeMatcher matcher(base_);
  for (double bad : {kNan, kInf}) {
    auto result = matcher.Match(MakeNonFiniteTriangle(bad));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST_F(HardenedMatchTest, MatchRejectsNonFiniteOptions) {
  core::EnvelopeMatcher matcher(base_);
  const Polyline query = MakeTriangle();
  // Each of these once sent the matcher into an unbounded or undefined
  // search (NaN growth never reaches eps_max); they must all fail fast.
  std::vector<core::MatchOptions> bad_options(6);
  bad_options[0].beta = kNan;
  bad_options[1].growth = kNan;
  bad_options[2].growth = 1.0;  // Non-growing envelope loops forever.
  bad_options[3].initial_epsilon = kNan;
  bad_options[4].max_epsilon = kInf;
  bad_options[5].stop_factor = kNan;
  for (size_t i = 0; i < bad_options.size(); ++i) {
    auto result = matcher.Match(query, bad_options[i]);
    ASSERT_FALSE(result.ok()) << "options variant " << i;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument)
        << "options variant " << i;
  }
}

TEST(InputHardeningTest, ParserRejectsNonFiniteAngles) {
  std::map<std::string, Polyline> shapes;
  shapes.emplace("a", MakeTriangle());
  shapes.emplace("b", MakeTriangle(3.0));
  for (const char* text : {"overlap(a, b, nan)", "overlap(a, b, inf)",
                           "contain(a, b, -inf)", "disjoint(a, b, NAN)"}) {
    auto query = query::ParseQuery(text, shapes);
    ASSERT_FALSE(query.ok()) << text;
    EXPECT_EQ(query.status().code(), util::StatusCode::kInvalidArgument)
        << text;
  }
  // A finite angle still parses.
  EXPECT_TRUE(query::ParseQuery("overlap(a, b, 0.5)", shapes).ok());
}

TEST(InputHardeningTest, V1FileWithNonFiniteCoordinatesFailsCleanly) {
  // v1 has no checksums, so a NaN coordinate reaches shape validation —
  // which must flag the record as corruption, not store a poisoned shape.
  const std::string path = TempPath("v1_nan.shapes");
  std::vector<Polyline> shapes = {MakeTriangle(),
                                  MakeNonFiniteTriangle(kNan)};
  WriteFileBytes(path, BuildV1File(shapes));

  auto strict = storage::LoadShapeBase(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kCorruption);

  // Salvage keeps the valid prefix (the finite triangle).
  storage::LoadOptions salvage;
  salvage.salvage = true;
  storage::LoadReport report;
  auto loose = storage::LoadShapeBase(path, {}, salvage, &report);
  ASSERT_TRUE(loose.ok()) << loose.status().ToString();
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ((*loose)->NumShapes(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Byte-mutation fuzz over the shape-file loader.
// ---------------------------------------------------------------------------

class ShapeFileFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::ShapeBase base;
    util::Rng rng(17);
    workload::PolygonGenOptions gen;
    for (int s = 0; s < 30; ++s) {
      ASSERT_TRUE(base.AddShape(workload::RandomStarPolygon(&rng, gen),
                                core::ImageId(s), "shape-" + std::to_string(s))
                      .ok());
    }
    const std::string path = TempPath("fuzz_seed_v2.shapes");
    ASSERT_TRUE(storage::SaveShapeBase(base, path).ok());
    v2_bytes_ = new std::vector<uint8_t>(ReadFileBytes(path));
    ASSERT_FALSE(v2_bytes_->empty());
    std::remove(path.c_str());

    std::vector<Polyline> shapes;
    for (int s = 0; s < 30; ++s) {
      shapes.push_back(workload::RandomStarPolygon(&rng, gen));
    }
    v1_bytes_ = new std::vector<uint8_t>(BuildV1File(shapes));
  }
  static void TearDownTestSuite() {
    delete v2_bytes_;
    delete v1_bytes_;
    v2_bytes_ = nullptr;
    v1_bytes_ = nullptr;
  }

  // One fuzz campaign: mutate, load (both salvage modes), assert the
  // invariant. Any returned base must be fully usable.
  static void Fuzz(const std::vector<uint8_t>& seed, uint64_t rng_seed,
                   int iterations) {
    util::Rng rng(rng_seed);
    const std::string path = TempPath("fuzz_case.shapes");
    for (int it = 0; it < iterations; ++it) {
      std::vector<uint8_t> bytes = seed;
      // Mutations: flip 1-8 bytes; sometimes truncate; sometimes extend.
      const int flips = static_cast<int>(rng.UniformInt(1, 8));
      for (int f = 0; f < flips && !bytes.empty(); ++f) {
        const size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      if (rng.Bernoulli(0.25) && bytes.size() > 1) {
        bytes.resize(static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(bytes.size()) - 1)));
      } else if (rng.Bernoulli(0.1)) {
        for (int extra = 0; extra < 64; ++extra) {
          bytes.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
        }
      }
      WriteFileBytes(path, bytes);
      for (bool salvage : {false, true}) {
        storage::LoadOptions load;
        load.salvage = salvage;
        storage::LoadReport report;
        auto result = storage::LoadShapeBase(path, {}, load, &report);
        if (result.ok()) {
          // Whatever survived must be a coherent, queryable base.
          core::ShapeBase& loaded = **result;
          EXPECT_TRUE(loaded.finalized());
          EXPECT_EQ(report.shapes_loaded, loaded.NumShapes());
          if (loaded.NumShapes() > 0) {
            core::EnvelopeMatcher matcher(&loaded);
            core::MatchOptions options;
            options.budget.max_rounds = 2;  // Keep each probe cheap.
            auto match = matcher.Match(MakeTriangle(), options);
            if (!match.ok()) {
              EXPECT_NE(match.status().code(), util::StatusCode::kOk);
            }
          }
        } else {
          EXPECT_NE(result.status().code(), util::StatusCode::kOk);
          EXPECT_FALSE(result.status().message().empty());
        }
      }
    }
    std::remove(path.c_str());
  }

  static std::vector<uint8_t>* v2_bytes_;
  static std::vector<uint8_t>* v1_bytes_;
};

std::vector<uint8_t>* ShapeFileFuzzTest::v2_bytes_ = nullptr;
std::vector<uint8_t>* ShapeFileFuzzTest::v1_bytes_ = nullptr;

TEST_F(ShapeFileFuzzTest, MutatedV2FilesNeverCrashTheLoader) {
  Fuzz(*v2_bytes_, 20260807, 120);
}

TEST_F(ShapeFileFuzzTest, MutatedV1FilesNeverCrashTheLoader) {
  Fuzz(*v1_bytes_, 20260808, 120);
}

TEST_F(ShapeFileFuzzTest, EmptyAndTinyFilesFailCleanly) {
  const std::string path = TempPath("fuzz_tiny.shapes");
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{8},
                     size_t{15}, size_t{16}}) {
    WriteFileBytes(path, std::vector<uint8_t>(
                             v2_bytes_->begin(),
                             v2_bytes_->begin() +
                                 static_cast<std::ptrdiff_t>(len)));
    auto result = storage::LoadShapeBase(path);
    EXPECT_FALSE(result.ok()) << "length " << len;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Random query strings through the parser.
// ---------------------------------------------------------------------------

TEST(QueryParserFuzzTest, RandomStringsNeverCrashTheParser) {
  std::map<std::string, Polyline> shapes;
  shapes.emplace("a", MakeTriangle());
  shapes.emplace("b", MakeTriangle(3.0));
  shapes.emplace("long_name-1", MakeTriangle(6.0));

  // Token soup biased toward the grammar so mutations reach deep states.
  const std::vector<std::string> tokens = {
      "similar",  "contain", "overlap", "disjoint", "a",   "b",
      "long_name-1", "any",  "(",       ")",        ",",   "~",
      "&",        "|",       " ",       "0.5",      "-1e9", "nan",
      "inf",      "x",       "((",      "))",       "similar(a)",
      "contain(a,b,any)"};
  util::Rng rng(20260809);
  for (int it = 0; it < 500; ++it) {
    std::string text;
    const int parts = static_cast<int>(rng.UniformInt(0, 12));
    for (int p = 0; p < parts; ++p) {
      text += tokens[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(tokens.size()) - 1))];
    }
    // Occasionally splice in raw bytes (including non-ASCII).
    if (rng.Bernoulli(0.2)) {
      const size_t pos = text.empty()
                             ? 0
                             : static_cast<size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(text.size())));
      text.insert(pos, 1, static_cast<char>(rng.UniformInt(1, 255)));
    }
    auto query = query::ParseQuery(text, shapes);
    if (!query.ok()) {
      EXPECT_FALSE(query.status().message().empty()) << "input: " << text;
    } else {
      EXPECT_NE(query->get(), nullptr) << "input: " << text;
    }
  }
}

TEST(QueryParserFuzzTest, MutatedValidQueriesNeverCrashTheParser) {
  std::map<std::string, Polyline> shapes;
  shapes.emplace("a", MakeTriangle());
  shapes.emplace("b", MakeTriangle(3.0));
  const std::string valid =
      "(similar(a) & contain(a, b, 0.25)) | ~disjoint(b, a, any)";
  util::Rng rng(20260810);
  for (int it = 0; it < 500; ++it) {
    std::string text = valid;
    const int edits = static_cast<int>(rng.UniformInt(1, 4));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          text[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
    }
    auto query = query::ParseQuery(text, shapes);
    (void)query;  // OK or clean error; reaching here is the assertion.
  }
}

// ---------------------------------------------------------------------------
// Byte-mutation fuzz over the WAL reader and the recovery path. The
// invariant mirrors the shape-file one, sharpened for logs: a mutated WAL
// never crashes the reader and never admits a phantom record — whatever
// ReadWalRecords returns must be an exact prefix of what was written.
// ---------------------------------------------------------------------------

class WalFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A realistic log: head commit, then interleaved inserts and removes.
    records_ = new std::vector<storage::WalRecord>();
    bytes_ = new std::vector<uint8_t>();
    uint64_t lsn = 0;
    auto push = [&](storage::WalRecordType type, std::vector<uint8_t> payload) {
      storage::AppendWalFrame(bytes_, lsn, type, payload);
      records_->push_back({lsn, type, std::move(payload)});
      ++lsn;
    };
    storage::WalCommitPayload head;
    head.generation = 3;
    head.next_id = 0;
    push(storage::WalRecordType::kCompactCommit,
         storage::EncodeCommit(head));
    for (uint64_t id = 0; id < 24; ++id) {
      storage::WalInsertPayload insert;
      insert.id = id;
      insert.image = static_cast<core::ImageId>(id);
      insert.label = "wal-" + std::to_string(id);
      insert.closed = true;
      const Polyline poly = MakeTriangle(static_cast<double>(id));
      for (size_t v = 0; v < poly.size(); ++v) {
        insert.vertices.push_back(poly.vertex(v));
      }
      push(storage::WalRecordType::kInsert, storage::EncodeInsert(insert));
      if (id % 5 == 4) {
        push(storage::WalRecordType::kRemove, storage::EncodeRemove(id - 2));
      }
    }
  }
  static void TearDownTestSuite() {
    delete records_;
    delete bytes_;
    records_ = nullptr;
    bytes_ = nullptr;
  }

  /// Is `got` an exact prefix of the records originally written?
  static bool IsPrefixOfOriginal(const std::vector<storage::WalRecord>& got) {
    if (got.size() > records_->size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      const storage::WalRecord& want = (*records_)[i];
      if (got[i].lsn != want.lsn || got[i].type != want.type ||
          got[i].payload != want.payload) {
        return false;
      }
    }
    return true;
  }

  static std::vector<storage::WalRecord>* records_;
  static std::vector<uint8_t>* bytes_;
};

std::vector<storage::WalRecord>* WalFuzzTest::records_ = nullptr;
std::vector<uint8_t>* WalFuzzTest::bytes_ = nullptr;

TEST_F(WalFuzzTest, MutatedLogsYieldOnlyPrefixes) {
  util::Rng rng(20260811);
  for (int it = 0; it < 400; ++it) {
    std::vector<uint8_t> bytes = *bytes_;
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips && !bytes.empty(); ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    if (rng.Bernoulli(0.25) && bytes.size() > 1) {
      bytes.resize(static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(bytes.size()) - 1)));
    } else if (rng.Bernoulli(0.1)) {
      for (int extra = 0; extra < 64; ++extra) {
        bytes.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
    }
    storage::WalReadReport report;
    const std::vector<storage::WalRecord> got =
        storage::ReadWalRecords(bytes, &report);
    EXPECT_TRUE(IsPrefixOfOriginal(got)) << "iteration " << it;
    // Anything dropped must be accounted for: a mutation that shortened
    // the result either tore the tail, tripped salvage, or cut the log
    // exactly on a frame boundary — in which case the shorter log must
    // be complete and self-consistent, byte for byte.
    if (got.size() < records_->size() && report.truncated_bytes == 0 &&
        !report.salvaged) {
      std::vector<uint8_t> reencoded;
      for (const storage::WalRecord& r : got) {
        storage::AppendWalFrame(&reencoded, r.lsn, r.type, r.payload);
      }
      EXPECT_EQ(reencoded, bytes) << "iteration " << it;
    }
  }
}

TEST_F(WalFuzzTest, TruncationAtEveryByteYieldsOnlyPrefixes) {
  // Exhaustive, not sampled: every possible torn tail.
  for (size_t len = 0; len <= bytes_->size(); ++len) {
    const std::vector<uint8_t> cut(bytes_->begin(),
                                   bytes_->begin() +
                                       static_cast<std::ptrdiff_t>(len));
    storage::WalReadReport report;
    const std::vector<storage::WalRecord> got =
        storage::ReadWalRecords(cut, &report);
    ASSERT_TRUE(IsPrefixOfOriginal(got)) << "length " << len;
    ASSERT_FALSE(report.salvaged) << "length " << len;  // Torn, not corrupt.
    // Every byte is accounted for: parsed frames plus the dropped tail.
    std::vector<uint8_t> parsed;
    for (const storage::WalRecord& r : got) {
      storage::AppendWalFrame(&parsed, r.lsn, r.type, r.payload);
    }
    ASSERT_EQ(parsed.size() + report.truncated_bytes, len)
        << "length " << len;
  }
}

TEST(WalDecoderFuzzTest, RandomPayloadsNeverCrashDecoders) {
  util::Rng rng(20260812);
  for (int it = 0; it < 600; ++it) {
    std::vector<uint8_t> payload(
        static_cast<size_t>(rng.UniformInt(0, 96)));
    for (uint8_t& b : payload) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    // OK or clean error; must not crash or hang.
    auto insert = storage::DecodeInsert(payload);
    if (!insert.ok()) {
      EXPECT_FALSE(insert.status().message().empty());
    }
    auto remove = storage::DecodeRemove(payload);
    if (!remove.ok()) {
      EXPECT_FALSE(remove.status().message().empty());
    }
    auto commit = storage::DecodeCommit(payload);
    if (!commit.ok()) {
      EXPECT_FALSE(commit.status().message().empty());
    }
  }
}

TEST(WalRecoveryFuzzTest, MutatedStoresRecoverCleanlyOrFailCleanly) {
  // End-to-end: build a durable base in a MemEnv, mutate one of its files
  // (WAL or checkpoint), reopen. Every outcome must be either a coherent
  // recovered base whose shapes all carry their original metadata, or a
  // clean error — never a crash, never a poisoned shape.
  storage::MemEnv seed_env;
  storage::DurabilityOptions durability;
  durability.env = &seed_env;
  durability.wal.sync_policy = storage::WalSyncPolicy::kEveryRecord;
  const std::string dir = "db";
  {
    auto opened = storage::OpenDurableDynamicBase(dir, {}, durability);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 16; ++i) {
      ASSERT_TRUE(opened->base
                      ->Insert(MakeTriangle(static_cast<double>(i)),
                               static_cast<core::ImageId>(i),
                               "fuzz-" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(opened->base->Remove(3).ok());
    ASSERT_TRUE(opened->base->Compact().ok());  // Generation 1.
    ASSERT_TRUE(opened->base->Remove(7).ok());
  }
  const auto wal_bytes = seed_env.ReadFileBytes(storage::WalPath(dir, 1));
  const auto ckpt_bytes =
      seed_env.ReadFileBytes(storage::CheckpointPath(dir, 1));
  ASSERT_TRUE(wal_bytes.ok());
  ASSERT_TRUE(ckpt_bytes.ok());

  util::Rng rng(20260813);
  for (int it = 0; it < 200; ++it) {
    storage::MemEnv env;
    ASSERT_TRUE(env.CreateDir(dir).ok());
    std::vector<uint8_t> wal = *wal_bytes;
    std::vector<uint8_t> ckpt = *ckpt_bytes;
    std::vector<uint8_t>& target = rng.Bernoulli(0.5) ? wal : ckpt;
    const int flips = static_cast<int>(rng.UniformInt(1, 6));
    for (int f = 0; f < flips && !target.empty(); ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(target.size()) - 1));
      target[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    if (rng.Bernoulli(0.2) && target.size() > 1) {
      target.resize(static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(target.size()) - 1)));
    }
    ASSERT_TRUE(env.WriteFileAtomic(storage::WalPath(dir, 1), wal).ok());
    ASSERT_TRUE(
        env.WriteFileAtomic(storage::CheckpointPath(dir, 1), ckpt).ok());

    storage::DurabilityOptions reopen;
    reopen.env = &env;
    reopen.wal.sync_policy = storage::WalSyncPolicy::kEveryRecord;
    storage::RecoveryReport report;
    auto recovered =
        storage::OpenDurableDynamicBase(dir, {}, reopen, &report);
    if (!recovered.ok()) {
      EXPECT_FALSE(recovered.status().message().empty()) << "iteration " << it;
      continue;
    }
    // No phantoms: every live shape must be one we inserted, unchanged.
    for (uint64_t id : recovered->base->LiveIds()) {
      ASSERT_LT(id, 16u) << "iteration " << it;
      EXPECT_EQ(recovered->base->label(id), "fuzz-" + std::to_string(id))
          << "iteration " << it;
      EXPECT_EQ(recovered->base->image(id), static_cast<core::ImageId>(id))
          << "iteration " << it;
      const Polyline expected = MakeTriangle(static_cast<double>(id));
      const Polyline& got = recovered->base->boundary(id);
      ASSERT_EQ(got.size(), expected.size()) << "iteration " << it;
      for (size_t v = 0; v < expected.size(); ++v) {
        EXPECT_EQ(got.vertex(v).x, expected.vertex(v).x);
        EXPECT_EQ(got.vertex(v).y, expected.vertex(v).y);
      }
    }
    // And the recovered base must keep working.
    EXPECT_TRUE(recovered->base
                    ->Insert(MakeTriangle(99.0), core::ImageId(99), "post")
                    .ok())
        << "iteration " << it;
  }
}

// ---------------------------------------------------------------------------
// Byte-mutation fuzz over the replication wire format. The frame decoder
// and every payload decoder face bytes a hostile or byte-flipping peer
// could send: the only acceptable outcomes are a clean kCorruption /
// kUnavailable, or a successful decode that is EXACTLY the original
// message — never a crash, never an unbounded allocation, never a
// phantom record.
// ---------------------------------------------------------------------------

/// One realistic frame: a kFetchOk carrying an encoded LogBatch.
std::vector<uint8_t> BuildWireSeedFrame(replication::LogBatch* out_batch) {
  replication::LogBatch batch;
  batch.primary_next_lsn = 9;
  for (uint64_t lsn = 0; lsn < 9; ++lsn) {
    storage::WalRecord record;
    record.lsn = lsn;
    record.type = lsn == 0 ? storage::WalRecordType::kCompactCommit
                           : storage::WalRecordType::kInsert;
    record.payload.assign(11 + static_cast<size_t>(lsn) * 7,
                          static_cast<uint8_t>(0xA0 + lsn));
    batch.records.push_back(std::move(record));
  }
  std::vector<uint8_t> wire;
  net::AppendFrame(
      &wire,
      static_cast<uint8_t>(replication::MessageType::kFetchOk),
      replication::EncodeLogBatch(batch));
  if (out_batch != nullptr) *out_batch = std::move(batch);
  return wire;
}

TEST(WireFrameFuzzTest, MutatedFramesDecodeExactlyOrFailCleanly) {
  replication::LogBatch original;
  const std::vector<uint8_t> seed = BuildWireSeedFrame(&original);
  util::Rng rng(20260809);
  for (int it = 0; it < 4000; ++it) {
    std::vector<uint8_t> bytes = seed;
    const int flips = static_cast<int>(rng.UniformInt(1, 6));
    for (int f = 0; f < flips && !bytes.empty(); ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    if (rng.Bernoulli(0.3) && bytes.size() > 1) {
      bytes.resize(static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(bytes.size()) - 1)));
    } else if (rng.Bernoulli(0.1)) {
      for (int extra = 0; extra < 32; ++extra) {
        bytes.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
    }
    size_t consumed = 0;
    auto frame = net::DecodeFrame(bytes.data(), bytes.size(),
                                  net::kDefaultMaxFramePayload, &consumed);
    if (!frame.ok()) {
      // Torn at the end = kUnavailable; anything else = kCorruption.
      EXPECT_TRUE(frame.status().code() == util::StatusCode::kCorruption ||
                  frame.status().code() == util::StatusCode::kUnavailable)
          << "iteration " << it << ": " << frame.status().ToString();
      continue;
    }
    // The CRC covers header + payload, so a successful decode means the
    // mutations all landed past the frame boundary: the message is the
    // original, bit for bit — no phantom or altered records.
    ASSERT_LE(consumed, bytes.size()) << "iteration " << it;
    EXPECT_EQ(frame->type,
              static_cast<uint8_t>(replication::MessageType::kFetchOk));
    auto decoded = replication::DecodeLogBatch(frame->payload);
    ASSERT_TRUE(decoded.ok()) << "iteration " << it;
    ASSERT_EQ(decoded->records.size(), original.records.size());
    EXPECT_EQ(decoded->primary_next_lsn, original.primary_next_lsn);
    for (size_t r = 0; r < original.records.size(); ++r) {
      EXPECT_EQ(decoded->records[r].lsn, original.records[r].lsn);
      EXPECT_EQ(decoded->records[r].type, original.records[r].type);
      EXPECT_EQ(decoded->records[r].payload, original.records[r].payload);
    }
  }
}

TEST(WireFrameFuzzTest, ForgedLengthsAreBoundedBeforeAllocation) {
  // Plant hostile u32s in the frame length field and in the batch record
  // count; both sit before their data, so unvalidated trust would turn
  // one flipped word into a multi-gigabyte reserve. The decoders must
  // reject against the bytes actually present instead.
  const std::vector<uint8_t> seed = BuildWireSeedFrame(nullptr);
  for (uint32_t forged : {0x7FFFFFFFu, 0xFFFFFFFFu, 0x10000000u,
                          static_cast<uint32_t>(seed.size()) * 1000u}) {
    std::vector<uint8_t> bytes = seed;
    // payload_len lives at offset 8 (after magic, version, type, flags).
    bytes[8] = static_cast<uint8_t>(forged);
    bytes[9] = static_cast<uint8_t>(forged >> 8);
    bytes[10] = static_cast<uint8_t>(forged >> 16);
    bytes[11] = static_cast<uint8_t>(forged >> 24);
    size_t consumed = 0;
    auto frame = net::DecodeFrame(bytes.data(), bytes.size(),
                                  net::kDefaultMaxFramePayload, &consumed);
    ASSERT_FALSE(frame.ok());
    EXPECT_TRUE(frame.status().code() == util::StatusCode::kCorruption ||
                frame.status().code() == util::StatusCode::kUnavailable)
        << frame.status().ToString();
  }
  // Record count at the front of an otherwise-tiny LogBatch payload.
  std::vector<uint8_t> payload;
  net::PutU64(&payload, /*primary_next_lsn=*/5);
  net::PutU32(&payload, 0x40000000u);  // One billion promised records.
  auto decoded = replication::DecodeLogBatch(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kCorruption);
}

TEST(WireFrameFuzzTest, PayloadDecodersAreTotalOverArbitraryBytes) {
  // Every wire_protocol decoder over pure noise and over truncated
  // prefixes of valid messages: total, bounded, kCorruption on failure.
  replication::LogBatch batch_msg;
  (void)BuildWireSeedFrame(&batch_msg);
  const std::vector<uint8_t> valid_batch =
      replication::EncodeLogBatch(batch_msg);
  replication::SnapshotPackage package;
  package.generation = 4;
  package.checkpoint.assign(257, 0x5A);
  package.head_frame.assign(41, 0xC3);
  package.primary_next_lsn = 77;
  const std::vector<uint8_t> valid_snapshot =
      replication::EncodeSnapshotPackage(package);

  util::Rng rng(424242);
  auto check = [&](const std::vector<uint8_t>& bytes, int it) {
    auto hello = replication::DecodeHello(bytes);
    if (!hello.ok()) {
      EXPECT_EQ(hello.status().code(), util::StatusCode::kCorruption) << it;
    }
    auto fetch = replication::DecodeFetchRequest(bytes);
    if (!fetch.ok()) {
      EXPECT_EQ(fetch.status().code(), util::StatusCode::kCorruption) << it;
    }
    auto batch = replication::DecodeLogBatch(bytes);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), util::StatusCode::kCorruption) << it;
    }
    auto snapshot = replication::DecodeSnapshotPackage(bytes);
    if (!snapshot.ok()) {
      EXPECT_EQ(snapshot.status().code(), util::StatusCode::kCorruption) << it;
    }
    auto next = replication::DecodeNextLsn(bytes);
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), util::StatusCode::kCorruption) << it;
    }
    // DecodeError is total by construction (it returns a Status); it
    // must never decode arbitrary bytes into kOk (a forged "success").
    util::Status error = replication::DecodeError(bytes);
    EXPECT_NE(error.code(), util::StatusCode::kOk) << it;
  };
  for (int it = 0; it < 2000; ++it) {
    std::vector<uint8_t> noise(
        static_cast<size_t>(rng.UniformInt(0, 96)));
    for (auto& b : noise) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    check(noise, it);
  }
  for (const std::vector<uint8_t>* valid : {&valid_batch, &valid_snapshot}) {
    for (size_t cut = 0; cut < valid->size(); ++cut) {
      std::vector<uint8_t> prefix(valid->begin(),
                                  valid->begin() + static_cast<long>(cut));
      check(prefix, static_cast<int>(cut));
    }
  }
}

}  // namespace
}  // namespace geosir
