// Image ingestion: the full Section 6 extraction pipeline.
//
// Synthetic "photographs" are rasterized from vector scenes, then pushed
// through the same steps GeoSIR applies to real images:
//   raster -> foreground mask -> boundary tracing -> Douglas-Peucker
//   segment approximation -> cluster detection -> decomposition ->
//   shape base population -> retrieval.

#include <cstdio>
#include <vector>

#include "core/envelope_matcher.h"
#include "extract/boundary_trace.h"
#include "extract/chain_trace.h"
#include "extract/clusters.h"
#include "extract/decompose.h"
#include "extract/edge_detect.h"
#include "extract/rasterize.h"
#include "extract/simplify.h"
#include "util/rng.h"
#include "workload/polygon_gen.h"

using geosir::geom::Point;
using geosir::geom::Polyline;

int main() {
  geosir::util::Rng rng(99);

  // Build 12 synthetic scenes, each with a few filled objects.
  std::vector<Polyline> prototypes;
  geosir::workload::PolygonGenOptions gen;
  gen.min_vertices = 6;
  gen.max_vertices = 10;
  gen.spikiness = 0.25;
  for (int i = 0; i < 6; ++i) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }

  geosir::core::ShapeBase base;
  std::vector<int> prototype_of_shape;
  size_t total_boundaries = 0, total_clusters = 0;

  for (int scene = 0; scene < 12; ++scene) {
    geosir::extract::Raster image(256, 256);
    // Place 2-3 objects per scene on a coarse grid.
    const int objects = 2 + (scene % 2);
    std::vector<int> placed_protos;
    for (int obj = 0; obj < objects; ++obj) {
      const int proto = static_cast<int>(rng.UniformInt(0, 5));
      placed_protos.push_back(proto);
      const double cx = 48.0 + 104.0 * (obj % 2);
      const double cy = 48.0 + 104.0 * (obj / 2);
      const double scale = rng.Uniform(22.0, 34.0);
      const auto t = geosir::geom::AffineTransform::Translation({cx, cy}) *
                     geosir::geom::AffineTransform::Rotation(
                         rng.Uniform(0, 6.28)) *
                     geosir::geom::AffineTransform::Scaling(scale);
      geosir::extract::FillPolygon(&image, prototypes[proto].Transformed(t),
                                   1.0f);
    }

    // Extraction pipeline.
    const geosir::extract::Mask fg =
        geosir::extract::ThresholdForeground(image, 0.5f);
    const std::vector<Polyline> boundaries =
        geosir::extract::TraceBoundaries(fg, /*min_pixels=*/30);
    total_boundaries += boundaries.size();

    std::vector<Polyline> simplified;
    for (const Polyline& b : boundaries) {
      simplified.push_back(geosir::extract::Simplify(b, 1.5));
    }
    const auto clusters =
        geosir::extract::DetectClusters(simplified, /*tolerance=*/2.0);
    total_clusters += clusters.size();

    // Decompose each cluster member into simple polylines and add them.
    for (const auto& cluster : clusters) {
      for (size_t member : cluster.members) {
        for (const Polyline& piece :
             geosir::extract::DecomposeSelfIntersecting(simplified[member])) {
          auto id = base.AddShape(piece, static_cast<uint32_t>(scene));
          if (id.ok()) {
            // Ground truth is approximate: record the scene's first
            // prototype (objects may merge when they touch).
            prototype_of_shape.push_back(placed_protos[0]);
          }
        }
      }
    }
  }

  if (auto st = base.Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "ingested 12 scenes: %zu traced boundaries, %zu clusters, "
      "%zu shapes, %zu stored copies\n",
      total_boundaries, total_clusters, base.NumShapes(), base.NumCopies());

  // Second ingestion flavor (also Section 6): scenes drawn as thin
  // outlines (an edge detector's output) traced with the chain tracer
  // into open/closed polylines.
  size_t chain_shapes = 0;
  {
    geosir::extract::Raster outline_scene(256, 256);
    const auto t = geosir::geom::AffineTransform::Translation({128, 128}) *
                   geosir::geom::AffineTransform::Scaling(70.0);
    geosir::extract::StrokePolyline(&outline_scene,
                                    prototypes[0].Transformed(t), 1.0f);
    geosir::extract::Mask edge_mask(256, 256);
    for (int y = 0; y < 256; ++y) {
      for (int x = 0; x < 256; ++x) {
        edge_mask.set(x, y, outline_scene.at(x, y) > 0.5f);
      }
    }
    const auto chains = geosir::extract::TraceEdgeChains(edge_mask, 16);
    for (const auto& chain : chains) {
      const auto simplified = geosir::extract::Simplify(chain, 1.5);
      for (const auto& piece :
           geosir::extract::DecomposeSelfIntersecting(simplified)) {
        if (piece.size() >= 3) ++chain_shapes;
      }
    }
    std::printf("outline scene: %zu edge chains -> %zu simple shapes\n",
                chains.size(), chain_shapes);
  }

  // Retrieval check: query with a clean prototype; the extracted
  // (pixel-quantized, simplified) instances should still match.
  geosir::core::EnvelopeMatcher matcher(&base);
  int hits = 0;
  for (int proto = 0; proto < 6; ++proto) {
    geosir::core::MatchOptions options;
    options.k = 1;
    auto results = matcher.Match(prototypes[proto], options);
    if (!results.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    if (results->empty()) {
      std::printf("prototype %d: no match\n", proto);
      continue;
    }
    const auto& best = (*results)[0];
    std::printf("prototype %d -> shape %u (scene %u) dist %.4f\n", proto,
                best.shape_id, base.shape(best.shape_id).image,
                best.distance);
    if (best.distance < 0.08) ++hits;
  }
  std::printf("%d/6 prototypes retrieved a close extracted instance\n", hits);
  return hits >= 4 ? 0 : 1;
}
