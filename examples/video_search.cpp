// Video search: the paper's future-work extension (Section 7) built on
// the library — shapes are extracted frame by frame, linked into tracks
// with the geometric-similarity measure, and a sketch query returns the
// videos (and tracks) showing a matching object.

#include <cstdio>

#include "util/rng.h"
#include "video/video_base.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"
#include "workload/video_gen.h"

int main() {
  geosir::util::Rng rng(2002);
  geosir::workload::PolygonGenOptions gen;
  std::vector<geosir::geom::Polyline> prototypes;
  for (int i = 0; i < 10; ++i) {
    prototypes.push_back(RandomStarPolygon(&rng, gen));
  }

  geosir::workload::VideoSpec spec;
  spec.num_videos = 12;
  spec.frames_per_video = 16;
  spec.objects_per_video = 2;
  const auto videos =
      geosir::workload::GenerateVideos(prototypes, spec, &rng);

  geosir::video::VideoBase base;
  for (size_t v = 0; v < videos.size(); ++v) {
    const uint32_t id = base.AddVideo("clip-" + std::to_string(v));
    for (const auto& frame : videos[v].frames) {
      if (!base.AddFrame(id, frame).ok()) return 1;
    }
  }
  if (auto st = base.Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize: %s\n", st.ToString().c_str());
    return 1;
  }

  size_t long_tracks = 0;
  double mean_len = 0.0;
  for (const auto& track : base.tracks()) {
    mean_len += static_cast<double>(track.length());
    if (track.length() >= spec.frames_per_video / 2) ++long_tracks;
  }
  mean_len /= static_cast<double>(base.tracks().size());
  std::printf(
      "video base: %zu videos, %zu shapes, %zu tracks "
      "(%zu spanning half a clip or more, mean length %.1f)\n\n",
      base.NumVideos(), base.shape_base().NumShapes(), base.tracks().size(),
      long_tracks, mean_len);

  // Query: noisy sketches of three prototypes.
  for (int proto : {0, 4, 7}) {
    const auto sketch =
        geosir::workload::JitterVertices(prototypes[proto], 0.01, &rng);
    auto results = base.Query(sketch, 3);
    if (!results.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("sketch of prototype %d -> %zu videos:\n", proto,
                results->size());
    for (const auto& m : *results) {
      const auto& track = base.tracks()[m.track];
      std::printf(
          "  %-8s distance %.4f, track of %zu frames "
          "(frames %u..%u, stability %.4f)\n",
          base.video(m.video).name.c_str(), m.distance, m.track_length,
          track.instances.front().frame, track.instances.back().frame,
          track.mean_step_distance);
      // Ground truth check: does this video actually show the prototype?
      bool shows = false;
      for (int p : videos[m.video].prototypes) shows |= (p == proto);
      if (!shows) std::printf("           (false positive!)\n");
    }
    std::printf("\n");
  }
  return 0;
}
