// geosir_cli: a batch-mode rendition of the GeoSIR prototype (Section 6).
//
// Reads commands from stdin (or a file passed as argv[1]) and prints
// results to stdout. The command language covers the prototype's
// workflow: defining shapes, loading them into images, and querying —
// by similarity (envelope matcher with hashing fallback) or with the
// Section 5 topological algebra.
//
// Commands:
//   shape NAME x1 y1 x2 y2 ...        define a closed polygon
//   polyline NAME x1 y1 x2 y2 ...     define an open polyline
//   image NAME SHAPE [SHAPE...]       add an image holding those shapes
//   finalize                          build indexes (required before queries)
//   match NAME [k]                    k-best similarity matches for a shape
//   query EXPRESSION                  topological query, e.g.
//                                     similar(a) & ~overlap(b, c, any)
//   stats                             base statistics
//
// Example session:
//   shape tri 0 0 4 0 2 3
//   shape sq 0 0 2 0 2 2 0 2
//   image i1 tri sq
//   finalize
//   match tri 2
//   query similar(tri)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "query/parser.h"
#include "query/planner.h"

using geosir::geom::Point;
using geosir::geom::Polyline;

namespace {

class GeoSirCli {
 public:
  int Run(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (!Dispatch(line)) return 1;
    }
    return 0;
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream ss(line);
    std::string command;
    ss >> command;
    if (command == "shape" || command == "polyline") {
      return DefineShape(&ss, command == "shape");
    }
    if (command == "image") return AddImage(&ss);
    if (command == "finalize") return Finalize();
    if (command == "match") return MatchShape(&ss);
    if (command == "query") return RunQuery(line.substr(6));
    if (command == "stats") return PrintStats();
    std::printf("error: unknown command '%s'\n", command.c_str());
    return false;
  }

  bool DefineShape(std::istringstream* ss, bool closed) {
    std::string name;
    *ss >> name;
    std::vector<Point> vertices;
    double x, y;
    while (*ss >> x >> y) vertices.push_back({x, y});
    if (name.empty() || vertices.size() < 2) {
      std::printf("error: shape needs a name and >= 2 vertices\n");
      return false;
    }
    shapes_[name] = Polyline(std::move(vertices), closed);
    std::printf("shape %s: %zu vertices (%s)\n", name.c_str(),
                shapes_[name].size(), closed ? "closed" : "open");
    return true;
  }

  bool AddImage(std::istringstream* ss) {
    if (finalized_) {
      std::printf("error: base already finalized\n");
      return false;
    }
    std::string image_name;
    *ss >> image_name;
    std::vector<Polyline> boundaries;
    std::string shape_name;
    while (*ss >> shape_name) {
      const auto it = shapes_.find(shape_name);
      if (it == shapes_.end()) {
        std::printf("error: unknown shape '%s'\n", shape_name.c_str());
        return false;
      }
      boundaries.push_back(it->second);
    }
    size_t skipped = 0;
    auto id = images_.AddImage(boundaries, image_name, &skipped);
    if (!id.ok()) {
      std::printf("error: %s\n", id.status().ToString().c_str());
      return false;
    }
    std::printf("image %s: id %u, %zu shapes (%zu skipped)\n",
                image_name.c_str(), *id, boundaries.size() - skipped,
                skipped);
    return true;
  }

  bool Finalize() {
    if (auto st = images_.Finalize(); !st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return false;
    }
    finalized_ = true;
    matcher_ = std::make_unique<geosir::core::EnvelopeMatcher>(
        &images_.shape_base());
    auto hash = geosir::hashing::GeoHashIndex::Create(&images_.shape_base());
    if (!hash.ok()) {
      std::printf("error: %s\n", hash.status().ToString().c_str());
      return false;
    }
    hash_ = std::make_unique<geosir::hashing::GeoHashIndex>(std::move(*hash));
    context_ = std::make_unique<geosir::query::QueryContext>(&images_);
    std::printf("finalized: %zu images, %zu shapes, %zu copies\n",
                images_.NumImages(), images_.shape_base().NumShapes(),
                images_.shape_base().NumCopies());
    return true;
  }

  bool MatchShape(std::istringstream* ss) {
    if (!finalized_) {
      std::printf("error: finalize first\n");
      return false;
    }
    std::string name;
    size_t k = 1;
    *ss >> name >> k;
    k = std::max<size_t>(k, 1);
    const auto it = shapes_.find(name);
    if (it == shapes_.end()) {
      std::printf("error: unknown shape '%s'\n", name.c_str());
      return false;
    }
    geosir::core::MatchOptions options;
    options.k = k;
    auto results = matcher_->Match(it->second, options);
    if (!results.ok()) {
      std::printf("error: %s\n", results.status().ToString().c_str());
      return false;
    }
    const char* via = "matcher";
    std::vector<geosir::core::MatchResult> matches = *results;
    if (matches.empty()) {
      auto approx = hash_->Query(it->second, k);
      if (approx.ok()) {
        matches = *approx;
        via = "hashing";
      }
    }
    std::printf("match %s (via %s): %zu results\n", name.c_str(), via,
                matches.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      const auto& shape = images_.shape_base().shape(matches[i].shape_id);
      std::printf("  #%zu shape %u (image %s) distance %.5f\n", i + 1,
                  matches[i].shape_id,
                  shape.image == geosir::core::kNoImage
                      ? "-"
                      : images_.image(shape.image).name.c_str(),
                  matches[i].distance);
    }
    return true;
  }

  bool RunQuery(const std::string& expression) {
    if (!finalized_) {
      std::printf("error: finalize first\n");
      return false;
    }
    auto parsed = geosir::query::ParseQuery(expression, shapes_);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      return false;
    }
    geosir::query::PlanExplanation plan;
    auto result =
        geosir::query::ExecuteQuery(**parsed, context_.get(), {}, &plan);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return false;
    }
    std::printf("query %s -> %zu images:", ToString(**parsed).c_str(),
                result->size());
    for (auto id : *result) {
      std::printf(" %s", images_.image(id).name.c_str());
    }
    std::printf("\n");
    return true;
  }

  bool PrintStats() {
    std::printf("shapes defined: %zu; images: %zu; finalized: %s\n",
                shapes_.size(), images_.NumImages(),
                finalized_ ? "yes" : "no");
    if (finalized_) {
      std::printf("stored copies: %zu, pooled vertices: %zu\n",
                  images_.shape_base().NumCopies(),
                  images_.shape_base().NumVertices());
    }
    return true;
  }

  std::map<std::string, Polyline> shapes_;
  geosir::query::ImageBase images_;
  bool finalized_ = false;
  std::unique_ptr<geosir::core::EnvelopeMatcher> matcher_;
  std::unique_ptr<geosir::hashing::GeoHashIndex> hash_;
  std::unique_ptr<geosir::query::QueryContext> context_;
};

}  // namespace

int main(int argc, char** argv) {
  GeoSirCli cli;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return cli.Run(file);
  }
  return cli.Run(std::cin);
}
