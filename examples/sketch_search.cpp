// Sketch search: the GeoSIR interaction loop of Section 6.
//
// A user "draws" query sketches of varying quality against a generated
// image base. Each sketch first goes through the exact envelope-fattening
// matcher; if nothing lands within the envelope bound, the system falls
// back to geometric hashing for an approximate match — exactly the
// two-stage flow the paper's prototype implements.

#include <cstdio>
#include <vector>

#include "core/envelope_matcher.h"
#include "hashing/geo_hash_index.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/polygon_gen.h"
#include "workload/query_set.h"

using geosir::core::EnvelopeMatcher;
using geosir::core::MatchOptions;
using geosir::core::MatchResult;
using geosir::core::MatchStats;

int main() {
  // A moderate synthetic image base standing in for a photo collection.
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = 120;
  spec.num_prototypes = 25;
  spec.instance_noise = 0.008;
  spec.seed = 2002;
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const auto& base = generated->images->shape_base();
  std::printf("image base: %zu images, %zu shapes, %zu stored copies\n",
              generated->images->NumImages(), base.NumShapes(),
              base.NumCopies());

  EnvelopeMatcher matcher(&base);
  auto hash_index = geosir::hashing::GeoHashIndex::Create(&base);
  if (!hash_index.ok()) {
    std::fprintf(stderr, "hash index: %s\n",
                 hash_index.status().ToString().c_str());
    return 1;
  }
  std::printf("hash index: %d curves/quarter, avg bucket occupancy %.2f\n\n",
              hash_index->options().curves_per_quarter,
              hash_index->AverageBucketOccupancy());

  geosir::util::Rng rng(77);
  struct Sketch {
    const char* description;
    geosir::geom::Polyline shape;
    int prototype;  // -1: not derived from any prototype.
  };
  std::vector<Sketch> sketches;
  // Careful sketch: light jitter of a known prototype.
  sketches.push_back({"careful sketch (1% jitter)",
                      geosir::workload::JitterVertices(
                          generated->prototypes[3], 0.01, &rng),
                      3});
  // Sloppy sketch: strong jitter plus a dent.
  sketches.push_back({"sloppy sketch (4% jitter + dent)",
                      geosir::workload::LocalDent(
                          geosir::workload::JitterVertices(
                              generated->prototypes[11], 0.04, &rng),
                          0.06, &rng),
                      11});
  // Simplified sketch: same prototype drawn with half the vertices.
  sketches.push_back({"coarse sketch (resampled to 10 vertices)",
                      geosir::workload::ResampleBoundary(
                          generated->prototypes[17], 10),
                      17});
  // Unrelated doodle: something the base has never seen.
  geosir::workload::PolygonGenOptions doodle_opts;
  doodle_opts.min_vertices = 5;
  doodle_opts.max_vertices = 7;
  doodle_opts.spikiness = 0.7;
  sketches.push_back(
      {"unrelated doodle", RandomStarPolygon(&rng, doodle_opts), -1});

  for (const Sketch& sketch : sketches) {
    std::printf("== %s ==\n", sketch.description);
    MatchOptions options;
    options.k = 3;
    MatchStats stats;
    auto exact = matcher.Match(sketch.shape, options, &stats);
    if (!exact.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   exact.status().ToString().c_str());
      return 1;
    }
    std::vector<MatchResult> results = *exact;
    const char* path = "envelope matcher";
    if (results.empty()) {
      // Section 3: fall back to geometric hashing.
      auto approx = hash_index->Query(sketch.shape, 3);
      if (!approx.ok()) {
        std::fprintf(stderr, "hash query: %s\n",
                     approx.status().ToString().c_str());
        return 1;
      }
      results = *approx;
      path = "geometric hashing (fallback)";
    }
    std::printf("  via %s (%zu envelope iterations)\n", path,
                stats.iterations);
    if (results.empty()) {
      std::printf("  no match at all\n\n");
      continue;
    }
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& shape = base.shape(results[i].shape_id);
      const int proto = generated->prototype_of_shape[results[i].shape_id];
      std::printf("  #%zu shape %u (image %u, prototype %d%s) dist %.5f\n",
                  i + 1, results[i].shape_id, shape.image, proto,
                  proto == sketch.prototype ? ", CORRECT" : "",
                  results[i].distance);
    }
    std::printf("\n");
  }
  return 0;
}
