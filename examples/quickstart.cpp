// Quickstart: build a shape base, run a similarity query, inspect stats.
//
// This is the smallest end-to-end use of the library:
//   1. create a ShapeBase and add object boundaries,
//   2. finalize it (builds the simplex range-search index),
//   3. run the envelope-fattening matcher on a transformed noisy query.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "util/rng.h"

namespace {

geosir::geom::Polyline RegularPolygon(int n, double r, double cx, double cy) {
  std::vector<geosir::geom::Point> v;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    v.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  return geosir::geom::Polyline::Closed(std::move(v));
}

}  // namespace

int main() {
  geosir::core::ShapeBase base;

  // A tiny "database": polygons with 3..12 corners.
  for (int n = 3; n <= 12; ++n) {
    auto id = base.AddShape(RegularPolygon(n, 1.0, 0, 0), geosir::core::kNoImage,
                            std::to_string(n) + "-gon");
    if (!id.ok()) {
      std::fprintf(stderr, "AddShape failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (auto st = base.Finalize(); !st.ok()) {
    std::fprintf(stderr, "Finalize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("shape base: %zu shapes, %zu normalized copies, %zu vertices\n",
              base.NumShapes(), base.NumCopies(), base.NumVertices());

  // The query: a jittered, rotated, scaled, translated heptagon. Matching
  // is invariant to all of that.
  geosir::util::Rng rng(7);
  geosir::geom::Polyline query = RegularPolygon(7, 1.0, 0, 0);
  for (auto& p : query.mutable_vertices()) {
    p += geosir::geom::Point{rng.Gaussian(0.01), rng.Gaussian(0.01)};
  }
  const auto transform = geosir::geom::AffineTransform::Translation({42, -7}) *
                         geosir::geom::AffineTransform::Rotation(1.3) *
                         geosir::geom::AffineTransform::Scaling(25.0);
  query = query.Transformed(transform);

  geosir::core::EnvelopeMatcher matcher(&base);
  geosir::core::MatchOptions options;
  options.k = 3;
  geosir::core::MatchStats stats;
  auto results = matcher.Match(query, options, &stats);
  if (!results.ok()) {
    std::fprintf(stderr, "Match failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("query: noisy 7-gon (rotated 1.3 rad, scaled 25x)\n");
  std::printf("%-4s %-10s %s\n", "rank", "label", "distance");
  int rank = 1;
  for (const auto& r : *results) {
    std::printf("%-4d %-10s %.6f\n", rank++,
                base.shape(r.shape_id).label.c_str(), r.distance);
  }
  std::printf(
      "matcher stats: %zu envelope iterations, %zu vertices reported, "
      "%zu candidates evaluated, final eps %.4f\n",
      stats.iterations, stats.vertices_reported, stats.candidates_evaluated,
      stats.final_epsilon);
  return 0;
}
