// Topological queries: the Section 5 query algebra end to end.
//
// Builds an image base with planted contain/overlap/disjoint relations,
// then runs composed queries — programmatically through the AST builders
// and textually through the query parser — showing the DNF plans the
// planner produces and the selectivity model adapting.

#include <cstdio>
#include <map>

#include "query/parser.h"
#include "query/planner.h"
#include "query/selectivity.h"
#include "workload/query_set.h"

using geosir::query::ImageSet;
using geosir::query::QueryPtr;

namespace {

void PrintImages(const char* label, const ImageSet& images) {
  std::printf("%-52s -> %zu images:", label, images.size());
  size_t shown = 0;
  for (auto id : images) {
    if (shown++ == 12) {
      std::printf(" ...");
      break;
    }
    std::printf(" %u", id);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  geosir::workload::ImageBaseSpec spec;
  spec.num_images = 80;
  spec.num_prototypes = 12;
  spec.instance_noise = 0.006;
  spec.compose.contain_probability = 0.3;
  spec.compose.overlap_probability = 0.3;
  spec.seed = 555;
  auto generated = geosir::workload::GenerateImageBase(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto* images = generated->images.get();
  std::printf("image base: %zu images, %zu shapes\n", images->NumImages(),
              images->shape_base().NumShapes());
  size_t contain_edges = 0, overlap_edges = 0;
  for (size_t i = 0; i < images->NumImages(); ++i) {
    for (const auto& e : images->topology(static_cast<uint32_t>(i)).edges()) {
      (e.label == geosir::query::Relation::kContain ? contain_edges
                                                    : overlap_edges)++;
    }
  }
  std::printf("topology: %zu contain edges, %zu overlap edge records\n\n",
              contain_edges, overlap_edges);

  geosir::query::QueryContext context(images);
  const auto& protos = generated->prototypes;

  // 1. Plain similarity.
  {
    auto result = context.EvalSimilar(protos[0]);
    if (!result.ok()) return 1;
    PrintImages("similar(P0)", *result);
  }

  // 2. Topological operators, both strategies (must agree). Query the
  // prototype pair that the generator actually planted most often for
  // each relation, read off the per-image topology graphs.
  for (auto relation : {geosir::query::Relation::kContain,
                        geosir::query::Relation::kOverlap}) {
    std::map<std::pair<int, int>, int> pair_counts;
    for (size_t i = 0; i < images->NumImages(); ++i) {
      for (const auto& e :
           images->topology(static_cast<uint32_t>(i)).edges()) {
        if (e.label != relation) continue;
        pair_counts[{generated->prototype_of_shape[e.from],
                     generated->prototype_of_shape[e.to]}]++;
      }
    }
    if (pair_counts.empty()) {
      std::printf("%s: no planted relations in this base\n",
                  RelationName(relation));
      continue;
    }
    auto best_pair = pair_counts.begin()->first;
    int best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count) {
        best_count = count;
        best_pair = pair;
      }
    }
    auto s1 = context.EvalTopological(
        relation, protos[best_pair.first], protos[best_pair.second],
        std::nullopt, geosir::query::TopoStrategy::kDriveSmaller);
    auto s2 = context.EvalTopological(
        relation, protos[best_pair.first], protos[best_pair.second],
        std::nullopt, geosir::query::TopoStrategy::kIntersectImages);
    if (!s1.ok() || !s2.ok()) return 1;
    std::printf(
        "%s(P%d, P%d) [planted %d times]: strategy1=%zu strategy2=%zu "
        "images%s\n",
        RelationName(relation), best_pair.first, best_pair.second,
        best_count, s1->size(), s2->size(),
        *s1 == *s2 ? " (agree)" : " (MISMATCH!)");
  }
  std::printf("\n");

  // 3. A composed query through the planner, with its plan.
  {
    QueryPtr q = geosir::query::Intersect(
        geosir::query::Similar(protos[0]),
        geosir::query::Complement(geosir::query::Overlap(
            protos[1], protos[2], std::nullopt)));
    geosir::query::PlanExplanation plan;
    auto result = geosir::query::ExecuteQuery(*q, &context, {}, &plan);
    if (!result.ok()) return 1;
    std::printf("query: %s\n", ToString(*q).c_str());
    std::printf("plan (%zu terms, %zu factors):\n%s", plan.num_terms,
                plan.num_factors, plan.text.c_str());
    PrintImages("similar(P0) & ~overlap(P1,P2,any)", *result);
    std::printf("\n");
  }

  // 4. The same query written in the textual language.
  {
    std::map<std::string, geosir::geom::Polyline> names;
    names["p0"] = protos[0];
    names["p1"] = protos[1];
    names["p2"] = protos[2];
    auto parsed = geosir::query::ParseQuery(
        "similar(p0) & ~overlap(p1, p2, any)", names);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto result = geosir::query::ExecuteQuery(**parsed, &context);
    if (!result.ok()) return 1;
    PrintImages("parsed textual query (must match above)", *result);
    std::printf("\n");
  }

  // 5. Selectivity model after the workload.
  std::printf("selectivity model: c = %.2f after %zu observations\n",
              context.selectivity()->c(),
              context.selectivity()->observations());
  for (int p : {0, 1, 2}) {
    const double vs = geosir::query::SignificantVertices(protos[p]);
    std::printf("  P%d: V_S = %.2f, estimated |shape_similar| = %.2f\n", p,
                vs, context.selectivity()->Estimate(vs));
  }
  std::printf("context stats: %zu matcher runs, %zu cache hits, "
              "%zu edges scanned, %zu pair checks\n",
              context.stats().similar_evaluations,
              context.stats().similar_cache_hits,
              context.stats().edges_scanned, context.stats().pair_checks);
  return 0;
}
