#include "obs/slow_query_log.h"

#include <algorithm>

namespace geosir::obs {

SlowQueryLog& SlowQueryLog::Default() {
  // Never destroyed for the same reason as MetricRegistry::Default().
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

bool SlowQueryLog::Offer(QueryTrace trace) {
  if (!armed() || capacity_ == 0) return false;
  if (trace.total_ms() < threshold_ms_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= capacity_ &&
      trace.total_ms() <= entries_.back().total_ms()) {
    return false;  // Faster than everything retained.
  }
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), trace.total_ms(),
      [](double ms, const QueryTrace& e) { return ms > e.total_ms(); });
  entries_.insert(pos, std::move(trace));
  if (entries_.size() > capacity_) entries_.pop_back();
  return true;
}

std::vector<QueryTrace> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace geosir::obs
