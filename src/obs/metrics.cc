#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace geosir::obs {

namespace {

std::atomic<bool> g_armed{true};

}  // namespace

bool Armed() { return g_armed.load(std::memory_order_relaxed); }
void SetArmed(bool armed) { g_armed.store(armed, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  if (!Armed()) return;
  if (!std::isfinite(value)) value = bounds_.empty() ? 0.0 : bounds_.back() * 2;
  // Latency-style distributions concentrate in the low buckets; a linear
  // scan over ~16 bounds beats binary search's mispredictions there.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(std::llround(value * 1e6)),
                        std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsSeconds() {
  return {1e-4,  2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   2.5e-1, 5e-1, 1.0,   2.5,  5.0,  10.0};
}

std::vector<double> MicroLatencyBucketsSeconds() {
  return {1e-5, 2.5e-5, 5e-5, 1e-4,   2.5e-4, 5e-4, 1e-3, 2.5e-3,
          5e-3, 1e-2,   2.5e-2, 5e-2, 1e-1,   2.5e-1, 5e-1, 1.0};
}

MetricRegistry& MetricRegistry::Default() {
  // Never destroyed: instrumentation sites cache pointers into it and may
  // run from static destructors (e.g. the shared thread pool).
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrNull(const std::string& name,
                                                  const std::string& labels,
                                                  MetricType type) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      // Same series re-registered as a different type is a programming
      // error; return the existing entry so the caller's cast fails loud
      // in tests rather than silently splitting the series.
      return entry->type == type ? entry.get() : nullptr;
    }
  }
  return nullptr;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindOrNull(name, labels, MetricType::kCounter)) {
    return existing->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->type = MetricType::kCounter;
  entry->counter.reset(new Counter());
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindOrNull(name, labels, MetricType::kGauge)) {
    return existing->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->type = MetricType::kGauge;
  entry->gauge.reset(new Gauge());
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> bounds,
                                        const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindOrNull(name, labels, MetricType::kHistogram)) {
    return existing->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->type = MetricType::kHistogram;
  entry->histogram.reset(new Histogram(std::move(bounds)));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSample sample;
      sample.name = entry->name;
      sample.help = entry->help;
      sample.labels = entry->labels;
      sample.type = entry->type;
      switch (entry->type) {
        case MetricType::kCounter:
          sample.counter_value = entry->counter->value();
          break;
        case MetricType::kGauge:
          sample.gauge_value = entry->gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *entry->histogram;
          sample.histogram.bounds = h.bounds();
          sample.histogram.buckets.resize(h.bounds().size() + 1);
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            sample.histogram.buckets[i] = h.bucket_count(i);
          }
          sample.histogram.count = h.count();
          sample.histogram.sum = h.sum();
          break;
        }
      }
      out.samples.push_back(std::move(sample));
    }
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

void MetricRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->type) {
      case MetricType::kCounter:
        entry->counter->value_.store(0, std::memory_order_relaxed);
        break;
      case MetricType::kGauge:
        entry->gauge->value_.store(0, std::memory_order_relaxed);
        break;
      case MetricType::kHistogram: {
        Histogram& h = *entry->histogram;
        for (size_t i = 0; i <= h.bounds_.size(); ++i) {
          h.buckets_[i].store(0, std::memory_order_relaxed);
        }
        h.count_.store(0, std::memory_order_relaxed);
        h.sum_micros_.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
}

}  // namespace geosir::obs
