#ifndef GEOSIR_OBS_TRACE_H_
#define GEOSIR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace geosir::obs {

/// One ε-round of the envelope matcher, with per-round deltas of exactly
/// the quantities the paper's experimental section plots (Section 5:
/// node accesses, points tested, rounds, buffer behaviour).
struct RoundTrace {
  size_t round = 0;           // 1-based, == MatchStats::iterations.
  double epsilon = 0.0;       // Envelope width this round searched to.
  double elapsed_ms = 0.0;    // Wall clock spent in the round.
  uint64_t vertices_reported = 0;
  uint64_t vertices_accepted = 0;
  uint64_t candidates_admitted = 0;
  uint64_t candidates_skipped = 0;
  uint64_t eval_cache_hits = 0;
  /// External backends only: node blocks pinned (== block reads modulo
  /// buffer hits) and subtrees skipped under degradation, this round.
  uint64_t index_nodes_visited = 0;
  uint64_t subtrees_skipped = 0;
};

/// A point event on the query timeline (degradation, salvage, admission
/// wait, span completion). `at_ms` is relative to QueryTrace::Start.
struct TraceEvent {
  double at_ms = 0.0;
  std::string kind;    // e.g. "span", "degraded", "termination".
  std::string detail;  // Free-form; spans use "<name> <duration>ms".
};

/// Opt-in per-query timeline. A caller that wants one hands a fresh
/// QueryTrace to MatchOptions::query_trace; the matcher stamps Start at
/// entry, appends one RoundTrace per ε-round plus events, and fills the
/// summary fields at exit. Cost is proportional to rounds + events, never
/// to vertices; a null trace costs one pointer test.
///
/// Not thread-safe: one trace belongs to one query. (Candidate scoring
/// may fan out across a pool, but the matcher only appends from the
/// control thread.)
class QueryTrace {
 public:
  /// Stamps t0 and clears any previous recording, so one instance can be
  /// reused across queries.
  void Start(std::string label);

  /// Milliseconds since Start (0 before Start).
  double ElapsedMs() const;

  void AddEvent(std::string kind, std::string detail);
  void AddRound(const RoundTrace& round) { rounds_.push_back(round); }

  /// Called once at query exit; also freezes total_ms.
  void Finish(std::string termination, bool partial, bool degraded);

  const std::string& label() const { return label_; }
  double total_ms() const { return total_ms_; }
  const std::string& termination() const { return termination_; }
  bool partial() const { return partial_; }
  bool degraded() const { return degraded_; }
  const std::vector<RoundTrace>& rounds() const { return rounds_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// One JSON object (single line) with the summary, rounds and events —
  /// the slow-query log dumps these, and they are jq-friendly next to the
  /// bench/results JSONL files.
  std::string ToJson() const;

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_{};
  bool started_ = false;
  double total_ms_ = 0.0;
  std::string termination_;
  bool partial_ = false;
  bool degraded_ = false;
  std::vector<RoundTrace> rounds_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records "<name> <duration>ms" as a TraceEvent when it goes
/// out of scope. A null trace makes it a no-op, so spans can be left in
/// place on production paths.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, const char* name)
      : trace_(trace), name_(name) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace geosir::obs

#endif  // GEOSIR_OBS_TRACE_H_
