#include "obs/trace.h"

#include <cstdio>

namespace geosir::obs {

namespace {

std::string JsonEscaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // Drop control chars.
    out += c;
  }
  return out;
}

std::string NumStr(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

void QueryTrace::Start(std::string label) {
  label_ = std::move(label);
  start_ = std::chrono::steady_clock::now();
  started_ = true;
  total_ms_ = 0.0;
  termination_.clear();
  partial_ = false;
  degraded_ = false;
  rounds_.clear();
  events_.clear();
}

double QueryTrace::ElapsedMs() const {
  if (!started_) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void QueryTrace::AddEvent(std::string kind, std::string detail) {
  events_.push_back(TraceEvent{ElapsedMs(), std::move(kind), std::move(detail)});
}

void QueryTrace::Finish(std::string termination, bool partial, bool degraded) {
  total_ms_ = ElapsedMs();
  termination_ = std::move(termination);
  partial_ = partial;
  degraded_ = degraded;
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"label\":\"" + JsonEscaped(label_) + "\"";
  out += ",\"total_ms\":" + NumStr(total_ms_);
  out += ",\"termination\":\"" + JsonEscaped(termination_) + "\"";
  out += ",\"partial\":";
  out += partial_ ? "true" : "false";
  out += ",\"degraded\":";
  out += degraded_ ? "true" : "false";
  out += ",\"rounds\":[";
  for (size_t i = 0; i < rounds_.size(); ++i) {
    const RoundTrace& r = rounds_[i];
    if (i > 0) out += ",";
    out += "{\"round\":" + std::to_string(r.round);
    out += ",\"epsilon\":" + NumStr(r.epsilon);
    out += ",\"elapsed_ms\":" + NumStr(r.elapsed_ms);
    out += ",\"vertices_reported\":" + std::to_string(r.vertices_reported);
    out += ",\"vertices_accepted\":" + std::to_string(r.vertices_accepted);
    out += ",\"candidates_admitted\":" + std::to_string(r.candidates_admitted);
    out += ",\"candidates_skipped\":" + std::to_string(r.candidates_skipped);
    out += ",\"eval_cache_hits\":" + std::to_string(r.eval_cache_hits);
    out += ",\"index_nodes_visited\":" + std::to_string(r.index_nodes_visited);
    out += ",\"subtrees_skipped\":" + std::to_string(r.subtrees_skipped);
    out += "}";
  }
  out += "],\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out += ",";
    out += "{\"at_ms\":" + NumStr(e.at_ms);
    out += ",\"kind\":\"" + JsonEscaped(e.kind) + "\"";
    out += ",\"detail\":\"" + JsonEscaped(e.detail) + "\"}";
  }
  out += "]}";
  return out;
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  trace_->AddEvent("span", std::string(name_) + " " + NumStr(ms) + "ms");
}

}  // namespace geosir::obs
