#ifndef GEOSIR_OBS_EXPORT_H_
#define GEOSIR_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace geosir::obs {

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): "# HELP" / "# TYPE" once per family, then one sample
/// line per series; histograms expand to cumulative _bucket series with
/// le labels plus _sum and _count. Families come out sorted by name, so
/// the output is byte-stable for a given snapshot (golden-testable).
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// Renders a snapshot as JSON lines — one object per series, the same
/// shape as bench/results/*.jsonl rows so the two can be collected and
/// filtered with one pipeline:
///   {"metric":"geosir_...","type":"counter","labels":"...","value":N}
/// Histograms carry bounds/buckets arrays plus sum and count.
std::string ToJsonLines(const RegistrySnapshot& snapshot);

}  // namespace geosir::obs

#endif  // GEOSIR_OBS_EXPORT_H_
