#ifndef GEOSIR_OBS_METRICS_H_
#define GEOSIR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace geosir::obs {

/// Process-wide switch for the *hot-path* cost of every metric: a
/// disarmed registry turns Inc/Set/Observe into a single predictable
/// branch, so benchmarks can measure instrumentation overhead in place
/// (bench_observability) and an operator can shed the last percent under
/// extreme load. Registration, snapshots and exports work either way.
/// Default: armed.
bool Armed();
void SetArmed(bool armed);

/// Monotonic counter. Inc is a relaxed fetch_add — safe from any thread,
/// never synchronizes, cheap enough for per-block and per-query paths.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    if (!Armed()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins level (queue depth, delta size). Signed: Add(-1) on
/// release is the usual idiom.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!Armed()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Armed()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (cumulative buckets on export, Prometheus
/// style). Bucket upper bounds are set at registration and never change,
/// so Observe is a short linear scan plus two relaxed adds — no locks on
/// the hot path. The running sum is kept in fixed-point microunits
/// (1e-6 of the observed unit) so it can live in a lock-free uint64.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is the
  /// overflow (+Inf) bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // Strictly increasing upper bounds.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
};

/// Default latency bucket bounds, in seconds: 100 µs .. 10 s,
/// roughly 1-2.5-5 per decade (Prometheus convention).
std::vector<double> LatencyBucketsSeconds();

/// Sub-millisecond-resolution bounds, in seconds: 10 µs .. 1 s. For hot
/// probe paths (LSH candidate generation) whose entire distribution sits
/// below the first LatencyBucketsSeconds() bound.
std::vector<double> MicroLatencyBucketsSeconds();

enum class MetricType { kCounter, kGauge, kHistogram };

struct HistogramSnapshot {
  std::vector<double> bounds;
  /// Non-cumulative per-bucket counts; one longer than `bounds` (+Inf).
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
};

/// One time series: a (family name, label set) pair with its value at
/// snapshot time.
struct MetricSample {
  std::string name;    // Family name, e.g. "geosir_matcher_rounds_total".
  std::string help;
  std::string labels;  // Inside-the-braces text, e.g. R"(reason="timeout")".
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Point-in-time view of a registry, sorted by (name, labels) so exports
/// and golden tests are deterministic. Values are relaxed reads: each
/// sample is individually coherent, the set as a whole is best-effort.
struct RegistrySnapshot {
  std::vector<MetricSample> samples;
};

/// Named metric registry. Get* registers on first use (mutex-guarded)
/// and returns a stable pointer the caller caches; after that the hot
/// path never touches the registry again. One (name, labels) pair is one
/// series: repeated Get* calls return the same object, so independent
/// call sites may share a counter by name.
///
/// Naming scheme (enforced by convention, documented in DESIGN.md §9):
/// geosir_<subsystem>_<quantity>[_total|_seconds], with variants as
/// labels (e.g. geosir_admission_shed_total{reason="timeout"}).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  /// `bounds` must be strictly increasing; it is fixed by the first
  /// registration of the series and ignored afterwards.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const std::string& labels = "");

  RegistrySnapshot Snapshot() const;

  /// Zeroes every registered value (registrations and cached pointers
  /// stay valid). For benchmarks and tests that measure deltas.
  void ResetValues();

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& name, const std::string& labels,
                    MetricType type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace geosir::obs

#endif  // GEOSIR_OBS_METRICS_H_
