#ifndef GEOSIR_OBS_SLOW_QUERY_LOG_H_
#define GEOSIR_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace geosir::obs {

/// Bounded log of the N worst query traces by total latency.
///
/// The matcher offers every finished trace when the log is armed (it
/// builds one internally even without a caller-provided
/// MatchOptions::query_trace); the log keeps at most `capacity` entries,
/// always the slowest seen since the last Clear, worst first. Offers
/// below `threshold_ms` — or faster than the current N-th worst once the
/// log is full — are rejected without copying the trace, so the steady
/// state under healthy traffic is one mutex acquisition and a double
/// compare per query.
///
/// Thread-safe; the armed flag is a relaxed atomic so the disarmed check
/// costs one predictable branch per query.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 16) : capacity_(capacity) {}

  /// Process-wide instance the matcher offers to. Disarmed by default.
  static SlowQueryLog& Default();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }

  /// Minimum total_ms a trace must reach to be considered (0 = any).
  void set_threshold_ms(double threshold_ms) { threshold_ms_ = threshold_ms; }
  double threshold_ms() const { return threshold_ms_; }

  size_t capacity() const { return capacity_; }

  /// Records `trace` if it ranks among the N worst; returns whether it
  /// was kept. Disarmed logs reject everything.
  bool Offer(QueryTrace trace);

  /// The retained traces, worst (slowest) first.
  std::vector<QueryTrace> Snapshot() const;

  size_t size() const;
  void Clear();

 private:
  const size_t capacity_;
  std::atomic<bool> armed_{false};
  double threshold_ms_ = 0.0;
  mutable std::mutex mutex_;
  std::vector<QueryTrace> entries_;  // Sorted by total_ms descending.
};

}  // namespace geosir::obs

#endif  // GEOSIR_OBS_SLOW_QUERY_LOG_H_
