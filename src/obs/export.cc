#include "obs/export.h"

#include <cstdio>

namespace geosir::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string NumStr(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// "name{labels} " or "name " when the series has no labels.
std::string SeriesPrefix(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name + " ";
  return name + "{" + labels + "} ";
}

/// Bucket series name with the le label appended to any series labels.
std::string BucketPrefix(const std::string& name, const std::string& labels,
                         const std::string& le) {
  std::string inner = labels.empty() ? "" : labels + ",";
  return name + "_bucket{" + inner + "le=\"" + le + "\"} ";
}

std::string JsonEscaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& sample : snapshot.samples) {
    // Samples are sorted by (name, labels): emit the family header once,
    // in front of its first series.
    if (sample.name != last_family) {
      out += "# HELP " + sample.name + " " + sample.help + "\n";
      out += "# TYPE " + sample.name + " " + TypeName(sample.type) + "\n";
      last_family = sample.name;
    }
    switch (sample.type) {
      case MetricType::kCounter:
        out += SeriesPrefix(sample.name, sample.labels) +
               std::to_string(sample.counter_value) + "\n";
        break;
      case MetricType::kGauge:
        out += SeriesPrefix(sample.name, sample.labels) +
               std::to_string(sample.gauge_value) + "\n";
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = sample.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.buckets[i];
          out += BucketPrefix(sample.name, sample.labels,
                              NumStr(h.bounds[i])) +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.buckets.empty() ? 0 : h.buckets.back();
        out += BucketPrefix(sample.name, sample.labels, "+Inf") +
               std::to_string(cumulative) + "\n";
        out += SeriesPrefix(sample.name + "_sum", sample.labels) +
               NumStr(h.sum) + "\n";
        out += SeriesPrefix(sample.name + "_count", sample.labels) +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ToJsonLines(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const MetricSample& sample : snapshot.samples) {
    std::string line = "{\"metric\":\"" + JsonEscaped(sample.name) + "\"";
    line += ",\"type\":\"" + std::string(TypeName(sample.type)) + "\"";
    if (!sample.labels.empty()) {
      line += ",\"labels\":\"" + JsonEscaped(sample.labels) + "\"";
    }
    switch (sample.type) {
      case MetricType::kCounter:
        line += ",\"value\":" + std::to_string(sample.counter_value);
        break;
      case MetricType::kGauge:
        line += ",\"value\":" + std::to_string(sample.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = sample.histogram;
        line += ",\"bounds\":[";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) line += ",";
          line += NumStr(h.bounds[i]);
        }
        line += "],\"buckets\":[";
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          if (i > 0) line += ",";
          line += std::to_string(h.buckets[i]);
        }
        line += "],\"sum\":" + NumStr(h.sum);
        line += ",\"count\":" + std::to_string(h.count);
        break;
      }
    }
    line += "}";
    out += line + "\n";
  }
  return out;
}

}  // namespace geosir::obs
