#ifndef GEOSIR_LSH_LSH_INDEX_H_
#define GEOSIR_LSH_LSH_INDEX_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/candidate_source.h"
#include "core/normalize.h"
#include "geom/polyline.h"
#include "lsh/sketch.h"
#include "util/query_control.h"
#include "util/status.h"

namespace geosir::core {
class ShapeBase;
}  // namespace geosir::core

namespace geosir::lsh {

/// Tuning knobs of the banded multi-table scheme (DESIGN.md section 14.2).
/// With per-feature quantum w and per-sample displacement delta, one
/// quantized feature agrees with probability ~ max(0, 1 - delta/w); a band
/// of `rows` samples ANDs those, and `tables` x `bands` bands OR the band
/// matches — recall ~ 1 - (1 - p^features_per_band)^(tables*bands).
struct LshOptions {
  /// Independent hash tables (distinct quantization offsets).
  int tables = 4;
  /// Bands per table; each band is one bucket key.
  int bands = 8;
  /// Hash rows per band (p-stable projections ANDed into one bucket
  /// key). Larger = more selective bands. 6 is the measured sweet spot
  /// at 10^5 shapes: sub-millisecond candidate generation at recall@10
  /// ~0.96; drop to 5 or 4 to trade milliseconds for the last points of
  /// recall (DESIGN.md section 14.2).
  int rows = 6;
  /// Hash cell width. With `project` (the default) this is the p-stable
  /// w: each row quantizes a Gaussian projection of the full sketch, so
  /// calibrate against sketch-space L2 distances — jittered instances
  /// sit at ||delta|| ~ 0.15 while distinct prototypes sit at ~1.5+
  /// (measured, DESIGN.md section 14.2), and w between the two buys
  /// near-perfect per-row agreement for true pairs at a per-row junk
  /// rate of ~w/||Delta||. Without `project` it is the per-coordinate
  /// grid width in normalized-lune units (~0.04 suits 1-1.5% jitter).
  double quantum = 0.5;
  /// Hash rows are quantized Gaussian projections of the whole sketch
  /// (p-stable LSH) rather than per-coordinate grid cells. Projections
  /// decorrelate the structural similarity all boundary sketches share
  /// (every canonical sketch starts near the origin and marches the
  /// same lune), which is what makes grid buckets collide half the base
  /// at recall-grade cell widths; in projection space cross-prototype
  /// collisions are driven by the full L2 gap instead (DESIGN.md
  /// section 14.2).
  bool project = true;
  SketchKind kind = SketchKind::kVertexSample;
  /// Normalized query copies probed per Query call. 1 probes only the
  /// caller's normalized query; larger values re-normalize the query
  /// about its own alpha-diameters (the same family of copies the base
  /// stores per shape — normalization is a similarity, so
  /// re-normalizing the normalized query reproduces the original's
  /// copies) and OR the bucket probes. Helps only when sketch noise is
  /// per-copy; on the jittered star-polygon workload the noise was
  /// measured to be *correlated across copies* (normalization-frame
  /// noise from the shared jittered vertices), so extra probes bought
  /// ~3 points of recall for 8x the candidates — hence the default of
  /// 1 (measured in EXPERIMENTS.md; DESIGN.md section 14.1).
  int query_probes = 1;
  /// Seeds the per-table quantization offsets; the whole index layout is
  /// a pure function of (options, insertion sequence).
  uint64_t seed = 1;
  /// Record each id's bucket keys so Remove(id) is exact and O(keys).
  /// Costs tables*bands*12 bytes per inserted sketch; enable for dynamic
  /// use, leave off for static build-once indexes.
  bool track_keys = false;
};

/// Approximate polygon-LSH pre-filter (after Kaplan & Tenenbaum's
/// polygon-LSH; see PAPERS.md): normalized copies are sketched by
/// arc-length boundary samples, each sketch is quantized under
/// seed-deterministic per-table offsets and banded into tables x bands
/// bucket keys. A query probes the same buckets and ranks the colliding
/// ids by collision multiplicity — candidates for exact epsilon-envelope
/// verification.
///
/// Thread safety: Query takes a shared lock, Insert/Remove an exclusive
/// one, so concurrent queries scale and the dynamic tier can mutate a
/// live index (tested under TSan in lsh_test).
class LshIndex {
 public:
  struct QueryStats {
    size_t probes = 0;           // Query copies probed (<= query_probes).
    size_t tables_probed = 0;    // Accumulated across probes.
    size_t buckets_probed = 0;   // Non-empty buckets read.
    size_t candidates = 0;       // Distinct ids emitted.
    bool truncated = false;      // max_candidates cut the ranked list.
  };

  /// Validates the options. kInvalidArgument on nonsensical geometry
  /// (tables/bands/rows < 1, quantum <= 0 or non-finite).
  static util::Result<std::unique_ptr<LshIndex>> Create(LshOptions options);

  /// Static convenience: one sketch per copy of a finalized base, with
  /// id == copy index.
  static util::Result<std::unique_ptr<LshIndex>> BuildFromBase(
      const core::ShapeBase& base, LshOptions options);

  const LshOptions& options() const { return options_; }
  /// Boundary samples taken per sketch (bands * rows).
  size_t SamplesPerSketch() const { return samples_; }
  /// Sketches currently indexed (inserts minus removes).
  size_t NumSketches() const;

  /// Indexes `normalized` under `id`. One id may carry several sketches
  /// (one per normalized copy); Remove erases them all.
  void Insert(uint64_t id, const geom::Polyline& normalized);
  /// Inserts every copy of a shape under one id.
  void InsertCopies(uint64_t id, const std::vector<core::NormalizedCopy>& copies);

  /// Erases every sketch inserted under `id`. Requires track_keys
  /// (kFailedPrecondition otherwise); kNotFound for an unknown id.
  util::Status Remove(uint64_t id);

  /// Fills `out` (cleared first) with candidate ids ranked by collision
  /// multiplicity (descending), ties by ascending id — deterministic for
  /// identical index state. `max_candidates` == 0 means unlimited.
  /// `control` is polled per table: a lifecycle stop returns its status
  /// with the candidates ranked so far left in `out`.
  util::Status Query(const geom::Polyline& normalized_query,
                     size_t max_candidates, const util::QueryControl& control,
                     std::vector<uint64_t>* out, QueryStats* stats) const;

 private:
  explicit LshIndex(LshOptions options);

  /// Bucket keys of one sketch: tables * bands entries, slot-major
  /// (slot = table * bands + band).
  std::vector<uint64_t> BucketKeys(const geom::Polyline& normalized) const;

  LshOptions options_;
  size_t samples_ = 0;
  size_t features_ = 0;  // samples_ * FeaturesPerSample(kind).
  /// Per-table quantization offsets in [0, quantum), tables * features_.
  /// Projection mode uses the first bands * rows entries of each table's
  /// stripe (one offset per hash row).
  std::vector<double> offsets_;
  /// Gaussian projection directions (project mode): one features_-dim
  /// vector per (table, band, row), seed-deterministic.
  std::vector<double> projections_;

  mutable std::shared_mutex mutex_;
  /// buckets_[table * bands + band]: bucket key -> inserted ids (in
  /// insertion order; duplicates possible when one id has several copies).
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> buckets_;
  /// id -> flat (slot, key) pairs of its sketches (track_keys only).
  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint64_t>>>
      keys_of_;
  size_t num_sketches_ = 0;
  /// Largest id ever inserted (never shrunk by Remove): gates the dense
  /// collision-counting path in Query.
  uint64_t max_id_ = 0;
};

/// CandidateSource adapter over a static LshIndex built from a finalized
/// ShapeBase (ids are copy indices). The approximate first tier of the
/// retrieval pipeline; plug into EnvelopeMatcher::MatchCandidates or
/// query::QueryContextOptions::prefilter.
class LshCandidateSource final : public core::CandidateSource {
 public:
  static util::Result<std::unique_ptr<LshCandidateSource>> Build(
      const core::ShapeBase* base, LshOptions options);

  const char* name() const override { return "lsh"; }

  util::Status Generate(const geom::Polyline& normalized_query,
                        size_t max_candidates,
                        const core::MatchOptions& options,
                        std::vector<uint32_t>* out,
                        core::CandidateSourceStats* stats) override;

  const LshIndex& index() const { return *index_; }

 private:
  explicit LshCandidateSource(std::unique_ptr<LshIndex> index)
      : index_(std::move(index)) {}

  std::unique_ptr<LshIndex> index_;
};

}  // namespace geosir::lsh

#endif  // GEOSIR_LSH_LSH_INDEX_H_
