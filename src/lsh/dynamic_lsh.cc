#include "lsh/dynamic_lsh.h"

namespace geosir::lsh {

util::Result<std::unique_ptr<DynamicLshIndex>> DynamicLshIndex::Create(
    LshOptions options) {
  options.track_keys = true;
  GEOSIR_ASSIGN_OR_RETURN(std::unique_ptr<LshIndex> index,
                          LshIndex::Create(options));
  return std::unique_ptr<DynamicLshIndex>(
      new DynamicLshIndex(std::move(index)));
}

void DynamicLshIndex::OnInsert(
    uint64_t id, const std::vector<core::NormalizedCopy>& copies) {
  index_->InsertCopies(id, copies);
}

void DynamicLshIndex::OnRemove(uint64_t id) {
  // A remove for an id the tables never saw (attached mid-life without a
  // rebuild) is a no-op, not an error: the pre-filter may lawfully
  // under-approximate, never dangle.
  (void)index_->Remove(id);
}

util::Status DynamicLshIndex::RebuildFrom(const core::DynamicShapeBase& base) {
  LshOptions options = index_->options();
  GEOSIR_ASSIGN_OR_RETURN(std::unique_ptr<LshIndex> fresh,
                          LshIndex::Create(options));
  for (uint64_t id : base.LiveIds()) {
    GEOSIR_ASSIGN_OR_RETURN(std::vector<core::NormalizedCopy> copies,
                            base.NormalizedCopiesOf(id));
    fresh->InsertCopies(id, copies);
  }
  index_ = std::move(fresh);
  return util::Status::OK();
}

}  // namespace geosir::lsh
