#include "lsh/lsh_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>

#include "core/shape_base.h"
#include "obs/metrics.h"

namespace geosir::lsh {
namespace {

/// SplitMix64 stream: the seed-deterministic source of the per-table
/// quantization offsets and the bucket-key mixer.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes one 64-bit word into a running bucket-key hash.
uint64_t MixKey(uint64_t h, uint64_t word) {
  h ^= word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  uint64_t s = h;
  return SplitMix64(&s);
}

/// Uniform double in (0, 1] from the SplitMix64 stream (never 0, so the
/// Box-Muller log below is always finite).
double NextUnit(uint64_t* state) {
  return (static_cast<double>(SplitMix64(state) >> 11) + 1.0) * 0x1.0p-53;
}

/// Standard normal via Box-Muller on the deterministic stream.
double NextGaussian(uint64_t* state) {
  const double u = NextUnit(state);
  const double v = NextUnit(state);
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * 3.14159265358979323846 * v);
}

/// Process-wide LSH metric families (DESIGN.md section 14.4), resolved
/// once; per-query cost is a few relaxed adds at probe exit.
struct LshMetrics {
  obs::Counter* queries;
  obs::Counter* tables_probed;
  obs::Counter* buckets_probed;
  obs::Counter* candidates;
  obs::Counter* truncated;
  obs::Counter* inserts;
  obs::Counter* removes;
  obs::Gauge* sketches;
  obs::Histogram* probe_latency;

  static const LshMetrics& Get() {
    static const LshMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new LshMetrics();
      m->queries = r.GetCounter("geosir_lsh_queries_total",
                                "LSH candidate-generation probes");
      m->tables_probed = r.GetCounter("geosir_lsh_tables_probed_total",
                                      "Hash tables consulted across probes");
      m->buckets_probed =
          r.GetCounter("geosir_lsh_buckets_probed_total",
                       "Non-empty buckets read across probes");
      m->candidates = r.GetCounter("geosir_lsh_candidates_total",
                                   "Candidate ids emitted to verifiers");
      m->truncated =
          r.GetCounter("geosir_lsh_truncated_total",
                       "Probes whose ranked list hit max_candidates");
      m->inserts = r.GetCounter("geosir_lsh_inserts_total",
                                "Sketches inserted into the tables");
      m->removes = r.GetCounter("geosir_lsh_removes_total",
                                "Ids erased from the tables");
      m->sketches =
          r.GetGauge("geosir_lsh_sketches", "Sketches currently indexed");
      m->probe_latency = r.GetHistogram(
          "geosir_lsh_probe_seconds", "LSH candidate-generation latency",
          obs::MicroLatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

LshIndex::LshIndex(LshOptions options) : options_(options) {
  samples_ = static_cast<size_t>(options_.bands) *
             static_cast<size_t>(options_.rows);
  features_ = samples_ * FeaturesPerSample(options_.kind);
  // One offset stream for the whole index: offsets depend only on
  // (seed, tables, features), never on insertion order.
  uint64_t state = options_.seed;
  offsets_.resize(static_cast<size_t>(options_.tables) * features_);
  for (double& off : offsets_) {
    const double unit =
        static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
    off = unit * options_.quantum;
  }
  buckets_.resize(static_cast<size_t>(options_.tables) *
                  static_cast<size_t>(options_.bands));
  if (options_.project) {
    // One Gaussian direction per hash row, drawn after the offsets from
    // the same stream so grid-mode layouts are unchanged.
    const size_t hash_rows = static_cast<size_t>(options_.tables) *
                             static_cast<size_t>(options_.bands) *
                             static_cast<size_t>(options_.rows);
    projections_.resize(hash_rows * features_);
    for (double& a : projections_) a = NextGaussian(&state);
  }
}

util::Result<std::unique_ptr<LshIndex>> LshIndex::Create(LshOptions options) {
  if (options.tables < 1 || options.tables > 64) {
    return util::Status::InvalidArgument("LshOptions.tables must be in [1, 64]");
  }
  if (options.bands < 1 || options.bands > 64) {
    return util::Status::InvalidArgument("LshOptions.bands must be in [1, 64]");
  }
  if (options.rows < 1 || options.rows > 64) {
    return util::Status::InvalidArgument("LshOptions.rows must be in [1, 64]");
  }
  if (!(options.quantum > 0.0) || !std::isfinite(options.quantum)) {
    return util::Status::InvalidArgument(
        "LshOptions.quantum must be positive and finite");
  }
  if (options.query_probes < 1 || options.query_probes > 64) {
    return util::Status::InvalidArgument(
        "LshOptions.query_probes must be in [1, 64]");
  }
  return std::unique_ptr<LshIndex>(new LshIndex(options));
}

util::Result<std::unique_ptr<LshIndex>> LshIndex::BuildFromBase(
    const core::ShapeBase& base, LshOptions options) {
  if (!base.finalized()) {
    return util::Status::FailedPrecondition(
        "LshIndex::BuildFromBase requires a finalized base");
  }
  GEOSIR_ASSIGN_OR_RETURN(std::unique_ptr<LshIndex> index,
                          Create(options));
  for (size_t idx = 0; idx < base.NumCopies(); ++idx) {
    index->Insert(static_cast<uint64_t>(idx), base.copy(idx).shape);
  }
  return index;
}

std::vector<uint64_t> LshIndex::BucketKeys(
    const geom::Polyline& normalized) const {
  const std::vector<double> sketch =
      ComputeSketch(normalized, options_.kind, samples_);
  const size_t fps = FeaturesPerSample(options_.kind);
  const size_t band_features = static_cast<size_t>(options_.rows) * fps;
  const size_t rows = static_cast<size_t>(options_.rows);
  std::vector<uint64_t> keys;
  keys.reserve(buckets_.size());
  for (int t = 0; t < options_.tables; ++t) {
    const double* off = &offsets_[static_cast<size_t>(t) * features_];
    for (int b = 0; b < options_.bands; ++b) {
      uint64_t h = MixKey(options_.seed,
                          (static_cast<uint64_t>(t) << 32) |
                              static_cast<uint64_t>(b));
      if (options_.project) {
        // p-stable rows: floor((a . sketch + offset) / w), one Gaussian
        // direction per (table, band, row) over the full sketch.
        const size_t row0 = (static_cast<size_t>(t) *
                                 static_cast<size_t>(options_.bands) +
                             static_cast<size_t>(b)) *
                            rows;
        for (size_t r = 0; r < rows; ++r) {
          const double* a = &projections_[(row0 + r) * features_];
          double dot = 0.0;
          for (size_t f = 0; f < features_; ++f) dot += a[f] * sketch[f];
          const double cell = std::floor(
              (dot + off[static_cast<size_t>(b) * rows + r]) /
              options_.quantum);
          h = MixKey(h, static_cast<uint64_t>(static_cast<int64_t>(cell)));
        }
      } else {
        const size_t base = static_cast<size_t>(b) * band_features;
        for (size_t f = 0; f < band_features; ++f) {
          const double cell =
              std::floor((sketch[base + f] + off[base + f]) / options_.quantum);
          h = MixKey(h, static_cast<uint64_t>(static_cast<int64_t>(cell)));
        }
      }
      keys.push_back(h);
    }
  }
  return keys;
}

size_t LshIndex::NumSketches() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return num_sketches_;
}

void LshIndex::Insert(uint64_t id, const geom::Polyline& normalized) {
  const std::vector<uint64_t> keys = BucketKeys(normalized);
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (size_t slot = 0; slot < keys.size(); ++slot) {
      buckets_[slot][keys[slot]].push_back(id);
    }
    if (options_.track_keys) {
      std::vector<std::pair<uint32_t, uint64_t>>& recorded = keys_of_[id];
      recorded.reserve(recorded.size() + keys.size());
      for (size_t slot = 0; slot < keys.size(); ++slot) {
        recorded.emplace_back(static_cast<uint32_t>(slot), keys[slot]);
      }
    }
    max_id_ = std::max(max_id_, id);
    ++num_sketches_;
  }
  const LshMetrics& metrics = LshMetrics::Get();
  metrics.inserts->Inc();
  metrics.sketches->Add(1);
}

void LshIndex::InsertCopies(uint64_t id,
                            const std::vector<core::NormalizedCopy>& copies) {
  for (const core::NormalizedCopy& copy : copies) {
    Insert(id, copy.shape);
  }
}

util::Status LshIndex::Remove(uint64_t id) {
  if (!options_.track_keys) {
    return util::Status::FailedPrecondition(
        "LshIndex::Remove requires LshOptions.track_keys");
  }
  size_t erased_sketches = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = keys_of_.find(id);
    if (it == keys_of_.end()) {
      return util::Status::NotFound("id not in LSH index");
    }
    erased_sketches = it->second.size() / buckets_.size();
    for (const auto& [slot, key] : it->second) {
      auto bucket_it = buckets_[slot].find(key);
      if (bucket_it == buckets_[slot].end()) continue;
      std::vector<uint64_t>& ids = bucket_it->second;
      // One erase per recorded (slot, key) pair: an id inserted with
      // several copies holds one pair per copy, so multiplicity survives
      // exactly.
      auto pos = std::find(ids.begin(), ids.end(), id);
      if (pos != ids.end()) ids.erase(pos);
      if (ids.empty()) buckets_[slot].erase(bucket_it);
    }
    keys_of_.erase(it);
    num_sketches_ -= std::min(num_sketches_, erased_sketches);
  }
  const LshMetrics& metrics = LshMetrics::Get();
  metrics.removes->Inc();
  metrics.sketches->Add(-static_cast<int64_t>(erased_sketches));
  return util::Status::OK();
}

util::Status LshIndex::Query(const geom::Polyline& normalized_query,
                             size_t max_candidates,
                             const util::QueryControl& control,
                             std::vector<uint64_t>* out,
                             QueryStats* stats) const {
  const auto probe_start = std::chrono::steady_clock::now();
  out->clear();
  QueryStats local;

  // Probe shapes: the caller's normalized query, plus (query_probes > 1)
  // the query re-normalized about its own alpha-diameters — the same
  // copy family the base stores per shape, recovered here because
  // normalization is a similarity transform. Each copy collides with the
  // matching stored copy of a true instance near-independently, so the
  // OR over probes compounds recall without widening the quantum.
  std::vector<geom::Polyline> probe_shapes;
  if (options_.query_probes > 1) {
    core::Shape reshape;
    reshape.boundary = normalized_query;
    core::NormalizeOptions renorm;
    renorm.max_axes =
        (static_cast<size_t>(options_.query_probes) + 1) / 2;
    auto copies = core::NormalizeShape(reshape, renorm);
    if (copies.ok()) {
      const size_t n = std::min(copies->size(),
                                static_cast<size_t>(options_.query_probes));
      probe_shapes.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        probe_shapes.push_back(std::move((*copies)[i].shape));
      }
    }
  }
  if (probe_shapes.empty()) probe_shapes.push_back(normalized_query);

  // Collision counting. Ids are dense in every supported deployment
  // (copy indices of a finalized base, shape ids of the dynamic tier),
  // so the common path counts in a flat thread-local array reset via a
  // touched-list — ~10x cheaper per collision than a hash map. Sparse
  // id spaces (external callers inserting arbitrary 64-bit ids) fall
  // back to the map. Both paths feed the same total order, so results
  // are bit-identical either way.
  std::unordered_map<uint64_t, uint32_t> sparse;
  static thread_local std::vector<uint32_t> dense;
  std::vector<uint64_t> touched;
  util::Status stop;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const bool use_dense = max_id_ < 4 * num_sketches_ + 4096;
    if (use_dense) {
      if (dense.size() <= max_id_) dense.resize(max_id_ + 1, 0);
      touched.reserve(256);
    }
    for (const geom::Polyline& probe : probe_shapes) {
      stop = control.Check();
      if (!stop.ok()) break;
      const std::vector<uint64_t> keys = BucketKeys(probe);
      for (int t = 0; t < options_.tables && stop.ok(); ++t) {
        stop = control.Check();
        if (!stop.ok()) break;
        for (int b = 0; b < options_.bands; ++b) {
          const size_t slot = static_cast<size_t>(t) *
                                  static_cast<size_t>(options_.bands) +
                              static_cast<size_t>(b);
          auto it = buckets_[slot].find(keys[slot]);
          if (it == buckets_[slot].end()) continue;
          ++local.buckets_probed;
          if (use_dense) {
            for (uint64_t id : it->second) {
              if (dense[id]++ == 0) touched.push_back(id);
            }
          } else {
            for (uint64_t id : it->second) ++sparse[id];
          }
        }
        ++local.tables_probed;
      }
      if (stop.ok()) ++local.probes;
    }
  }
  // Rank by collision multiplicity (descending), ties by ascending id:
  // a deterministic preference order regardless of hash-map iteration.
  std::vector<std::pair<uint32_t, uint64_t>> ranked;
  ranked.reserve(touched.size() + sparse.size());
  for (uint64_t id : touched) {
    ranked.emplace_back(dense[id], id);
    dense[id] = 0;  // Reset the scratch for the next query on this thread.
  }
  for (const auto& [id, count] : sparse) ranked.emplace_back(count, id);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  local.truncated =
      max_candidates != 0 && ranked.size() > max_candidates && stop.ok();
  const size_t limit = max_candidates == 0
                           ? ranked.size()
                           : std::min(ranked.size(), max_candidates);
  out->reserve(limit);
  for (size_t i = 0; i < limit; ++i) out->push_back(ranked[i].second);
  local.candidates = out->size();

  const LshMetrics& metrics = LshMetrics::Get();
  metrics.queries->Inc();
  metrics.tables_probed->Inc(local.tables_probed);
  metrics.buckets_probed->Inc(local.buckets_probed);
  metrics.candidates->Inc(local.candidates);
  if (local.truncated) metrics.truncated->Inc();
  metrics.probe_latency->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    probe_start)
          .count());
  if (stats != nullptr) *stats = local;
  return stop;
}

util::Result<std::unique_ptr<LshCandidateSource>> LshCandidateSource::Build(
    const core::ShapeBase* base, LshOptions options) {
  if (base == nullptr) {
    return util::Status::InvalidArgument(
        "LshCandidateSource::Build requires a base");
  }
  GEOSIR_ASSIGN_OR_RETURN(std::unique_ptr<LshIndex> index,
                          LshIndex::BuildFromBase(*base, options));
  return std::unique_ptr<LshCandidateSource>(
      new LshCandidateSource(std::move(index)));
}

util::Status LshCandidateSource::Generate(
    const geom::Polyline& normalized_query, size_t max_candidates,
    const core::MatchOptions& options, std::vector<uint32_t>* out,
    core::CandidateSourceStats* stats) {
  out->clear();
  if (stats != nullptr) *stats = core::CandidateSourceStats{};
  util::QueryControl control{options.deadline, options.cancel_token};
  std::vector<uint64_t> ids;
  LshIndex::QueryStats probe;
  util::Status st =
      index_->Query(normalized_query, max_candidates, control, &ids, &probe);
  out->reserve(ids.size());
  for (uint64_t id : ids) out->push_back(static_cast<uint32_t>(id));
  if (stats != nullptr) {
    stats->tables_probed = probe.tables_probed;
    stats->buckets_probed = probe.buckets_probed;
    stats->candidates_emitted = out->size();
    stats->truncated = probe.truncated;
    stats->termination = st;
  }
  return st;
}

}  // namespace geosir::lsh
