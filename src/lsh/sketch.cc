#include "lsh/sketch.h"

#include <algorithm>
#include <cmath>

namespace geosir::lsh {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Vertex order with the canonical start first and canonical traversal
/// direction (counterclockwise for closed shapes, origin-near endpoint
/// first for open ones). Relabeled or reversed encodings of the same
/// geometry canonicalize identically, which is what makes the sketch a
/// function of the shape rather than of its encoding.
std::vector<geom::Point> CanonicalVertices(const geom::Polyline& shape) {
  const std::vector<geom::Point>& v = shape.vertices();
  const size_t n = v.size();
  if (n == 0) return {};
  if (!shape.closed()) {
    const double d_front = v.front().x * v.front().x + v.front().y * v.front().y;
    const double d_back = v.back().x * v.back().x + v.back().y * v.back().y;
    if (d_back < d_front) {
      return std::vector<geom::Point>(v.rbegin(), v.rend());
    }
    return v;
  }
  size_t start = 0;
  double best = v[0].x * v[0].x + v[0].y * v[0].y;
  for (size_t i = 1; i < n; ++i) {
    const double d = v[i].x * v[i].x + v[i].y * v[i].y;
    if (d < best) {
      best = d;
      start = i;
    }
  }
  const bool ccw = shape.SignedArea() >= 0.0;
  std::vector<geom::Point> out(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t src = ccw ? (start + i) % n : (start + n - i) % n;
    out[i] = v[src];
  }
  return out;
}

struct ArcWalk {
  std::vector<geom::Point> vertices;  // Canonical order; closed wraps.
  std::vector<double> prefix;         // prefix[i] = length before edge i.
  double total = 0.0;
  bool closed = false;

  explicit ArcWalk(const geom::Polyline& shape)
      : vertices(CanonicalVertices(shape)), closed(shape.closed()) {
    const size_t n = vertices.size();
    const size_t edges = n < 2 ? 0 : (closed ? n : n - 1);
    prefix.reserve(edges + 1);
    prefix.push_back(0.0);
    for (size_t i = 0; i < edges; ++i) {
      const geom::Point a = vertices[i];
      const geom::Point b = vertices[(i + 1) % n];
      total += std::hypot(b.x - a.x, b.y - a.y);
      prefix.push_back(total);
    }
  }

  size_t NumEdges() const { return prefix.size() - 1; }

  /// Index of the edge containing arc position s (s in [0, total]).
  size_t EdgeAt(double s) const {
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), s);
    const size_t idx = static_cast<size_t>(it - prefix.begin());
    return std::min(idx == 0 ? 0 : idx - 1, NumEdges() - 1);
  }

  geom::Point At(double s) const {
    const size_t e = EdgeAt(s);
    const geom::Point a = vertices[e];
    const geom::Point b = vertices[(e + 1) % vertices.size()];
    const double len = prefix[e + 1] - prefix[e];
    const double t = len > 0.0 ? (s - prefix[e]) / len : 0.0;
    return geom::Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  }
};

/// Arc positions of the `count` samples: closed shapes divide the full
/// perimeter (the wrap-around edge is implicit), open ones include both
/// endpoints.
std::vector<double> SamplePositions(double total, size_t count, bool closed) {
  std::vector<double> s(count, 0.0);
  if (count == 0 || total <= 0.0) return s;
  if (closed) {
    for (size_t j = 0; j < count; ++j) {
      s[j] = total * static_cast<double>(j) / static_cast<double>(count);
    }
  } else {
    const double step = count > 1 ? total / static_cast<double>(count - 1) : 0.0;
    for (size_t j = 0; j < count; ++j) s[j] = step * static_cast<double>(j);
  }
  return s;
}

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kVertexSample:
      return "vertex_sample";
    case SketchKind::kTurningFunction:
      return "turning_function";
    case SketchKind::kEdgeSample:
      return "edge_sample";
  }
  return "unknown";
}

size_t FeaturesPerSample(SketchKind kind) {
  return kind == SketchKind::kTurningFunction ? 1 : 2;
}

std::vector<geom::Point> SampleBoundary(const geom::Polyline& normalized,
                                        size_t count) {
  ArcWalk walk(normalized);
  if (walk.vertices.empty() || count == 0) {
    return std::vector<geom::Point>(count, geom::Point{0.0, 0.0});
  }
  if (walk.NumEdges() == 0 || walk.total <= 0.0) {
    return std::vector<geom::Point>(count, walk.vertices.front());
  }
  std::vector<geom::Point> out;
  out.reserve(count);
  for (double s : SamplePositions(walk.total, count, walk.closed)) {
    out.push_back(walk.At(s));
  }
  return out;
}

std::vector<double> ComputeSketch(const geom::Polyline& normalized,
                                  SketchKind kind, size_t samples) {
  if (kind == SketchKind::kVertexSample) {
    std::vector<double> features;
    features.reserve(2 * samples);
    for (const geom::Point& p : SampleBoundary(normalized, samples)) {
      features.push_back(p.x);
      features.push_back(p.y);
    }
    return features;
  }
  if (kind == SketchKind::kEdgeSample) {
    // Drift-free placement: sample k sits at edge-index position
    // k * E / samples, so its coordinates are a function of one edge's
    // endpoints only (see sketch.h).
    const std::vector<geom::Point> v = CanonicalVertices(normalized);
    std::vector<double> features(2 * samples, 0.0);
    if (v.empty() || samples == 0) return features;
    const size_t n = v.size();
    const size_t edges = n < 2 ? 0 : (normalized.closed() ? n : n - 1);
    if (edges == 0) {
      for (size_t j = 0; j < samples; ++j) {
        features[2 * j] = v.front().x;
        features[2 * j + 1] = v.front().y;
      }
      return features;
    }
    for (size_t j = 0; j < samples; ++j) {
      const double t = static_cast<double>(j) * static_cast<double>(edges) /
                       static_cast<double>(samples);
      size_t e = std::min(static_cast<size_t>(t), edges - 1);
      const double f = t - static_cast<double>(e);
      const geom::Point a = v[e];
      const geom::Point b = v[(e + 1) % n];
      features[2 * j] = a.x + f * (b.x - a.x);
      features[2 * j + 1] = a.y + f * (b.y - a.y);
    }
    return features;
  }
  // Turning function: unwrapped cumulative tangent angle, piecewise
  // constant per edge, sampled at the same arc positions.
  ArcWalk walk(normalized);
  std::vector<double> features(samples, 0.0);
  if (walk.NumEdges() == 0 || walk.total <= 0.0) return features;
  const size_t n = walk.vertices.size();
  std::vector<double> theta(walk.NumEdges(), 0.0);
  double prev = 0.0;
  for (size_t e = 0; e < walk.NumEdges(); ++e) {
    const geom::Point a = walk.vertices[e];
    const geom::Point b = walk.vertices[(e + 1) % n];
    const double angle = std::atan2(b.y - a.y, b.x - a.x);
    if (e == 0) {
      theta[e] = angle;
    } else {
      double turn = angle - prev;
      while (turn > kPi) turn -= 2.0 * kPi;
      while (turn <= -kPi) turn += 2.0 * kPi;
      theta[e] = theta[e - 1] + turn;
    }
    prev = angle;
  }
  const std::vector<double> positions =
      SamplePositions(walk.total, samples, walk.closed);
  for (size_t j = 0; j < samples; ++j) {
    features[j] = theta[walk.EdgeAt(positions[j])];
  }
  return features;
}

}  // namespace geosir::lsh
