#ifndef GEOSIR_LSH_DYNAMIC_LSH_H_
#define GEOSIR_LSH_DYNAMIC_LSH_H_

#include <memory>
#include <vector>

#include "core/dynamic_shape_base.h"
#include "lsh/lsh_index.h"
#include "util/query_control.h"
#include "util/status.h"

namespace geosir::lsh {

/// The LSH pre-filter of the *dynamic* (and replicated) serving tier: a
/// DynamicBaseObserver that mirrors every applied insert/remove into an
/// LshIndex keyed by stable ids, so candidates stay fresh under
/// interleaved mutation — including journal recovery and replication
/// follower replay, which run through the same observer hook. Query
/// candidates feed DynamicShapeBase::MatchIds for exact verification.
///
/// Thread safety is the wrapped LshIndex's: concurrent Query vs.
/// OnInsert/OnRemove is safe; the observer callbacks themselves arrive on
/// the base's (single) mutating thread.
class DynamicLshIndex final : public core::DynamicBaseObserver {
 public:
  /// track_keys is forced on — removals need the stored bucket keys.
  static util::Result<std::unique_ptr<DynamicLshIndex>> Create(
      LshOptions options);

  void OnInsert(uint64_t id,
                const std::vector<core::NormalizedCopy>& copies) override;
  void OnRemove(uint64_t id) override;

  /// Candidate stable ids for an already-normalized query, ranked by
  /// collision multiplicity. Same contract as LshIndex::Query.
  util::Status Query(const geom::Polyline& normalized_query,
                     size_t max_candidates, const util::QueryControl& control,
                     std::vector<uint64_t>* out,
                     LshIndex::QueryStats* stats) const {
    return index_->Query(normalized_query, max_candidates, control, out,
                         stats);
  }

  /// Re-seeds the tables from a base's live records — for attaching to a
  /// base that already has content (e.g. right after RestoreCheckpoint,
  /// which bypasses the observer). Existing table state is replaced.
  util::Status RebuildFrom(const core::DynamicShapeBase& base);

  const LshIndex& index() const { return *index_; }

 private:
  explicit DynamicLshIndex(std::unique_ptr<LshIndex> index)
      : index_(std::move(index)) {}

  std::unique_ptr<LshIndex> index_;
};

}  // namespace geosir::lsh

#endif  // GEOSIR_LSH_DYNAMIC_LSH_H_
