#ifndef GEOSIR_LSH_SKETCH_H_
#define GEOSIR_LSH_SKETCH_H_

#include <cstddef>
#include <vector>

#include "geom/polyline.h"
#include "util/status.h"

namespace geosir::lsh {

/// Which feature family the sketch samples (DESIGN.md section 14.1).
enum class SketchKind {
  /// Interleaved (x, y) coordinates of arc-length-uniform boundary
  /// samples of the normalized copy. Two features per sample. Directly
  /// locality-sensitive under the vertex-perturbation model the envelope
  /// matcher tolerates: a jittered instance moves every sample O(noise).
  kVertexSample,
  /// Unwrapped cumulative tangent angle at the same sample positions
  /// (one feature per sample), after Arkin et al.'s turning function.
  /// Less sensitive to where mass sits, more sensitive to corner layout.
  kTurningFunction,
  /// Interleaved (x, y) coordinates of samples placed by *edge index
  /// fraction* (sample k of S sits on edge floor(k E / S) at fraction
  /// frac(k E / S)) instead of by arc length, so a sample's position
  /// depends only on its own edge's two endpoints and arc-length drift
  /// cannot accumulate. Measured against kVertexSample on the jittered
  /// workload the per-feature noise is equivalent (p50/p90/p99 within a
  /// few percent — normalization-frame noise dominates both; see
  /// EXPERIMENTS.md), so this kind earns its keep only on inputs with
  /// strongly non-uniform vertex spacing. Only same-vertex-count shapes
  /// sample the same boundary points; different tessellations of the
  /// same geometry hash apart.
  kEdgeSample,
};

const char* SketchKindName(SketchKind kind);

/// Arc-length-uniform boundary samples of a normalized copy, taken from a
/// canonical start so that vertex relabelings and orientation flips of
/// the same geometry sketch identically:
///  - closed shapes start at the vertex nearest the origin (the
///    normalization maps the axis onto (0,0)-(1,0), so this is the axis
///    vertex up to jitter) and traverse counterclockwise;
///  - open shapes start at whichever endpoint is nearer the origin.
/// Returns `count` points on the boundary (count >= 1).
std::vector<geom::Point> SampleBoundary(const geom::Polyline& normalized,
                                        size_t count);

/// The feature vector hashed by the LSH tables: 2 * `samples` doubles for
/// kVertexSample (x, y interleaved), `samples` doubles for
/// kTurningFunction. Deterministic for identical input geometry.
std::vector<double> ComputeSketch(const geom::Polyline& normalized,
                                  SketchKind kind, size_t samples);

/// Features each sample contributes (2 or 1).
size_t FeaturesPerSample(SketchKind kind);

}  // namespace geosir::lsh

#endif  // GEOSIR_LSH_SKETCH_H_
