#ifndef GEOSIR_EXTRACT_CHAIN_TRACE_H_
#define GEOSIR_EXTRACT_CHAIN_TRACE_H_

#include <vector>

#include "extract/raster.h"
#include "geom/polyline.h"

namespace geosir::extract {

/// Traces thin (≈1-pixel-wide) edge masks into pixel chains — the second
/// half of GeoSIR's boundary extraction (Section 6): shapes are
/// "non-self-intersecting polylines either open or closed", and edge
/// detectors produce thin curves rather than filled regions.
///
/// The tracer walks 8-connected chains:
///  * chains starting at an endpoint (a pixel with exactly one unvisited
///    neighbor) become open polylines;
///  * leftover cycles (every pixel has two neighbors) become closed
///    polylines;
///  * junction pixels (3+ neighbors) terminate chains, naturally
///    splitting branching structures into simple pieces (the "cluster
///    decomposition" input).
/// Chains shorter than `min_pixels` are discarded.
std::vector<geom::Polyline> TraceEdgeChains(const Mask& mask,
                                            size_t min_pixels = 6);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_CHAIN_TRACE_H_
