#ifndef GEOSIR_EXTRACT_CLUSTERS_H_
#define GEOSIR_EXTRACT_CLUSTERS_H_

#include <vector>

#include "geom/polyline.h"

namespace geosir::extract {

/// A cluster of polylines describing one object boundary (Section 6 /
/// Figure 11): polylines that share vertices or edges (within a
/// tolerance) belong to the same cluster.
struct PolylineCluster {
  std::vector<size_t> members;  // Indices into the input vector.
};

/// Groups polylines into clusters by connectivity: two polylines are
/// connected when some vertex of one lies within `tolerance` of the
/// other's boundary. Union-find over the pairwise tests.
std::vector<PolylineCluster> DetectClusters(
    const std::vector<geom::Polyline>& polylines, double tolerance);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_CLUSTERS_H_
