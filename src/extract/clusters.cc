#include "extract/clusters.h"

#include <numeric>

#include "geom/distance.h"

namespace geosir::extract {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

bool Touches(const geom::Polyline& a, const geom::Polyline& b,
             double tolerance) {
  geom::BoundingBox ba = a.Bounds();
  ba.Inflate(tolerance);
  if (!ba.Intersects(b.Bounds())) return false;
  for (geom::Point p : a.vertices()) {
    if (geom::DistancePointPolyline(p, b) <= tolerance) return true;
  }
  for (geom::Point p : b.vertices()) {
    if (geom::DistancePointPolyline(p, a) <= tolerance) return true;
  }
  return false;
}

}  // namespace

std::vector<PolylineCluster> DetectClusters(
    const std::vector<geom::Polyline>& polylines, double tolerance) {
  const size_t n = polylines.size();
  UnionFind uf(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (Touches(polylines[i], polylines[j], tolerance)) uf.Union(i, j);
    }
  }
  std::vector<PolylineCluster> clusters;
  std::vector<long> root_to_cluster(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<long>(clusters.size());
      clusters.push_back({});
    }
    clusters[root_to_cluster[root]].members.push_back(i);
  }
  return clusters;
}

}  // namespace geosir::extract
