#include "extract/boundary_trace.h"

#include <utility>

namespace geosir::extract {

namespace {

// Moore neighborhood in clockwise order starting from west.
constexpr int kDx[8] = {-1, -1, 0, 1, 1, 1, 0, -1};
constexpr int kDy[8] = {0, -1, -1, -1, 0, 1, 1, 1};

struct Pixel {
  int x;
  int y;
  bool operator==(const Pixel& o) const { return x == o.x && y == o.y; }
};

/// Flood-fills the 8-connected component of (sx, sy), marking `visited`,
/// and returns its size.
size_t MarkComponent(const Mask& mask, int sx, int sy,
                     std::vector<uint8_t>* visited) {
  const int w = mask.width();
  std::vector<Pixel> stack{{sx, sy}};
  (*visited)[static_cast<size_t>(sy) * w + sx] = 1;
  size_t size = 0;
  while (!stack.empty()) {
    const Pixel p = stack.back();
    stack.pop_back();
    ++size;
    for (int d = 0; d < 8; ++d) {
      const int nx = p.x + kDx[d];
      const int ny = p.y + kDy[d];
      if (!mask.Sample(nx, ny)) continue;
      uint8_t& flag = (*visited)[static_cast<size_t>(ny) * w + nx];
      if (flag) continue;
      flag = 1;
      stack.push_back({nx, ny});
    }
  }
  return size;
}

/// Direction index (into kDx/kDy) from pixel `from` to adjacent `to`.
int DirectionOf(Pixel from, Pixel to) {
  for (int d = 0; d < 8; ++d) {
    if (from.x + kDx[d] == to.x && from.y + kDy[d] == to.y) return d;
  }
  return 0;
}

/// Moore-neighbor boundary trace starting from `start` (a foreground
/// pixel whose west neighbor is background). Tracks the backtrack pixel
/// explicitly; stops with Jacob's criterion (start re-entered with the
/// same backtrack).
std::vector<Pixel> TraceFrom(const Mask& mask, Pixel start) {
  std::vector<Pixel> boundary{start};
  const Pixel initial_backtrack{start.x - 1, start.y};
  Pixel backtrack = initial_backtrack;
  Pixel current = start;
  const size_t guard_limit =
      4 * static_cast<size_t>(mask.width()) * mask.height() + 8;
  for (size_t guard = 0; guard < guard_limit; ++guard) {
    const int dir_b = DirectionOf(current, backtrack);
    bool advanced = false;
    for (int step = 1; step <= 8; ++step) {
      const int d = (dir_b + step) % 8;
      const Pixel cand{current.x + kDx[d], current.y + kDy[d]};
      if (mask.Sample(cand.x, cand.y)) {
        // The neighbor examined just before `cand` is background; it
        // becomes the new backtrack (== old backtrack when step == 1).
        const int prev = (d + 7) % 8;
        backtrack = Pixel{current.x + kDx[prev], current.y + kDy[prev]};
        current = cand;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // Isolated pixel.
    if (current == start && backtrack == initial_backtrack) break;
    boundary.push_back(current);
  }
  return boundary;
}

}  // namespace

std::vector<geom::Polyline> TraceBoundaries(const Mask& mask,
                                            size_t min_pixels) {
  std::vector<geom::Polyline> result;
  const int w = mask.width();
  const int h = mask.height();
  std::vector<uint8_t> visited(static_cast<size_t>(w) * h, 0);

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!mask.at(x, y) || visited[static_cast<size_t>(y) * w + x]) continue;
      // (x, y) is the first unvisited pixel of its component in scan
      // order, so its west neighbor is background: a valid trace start.
      const size_t size = MarkComponent(mask, x, y, &visited);
      if (size < min_pixels) continue;
      const std::vector<Pixel> boundary = TraceFrom(mask, Pixel{x, y});
      if (boundary.size() < 3) continue;
      std::vector<geom::Point> vertices;
      vertices.reserve(boundary.size());
      for (const Pixel& p : boundary) {
        vertices.push_back(geom::Point{p.x + 0.5, p.y + 0.5});
      }
      result.push_back(geom::Polyline::Closed(std::move(vertices)));
    }
  }
  return result;
}

}  // namespace geosir::extract
