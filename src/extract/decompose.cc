#include "extract/decompose.h"

#include <optional>

#include "geom/predicates.h"

namespace geosir::extract {

namespace {

using geom::Point;
using geom::Polyline;

struct Crossing {
  size_t edge_i;
  size_t edge_j;
  Point point;
};

std::optional<Crossing> FirstProperCrossing(const Polyline& poly) {
  const size_t n = poly.NumEdges();
  for (size_t i = 0; i < n; ++i) {
    const geom::Segment ei = poly.Edge(i);
    for (size_t j = i + 1; j < n; ++j) {
      const bool adjacent =
          (j == i + 1) || (poly.closed() && i == 0 && j == n - 1);
      if (adjacent) continue;
      const geom::Segment ej = poly.Edge(j);
      if (!geom::SegmentsCrossProperly(ei, ej)) continue;
      auto p = geom::LineIntersectionPoint(ei, ej);
      if (!p.ok()) continue;
      return Crossing{i, j, *p};
    }
  }
  return std::nullopt;
}

/// Removes consecutive duplicate vertices (and for closed polylines the
/// duplicate first==last).
Polyline Dedup(const Polyline& poly) {
  std::vector<Point> out;
  for (Point p : poly.vertices()) {
    if (out.empty() || geom::Distance(out.back(), p) > 1e-12) {
      out.push_back(p);
    }
  }
  if (poly.closed() && out.size() > 1 &&
      geom::Distance(out.front(), out.back()) <= 1e-12) {
    out.pop_back();
  }
  return Polyline(std::move(out), poly.closed());
}

}  // namespace

std::vector<Polyline> DecomposeSelfIntersecting(const Polyline& input) {
  std::vector<Polyline> pending{Dedup(input)};
  std::vector<Polyline> done;
  size_t guard = 16 * (input.size() + 4);

  while (!pending.empty() && guard-- > 0) {
    Polyline poly = std::move(pending.back());
    pending.pop_back();
    if (poly.size() < 2) continue;
    const std::optional<Crossing> crossing = FirstProperCrossing(poly);
    if (!crossing.has_value()) {
      if (!poly.SelfIntersects() && poly.size() >= 2) {
        done.push_back(std::move(poly));
      }
      // Residual degenerate overlaps (collinear folds) are dropped: they
      // carry no area information for shape matching.
      continue;
    }
    const auto& [i, j, p] = *crossing;
    const std::vector<Point>& v = poly.vertices();
    // Enclosed loop: P, v[i+1..j], back to P (closed).
    std::vector<Point> loop{p};
    for (size_t k = i + 1; k <= j; ++k) loop.push_back(v[k]);
    pending.push_back(Dedup(Polyline::Closed(std::move(loop))));
    // Remainder: v[0..i], P, v[j+1..], same open/closed as input piece.
    std::vector<Point> rest;
    for (size_t k = 0; k <= i; ++k) rest.push_back(v[k]);
    rest.push_back(p);
    for (size_t k = j + 1; k < v.size(); ++k) rest.push_back(v[k]);
    pending.push_back(Dedup(Polyline(std::move(rest), poly.closed())));
  }
  return done;
}

}  // namespace geosir::extract
