#ifndef GEOSIR_EXTRACT_EDGE_DETECT_H_
#define GEOSIR_EXTRACT_EDGE_DETECT_H_

#include "extract/raster.h"

namespace geosir::extract {

/// Sobel gradient magnitude of the image (values >= 0, not normalized).
Raster SobelMagnitude(const Raster& image);

/// Binary edge mask: pixels whose Sobel magnitude exceeds `threshold`.
Mask DetectEdges(const Raster& image, float threshold);

/// Binary foreground mask: pixels brighter than `threshold`. Used to
/// trace region boundaries of filled synthetic scenes.
Mask ThresholdForeground(const Raster& image, float threshold);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_EDGE_DETECT_H_
