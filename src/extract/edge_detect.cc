#include "extract/edge_detect.h"

#include <cmath>

namespace geosir::extract {

Raster SobelMagnitude(const Raster& image) {
  Raster out(image.width(), image.height(), 0.0f);
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const float gx = -image.Sample(x - 1, y - 1) + image.Sample(x + 1, y - 1)
                       - 2 * image.Sample(x - 1, y) + 2 * image.Sample(x + 1, y)
                       - image.Sample(x - 1, y + 1) + image.Sample(x + 1, y + 1);
      const float gy = -image.Sample(x - 1, y - 1) - 2 * image.Sample(x, y - 1)
                       - image.Sample(x + 1, y - 1) + image.Sample(x - 1, y + 1)
                       + 2 * image.Sample(x, y + 1) + image.Sample(x + 1, y + 1);
      out.set(x, y, std::sqrt(gx * gx + gy * gy));
    }
  }
  return out;
}

Mask DetectEdges(const Raster& image, float threshold) {
  const Raster magnitude = SobelMagnitude(image);
  Mask mask(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      mask.set(x, y, magnitude.at(x, y) > threshold);
    }
  }
  return mask;
}

Mask ThresholdForeground(const Raster& image, float threshold) {
  Mask mask(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      mask.set(x, y, image.at(x, y) > threshold);
    }
  }
  return mask;
}

}  // namespace geosir::extract
