#ifndef GEOSIR_EXTRACT_RASTERIZE_H_
#define GEOSIR_EXTRACT_RASTERIZE_H_

#include "extract/raster.h"
#include "geom/polyline.h"

namespace geosir::extract {

/// Scanline-fills a closed polygon into the raster with intensity
/// `value`. Pixel (x, y) covers the unit square centered at
/// (x + 0.5, y + 0.5); a pixel is filled when its center is inside.
void FillPolygon(Raster* raster, const geom::Polyline& polygon, float value);

/// Strokes a polyline (open or closed) with 1-pixel-wide Bresenham lines.
void StrokePolyline(Raster* raster, const geom::Polyline& polyline,
                    float value);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_RASTERIZE_H_
