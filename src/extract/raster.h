#ifndef GEOSIR_EXTRACT_RASTER_H_
#define GEOSIR_EXTRACT_RASTER_H_

#include <vector>

#include "util/status.h"

namespace geosir::extract {

/// A grayscale raster image (row-major, values in [0, 1]). The synthetic
/// stand-in for the photographs GeoSIR ingests (Section 6): the examples
/// rasterize vector scenes into this, then run the extraction pipeline
/// (edges -> boundaries -> polylines) on the pixels.
class Raster {
 public:
  Raster() = default;
  Raster(int width, int height, float fill = 0.0f)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  float at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, float v) {
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  /// at() with zero padding outside the image.
  float Sample(int x, int y) const {
    return InBounds(x, y) ? at(x, y) : 0.0f;
  }

  const std::vector<float>& pixels() const { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

/// A binary mask with the same addressing scheme.
class Mask {
 public:
  Mask() = default;
  Mask(int width, int height)
      : width_(width), height_(height),
        bits_(static_cast<size_t>(width) * height, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool at(int x, int y) const {
    return bits_[static_cast<size_t>(y) * width_ + x] != 0;
  }
  void set(int x, int y, bool v) {
    bits_[static_cast<size_t>(y) * width_ + x] = v ? 1 : 0;
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool Sample(int x, int y) const { return InBounds(x, y) && at(x, y); }
  size_t CountSet() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_RASTER_H_
