#ifndef GEOSIR_EXTRACT_SIMPLIFY_H_
#define GEOSIR_EXTRACT_SIMPLIFY_H_

#include "geom/polyline.h"

namespace geosir::extract {

/// Douglas-Peucker segment approximation (the paper's "segment
/// approximation of boundaries", Section 6): vertices farther than
/// `tolerance` from the current chord are kept. Closed polylines are
/// anchored at the two mutually farthest vertices so the result stays a
/// sensible polygon.
geom::Polyline Simplify(const geom::Polyline& input, double tolerance);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_SIMPLIFY_H_
