#ifndef GEOSIR_EXTRACT_BOUNDARY_TRACE_H_
#define GEOSIR_EXTRACT_BOUNDARY_TRACE_H_

#include <vector>

#include "extract/raster.h"
#include "geom/polyline.h"

namespace geosir::extract {

/// Traces the outer boundary of every 8-connected foreground component
/// in the mask (Moore-neighbor tracing with Jacob's stopping criterion).
/// Each boundary is returned as a closed polyline of pixel centers, in
/// the order visited. Components smaller than `min_pixels` are skipped.
std::vector<geom::Polyline> TraceBoundaries(const Mask& mask,
                                            size_t min_pixels = 8);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_BOUNDARY_TRACE_H_
