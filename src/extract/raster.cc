#include "extract/raster.h"

#include <algorithm>

namespace geosir::extract {

size_t Mask::CountSet() const {
  return static_cast<size_t>(std::count_if(bits_.begin(), bits_.end(),
                                           [](uint8_t b) { return b != 0; }));
}

}  // namespace geosir::extract
