#include "extract/simplify.h"

#include <vector>

#include "geom/diameter.h"
#include "geom/distance.h"

namespace geosir::extract {

namespace {

using geom::Point;

void DouglasPeucker(const std::vector<Point>& pts, size_t lo, size_t hi,
                    double tolerance, std::vector<uint8_t>* keep) {
  if (hi <= lo + 1) return;
  const geom::Segment chord{pts[lo], pts[hi]};
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = geom::DistancePointSegment(pts[i], chord);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst <= tolerance) return;
  (*keep)[worst_idx] = 1;
  DouglasPeucker(pts, lo, worst_idx, tolerance, keep);
  DouglasPeucker(pts, worst_idx, hi, tolerance, keep);
}

}  // namespace

geom::Polyline Simplify(const geom::Polyline& input, double tolerance) {
  const std::vector<Point>& pts = input.vertices();
  const size_t n = pts.size();
  if (n <= 2) return input;

  std::vector<uint8_t> keep(n, 0);
  if (!input.closed()) {
    keep.front() = keep.back() = 1;
    DouglasPeucker(pts, 0, n - 1, tolerance, &keep);
  } else {
    // Anchor at the diameter pair, then simplify the two arcs. Work on a
    // rotated copy so each arc is contiguous.
    const geom::VertexPair diam = geom::Diameter(pts);
    size_t a = diam.i, b = diam.j;
    if (a == b) return input;
    std::vector<Point> rotated;
    rotated.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) rotated.push_back(pts[(a + i) % n]);
    rotated.push_back(pts[a]);  // Close the ring.
    const size_t split = (b + n - a) % n;
    std::vector<uint8_t> rkeep(rotated.size(), 0);
    rkeep[0] = rkeep[split] = 1;
    DouglasPeucker(rotated, 0, split, tolerance, &rkeep);
    DouglasPeucker(rotated, split, rotated.size() - 1, tolerance, &rkeep);
    std::vector<Point> out;
    for (size_t i = 0; i + 1 < rotated.size(); ++i) {
      if (rkeep[i]) out.push_back(rotated[i]);
    }
    if (out.size() < 3) {
      // Degenerate simplification; keep the anchors plus the farthest
      // remaining vertex to stay a polygon.
      return input;
    }
    return geom::Polyline::Closed(std::move(out));
  }

  std::vector<Point> out;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return geom::Polyline::Open(std::move(out));
}

}  // namespace geosir::extract
