#include "extract/chain_trace.h"

#include <array>

namespace geosir::extract {

namespace {

constexpr int kDx[8] = {-1, -1, 0, 1, 1, 1, 0, -1};
constexpr int kDy[8] = {0, -1, -1, -1, 0, 1, 1, 1};

struct Pixel {
  int x;
  int y;
};

class ChainTracer {
 public:
  explicit ChainTracer(const Mask& mask)
      : mask_(mask),
        visited_(static_cast<size_t>(mask.width()) * mask.height(), 0) {}

  std::vector<geom::Polyline> Trace(size_t min_pixels) {
    std::vector<geom::Polyline> chains;
    // Pass 1: walk from endpoints and junction-adjacent pixels (open
    // chains).
    for (int y = 0; y < mask_.height(); ++y) {
      for (int x = 0; x < mask_.width(); ++x) {
        if (!mask_.at(x, y) || Visited(x, y)) continue;
        const int degree = Degree(x, y);
        if (degree == 1 || degree > 2) {
          StartChainsFrom(Pixel{x, y}, min_pixels, &chains);
        }
      }
    }
    // Pass 2: leftover unvisited pixels belong to pure cycles.
    for (int y = 0; y < mask_.height(); ++y) {
      for (int x = 0; x < mask_.width(); ++x) {
        if (!mask_.at(x, y) || Visited(x, y)) continue;
        TraceCycle(Pixel{x, y}, min_pixels, &chains);
      }
    }
    return chains;
  }

 private:
  bool Visited(int x, int y) const {
    return visited_[static_cast<size_t>(y) * mask_.width() + x] != 0;
  }
  void MarkVisited(int x, int y) {
    visited_[static_cast<size_t>(y) * mask_.width() + x] = 1;
  }
  int Degree(int x, int y) const {
    int d = 0;
    for (int k = 0; k < 8; ++k) {
      if (mask_.Sample(x + kDx[k], y + kDy[k])) ++d;
    }
    return d;
  }

  /// Starts one open chain along every unvisited neighbor direction of a
  /// seed endpoint/junction.
  void StartChainsFrom(Pixel seed, size_t min_pixels,
                       std::vector<geom::Polyline>* chains) {
    MarkVisited(seed.x, seed.y);
    for (int k = 0; k < 8; ++k) {
      const int nx = seed.x + kDx[k];
      const int ny = seed.y + kDy[k];
      if (!mask_.Sample(nx, ny) || Visited(nx, ny)) continue;
      std::vector<geom::Point> pts{
          {seed.x + 0.5, seed.y + 0.5}};
      Pixel current{nx, ny};
      while (true) {
        MarkVisited(current.x, current.y);
        pts.push_back({current.x + 0.5, current.y + 0.5});
        if (Degree(current.x, current.y) > 2) break;  // Junction: stop.
        Pixel next{-1, -1};
        int choices = 0;
        for (int j = 0; j < 8; ++j) {
          const int cx = current.x + kDx[j];
          const int cy = current.y + kDy[j];
          if (!mask_.Sample(cx, cy) || Visited(cx, cy)) continue;
          next = Pixel{cx, cy};
          ++choices;
        }
        if (choices == 0) break;  // Other endpoint reached.
        current = next;           // choices is 1 on clean thin chains.
      }
      if (pts.size() >= min_pixels) {
        chains->push_back(geom::Polyline::Open(std::move(pts)));
      }
    }
  }

  /// Traces a closed cycle starting anywhere on it.
  void TraceCycle(Pixel seed, size_t min_pixels,
                  std::vector<geom::Polyline>* chains) {
    std::vector<geom::Point> pts;
    Pixel current = seed;
    while (true) {
      MarkVisited(current.x, current.y);
      pts.push_back({current.x + 0.5, current.y + 0.5});
      Pixel next{-1, -1};
      bool found = false;
      for (int j = 0; j < 8; ++j) {
        const int cx = current.x + kDx[j];
        const int cy = current.y + kDy[j];
        if (!mask_.Sample(cx, cy) || Visited(cx, cy)) continue;
        next = Pixel{cx, cy};
        found = true;
        break;
      }
      if (!found) break;
      current = next;
    }
    if (pts.size() >= std::max<size_t>(min_pixels, 3)) {
      chains->push_back(geom::Polyline::Closed(std::move(pts)));
    }
  }

  const Mask& mask_;
  std::vector<uint8_t> visited_;
};

}  // namespace

std::vector<geom::Polyline> TraceEdgeChains(const Mask& mask,
                                            size_t min_pixels) {
  return ChainTracer(mask).Trace(min_pixels);
}

}  // namespace geosir::extract
