#ifndef GEOSIR_EXTRACT_DECOMPOSE_H_
#define GEOSIR_EXTRACT_DECOMPOSE_H_

#include <vector>

#include "geom/polyline.h"

namespace geosir::extract {

/// Decomposes a (possibly self-intersecting) polyline into
/// non-self-intersecting pieces (Section 6: "each cluster is decomposed
/// in a number of non-self-intersecting polylines"). The algorithm cuts
/// at the first proper self-crossing, splitting off the enclosed loop as
/// a closed polyline and continuing on the shortcut remainder; simple
/// inputs are returned unchanged. The paper notes many decompositions
/// exist and does not prescribe one; this picks a deterministic,
/// loop-extracting one. Pieces with fewer than 2 distinct vertices are
/// dropped.
std::vector<geom::Polyline> DecomposeSelfIntersecting(
    const geom::Polyline& input);

}  // namespace geosir::extract

#endif  // GEOSIR_EXTRACT_DECOMPOSE_H_
