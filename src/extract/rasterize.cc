#include "extract/rasterize.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace geosir::extract {

void FillPolygon(Raster* raster, const geom::Polyline& polygon, float value) {
  if (!polygon.closed() || polygon.size() < 3) return;
  const geom::BoundingBox box = polygon.Bounds();
  const int y0 = std::max(0, static_cast<int>(std::floor(box.min_y)));
  const int y1 =
      std::min(raster->height() - 1, static_cast<int>(std::ceil(box.max_y)));
  const size_t n = polygon.NumEdges();
  std::vector<double> crossings;
  for (int y = y0; y <= y1; ++y) {
    const double cy = y + 0.5;
    crossings.clear();
    for (size_t i = 0; i < n; ++i) {
      const geom::Segment e = polygon.Edge(i);
      const bool a_above = e.a.y > cy;
      const bool b_above = e.b.y > cy;
      if (a_above == b_above) continue;
      const double t = (cy - e.a.y) / (e.b.y - e.a.y);
      crossings.push_back(e.a.x + t * (e.b.x - e.a.x));
    }
    std::sort(crossings.begin(), crossings.end());
    for (size_t c = 0; c + 1 < crossings.size(); c += 2) {
      const int x0 = std::max(
          0, static_cast<int>(std::ceil(crossings[c] - 0.5)));
      const int x1 = std::min(
          raster->width() - 1,
          static_cast<int>(std::floor(crossings[c + 1] - 0.5)));
      for (int x = x0; x <= x1; ++x) raster->set(x, y, value);
    }
  }
}

void StrokePolyline(Raster* raster, const geom::Polyline& polyline,
                    float value) {
  const size_t n = polyline.NumEdges();
  for (size_t i = 0; i < n; ++i) {
    const geom::Segment e = polyline.Edge(i);
    int x0 = static_cast<int>(std::lround(e.a.x));
    int y0 = static_cast<int>(std::lround(e.a.y));
    const int x1 = static_cast<int>(std::lround(e.b.x));
    const int y1 = static_cast<int>(std::lround(e.b.y));
    const int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
    const int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (true) {
      if (raster->InBounds(x0, y0)) raster->set(x0, y0, value);
      if (x0 == x1 && y0 == y1) break;
      const int e2 = 2 * err;
      if (e2 >= dy) {
        err += dy;
        x0 += sx;
      }
      if (e2 <= dx) {
        err += dx;
        y0 += sy;
      }
    }
  }
}

}  // namespace geosir::extract
