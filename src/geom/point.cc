#include "geom/point.h"

#include <ostream>

namespace geosir::geom {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

bool Triangle::Contains(Point p) const {
  const double d1 = (b - a).Cross(p - a);
  const double d2 = (c - b).Cross(p - b);
  const double d3 = (a - c).Cross(p - c);
  const bool has_neg = d1 < 0 || d2 < 0 || d3 < 0;
  const bool has_pos = d1 > 0 || d2 > 0 || d3 > 0;
  return !(has_neg && has_pos);
}

}  // namespace geosir::geom
