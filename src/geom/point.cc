#include "geom/point.h"

#include <ostream>

#include "geom/predicates.h"

namespace geosir::geom {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

bool Triangle::Contains(Point p) const {
  // Exact orientation signs: boundary points (sign 0) count as inside,
  // and sliver triangles cannot misclassify near-edge points.
  const int d1 = Orientation(a, b, p);
  const int d2 = Orientation(b, c, p);
  const int d3 = Orientation(c, a, p);
  const bool has_neg = d1 < 0 || d2 < 0 || d3 < 0;
  const bool has_pos = d1 > 0 || d2 > 0 || d3 > 0;
  return !(has_neg && has_pos);
}

}  // namespace geosir::geom
