#ifndef GEOSIR_GEOM_TRANSFORM_H_
#define GEOSIR_GEOM_TRANSFORM_H_

#include "geom/point.h"
#include "util/status.h"

namespace geosir::geom {

/// A direct similarity transform of the plane: uniform scale + rotation +
/// translation (no reflection). Stored as the complex-multiplication form
///   T(p) = M p + t,  M = [a -b; b a]
/// so composition and inversion are exact closed forms. These are exactly
/// the transforms used by diameter normalization (Section 2.4 of the
/// paper), whose inverses the query processor replays to recover the
/// original diameter direction (Section 5.3).
class AffineTransform {
 public:
  /// Identity transform.
  AffineTransform() : a_(1.0), b_(0.0), t_(0.0, 0.0) {}

  AffineTransform(double a, double b, Point t) : a_(a), b_(b), t_(t) {}

  static AffineTransform Identity() { return AffineTransform(); }
  static AffineTransform Translation(Point t) {
    return AffineTransform(1.0, 0.0, t);
  }
  static AffineTransform Rotation(double radians);
  static AffineTransform Scaling(double s) {
    return AffineTransform(s, 0.0, Point{0.0, 0.0});
  }

  /// The similarity that maps segment (p, q) onto ((0,0), (1,0)). Fails if
  /// p == q.
  static util::Result<AffineTransform> MapSegmentToUnitBase(Point p, Point q);

  Point Apply(Point p) const {
    return Point{a_ * p.x - b_ * p.y, b_ * p.x + a_ * p.y} + t_;
  }

  /// Applies only the linear part (for direction vectors).
  Point ApplyVector(Point v) const {
    return Point{a_ * v.x - b_ * v.y, b_ * v.x + a_ * v.y};
  }

  /// Composition: (this * other)(p) == this(other(p)).
  AffineTransform operator*(const AffineTransform& o) const;

  /// Inverse transform. Fails if the scale factor is zero.
  util::Result<AffineTransform> Inverse() const;

  double ScaleFactor() const { return Point{a_, b_}.Norm(); }
  double RotationAngle() const { return std::atan2(b_, a_); }
  Point translation() const { return t_; }
  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_;
  double b_;
  Point t_;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_TRANSFORM_H_
