#include "geom/kernel_dispatch.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"

namespace geosir::geom {

namespace {

/// Process-wide geom.kernel metric family, resolved once.
struct KernelMetrics {
  obs::Gauge* level;
  obs::Counter* batched_edges;

  static const KernelMetrics& Get() {
    static const KernelMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new KernelMetrics();
      m->level = r.GetGauge(
          "geosir_geom_kernel_level",
          "Batch geometry kernel tier the dispatcher selected "
          "(0=scalar, 1=avx2)");
      m->batched_edges = r.GetCounter(
          "geosir_geom_kernel_batched_edges_total",
          "Edge evaluations routed through the batch kernels");
      return m;
    }();
    return *metrics;
  }
};

bool ForceScalarEnv() {
  const char* v = std::getenv("GEOSIR_FORCE_SCALAR");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

KernelLevel ResolveKernelLevel() {
  KernelLevel level = KernelLevel::kScalar;
  if (!ForceScalarEnv() && internal::Avx2KernelCompiledIn() &&
      CpuSupportsAvx2Kernel()) {
    level = KernelLevel::kAvx2;
  }
  KernelMetrics::Get().level->Set(static_cast<int64_t>(level));
  return level;
}

}  // namespace

bool CpuSupportsAvx2Kernel() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelLevel ActiveKernelLevel() {
  static const KernelLevel level = ResolveKernelLevel();
  return level;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

double BatchMinDistanceSqScalar(const EdgeSpanView& span, Point p) {
  assert(std::isfinite(p.x) && std::isfinite(p.y) &&
         "batch kernel requires finite query points");
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < span.count; ++i) {
    // Canonical batch arithmetic (see edge_soa.h): every multiply-add is
    // a correctly rounded std::fma, clamps are written with the exact
    // comparison semantics of the vector min/max instructions, so the
    // AVX2 kernel reproduces this value bit for bit.
    const double qx = p.x - span.ax[i];
    const double qy = p.y - span.ay[i];
    const double dot = std::fma(qx, span.dx[i], qy * span.dy[i]);
    double t = dot * span.inv_len2[i];
    t = t > 0.0 ? t : 0.0;  // maxpd(t, 0): NaN/negative lanes become 0.
    t = t < 1.0 ? t : 1.0;  // minpd(t, 1).
    const double ex = std::fma(-t, span.dx[i], qx);
    const double ey = std::fma(-t, span.dy[i], qy);
    const double d2 = std::fma(ex, ex, ey * ey);
    best = d2 < best ? d2 : best;
  }
  return best;
}

double BatchMinDistanceSq(const EdgeSpanView& span, Point p) {
  if (ActiveKernelLevel() == KernelLevel::kAvx2) {
    return internal::BatchMinDistanceSqAvx2(span, p);
  }
  return BatchMinDistanceSqScalar(span, p);
}

void CountBatchedEdges(size_t edges) {
  if (edges == 0) return;
  KernelMetrics::Get().batched_edges->Inc(edges);
}

}  // namespace geosir::geom
