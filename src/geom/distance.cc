#include "geom/distance.h"

#include <algorithm>
#include <limits>

#include "geom/predicates.h"

namespace geosir::geom {

Point ClosestPointOnSegment(Point p, const Segment& s) {
  const Point d = s.Direction();
  const double len2 = d.SquaredNorm();
  if (len2 <= 0.0) return s.a;
  double t = (p - s.a).Dot(d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return s.At(t);
}

double DistancePointSegment(Point p, const Segment& s) {
  return Distance(p, ClosestPointOnSegment(p, s));
}

double DistancePointPolyline(Point p, const Polyline& shape) {
  const size_t n = shape.NumEdges();
  if (n == 0) {
    if (shape.empty()) return std::numeric_limits<double>::infinity();
    return Distance(p, shape.vertex(0));
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    best = std::min(best, DistancePointSegment(p, shape.Edge(i)));
  }
  return best;
}

double DistancePointVertices(Point p, const Polyline& shape) {
  double best = std::numeric_limits<double>::infinity();
  for (Point v : shape.vertices()) best = std::min(best, Distance(p, v));
  return best;
}

double DistanceSegmentSegment(const Segment& s1, const Segment& s2) {
  if (SegmentsIntersect(s1, s2)) return 0.0;
  return std::min(std::min(DistancePointSegment(s1.a, s2),
                           DistancePointSegment(s1.b, s2)),
                  std::min(DistancePointSegment(s2.a, s1),
                           DistancePointSegment(s2.b, s1)));
}

double DistancePolylinePolyline(const Polyline& a, const Polyline& b) {
  const size_t na = a.NumEdges();
  const size_t nb = b.NumEdges();
  if (na == 0 || nb == 0) {
    double best = std::numeric_limits<double>::infinity();
    if (na == 0 && !a.empty()) {
      for (Point p : a.vertices()) {
        best = std::min(best, DistancePointPolyline(p, b));
      }
      return best;
    }
    if (nb == 0 && !b.empty()) {
      for (Point p : b.vertices()) {
        best = std::min(best, DistancePointPolyline(p, a));
      }
      return best;
    }
    return best;
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      best = std::min(best, DistanceSegmentSegment(a.Edge(i), b.Edge(j)));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace geosir::geom
