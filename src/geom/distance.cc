#include "geom/distance.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "geom/predicates.h"

namespace geosir::geom {

Point ClosestPointOnSegment(Point p, const Segment& s) {
  assert(std::isfinite(p.x) && std::isfinite(p.y) &&
         std::isfinite(s.a.x) && std::isfinite(s.a.y) &&
         std::isfinite(s.b.x) && std::isfinite(s.b.y) &&
         "ClosestPointOnSegment requires finite input: a NaN/inf "
         "coordinate makes t NaN and std::clamp(NaN,...) leaks it");
  const Point d = s.Direction();
  const double len2 = d.SquaredNorm();
  if (len2 <= 0.0) return s.a;
  double t = (p - s.a).Dot(d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return s.At(t);
}

double DistancePointSegment(Point p, const Segment& s) {
  return Distance(p, ClosestPointOnSegment(p, s));
}

double DistancePointPolyline(Point p, const Polyline& shape) {
  const size_t n = shape.NumEdges();
  if (n == 0) {
    if (shape.empty()) return std::numeric_limits<double>::infinity();
    return Distance(p, shape.vertex(0));
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    best = std::min(best, DistancePointSegment(p, shape.Edge(i)));
  }
  return best;
}

double DistancePointVertices(Point p, const Polyline& shape) {
  double best = std::numeric_limits<double>::infinity();
  for (Point v : shape.vertices()) best = std::min(best, Distance(p, v));
  return best;
}

double DistanceSegmentSegment(const Segment& s1, const Segment& s2) {
  if (SegmentsIntersect(s1, s2)) return 0.0;
  return std::min(std::min(DistancePointSegment(s1.a, s2),
                           DistancePointSegment(s1.b, s2)),
                  std::min(DistancePointSegment(s2.a, s1),
                           DistancePointSegment(s2.b, s1)));
}

double DistancePolylinePolyline(const Polyline& a, const Polyline& b) {
  const size_t na = a.NumEdges();
  const size_t nb = b.NumEdges();
  if (na == 0 || nb == 0) {
    double best = std::numeric_limits<double>::infinity();
    if (na == 0 && !a.empty()) {
      for (Point p : a.vertices()) {
        best = std::min(best, DistancePointPolyline(p, b));
      }
      return best;
    }
    if (nb == 0 && !b.empty()) {
      for (Point p : b.vertices()) {
        best = std::min(best, DistancePointPolyline(p, a));
      }
      return best;
    }
    return best;
  }
  // Per-edge bounding boxes of b, hoisted out of the pair loop. The
  // box-box gap is a lower bound on the segment-segment distance, so any
  // pair whose bound (with a relative rounding margin) exceeds the
  // running best cannot be the minimizer and is skipped without changing
  // the result.
  struct EdgeBox {
    double lox, hix, loy, hiy;
  };
  std::vector<EdgeBox> b_boxes(nb);
  for (size_t j = 0; j < nb; ++j) {
    const Segment e = b.Edge(j);
    b_boxes[j] = {std::min(e.a.x, e.b.x), std::max(e.a.x, e.b.x),
                  std::min(e.a.y, e.b.y), std::max(e.a.y, e.b.y)};
  }
  double best = std::numeric_limits<double>::infinity();
  double best_sq = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < na; ++i) {
    const Segment ea = a.Edge(i);
    const EdgeBox ba{std::min(ea.a.x, ea.b.x), std::max(ea.a.x, ea.b.x),
                     std::min(ea.a.y, ea.b.y), std::max(ea.a.y, ea.b.y)};
    for (size_t j = 0; j < nb; ++j) {
      const EdgeBox& bb = b_boxes[j];
      const double gx = std::max({0.0, ba.lox - bb.hix, bb.lox - ba.hix});
      const double gy = std::max({0.0, ba.loy - bb.hiy, bb.loy - ba.hiy});
      const double lb_sq = gx * gx + gy * gy;
      // 1+1e-12 margin: even with a few ulps of rounding in lb_sq, a
      // skipped pair is provably farther than the running best.
      if (lb_sq > best_sq * (1.0 + 1e-12)) continue;
      const double d = DistanceSegmentSegment(ea, b.Edge(j));
      if (d < best) {
        best = d;
        best_sq = d * d;
      }
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace geosir::geom
