#ifndef GEOSIR_GEOM_CONVEX_HULL_H_
#define GEOSIR_GEOM_CONVEX_HULL_H_

#include <vector>

#include "geom/point.h"

namespace geosir::geom {

/// Convex hull by Andrew's monotone chain, counterclockwise, without
/// collinear points on the hull boundary. Degenerate inputs (all points
/// collinear) return the two extreme points; a single point returns itself.
std::vector<Point> ConvexHull(std::vector<Point> points);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_CONVEX_HULL_H_
