#include "geom/transform.h"

#include <cmath>

namespace geosir::geom {

AffineTransform AffineTransform::Rotation(double radians) {
  return AffineTransform(std::cos(radians), std::sin(radians),
                         Point{0.0, 0.0});
}

util::Result<AffineTransform> AffineTransform::MapSegmentToUnitBase(Point p,
                                                                    Point q) {
  const Point d = q - p;
  const double len2 = d.SquaredNorm();
  if (len2 <= 0.0) {
    return util::Status::InvalidArgument(
        "MapSegmentToUnitBase: degenerate segment");
  }
  // We need M d = (1, 0) with M = [a -b; b a]:
  //   a dx - b dy = 1,  b dx + a dy = 0  =>  a = dx/|d|^2, b = -dy/|d|^2.
  const double a = d.x / len2;
  const double b = -d.y / len2;
  // Translation: T(p) must be the origin.
  const Point mp{a * p.x - b * p.y, b * p.x + a * p.y};
  return AffineTransform(a, b, -mp);
}

AffineTransform AffineTransform::operator*(const AffineTransform& o) const {
  // Linear parts multiply as complex numbers (a + ib)(a' + ib').
  const double a = a_ * o.a_ - b_ * o.b_;
  const double b = a_ * o.b_ + b_ * o.a_;
  return AffineTransform(a, b, Apply(o.t_) /* == M t' + t */);
}

util::Result<AffineTransform> AffineTransform::Inverse() const {
  const double det = a_ * a_ + b_ * b_;
  if (det <= 0.0) {
    return util::Status::FailedPrecondition(
        "AffineTransform::Inverse: zero scale");
  }
  const double ia = a_ / det;
  const double ib = -b_ / det;
  const Point it{-(ia * t_.x - ib * t_.y), -(ib * t_.x + ia * t_.y)};
  return AffineTransform(ia, ib, it);
}

}  // namespace geosir::geom
