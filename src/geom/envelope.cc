#include "geom/envelope.h"

#include <cassert>
#include <cmath>

#include "geom/distance.h"

namespace geosir::geom {

bool InEnvelope(const Polyline& shape, Point p, double eps) {
  return DistancePointPolyline(p, shape) <= eps;
}

bool InEnvelopeRing(const Polyline& shape, Point p, double inner_eps,
                    double outer_eps) {
  const double d = DistancePointPolyline(p, shape);
  if (inner_eps <= 0.0) return d <= outer_eps;
  return d > inner_eps && d <= outer_eps;
}

namespace {

void PushQuad(std::vector<Triangle>* out, Point p0, Point p1, Point p2,
              Point p3) {
  out->push_back(Triangle{p0, p1, p2});
  out->push_back(Triangle{p0, p2, p3});
}

}  // namespace

EnvelopeRingCover BuildEnvelopeRingCover(const Polyline& shape,
                                         double inner_eps, double outer_eps) {
  assert(inner_eps >= 0.0 && outer_eps > inner_eps);
  EnvelopeRingCover cover;
  cover.inner_eps = inner_eps;
  cover.outer_eps = outer_eps;

  const size_t num_edges = shape.NumEdges();
  cover.triangles.reserve(4 * num_edges + 2 * shape.size());

  // Edge bands: for points whose nearest feature is an edge interior the
  // ring restricted to that edge is exactly two offset trapezoids (here
  // rectangles, since offset lines are parallel to the edge).
  for (size_t i = 0; i < num_edges; ++i) {
    const Segment e = shape.Edge(i);
    const Point n = e.Direction().Perp().Normalized();
    if (n.SquaredNorm() == 0.0) continue;  // Degenerate edge.
    for (double side : {1.0, -1.0}) {
      const Point lo = n * (side * inner_eps);
      const Point hi = n * (side * outer_eps);
      if (inner_eps > 0.0) {
        PushQuad(&cover.triangles, e.a + lo, e.b + lo, e.b + hi, e.a + hi);
      } else if (side > 0.0) {
        // inner_eps == 0: the two side bands merge into one band of full
        // width 2*outer_eps; emit it once.
        PushQuad(&cover.triangles, e.a - n * outer_eps, e.b - n * outer_eps,
                 e.b + n * outer_eps, e.a + n * outer_eps);
      }
    }
  }

  // Vertex regions: points whose nearest feature is a vertex lie in the
  // annulus inner_eps < |p - v| <= outer_eps. Cover it with a square
  // "picture frame": the outer square minus a hole inscribed in the
  // inner circle. Leaving the hole out matters: the shape base clusters
  // thousands of vertices exactly on the query boundary (every
  // normalized copy passes through (0,0) and (1,0)), and a full square
  // would re-report them at every iteration.
  const double hole = inner_eps / std::sqrt(2.0);
  for (Point v : shape.vertices()) {
    if (inner_eps <= 0.0) {
      const Point d{outer_eps, outer_eps};
      PushQuad(&cover.triangles, v - d,
               Point{v.x + outer_eps, v.y - outer_eps}, v + d,
               Point{v.x - outer_eps, v.y + outer_eps});
      continue;
    }
    // Top and bottom strips span the full width; left and right strips
    // fill the remaining band beside the hole.
    PushQuad(&cover.triangles, Point{v.x - outer_eps, v.y + hole},
             Point{v.x + outer_eps, v.y + hole},
             Point{v.x + outer_eps, v.y + outer_eps},
             Point{v.x - outer_eps, v.y + outer_eps});
    PushQuad(&cover.triangles, Point{v.x - outer_eps, v.y - outer_eps},
             Point{v.x + outer_eps, v.y - outer_eps},
             Point{v.x + outer_eps, v.y - hole},
             Point{v.x - outer_eps, v.y - hole});
    PushQuad(&cover.triangles, Point{v.x - outer_eps, v.y - hole},
             Point{v.x - hole, v.y - hole}, Point{v.x - hole, v.y + hole},
             Point{v.x - outer_eps, v.y + hole});
    PushQuad(&cover.triangles, Point{v.x + hole, v.y - hole},
             Point{v.x + outer_eps, v.y - hole},
             Point{v.x + outer_eps, v.y + hole},
             Point{v.x + hole, v.y + hole});
  }
  return cover;
}

double EnvelopeAreaEstimate(const Polyline& shape, double eps) {
  const double perimeter = shape.Perimeter();
  constexpr double kPi = 3.14159265358979323846;
  return 2.0 * eps * perimeter + kPi * eps * eps;
}

}  // namespace geosir::geom
