#ifndef GEOSIR_GEOM_DIAMETER_H_
#define GEOSIR_GEOM_DIAMETER_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace geosir::geom {

/// A pair of vertex indices into the original point sequence together with
/// their Euclidean distance.
struct VertexPair {
  size_t i = 0;
  size_t j = 0;
  double distance = 0.0;
};

/// Computes the diameter (farthest vertex pair) of a point set by convex
/// hull + rotating calipers, O(n log n). Returns indices into `points`.
/// Degenerate inputs (< 2 points) yield distance 0 with i == j == 0.
VertexPair Diameter(const std::vector<Point>& points);

/// All alpha-diameters of a point set (Section 2.4): vertex pairs whose
/// distance is at least (1 - alpha) times the diameter, 0 <= alpha < 1.
/// The true diameter pair is always first; the rest are ordered by
/// decreasing distance. O(n^2) scan after the hull-based diameter — shape
/// vertex counts are small constants in this system.
std::vector<VertexPair> AlphaDiameters(const std::vector<Point>& points,
                                       double alpha);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_DIAMETER_H_
