#include "geom/convex_hull.h"

#include <algorithm>

namespace geosir::geom {

std::vector<Point> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](Point a, Point b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  for (size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t &&
           (hull[k - 1] - hull[k - 2]).Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return hull;
}

}  // namespace geosir::geom
