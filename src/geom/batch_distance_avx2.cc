// AVX2+FMA batch point-to-segment distance kernel. This is the only
// translation unit built with -mavx2 -mfma (see src/CMakeLists.txt); the
// functions here are called through geom::KernelDispatch exclusively on
// hosts whose CPUID reports both features, so no AVX2 instruction can
// leak onto an unsupported machine.
//
// Bit-identity with the scalar oracle (kernel_dispatch.cc): every
// operation below maps 1:1 onto the canonical batch arithmetic —
// vfmadd/vfnmadd are the same correctly rounded fused ops as std::fma,
// vmaxpd/vminpd have the "return second operand on NaN" semantics the
// scalar clamps spell out, and the horizontal minimum of exact lane
// values is order-independent. The differential fuzz harness in
// tests/geom_property_test.cc holds this equality across adversarial
// corpora.

#include "geom/kernel_dispatch.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include <cassert>
#include <cmath>
#include <limits>

namespace geosir::geom::internal {

bool Avx2KernelCompiledIn() { return true; }

double BatchMinDistanceSqAvx2(const EdgeSpanView& span, Point p) {
  assert(std::isfinite(p.x) && std::isfinite(p.y) &&
         "batch kernel requires finite query points");
  const size_t n = span.count;
  double best = std::numeric_limits<double>::infinity();

  const __m256d px = _mm256_set1_pd(p.x);
  const __m256d py = _mm256_set1_pd(p.y);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d best0 = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d best1 = best0;

  // Eight edges per iteration: two independent 4-lane chains hide the
  // FMA latency behind each other.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d qx0 = _mm256_sub_pd(px, _mm256_loadu_pd(span.ax + i));
    const __m256d qy0 = _mm256_sub_pd(py, _mm256_loadu_pd(span.ay + i));
    const __m256d qx1 = _mm256_sub_pd(px, _mm256_loadu_pd(span.ax + i + 4));
    const __m256d qy1 = _mm256_sub_pd(py, _mm256_loadu_pd(span.ay + i + 4));
    const __m256d dx0 = _mm256_loadu_pd(span.dx + i);
    const __m256d dy0 = _mm256_loadu_pd(span.dy + i);
    const __m256d dx1 = _mm256_loadu_pd(span.dx + i + 4);
    const __m256d dy1 = _mm256_loadu_pd(span.dy + i + 4);

    const __m256d dot0 = _mm256_fmadd_pd(qx0, dx0, _mm256_mul_pd(qy0, dy0));
    const __m256d dot1 = _mm256_fmadd_pd(qx1, dx1, _mm256_mul_pd(qy1, dy1));
    __m256d t0 = _mm256_mul_pd(dot0, _mm256_loadu_pd(span.inv_len2 + i));
    __m256d t1 = _mm256_mul_pd(dot1, _mm256_loadu_pd(span.inv_len2 + i + 4));
    t0 = _mm256_min_pd(_mm256_max_pd(t0, zero), one);
    t1 = _mm256_min_pd(_mm256_max_pd(t1, zero), one);

    const __m256d ex0 = _mm256_fnmadd_pd(t0, dx0, qx0);
    const __m256d ey0 = _mm256_fnmadd_pd(t0, dy0, qy0);
    const __m256d ex1 = _mm256_fnmadd_pd(t1, dx1, qx1);
    const __m256d ey1 = _mm256_fnmadd_pd(t1, dy1, qy1);
    const __m256d d20 = _mm256_fmadd_pd(ex0, ex0, _mm256_mul_pd(ey0, ey0));
    const __m256d d21 = _mm256_fmadd_pd(ex1, ex1, _mm256_mul_pd(ey1, ey1));
    // d2 is never NaN for finite inputs, so minpd's NaN asymmetry is
    // moot here; lane values match the scalar chain exactly.
    best0 = _mm256_min_pd(best0, d20);
    best1 = _mm256_min_pd(best1, d21);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d qx0 = _mm256_sub_pd(px, _mm256_loadu_pd(span.ax + i));
    const __m256d qy0 = _mm256_sub_pd(py, _mm256_loadu_pd(span.ay + i));
    const __m256d dx0 = _mm256_loadu_pd(span.dx + i);
    const __m256d dy0 = _mm256_loadu_pd(span.dy + i);
    const __m256d dot0 = _mm256_fmadd_pd(qx0, dx0, _mm256_mul_pd(qy0, dy0));
    __m256d t0 = _mm256_mul_pd(dot0, _mm256_loadu_pd(span.inv_len2 + i));
    t0 = _mm256_min_pd(_mm256_max_pd(t0, zero), one);
    const __m256d ex0 = _mm256_fnmadd_pd(t0, dx0, qx0);
    const __m256d ey0 = _mm256_fnmadd_pd(t0, dy0, qy0);
    best0 = _mm256_min_pd(best0,
                          _mm256_fmadd_pd(ex0, ex0, _mm256_mul_pd(ey0, ey0)));
  }

  const __m256d lanes = _mm256_min_pd(best0, best1);
  const __m128d lo =
      _mm_min_pd(_mm256_castpd256_pd128(lanes), _mm256_extractf128_pd(lanes, 1));
  best = _mm_cvtsd_f64(_mm_min_sd(lo, _mm_unpackhi_pd(lo, lo)));

  // Scalar-canonical tail (< 4 edges): identical arithmetic, and on this
  // TU std::fma compiles to the same vfmadd the vector loop uses.
  for (; i < n; ++i) {
    const double qx = p.x - span.ax[i];
    const double qy = p.y - span.ay[i];
    const double dot = std::fma(qx, span.dx[i], qy * span.dy[i]);
    double t = dot * span.inv_len2[i];
    t = t > 0.0 ? t : 0.0;
    t = t < 1.0 ? t : 1.0;
    const double ex = std::fma(-t, span.dx[i], qx);
    const double ey = std::fma(-t, span.dy[i], qy);
    const double d2 = std::fma(ex, ex, ey * ey);
    best = d2 < best ? d2 : best;
  }
  return best;
}

}  // namespace geosir::geom::internal

#else  // No AVX2 codegen available: the dispatcher never selects this.

namespace geosir::geom::internal {
bool Avx2KernelCompiledIn() { return false; }
double BatchMinDistanceSqAvx2(const EdgeSpanView& span, Point p) {
  return BatchMinDistanceSqScalar(span, p);
}
}  // namespace geosir::geom::internal

#endif
