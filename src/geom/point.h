#ifndef GEOSIR_GEOM_POINT_H_
#define GEOSIR_GEOM_POINT_H_

#include <cmath>
#include <iosfwd>

namespace geosir::geom {

/// A 2D point / vector. Kept as a trivially copyable value type; the
/// distinction between points and displacement vectors is by convention.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }
  constexpr Point operator-() const { return {-x, -y}; }
  Point& operator+=(Point o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(Point o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr double Dot(Point o) const { return x * o.x + y * o.y; }
  /// Z component of the 3D cross product (signed parallelogram area).
  constexpr double Cross(Point o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::hypot(x, y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
  /// Counterclockwise rotation by 90 degrees.
  constexpr Point Perp() const { return {-y, x}; }
  /// Unit-length copy; the zero vector is returned unchanged.
  Point Normalized() const {
    double n = Norm();
    return n > 0.0 ? Point{x / n, y / n} : *this;
  }

  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(Point a, Point b) { return !(a == b); }
};

constexpr Point operator*(double s, Point p) { return p * s; }

inline double Distance(Point a, Point b) { return (a - b).Norm(); }
inline constexpr double SquaredDistance(Point a, Point b) {
  return (a - b).SquaredNorm();
}

std::ostream& operator<<(std::ostream& os, Point p);

/// A directed line segment.
struct Segment {
  Point a;
  Point b;

  Point Direction() const { return b - a; }
  double Length() const { return Distance(a, b); }
  Point Midpoint() const { return (a + b) * 0.5; }
  /// Point at parameter t in [0,1] along the segment.
  Point At(double t) const { return a + (b - a) * t; }
};

/// An axis-aligned bounding box. Default-constructed boxes are empty and
/// absorb points via Extend().
struct BoundingBox {
  double min_x = 1.0;
  double min_y = 1.0;
  double max_x = 0.0;
  double max_y = 0.0;

  BoundingBox() = default;
  BoundingBox(Point lo, Point hi)
      : min_x(lo.x), min_y(lo.y), max_x(hi.x), max_y(hi.y) {}

  bool empty() const { return min_x > max_x || min_y > max_y; }

  void Extend(Point p) {
    if (empty()) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      return;
    }
    if (p.x < min_x) min_x = p.x;
    if (p.x > max_x) max_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.y > max_y) max_y = p.y;
  }

  void Extend(const BoundingBox& o) {
    if (o.empty()) return;
    Extend(Point{o.min_x, o.min_y});
    Extend(Point{o.max_x, o.max_y});
  }

  /// Grows the box by `margin` on every side.
  void Inflate(double margin) {
    if (empty()) return;
    min_x -= margin;
    min_y -= margin;
    max_x += margin;
    max_y += margin;
  }

  bool Contains(Point p) const {
    return !empty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  bool Intersects(const BoundingBox& o) const {
    return !empty() && !o.empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  double Width() const { return empty() ? 0.0 : max_x - min_x; }
  double Height() const { return empty() ? 0.0 : max_y - min_y; }
  Point Center() const { return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5}; }
};

/// A triangle given by its three corners, in any orientation.
struct Triangle {
  Point a;
  Point b;
  Point c;

  BoundingBox Bounds() const {
    BoundingBox box;
    box.Extend(a);
    box.Extend(b);
    box.Extend(c);
    return box;
  }

  /// Signed area (positive when a,b,c are counterclockwise).
  double SignedArea() const { return 0.5 * (b - a).Cross(c - a); }

  /// Inclusive containment test (boundary points count as inside).
  bool Contains(Point p) const;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_POINT_H_
