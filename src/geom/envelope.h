#ifndef GEOSIR_GEOM_ENVELOPE_H_
#define GEOSIR_GEOM_ENVELOPE_H_

#include <vector>

#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// The eps-envelope of a query shape Q (Section 2.3) is the set of points
/// within distance eps of Q's boundary. We adopt the Minkowski-disk
/// definition {p : dist(p, Q) <= eps}, which matches the paper's "lines
/// parallel to the query shape edges at distance eps on either side" along
/// the edges and closes the corners with arcs; membership is then the
/// exact predicate dist(p, Q) <= eps regardless of join style.
///
/// The matcher queries the *difference ring* between two consecutive
/// envelopes through a simplex range-searching structure. The ring is not
/// triangulated exactly; instead we produce a small O(m) set of triangles
/// whose union is a superset of the ring (edge bands plus vertex squares),
/// and the matcher filters reported vertices with the exact membership
/// predicate. This preserves the paper's complexity shape (O(m) triangles,
/// output-sensitive reporting) while being robust to corner cases.
struct EnvelopeRingCover {
  double inner_eps = 0.0;
  double outer_eps = 0.0;
  std::vector<Triangle> triangles;
};

/// True iff p lies in the eps-envelope of `shape`.
bool InEnvelope(const Polyline& shape, Point p, double eps);

/// True iff p lies in the half-open ring (inner_eps, outer_eps].
/// For inner_eps == 0 the shape boundary itself (distance 0) is included.
bool InEnvelopeRing(const Polyline& shape, Point p, double inner_eps,
                    double outer_eps);

/// Builds the triangle superset cover of the ring between the inner_eps-
/// and outer_eps-envelopes of `shape`. Requires 0 <= inner_eps <
/// outer_eps. Produces at most 4 triangles per edge plus 8 per vertex
/// (annulus frames) — still O(m), matching the paper's decomposition
/// bound.
EnvelopeRingCover BuildEnvelopeRingCover(const Polyline& shape,
                                         double inner_eps, double outer_eps);

/// Area of the eps-envelope under the Minkowski-disk definition, computed
/// as perimeter-based upper estimate: 2*eps*perimeter + pi*eps^2 for open
/// polylines; closed polygons use the same boundary-band formula (the
/// envelope of a polygon boundary, not of its interior). Used by the
/// matcher's expected-occupancy heuristics.
double EnvelopeAreaEstimate(const Polyline& shape, double eps);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_ENVELOPE_H_
