#include "geom/diameter.h"

#include <algorithm>
#include <cmath>

#include "geom/convex_hull.h"

namespace geosir::geom {

namespace {

// Maps each hull point back to an index in the original sequence (first
// occurrence wins; exact comparison is fine because hull points are copies
// of input points).
size_t IndexOf(const std::vector<Point>& points, Point p) {
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i] == p) return i;
  }
  return 0;  // Unreachable for hull points.
}

}  // namespace

VertexPair Diameter(const std::vector<Point>& points) {
  VertexPair best;
  if (points.size() < 2) return best;

  const std::vector<Point> hull = ConvexHull(points);
  const size_t h = hull.size();
  if (h == 1) return best;
  if (h == 2) {
    best.i = IndexOf(points, hull[0]);
    best.j = IndexOf(points, hull[1]);
    best.distance = Distance(hull[0], hull[1]);
    return best;
  }

  // Rotating calipers over antipodal pairs.
  double best_sq = -1.0;
  Point best_a, best_b;
  size_t k = 1;
  for (size_t i = 0; i < h; ++i) {
    const Point edge = hull[(i + 1) % h] - hull[i];
    // Advance k while the next vertex is farther from edge i.
    while (std::fabs(edge.Cross(hull[(k + 1) % h] - hull[i])) >
           std::fabs(edge.Cross(hull[k] - hull[i]))) {
      k = (k + 1) % h;
    }
    for (Point cand : {hull[i], hull[(i + 1) % h]}) {
      const double d = SquaredDistance(cand, hull[k]);
      if (d > best_sq) {
        best_sq = d;
        best_a = cand;
        best_b = hull[k];
      }
    }
  }
  best.i = IndexOf(points, best_a);
  best.j = IndexOf(points, best_b);
  best.distance = std::sqrt(best_sq);
  if (best.i > best.j) std::swap(best.i, best.j);
  return best;
}

std::vector<VertexPair> AlphaDiameters(const std::vector<Point>& points,
                                       double alpha) {
  std::vector<VertexPair> result;
  const VertexPair diam = Diameter(points);
  if (diam.distance <= 0.0) return result;
  const double threshold = (1.0 - alpha) * diam.distance;

  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const double d = Distance(points[i], points[j]);
      if (d >= threshold) result.push_back(VertexPair{i, j, d});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const VertexPair& a, const VertexPair& b) {
              if (a.distance != b.distance) return a.distance > b.distance;
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
  return result;
}

}  // namespace geosir::geom
