#include "geom/edge_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/kernel_dispatch.h"

namespace geosir::geom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Squared distance from p to an axis-aligned box (0 inside). Squared so
/// the ring stopping rule can compare against the kernel's squared
/// minima without taking a root per ring.
double DistanceSqPointBox(Point p, double min_x, double min_y, double max_x,
                          double max_y) {
  const double dx = std::max({0.0, min_x - p.x, p.x - max_x});
  const double dy = std::max({0.0, min_y - p.y, p.y - max_y});
  return dx * dx + dy * dy;
}

size_t ClampCell(double coord, double origin, double cell, size_t n) {
  const double t = std::floor((coord - origin) / cell);
  if (!(t > 0.0)) return 0;  // Also catches NaN from degenerate cells.
  if (t >= static_cast<double>(n)) return n - 1;
  return static_cast<size_t>(t);
}

}  // namespace

EdgeGrid::EdgeGrid(const Polyline& shape) {
  num_edges_ = shape.NumEdges();
  if (num_edges_ == 0) {
    if (!shape.empty()) {
      has_vertex_ = true;
      vertex_ = shape.vertex(0);
    }
    return;
  }
  std::vector<Segment> segments;
  segments.reserve(num_edges_);
  double perimeter = 0.0;
  BoundingBox bounds;
  for (size_t i = 0; i < num_edges_; ++i) {
    const Segment e = shape.Edge(i);
    perimeter += e.Length();
    bounds.Extend(e.a);
    bounds.Extend(e.b);
    segments.push_back(e);
  }
  x0_ = bounds.min_x;
  y0_ = bounds.min_y;
  const double width = bounds.Width();
  const double height = bounds.Height();

  // Cell size ~ the average edge length, so a typical edge occupies O(1)
  // cells; total cell count is capped at O(E) to keep space linear (the
  // cap binds for long skinny shapes, where cells simply get coarser).
  const size_t e = segments.size();
  double cell = std::max(perimeter / static_cast<double>(e), 1e-12);
  const size_t max_cells = 4 * e + 8;
  const auto dims_for = [&](double c) {
    nx_ = std::max<size_t>(1, static_cast<size_t>(std::ceil(width / c)));
    ny_ = std::max<size_t>(1, static_cast<size_t>(std::ceil(height / c)));
  };
  dims_for(cell);
  if (nx_ * ny_ > max_cells) {
    cell *= std::sqrt(static_cast<double>(nx_ * ny_) /
                      static_cast<double>(max_cells));
    dims_for(cell);
    nx_ = std::min(nx_, max_cells);
    ny_ = std::min(ny_, std::max<size_t>(1, max_cells / nx_));
  }
  cell_w_ = width > 0.0 ? width / static_cast<double>(nx_) : 1.0;
  cell_h_ = height > 0.0 ? height / static_cast<double>(ny_) : 1.0;

  // Bucket each edge into every cell its AABB overlaps: counting pass,
  // then a CSR fill that materializes the SoA payload per cell — the
  // edge's kernel representation is copied into each bucket so queries
  // stream contiguous memory instead of gathering through an index.
  cell_start_.assign(nx_ * ny_ + 1, 0);
  const auto cell_range = [&](const Segment& s, size_t* ix0, size_t* ix1,
                              size_t* iy0, size_t* iy1) {
    *ix0 = ClampCell(std::min(s.a.x, s.b.x), x0_, cell_w_, nx_);
    *ix1 = ClampCell(std::max(s.a.x, s.b.x), x0_, cell_w_, nx_);
    *iy0 = ClampCell(std::min(s.a.y, s.b.y), y0_, cell_h_, ny_);
    *iy1 = ClampCell(std::max(s.a.y, s.b.y), y0_, cell_h_, ny_);
  };
  for (const Segment& s : segments) {
    size_t ix0, ix1, iy0, iy1;
    cell_range(s, &ix0, &ix1, &iy0, &iy1);
    for (size_t cy = iy0; cy <= iy1; ++cy) {
      for (size_t cx = ix0; cx <= ix1; ++cx) {
        ++cell_start_[cy * nx_ + cx + 1];
      }
    }
  }
  for (size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  const size_t slots = cell_start_.back();
  soa_ax_.resize(slots);
  soa_ay_.resize(slots);
  soa_dx_.resize(slots);
  soa_dy_.resize(slots);
  soa_inv_len2_.resize(slots);
  std::vector<uint32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
  for (const Segment& s : segments) {
    const double dx = s.b.x - s.a.x;
    const double dy = s.b.y - s.a.y;
    const double len2 = dx * dx + dy * dy;
    // Same degenerate-edge rule as EdgeSoA: zero/overflowing reciprocals
    // become 0 so the kernel measures the distance to the start point.
    const double inv = len2 > 0.0 ? 1.0 / len2 : 0.0;
    const double inv_len2 = std::isfinite(inv) ? inv : 0.0;
    size_t ix0, ix1, iy0, iy1;
    cell_range(s, &ix0, &ix1, &iy0, &iy1);
    for (size_t cy = iy0; cy <= iy1; ++cy) {
      for (size_t cx = ix0; cx <= ix1; ++cx) {
        const uint32_t k = fill[cy * nx_ + cx]++;
        soa_ax_[k] = s.a.x;
        soa_ay_[k] = s.a.y;
        soa_dx_[k] = dx;
        soa_dy_[k] = dy;
        soa_inv_len2_[k] = inv_len2;
      }
    }
  }
}

size_t EdgeGrid::ScanRange(size_t lo, size_t hi, Point p,
                           double* best_sq) const {
  if (lo >= hi) return 0;
  const EdgeSpanView span{soa_ax_.data() + lo,       soa_ay_.data() + lo,
                          soa_dx_.data() + lo,       soa_dy_.data() + lo,
                          soa_inv_len2_.data() + lo, hi - lo};
  const double d2 = BatchMinDistanceSq(span, p);
  if (d2 < *best_sq) *best_sq = d2;
  return hi - lo;
}

double EdgeGrid::Distance(Point p) const {
  if (num_edges_ == 0) {
    return has_vertex_ ? geom::Distance(p, vertex_) : kInf;
  }
  const size_t cx = ClampCell(p.x, x0_, cell_w_, nx_);
  const size_t cy = ClampCell(p.y, y0_, cell_h_, ny_);
  const double grid_max_x = x0_ + static_cast<double>(nx_) * cell_w_;
  const double grid_max_y = y0_ + static_cast<double>(ny_) * cell_h_;

  // All comparisons run on squared distances: the kernel returns exact
  // (canonically rounded) squared minima, sqrt is monotone and correctly
  // rounded, so folding the root to the very end returns the same value
  // bit for bit as rooting every bucket scan.
  double best_sq = kInf;
  size_t scanned = 0;
  const size_t home = cy * nx_ + cx;
  scanned += ScanRange(cell_start_[home], cell_start_[home + 1], p, &best_sq);
  for (size_t r = 1;; ++r) {
    // Everything not yet scanned was bucketed only into cells outside the
    // box of rings 0..r-1, so it lies inside the grid bounds but outside
    // that box; stop once `best` beats the distance to that region. The
    // region is covered by four slabs of the grid box.
    const double inner_min_x =
        x0_ + (static_cast<double>(cx) - static_cast<double>(r - 1)) * cell_w_;
    const double inner_max_x =
        x0_ + (static_cast<double>(cx) + static_cast<double>(r)) * cell_w_;
    const double inner_min_y =
        y0_ + (static_cast<double>(cy) - static_cast<double>(r - 1)) * cell_h_;
    const double inner_max_y =
        y0_ + (static_cast<double>(cy) + static_cast<double>(r)) * cell_h_;
    double unseen_bound_sq = kInf;
    if (inner_min_x > x0_) {
      unseen_bound_sq = std::min(
          unseen_bound_sq,
          DistanceSqPointBox(p, x0_, y0_, inner_min_x, grid_max_y));
    }
    if (inner_max_x < grid_max_x) {
      unseen_bound_sq = std::min(
          unseen_bound_sq,
          DistanceSqPointBox(p, inner_max_x, y0_, grid_max_x, grid_max_y));
    }
    if (inner_min_y > y0_) {
      unseen_bound_sq = std::min(
          unseen_bound_sq,
          DistanceSqPointBox(p, x0_, y0_, grid_max_x, inner_min_y));
    }
    if (inner_max_y < grid_max_y) {
      unseen_bound_sq = std::min(
          unseen_bound_sq,
          DistanceSqPointBox(p, x0_, inner_max_y, grid_max_x, grid_max_y));
    }
    if (best_sq <= unseen_bound_sq) break;  // Also ends once rings cover grid.

    // Scan ring r. The cells of a grid row are adjacent in CSR order, so
    // the top and bottom row segments are each ONE contiguous payload
    // span — a single streaming kernel call — while the two side columns
    // fall back to per-cell spans.
    const ptrdiff_t lo_x =
        static_cast<ptrdiff_t>(cx) - static_cast<ptrdiff_t>(r);
    const ptrdiff_t hi_x =
        static_cast<ptrdiff_t>(cx) + static_cast<ptrdiff_t>(r);
    const ptrdiff_t lo_y =
        static_cast<ptrdiff_t>(cy) - static_cast<ptrdiff_t>(r);
    const ptrdiff_t hi_y =
        static_cast<ptrdiff_t>(cy) + static_cast<ptrdiff_t>(r);
    const size_t col_lo = static_cast<size_t>(std::max<ptrdiff_t>(0, lo_x));
    const size_t col_hi = static_cast<size_t>(
        std::min<ptrdiff_t>(static_cast<ptrdiff_t>(nx_) - 1, hi_x));
    if (lo_y >= 0) {
      const size_t row = static_cast<size_t>(lo_y) * nx_;
      scanned += ScanRange(cell_start_[row + col_lo],
                           cell_start_[row + col_hi + 1], p, &best_sq);
    }
    if (hi_y < static_cast<ptrdiff_t>(ny_)) {
      const size_t row = static_cast<size_t>(hi_y) * nx_;
      scanned += ScanRange(cell_start_[row + col_lo],
                           cell_start_[row + col_hi + 1], p, &best_sq);
    }
    const size_t row_lo = static_cast<size_t>(std::max<ptrdiff_t>(0, lo_y + 1));
    const size_t row_hi = static_cast<size_t>(
        std::min<ptrdiff_t>(static_cast<ptrdiff_t>(ny_) - 1, hi_y - 1));
    if (lo_x >= 0) {
      for (size_t y = row_lo; y <= row_hi && row_hi < ny_; ++y) {
        const size_t c = y * nx_ + static_cast<size_t>(lo_x);
        scanned += ScanRange(cell_start_[c], cell_start_[c + 1], p, &best_sq);
      }
    }
    if (hi_x < static_cast<ptrdiff_t>(nx_)) {
      for (size_t y = row_lo; y <= row_hi && row_hi < ny_; ++y) {
        const size_t c = y * nx_ + static_cast<size_t>(hi_x);
        scanned += ScanRange(cell_start_[c], cell_start_[c + 1], p, &best_sq);
      }
    }
  }
  CountBatchedEdges(scanned);
  return std::sqrt(best_sq);
}

}  // namespace geosir::geom
