#include "geom/edge_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/distance.h"

namespace geosir::geom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Distance from p to an axis-aligned box (0 inside).
double DistancePointBox(Point p, double min_x, double min_y, double max_x,
                        double max_y) {
  const double dx = std::max({0.0, min_x - p.x, p.x - max_x});
  const double dy = std::max({0.0, min_y - p.y, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

size_t ClampCell(double coord, double origin, double cell, size_t n) {
  const double t = std::floor((coord - origin) / cell);
  if (!(t > 0.0)) return 0;  // Also catches NaN from degenerate cells.
  if (t >= static_cast<double>(n)) return n - 1;
  return static_cast<size_t>(t);
}

}  // namespace

EdgeGrid::EdgeGrid(const Polyline& shape) {
  const size_t num_edges = shape.NumEdges();
  if (num_edges == 0) {
    if (!shape.empty()) {
      has_vertex_ = true;
      vertex_ = shape.vertex(0);
    }
    return;
  }
  segments_.reserve(num_edges);
  double perimeter = 0.0;
  BoundingBox bounds;
  for (size_t i = 0; i < num_edges; ++i) {
    const Segment e = shape.Edge(i);
    perimeter += e.Length();
    bounds.Extend(e.a);
    bounds.Extend(e.b);
    segments_.push_back(e);
  }
  x0_ = bounds.min_x;
  y0_ = bounds.min_y;
  const double width = bounds.Width();
  const double height = bounds.Height();

  // Cell size ~ the average edge length, so a typical edge occupies O(1)
  // cells; total cell count is capped at O(E) to keep space linear (the
  // cap binds for long skinny shapes, where cells simply get coarser).
  const size_t e = segments_.size();
  double cell = std::max(perimeter / static_cast<double>(e), 1e-12);
  const size_t max_cells = 4 * e + 8;
  const auto dims_for = [&](double c) {
    nx_ = std::max<size_t>(1, static_cast<size_t>(std::ceil(width / c)));
    ny_ = std::max<size_t>(1, static_cast<size_t>(std::ceil(height / c)));
  };
  dims_for(cell);
  if (nx_ * ny_ > max_cells) {
    cell *= std::sqrt(static_cast<double>(nx_ * ny_) /
                      static_cast<double>(max_cells));
    dims_for(cell);
    nx_ = std::min(nx_, max_cells);
    ny_ = std::min(ny_, std::max<size_t>(1, max_cells / nx_));
  }
  cell_w_ = width > 0.0 ? width / static_cast<double>(nx_) : 1.0;
  cell_h_ = height > 0.0 ? height / static_cast<double>(ny_) : 1.0;

  // Bucket each edge into every cell its AABB overlaps (counting pass,
  // then CSR fill).
  cell_start_.assign(nx_ * ny_ + 1, 0);
  const auto cell_range = [&](const Segment& s, size_t* ix0, size_t* ix1,
                              size_t* iy0, size_t* iy1) {
    *ix0 = ClampCell(std::min(s.a.x, s.b.x), x0_, cell_w_, nx_);
    *ix1 = ClampCell(std::max(s.a.x, s.b.x), x0_, cell_w_, nx_);
    *iy0 = ClampCell(std::min(s.a.y, s.b.y), y0_, cell_h_, ny_);
    *iy1 = ClampCell(std::max(s.a.y, s.b.y), y0_, cell_h_, ny_);
  };
  for (const Segment& s : segments_) {
    size_t ix0, ix1, iy0, iy1;
    cell_range(s, &ix0, &ix1, &iy0, &iy1);
    for (size_t cy = iy0; cy <= iy1; ++cy) {
      for (size_t cx = ix0; cx <= ix1; ++cx) {
        ++cell_start_[cy * nx_ + cx + 1];
      }
    }
  }
  for (size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  cell_edges_.resize(cell_start_.back());
  std::vector<uint32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < segments_.size(); ++i) {
    size_t ix0, ix1, iy0, iy1;
    cell_range(segments_[i], &ix0, &ix1, &iy0, &iy1);
    for (size_t cy = iy0; cy <= iy1; ++cy) {
      for (size_t cx = ix0; cx <= ix1; ++cx) {
        cell_edges_[fill[cy * nx_ + cx]++] = static_cast<uint32_t>(i);
      }
    }
  }
}

void EdgeGrid::ScanCell(size_t cx, size_t cy, Point p, double* best) const {
  const size_t c = cy * nx_ + cx;
  for (size_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
    *best = std::min(*best, DistancePointSegment(p, segments_[cell_edges_[k]]));
  }
}

double EdgeGrid::Distance(Point p) const {
  if (segments_.empty()) {
    return has_vertex_ ? geom::Distance(p, vertex_) : kInf;
  }
  const size_t cx = ClampCell(p.x, x0_, cell_w_, nx_);
  const size_t cy = ClampCell(p.y, y0_, cell_h_, ny_);
  const double grid_max_x = x0_ + static_cast<double>(nx_) * cell_w_;
  const double grid_max_y = y0_ + static_cast<double>(ny_) * cell_h_;

  double best = kInf;
  ScanCell(cx, cy, p, &best);
  for (size_t r = 1;; ++r) {
    // Everything not yet scanned was bucketed only into cells outside the
    // box of rings 0..r-1, so it lies inside the grid bounds but outside
    // that box; stop once `best` beats the distance to that region. The
    // region is covered by four slabs of the grid box.
    const double inner_min_x =
        x0_ + (static_cast<double>(cx) - static_cast<double>(r - 1)) * cell_w_;
    const double inner_max_x =
        x0_ + (static_cast<double>(cx) + static_cast<double>(r)) * cell_w_;
    const double inner_min_y =
        y0_ + (static_cast<double>(cy) - static_cast<double>(r - 1)) * cell_h_;
    const double inner_max_y =
        y0_ + (static_cast<double>(cy) + static_cast<double>(r)) * cell_h_;
    double unseen_bound = kInf;
    if (inner_min_x > x0_) {
      unseen_bound = std::min(
          unseen_bound, DistancePointBox(p, x0_, y0_, inner_min_x, grid_max_y));
    }
    if (inner_max_x < grid_max_x) {
      unseen_bound = std::min(unseen_bound, DistancePointBox(p, inner_max_x, y0_,
                                                             grid_max_x,
                                                             grid_max_y));
    }
    if (inner_min_y > y0_) {
      unseen_bound = std::min(
          unseen_bound, DistancePointBox(p, x0_, y0_, grid_max_x, inner_min_y));
    }
    if (inner_max_y < grid_max_y) {
      unseen_bound = std::min(unseen_bound, DistancePointBox(p, x0_, inner_max_y,
                                                             grid_max_x,
                                                             grid_max_y));
    }
    if (best <= unseen_bound) break;  // Also breaks once rings cover the grid.

    // Scan ring r: top and bottom rows in full, plus the side columns.
    const ptrdiff_t lo_x = static_cast<ptrdiff_t>(cx) - static_cast<ptrdiff_t>(r);
    const ptrdiff_t hi_x = static_cast<ptrdiff_t>(cx) + static_cast<ptrdiff_t>(r);
    const ptrdiff_t lo_y = static_cast<ptrdiff_t>(cy) - static_cast<ptrdiff_t>(r);
    const ptrdiff_t hi_y = static_cast<ptrdiff_t>(cy) + static_cast<ptrdiff_t>(r);
    const size_t col_lo = static_cast<size_t>(std::max<ptrdiff_t>(0, lo_x));
    const size_t col_hi = static_cast<size_t>(
        std::min<ptrdiff_t>(static_cast<ptrdiff_t>(nx_) - 1, hi_x));
    if (lo_y >= 0) {
      for (size_t x = col_lo; x <= col_hi; ++x) {
        ScanCell(x, static_cast<size_t>(lo_y), p, &best);
      }
    }
    if (hi_y < static_cast<ptrdiff_t>(ny_)) {
      for (size_t x = col_lo; x <= col_hi; ++x) {
        ScanCell(x, static_cast<size_t>(hi_y), p, &best);
      }
    }
    const size_t row_lo = static_cast<size_t>(std::max<ptrdiff_t>(0, lo_y + 1));
    const size_t row_hi = static_cast<size_t>(
        std::min<ptrdiff_t>(static_cast<ptrdiff_t>(ny_) - 1, hi_y - 1));
    if (lo_x >= 0) {
      for (size_t y = row_lo; y <= row_hi && row_hi < ny_; ++y) {
        ScanCell(static_cast<size_t>(lo_x), y, p, &best);
      }
    }
    if (hi_x < static_cast<ptrdiff_t>(nx_)) {
      for (size_t y = row_lo; y <= row_hi && row_hi < ny_; ++y) {
        ScanCell(static_cast<size_t>(hi_x), y, p, &best);
      }
    }
  }
  return best;
}

}  // namespace geosir::geom
