#ifndef GEOSIR_GEOM_POLYLINE_H_
#define GEOSIR_GEOM_POLYLINE_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/transform.h"
#include "util/status.h"

namespace geosir::geom {

/// A shape in the paper's sense: a polyline that is either open or closed
/// (a polygon), with no self-intersections and no convexity restriction
/// (Section 2.4). For a closed polyline the edge from the last vertex back
/// to the first is implicit; the first vertex is not repeated.
class Polyline {
 public:
  Polyline() = default;
  Polyline(std::vector<Point> vertices, bool closed)
      : vertices_(std::move(vertices)), closed_(closed) {}

  static Polyline Open(std::vector<Point> vertices) {
    return Polyline(std::move(vertices), /*closed=*/false);
  }
  static Polyline Closed(std::vector<Point> vertices) {
    return Polyline(std::move(vertices), /*closed=*/true);
  }

  const std::vector<Point>& vertices() const { return vertices_; }
  std::vector<Point>& mutable_vertices() { return vertices_; }
  bool closed() const { return closed_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }
  Point vertex(size_t i) const { return vertices_[i]; }

  /// Number of edges: n-1 for open polylines, n for closed ones (n >= 2;
  /// degenerate inputs yield 0).
  size_t NumEdges() const;

  /// The i-th edge, i in [0, NumEdges()).
  Segment Edge(size_t i) const;

  /// Total edge length.
  double Perimeter() const;

  /// Signed area by the shoelace formula (closed polylines only; 0 for
  /// open ones). Positive means counterclockwise orientation.
  double SignedArea() const;
  double Area() const { return std::fabs(SignedArea()); }

  BoundingBox Bounds() const;

  /// Average of the vertices.
  Point VertexCentroid() const;

  /// Returns a copy with every vertex transformed.
  Polyline Transformed(const AffineTransform& t) const;

  /// Returns a copy with vertex order reversed (same geometry).
  Polyline Reversed() const;

  /// Point at arc-length parameter s in [0, Perimeter()] along the shape.
  Point AtArcLength(double s) const;

  /// Validates the shape as a database shape: at least 2 distinct
  /// vertices, finite coordinates, no duplicate consecutive vertices, and
  /// no self-intersection.
  util::Status Validate() const;

  /// True if any two non-adjacent edges intersect (or adjacent edges
  /// overlap degenerately).
  bool SelfIntersects() const;

 private:
  std::vector<Point> vertices_;
  bool closed_ = false;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_POLYLINE_H_
