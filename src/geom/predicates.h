#ifndef GEOSIR_GEOM_PREDICATES_H_
#define GEOSIR_GEOM_PREDICATES_H_

#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// Sign of the orientation of the triple (a, b, c): +1 counterclockwise,
/// -1 clockwise, 0 exactly collinear. Adaptive-precision exact predicate
/// (Shewchuk two-stage): a filtered float evaluation handles the common
/// case, and expansion arithmetic decides the sign exactly whenever the
/// filter is inconclusive — there is no epsilon and no misclassification
/// for finite inputs.
int Orientation(Point a, Point b, Point c);

/// True if point p lies on segment s (within eps).
bool OnSegment(Point p, const Segment& s, double eps = 1e-12);

/// True if the closed segments intersect (including endpoint touches and
/// collinear overlap).
bool SegmentsIntersect(const Segment& s1, const Segment& s2,
                       double eps = 1e-12);

/// True if the open interiors of the segments cross properly (shared
/// endpoints and touches do not count).
bool SegmentsCrossProperly(const Segment& s1, const Segment& s2,
                           double eps = 1e-12);

/// If the segments intersect in a single point, returns it.
util::Result<Point> SegmentIntersectionPoint(const Segment& s1,
                                             const Segment& s2,
                                             double eps = 1e-12);

/// Intersection point of two infinite lines through (s1.a, s1.b) and
/// (s2.a, s2.b); fails when (nearly) parallel.
util::Result<Point> LineIntersectionPoint(const Segment& s1,
                                          const Segment& s2,
                                          double eps = 1e-12);

/// Point-in-polygon by the crossing-number rule; boundary points count as
/// inside. `poly` must be closed.
bool PolygonContainsPoint(const Polyline& poly, Point p, double eps = 1e-12);

/// True if closed polygon `outer` contains closed polygon `inner`
/// entirely (all vertices inside and no boundary crossing).
bool PolygonContainsPolygon(const Polyline& outer, const Polyline& inner,
                            double eps = 1e-12);

/// True if the boundaries of the two closed polygons cross, or one
/// contains a vertex of the other while neither fully contains the other —
/// i.e. the paper's "overlap" relation (proper boundary overlap, not
/// containment).
bool PolygonsOverlap(const Polyline& a, const Polyline& b, double eps = 1e-12);

/// True if the two closed polygons share no point at all.
bool PolygonsDisjoint(const Polyline& a, const Polyline& b,
                      double eps = 1e-12);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_PREDICATES_H_
