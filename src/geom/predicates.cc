#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace geosir::geom {

namespace {

bool BoxesOverlap(const Segment& s1, const Segment& s2, double eps) {
  return std::min(s1.a.x, s1.b.x) <= std::max(s2.a.x, s2.b.x) + eps &&
         std::min(s2.a.x, s2.b.x) <= std::max(s1.a.x, s1.b.x) + eps &&
         std::min(s1.a.y, s1.b.y) <= std::max(s2.a.y, s2.b.y) + eps &&
         std::min(s2.a.y, s2.b.y) <= std::max(s1.a.y, s1.b.y) + eps;
}

}  // namespace

int Orientation(Point a, Point b, Point c, double eps) {
  const double v = (b - a).Cross(c - a);
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

bool OnSegment(Point p, const Segment& s, double eps) {
  if (Orientation(s.a, s.b, p, eps) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - eps &&
         p.x <= std::max(s.a.x, s.b.x) + eps &&
         p.y >= std::min(s.a.y, s.b.y) - eps &&
         p.y <= std::max(s.a.y, s.b.y) + eps;
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2, double eps) {
  if (!BoxesOverlap(s1, s2, eps)) return false;
  const int o1 = Orientation(s1.a, s1.b, s2.a, eps);
  const int o2 = Orientation(s1.a, s1.b, s2.b, eps);
  const int o3 = Orientation(s2.a, s2.b, s1.a, eps);
  const int o4 = Orientation(s2.a, s2.b, s1.b, eps);
  if (o1 != o2 && o3 != o4) return true;
  // Collinear / touching cases.
  if (o1 == 0 && OnSegment(s2.a, s1, eps)) return true;
  if (o2 == 0 && OnSegment(s2.b, s1, eps)) return true;
  if (o3 == 0 && OnSegment(s1.a, s2, eps)) return true;
  if (o4 == 0 && OnSegment(s1.b, s2, eps)) return true;
  return false;
}

bool SegmentsCrossProperly(const Segment& s1, const Segment& s2, double eps) {
  const int o1 = Orientation(s1.a, s1.b, s2.a, eps);
  const int o2 = Orientation(s1.a, s1.b, s2.b, eps);
  const int o3 = Orientation(s2.a, s2.b, s1.a, eps);
  const int o4 = Orientation(s2.a, s2.b, s1.b, eps);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

util::Result<Point> LineIntersectionPoint(const Segment& s1, const Segment& s2,
                                          double eps) {
  const Point d1 = s1.Direction();
  const Point d2 = s2.Direction();
  const double denom = d1.Cross(d2);
  const double scale = std::max(d1.Norm() * d2.Norm(), 1e-300);
  if (std::fabs(denom) <= eps * scale) {
    return util::Status::FailedPrecondition(
        "LineIntersectionPoint: lines are (nearly) parallel");
  }
  const double t = (s2.a - s1.a).Cross(d2) / denom;
  return s1.a + d1 * t;
}

util::Result<Point> SegmentIntersectionPoint(const Segment& s1,
                                             const Segment& s2, double eps) {
  if (!SegmentsIntersect(s1, s2, eps)) {
    return util::Status::NotFound("segments do not intersect");
  }
  auto line = LineIntersectionPoint(s1, s2, eps);
  if (line.ok()) return line;
  // Collinear overlap: report a shared endpoint if one exists.
  for (Point p : {s2.a, s2.b}) {
    if (OnSegment(p, s1, eps)) return p;
  }
  for (Point p : {s1.a, s1.b}) {
    if (OnSegment(p, s2, eps)) return p;
  }
  return util::Status::Internal("collinear segments without shared point");
}

bool PolygonContainsPoint(const Polyline& poly, Point p, double eps) {
  if (!poly.closed() || poly.size() < 3) return false;
  // Boundary counts as inside.
  const size_t n = poly.NumEdges();
  for (size_t i = 0; i < n; ++i) {
    if (OnSegment(p, poly.Edge(i), eps)) return true;
  }
  // Crossing number with the horizontal ray to +x.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Segment e = poly.Edge(i);
    const bool a_above = e.a.y > p.y;
    const bool b_above = e.b.y > p.y;
    if (a_above == b_above) continue;
    const double t = (p.y - e.a.y) / (e.b.y - e.a.y);
    const double x_cross = e.a.x + t * (e.b.x - e.a.x);
    if (x_cross > p.x) inside = !inside;
  }
  return inside;
}

namespace {

bool BoundariesIntersect(const Polyline& a, const Polyline& b, double eps) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  const size_t na = a.NumEdges();
  const size_t nb = b.NumEdges();
  for (size_t i = 0; i < na; ++i) {
    const Segment ea = a.Edge(i);
    for (size_t j = 0; j < nb; ++j) {
      if (SegmentsIntersect(ea, b.Edge(j), eps)) return true;
    }
  }
  return false;
}

}  // namespace

bool PolygonContainsPolygon(const Polyline& outer, const Polyline& inner,
                            double eps) {
  if (!outer.closed() || !inner.closed()) return false;
  if (inner.empty() || outer.size() < 3) return false;
  for (Point p : inner.vertices()) {
    if (!PolygonContainsPoint(outer, p, eps)) return false;
  }
  // All vertices inside; boundaries must not cross properly (touching is
  // still containment by our convention).
  const size_t no = outer.NumEdges();
  const size_t ni = inner.NumEdges();
  for (size_t i = 0; i < no; ++i) {
    const Segment eo = outer.Edge(i);
    for (size_t j = 0; j < ni; ++j) {
      if (SegmentsCrossProperly(eo, inner.Edge(j), eps)) return false;
    }
  }
  return true;
}

bool PolygonsOverlap(const Polyline& a, const Polyline& b, double eps) {
  if (!a.closed() || !b.closed()) return false;
  if (PolygonContainsPolygon(a, b, eps) || PolygonContainsPolygon(b, a, eps)) {
    return false;
  }
  if (BoundariesIntersect(a, b, eps)) return true;
  return false;
}

bool PolygonsDisjoint(const Polyline& a, const Polyline& b, double eps) {
  if (BoundariesIntersect(a, b, eps)) return false;
  // No boundary contact: disjoint unless one contains the other.
  if (a.closed() && !b.empty() &&
      PolygonContainsPoint(a, b.vertex(0), eps)) {
    return false;
  }
  if (b.closed() && !a.empty() &&
      PolygonContainsPoint(b, a.vertex(0), eps)) {
    return false;
  }
  return true;
}

}  // namespace geosir::geom
