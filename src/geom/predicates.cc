#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace geosir::geom {

namespace {

bool BoxesOverlap(const Segment& s1, const Segment& s2, double eps) {
  return std::min(s1.a.x, s1.b.x) <= std::max(s2.a.x, s2.b.x) + eps &&
         std::min(s2.a.x, s2.b.x) <= std::max(s1.a.x, s1.b.x) + eps &&
         std::min(s1.a.y, s1.b.y) <= std::max(s2.a.y, s2.b.y) + eps &&
         std::min(s2.a.y, s2.b.y) <= std::max(s1.a.y, s1.b.y) + eps;
}

// ---------------------------------------------------------------------------
// Adaptive-precision exact orientation (Shewchuk-style).
//
// Stage 1 evaluates the 2x2 determinant in plain floating point and
// certifies the sign with Shewchuk's orient2d stage-A error bound: the
// computed value can differ from the true determinant by at most
// kCcwErrBoundA * (|detleft| + |detright|), so any larger magnitude has
// a provably correct sign. Only the rare inconclusive triples (nearly or
// exactly collinear) fall through to stage 2, which computes the
// determinant *exactly* as a multi-term floating-point expansion:
// expanding (b-a) x (c-a) cancels the a.x*a.y terms, leaving six
// products; each is split into an exact (head, tail) pair with an FMA
// two-product, and the twelve components are summed with two-sum
// expansion arithmetic. The sign of a nonoverlapping expansion is the
// sign of its largest-magnitude component, so the result is the
// mathematically exact sign for every finite input whose products do not
// overflow (coordinates below ~1e150, far beyond validated shapes).
// ---------------------------------------------------------------------------

/// Machine epsilon for rounding-error analysis: 2^-53 (half of
/// DBL_EPSILON, Shewchuk's convention).
constexpr double kMacheps = 1.1102230246251565e-16;
/// Shewchuk's orient2d stage-A relative error bound, (3 + 16 eps) eps.
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kMacheps) * kMacheps;

/// Exact product: a * b == *head + *tail, |tail| <= ulp(head)/2.
inline void TwoProduct(double a, double b, double* head, double* tail) {
  *head = a * b;
  *tail = std::fma(a, b, -*head);
}

/// Exact sum: a + b == *head + *tail (Knuth's branchless two-sum).
inline void TwoSum(double a, double b, double* head, double* tail) {
  const double s = a + b;
  const double bv = s - a;
  const double av = s - bv;
  *tail = (a - av) + (b - bv);
  *head = s;
}

/// Adds `value` to the nonoverlapping expansion e[0..*n) in place
/// (Shewchuk's GROW-EXPANSION). Components stay in increasing order of
/// magnitude; *n grows by at most one.
inline void GrowExpansion(double* e, int* n, double value) {
  double q = value;
  int out = 0;
  for (int i = 0; i < *n; ++i) {
    double h;
    TwoSum(q, e[i], &q, &h);
    if (h != 0.0) e[out++] = h;
  }
  if (q != 0.0 || out == 0) e[out++] = q;
  *n = out;
}

/// Exact sign of (b - a) x (c - a) by full expansion arithmetic.
int OrientationExact(Point a, Point b, Point c) {
  // det = b.x*c.y - b.x*a.y - a.x*c.y - b.y*c.x + b.y*a.x + a.y*c.x
  // (the a.x*a.y terms of the two expanded products cancel exactly).
  const double factors[6][2] = {{b.x, c.y}, {-b.x, a.y}, {-a.x, c.y},
                                {-b.y, c.x}, {b.y, a.x},  {a.y, c.x}};
  double e[16];
  int n = 0;
  for (const auto& f : factors) {
    double head, tail;
    TwoProduct(f[0], f[1], &head, &tail);
    GrowExpansion(e, &n, tail);
    GrowExpansion(e, &n, head);
  }
  // Largest-magnitude (last) component carries the sign of the sum.
  const double top = n > 0 ? e[n - 1] : 0.0;
  if (top > 0.0) return 1;
  if (top < 0.0) return -1;
  return 0;
}

}  // namespace

int Orientation(Point a, Point b, Point c) {
  const double detleft = (b.x - a.x) * (c.y - a.y);
  const double detright = (b.y - a.y) * (c.x - a.x);
  const double det = detleft - detright;
  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);  // det == -detright, exact.
  }
  if (det >= kCcwErrBoundA * detsum) return 1;
  if (-det >= kCcwErrBoundA * detsum) return -1;
  return OrientationExact(a, b, c);
}

bool OnSegment(Point p, const Segment& s, double eps) {
  if (Orientation(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - eps &&
         p.x <= std::max(s.a.x, s.b.x) + eps &&
         p.y >= std::min(s.a.y, s.b.y) - eps &&
         p.y <= std::max(s.a.y, s.b.y) + eps;
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2, double eps) {
  if (!BoxesOverlap(s1, s2, eps)) return false;
  const int o1 = Orientation(s1.a, s1.b, s2.a);
  const int o2 = Orientation(s1.a, s1.b, s2.b);
  const int o3 = Orientation(s2.a, s2.b, s1.a);
  const int o4 = Orientation(s2.a, s2.b, s1.b);
  if (o1 != o2 && o3 != o4) return true;
  // Collinear / touching cases.
  if (o1 == 0 && OnSegment(s2.a, s1, eps)) return true;
  if (o2 == 0 && OnSegment(s2.b, s1, eps)) return true;
  if (o3 == 0 && OnSegment(s1.a, s2, eps)) return true;
  if (o4 == 0 && OnSegment(s1.b, s2, eps)) return true;
  return false;
}

bool SegmentsCrossProperly(const Segment& s1, const Segment& s2, double eps) {
  (void)eps;  // Orientation is exact now; eps remains for API stability.
  const int o1 = Orientation(s1.a, s1.b, s2.a);
  const int o2 = Orientation(s1.a, s1.b, s2.b);
  const int o3 = Orientation(s2.a, s2.b, s1.a);
  const int o4 = Orientation(s2.a, s2.b, s1.b);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

util::Result<Point> LineIntersectionPoint(const Segment& s1, const Segment& s2,
                                          double eps) {
  const Point d1 = s1.Direction();
  const Point d2 = s2.Direction();
  const double denom = d1.Cross(d2);
  const double scale = std::max(d1.Norm() * d2.Norm(), 1e-300);
  if (std::fabs(denom) <= eps * scale) {
    return util::Status::FailedPrecondition(
        "LineIntersectionPoint: lines are (nearly) parallel");
  }
  const double t = (s2.a - s1.a).Cross(d2) / denom;
  return s1.a + d1 * t;
}

util::Result<Point> SegmentIntersectionPoint(const Segment& s1,
                                             const Segment& s2, double eps) {
  if (!SegmentsIntersect(s1, s2, eps)) {
    return util::Status::NotFound("segments do not intersect");
  }
  auto line = LineIntersectionPoint(s1, s2, eps);
  if (line.ok()) return line;
  // Collinear overlap: report a shared endpoint if one exists.
  for (Point p : {s2.a, s2.b}) {
    if (OnSegment(p, s1, eps)) return p;
  }
  for (Point p : {s1.a, s1.b}) {
    if (OnSegment(p, s2, eps)) return p;
  }
  return util::Status::Internal("collinear segments without shared point");
}

bool PolygonContainsPoint(const Polyline& poly, Point p, double eps) {
  if (!poly.closed() || poly.size() < 3) return false;
  // Boundary counts as inside.
  const size_t n = poly.NumEdges();
  for (size_t i = 0; i < n; ++i) {
    if (OnSegment(p, poly.Edge(i), eps)) return true;
  }
  // Crossing number with the horizontal ray to +x.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Segment e = poly.Edge(i);
    const bool a_above = e.a.y > p.y;
    const bool b_above = e.b.y > p.y;
    if (a_above == b_above) continue;
    const double t = (p.y - e.a.y) / (e.b.y - e.a.y);
    const double x_cross = e.a.x + t * (e.b.x - e.a.x);
    if (x_cross > p.x) inside = !inside;
  }
  return inside;
}

namespace {

bool BoundariesIntersect(const Polyline& a, const Polyline& b, double eps) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  const size_t na = a.NumEdges();
  const size_t nb = b.NumEdges();
  for (size_t i = 0; i < na; ++i) {
    const Segment ea = a.Edge(i);
    for (size_t j = 0; j < nb; ++j) {
      if (SegmentsIntersect(ea, b.Edge(j), eps)) return true;
    }
  }
  return false;
}

}  // namespace

bool PolygonContainsPolygon(const Polyline& outer, const Polyline& inner,
                            double eps) {
  if (!outer.closed() || !inner.closed()) return false;
  if (inner.empty() || outer.size() < 3) return false;
  for (Point p : inner.vertices()) {
    if (!PolygonContainsPoint(outer, p, eps)) return false;
  }
  // All vertices inside; boundaries must not cross properly (touching is
  // still containment by our convention).
  const size_t no = outer.NumEdges();
  const size_t ni = inner.NumEdges();
  for (size_t i = 0; i < no; ++i) {
    const Segment eo = outer.Edge(i);
    for (size_t j = 0; j < ni; ++j) {
      if (SegmentsCrossProperly(eo, inner.Edge(j), eps)) return false;
    }
  }
  return true;
}

bool PolygonsOverlap(const Polyline& a, const Polyline& b, double eps) {
  if (!a.closed() || !b.closed()) return false;
  if (PolygonContainsPolygon(a, b, eps) || PolygonContainsPolygon(b, a, eps)) {
    return false;
  }
  if (BoundariesIntersect(a, b, eps)) return true;
  return false;
}

bool PolygonsDisjoint(const Polyline& a, const Polyline& b, double eps) {
  if (BoundariesIntersect(a, b, eps)) return false;
  // No boundary contact: disjoint unless one contains the other.
  if (a.closed() && !b.empty() &&
      PolygonContainsPoint(a, b.vertex(0), eps)) {
    return false;
  }
  if (b.closed() && !a.empty() &&
      PolygonContainsPoint(b, a.vertex(0), eps)) {
    return false;
  }
  return true;
}

}  // namespace geosir::geom
