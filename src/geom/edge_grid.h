#ifndef GEOSIR_GEOM_EDGE_GRID_H_
#define GEOSIR_GEOM_EDGE_GRID_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// A uniform bucket grid over the edges of a polyline, accelerating exact
/// point-to-boundary distance queries.
///
/// DistancePointPolyline scans all E edges per call; inside the adaptive
/// quadrature of the continuous similarity measure that scan is the inner
/// loop of every candidate evaluation. The grid is built once per target
/// polyline (O(E) space, cell size ~ the average edge length, total cell
/// count capped at O(E)) and answers Distance(p) by ring expansion: scan
/// the cell containing p, then successively wider Chebyshev rings,
/// stopping as soon as the best distance found is <= the lower bound on
/// anything living strictly outside the rings already scanned. Every edge
/// is bucketed into all cells its AABB overlaps, so an edge not yet seen
/// after scanning rings 0..r-1 lies entirely outside their bounding box —
/// the stopping rule is exact, and Distance returns the same value (bit
/// for bit) as the brute-force scan, in near-O(1) expected time for
/// query points near the boundary.
class EdgeGrid {
 public:
  /// Builds the grid over `shape`'s edges. The geometry is copied, so the
  /// grid does not hold a reference to `shape`.
  explicit EdgeGrid(const Polyline& shape);

  /// Exact minimum distance from p to the polyline boundary: identical to
  /// DistancePointPolyline(p, shape). Infinity for an empty shape;
  /// distance to the single vertex for an edgeless one-vertex shape.
  /// Thread-safe: uses no mutable state.
  double Distance(Point p) const;

  size_t num_edges() const { return segments_.size(); }
  size_t num_cells() const { return cell_start_.empty() ? 0 : cell_start_.size() - 1; }

 private:
  void ScanCell(size_t cx, size_t cy, Point p, double* best) const;

  std::vector<Segment> segments_;
  /// Fallback geometry for shapes without edges (empty or single vertex).
  bool has_vertex_ = false;
  Point vertex_;

  // Grid geometry: cells [x0_ + cx*cell_w_, ...) x [y0_ + cy*cell_h_, ...).
  size_t nx_ = 0;
  size_t ny_ = 0;
  double x0_ = 0.0;
  double y0_ = 0.0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;

  /// CSR adjacency: edges of cell (cx, cy) are
  /// cell_edges_[cell_start_[cy*nx_+cx] .. cell_start_[cy*nx_+cx+1]).
  std::vector<uint32_t> cell_start_;
  std::vector<uint32_t> cell_edges_;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_EDGE_GRID_H_
