#ifndef GEOSIR_GEOM_EDGE_GRID_H_
#define GEOSIR_GEOM_EDGE_GRID_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// A uniform bucket grid over the edges of a polyline, accelerating exact
/// point-to-boundary distance queries.
///
/// DistancePointPolyline scans all E edges per call; inside the adaptive
/// quadrature of the continuous similarity measure that scan is the inner
/// loop of every candidate evaluation. The grid is built once per target
/// polyline (O(E) space, cell size ~ the average edge length, total cell
/// count capped at O(E)) and answers Distance(p) by ring expansion: scan
/// the cell containing p, then successively wider Chebyshev rings,
/// stopping as soon as the best squared distance found is <= the squared
/// lower bound on anything living strictly outside the rings already
/// scanned. Every edge is bucketed into all cells its AABB overlaps, so
/// an edge not yet seen after scanning rings 0..r-1 lies entirely outside
/// their bounding box — the stopping rule is exact, and Distance returns
/// the same value (bit for bit) as the EdgeSoA batch-kernel brute-force
/// scan, in near-O(1) expected time for query points near the boundary.
///
/// Storage is streaming-friendly: instead of a cell -> edge-index CSR
/// with a gather per edge, each cell's bucket holds a materialized
/// structure-of-arrays copy of its edges (ax/ay/dx/dy/inv_len2) laid out
/// in CSR order. A bucket scan is one geom::BatchMinDistanceSq call over
/// a contiguous span — no indirection, unit-stride loads the SIMD kernel
/// can stream — and the cells of one grid row are adjacent in memory, so
/// a ring's top/bottom row segments collapse into a single kernel call
/// each.
class EdgeGrid {
 public:
  /// Builds the grid over `shape`'s edges. The geometry is copied, so the
  /// grid does not hold a reference to `shape`.
  explicit EdgeGrid(const Polyline& shape);

  /// Exact minimum distance from p to the polyline boundary. Infinity for
  /// an empty shape; distance to the single vertex for an edgeless
  /// one-vertex shape. Thread-safe: uses no mutable state.
  double Distance(Point p) const;

  size_t num_edges() const { return num_edges_; }
  size_t num_cells() const {
    return cell_start_.empty() ? 0 : cell_start_.size() - 1;
  }

 private:
  /// Scans payload slots [lo, hi) with the batch kernel, folding the
  /// minimum squared distance into *best_sq; returns edges scanned.
  size_t ScanRange(size_t lo, size_t hi, Point p, double* best_sq) const;

  size_t num_edges_ = 0;
  /// Fallback geometry for shapes without edges (empty or single vertex).
  bool has_vertex_ = false;
  Point vertex_;

  // Grid geometry: cells [x0_ + cx*cell_w_, ...) x [y0_ + cy*cell_h_, ...).
  size_t nx_ = 0;
  size_t ny_ = 0;
  double x0_ = 0.0;
  double y0_ = 0.0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;

  /// CSR offsets: cell (cx, cy)'s payload occupies slots
  /// [cell_start_[cy*nx_+cx], cell_start_[cy*nx_+cx+1]) of the SoA arrays
  /// below. Edges overlapping several cells are replicated into each
  /// (duplicates cannot change a minimum).
  std::vector<uint32_t> cell_start_;
  std::vector<double> soa_ax_;
  std::vector<double> soa_ay_;
  std::vector<double> soa_dx_;
  std::vector<double> soa_dy_;
  std::vector<double> soa_inv_len2_;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_EDGE_GRID_H_
