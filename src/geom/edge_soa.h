#ifndef GEOSIR_GEOM_EDGE_SOA_H_
#define GEOSIR_GEOM_EDGE_SOA_H_

#include <cstddef>
#include <vector>

#include "geom/kernel_dispatch.h"
#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// Structure-of-arrays edge store for the batch distance kernels: the
/// edges of one polyline, laid out as five contiguous double arrays
/// (start ax/ay, direction dx/dy, and the precomputed reciprocal squared
/// length), padded to a multiple of the widest kernel's lane group by
/// replicating the first edge (duplicates cannot change a minimum). The
/// store is built once per shape and reused across every query point —
/// the build is O(E), each MinDistance is one streaming pass the AVX2
/// kernel covers 8 edges per iteration.
///
/// Canonical batch arithmetic (shared verbatim by the scalar oracle and
/// the AVX2 kernel, so both return bit-identical values):
///   q   = p - a
///   dot = fma(q.x, d.x, q.y * d.y)
///   t   = clamp(dot * inv_len2, 0, 1)      // degenerate edges: t = 0
///   e   = (fma(-t, d.x, q.x), fma(-t, d.y, q.y))
///   d2  = fma(e.x, e.x, e.y * e.y)
///   result = sqrt(min over edges of d2)
/// This differs from the hypot-based DistancePointSegment by at most a
/// couple of ulps; the batch entry points below are the system's
/// canonical point-to-boundary distance wherever they are used.
///
/// Finite-input contract: the polyline's coordinates and every query
/// point must be finite (API boundaries validate shapes; see
/// kernel_dispatch.h). Build and query assert this in debug builds.
class EdgeSoA {
 public:
  EdgeSoA() = default;
  /// Builds the store over `shape`'s edges. Geometry is copied.
  explicit EdgeSoA(const Polyline& shape);

  size_t num_edges() const { return num_edges_; }
  bool empty() const { return num_edges_ == 0; }

  /// View of the padded arrays for direct kernel calls. `count` is the
  /// padded size (multiple of 8); extra lanes replicate edge 0.
  EdgeSpanView PaddedView() const;

  /// Minimum squared distance from p to any edge (+inf when edgeless).
  /// Dispatched to the active kernel tier.
  double MinDistanceSq(Point p) const;

  /// Minimum distance from p to any edge; matches
  /// DistancePointPolyline's regimes (+inf for an empty shape, distance
  /// to the lone vertex for an edgeless one-vertex shape).
  double MinDistance(Point p) const;

  /// Batched multi-query-point variant: out[i] = MinDistance(points[i]).
  /// One call feeds a whole vertex run through the kernel and flushes a
  /// single geosir_geom_batched_edges_total increment.
  void MinDistances(const Point* points, size_t count, double* out) const;

 private:
  size_t num_edges_ = 0;
  size_t padded_ = 0;
  /// Fallback geometry for shapes without edges (empty or one vertex).
  bool has_vertex_ = false;
  Point vertex_;
  std::vector<double> ax_, ay_, dx_, dy_, inv_len2_;
};

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_EDGE_SOA_H_
