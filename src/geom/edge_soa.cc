#include "geom/edge_soa.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace geosir::geom {

namespace {
/// Lane-group width the padded arrays round up to (the AVX2 kernel's
/// 8-edges-per-iteration main loop then never needs a tail).
constexpr size_t kPad = 8;
}  // namespace

EdgeSoA::EdgeSoA(const Polyline& shape) {
  num_edges_ = shape.NumEdges();
  if (num_edges_ == 0) {
    if (!shape.empty()) {
      has_vertex_ = true;
      vertex_ = shape.vertex(0);
      assert(std::isfinite(vertex_.x) && std::isfinite(vertex_.y) &&
             "EdgeSoA requires finite coordinates");
    }
    return;
  }
  padded_ = (num_edges_ + kPad - 1) / kPad * kPad;
  ax_.resize(padded_);
  ay_.resize(padded_);
  dx_.resize(padded_);
  dy_.resize(padded_);
  inv_len2_.resize(padded_);
  for (size_t i = 0; i < num_edges_; ++i) {
    const Segment e = shape.Edge(i);
    assert(std::isfinite(e.a.x) && std::isfinite(e.a.y) &&
           std::isfinite(e.b.x) && std::isfinite(e.b.y) &&
           "EdgeSoA requires finite coordinates");
    ax_[i] = e.a.x;
    ay_[i] = e.a.y;
    dx_[i] = e.b.x - e.a.x;
    dy_[i] = e.b.y - e.a.y;
    const double len2 = dx_[i] * dx_[i] + dy_[i] * dy_[i];
    // Degenerate edges (zero-length, or so short the reciprocal
    // overflows and could breed 0*inf NaNs in the kernel) measure the
    // distance to their start point via t = 0.
    const double inv = len2 > 0.0 ? 1.0 / len2 : 0.0;
    inv_len2_[i] = std::isfinite(inv) ? inv : 0.0;
  }
  for (size_t i = num_edges_; i < padded_; ++i) {
    ax_[i] = ax_[0];
    ay_[i] = ay_[0];
    dx_[i] = dx_[0];
    dy_[i] = dy_[0];
    inv_len2_[i] = inv_len2_[0];
  }
}

EdgeSpanView EdgeSoA::PaddedView() const {
  return {ax_.data(), ay_.data(), dx_.data(), dy_.data(), inv_len2_.data(),
          padded_};
}

double EdgeSoA::MinDistanceSq(Point p) const {
  if (num_edges_ == 0) return std::numeric_limits<double>::infinity();
  return BatchMinDistanceSq(PaddedView(), p);
}

double EdgeSoA::MinDistance(Point p) const {
  if (num_edges_ == 0) {
    return has_vertex_ ? Distance(p, vertex_)
                       : std::numeric_limits<double>::infinity();
  }
  return std::sqrt(BatchMinDistanceSq(PaddedView(), p));
}

void EdgeSoA::MinDistances(const Point* points, size_t count,
                           double* out) const {
  if (num_edges_ == 0) {
    for (size_t i = 0; i < count; ++i) out[i] = MinDistance(points[i]);
    return;
  }
  const EdgeSpanView view = PaddedView();
  for (size_t i = 0; i < count; ++i) {
    out[i] = std::sqrt(BatchMinDistanceSq(view, points[i]));
  }
  CountBatchedEdges(count * num_edges_);
}

}  // namespace geosir::geom
