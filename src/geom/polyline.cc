#include "geom/polyline.h"

#include <cmath>

#include "geom/predicates.h"

namespace geosir::geom {

size_t Polyline::NumEdges() const {
  if (vertices_.size() < 2) return 0;
  return closed_ ? vertices_.size() : vertices_.size() - 1;
}

Segment Polyline::Edge(size_t i) const {
  const size_t n = vertices_.size();
  return Segment{vertices_[i], vertices_[(i + 1) % n]};
}

double Polyline::Perimeter() const {
  double total = 0.0;
  const size_t n = NumEdges();
  for (size_t i = 0; i < n; ++i) total += Edge(i).Length();
  return total;
}

double Polyline::SignedArea() const {
  if (!closed_ || vertices_.size() < 3) return 0.0;
  double sum = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    sum += vertices_[i].Cross(vertices_[(i + 1) % n]);
  }
  return 0.5 * sum;
}

BoundingBox Polyline::Bounds() const {
  BoundingBox box;
  for (Point p : vertices_) box.Extend(p);
  return box;
}

Point Polyline::VertexCentroid() const {
  Point sum;
  for (Point p : vertices_) sum += p;
  return vertices_.empty() ? sum : sum / static_cast<double>(vertices_.size());
}

Polyline Polyline::Transformed(const AffineTransform& t) const {
  std::vector<Point> out;
  out.reserve(vertices_.size());
  for (Point p : vertices_) out.push_back(t.Apply(p));
  return Polyline(std::move(out), closed_);
}

Polyline Polyline::Reversed() const {
  std::vector<Point> out(vertices_.rbegin(), vertices_.rend());
  return Polyline(std::move(out), closed_);
}

Point Polyline::AtArcLength(double s) const {
  const size_t n = NumEdges();
  if (n == 0) return vertices_.empty() ? Point{} : vertices_.front();
  if (s <= 0.0) return vertices_.front();
  for (size_t i = 0; i < n; ++i) {
    const Segment e = Edge(i);
    const double len = e.Length();
    if (s <= len || i + 1 == n) {
      const double t = len > 0.0 ? std::fmin(s / len, 1.0) : 0.0;
      return e.At(t);
    }
    s -= len;
  }
  return vertices_.back();
}

util::Status Polyline::Validate() const {
  if (vertices_.size() < 2) {
    return util::Status::InvalidArgument("shape needs at least 2 vertices");
  }
  if (closed_ && vertices_.size() < 3) {
    return util::Status::InvalidArgument(
        "closed shape needs at least 3 vertices");
  }
  for (Point p : vertices_) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return util::Status::InvalidArgument("non-finite vertex coordinate");
    }
  }
  const size_t n = NumEdges();
  for (size_t i = 0; i < n; ++i) {
    if (Edge(i).Length() <= 0.0) {
      return util::Status::InvalidArgument("duplicate consecutive vertices");
    }
  }
  if (SelfIntersects()) {
    return util::Status::InvalidArgument("shape self-intersects");
  }
  return util::Status::OK();
}

bool Polyline::SelfIntersects() const {
  const size_t n = NumEdges();
  if (n < 2) return false;
  const size_t num_vertices = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Segment ei = Edge(i);
    for (size_t j = i + 1; j < n; ++j) {
      const Segment ej = Edge(j);
      const bool adjacent =
          (j == i + 1) || (closed_ && i == 0 && j == n - 1);
      if (adjacent) {
        // Adjacent edges share exactly one endpoint; they self-intersect
        // only if they overlap collinearly (fold back onto each other).
        const Point shared =
            (j == i + 1) ? vertices_[(i + 1) % num_vertices] : vertices_[0];
        const Point pi = ei.a == shared ? ei.b : ei.a;
        const Point pj = ej.a == shared ? ej.b : ej.a;
        if (Orientation(shared, pi, pj) == 0 &&
            (pi - shared).Dot(pj - shared) > 0.0) {
          return true;
        }
        continue;
      }
      if (SegmentsIntersect(ei, ej)) return true;
    }
  }
  return false;
}

}  // namespace geosir::geom
