#ifndef GEOSIR_GEOM_KERNEL_DISPATCH_H_
#define GEOSIR_GEOM_KERNEL_DISPATCH_H_

#include <cstddef>

#include "geom/point.h"

namespace geosir::geom {

/// Instruction-set tier of the batch geometry kernels. The process picks
/// one tier at startup (first use) and never changes it, so every query
/// in a process runs the same arithmetic.
enum class KernelLevel {
  kScalar = 0,  ///< Portable scalar loop (std::fma), the oracle.
  kAvx2 = 1,    ///< AVX2 + FMA, 8 edges per iteration.
};

/// The kernel tier batch calls dispatch to. Resolved once per process:
/// AVX2+FMA hosts get kAvx2 unless GEOSIR_FORCE_SCALAR=1 is set in the
/// environment (or the build has no AVX2 kernel compiled in), everything
/// else gets kScalar. Also publishes the obs gauge
/// geosir_geom_kernel_level on first call.
KernelLevel ActiveKernelLevel();

/// Human-readable tier name ("scalar" / "avx2") for logs and bench rows.
const char* KernelLevelName(KernelLevel level);

/// True when the running CPU could execute the AVX2 kernel (regardless
/// of GEOSIR_FORCE_SCALAR and of whether the kernel was compiled in).
bool CpuSupportsAvx2Kernel();

/// A borrowed view of `count` edges stored structure-of-arrays. The five
/// arrays have `count` valid entries each; `inv_len2[i]` is 1/|d_i|^2
/// for regular edges and exactly 0.0 for degenerate ones (zero-length or
/// with a non-finite reciprocal), which makes the kernel measure the
/// distance to the edge's start point instead.
///
/// Kernel contract: all stored coordinates and every query point must be
/// finite. Non-finite input is a caller bug (API boundaries validate
/// shapes per DESIGN.md §5); the kernels assert it in debug builds and
/// produce unspecified values otherwise.
struct EdgeSpanView {
  const double* ax = nullptr;
  const double* ay = nullptr;
  const double* dx = nullptr;
  const double* dy = nullptr;
  const double* inv_len2 = nullptr;
  size_t count = 0;
};

/// Minimum squared point-to-edge distance over the span, or +inf for an
/// empty span. Dispatches to the active kernel tier. Both tiers use the
/// same canonical arithmetic (see edge_soa.h) and return bit-identical
/// results.
double BatchMinDistanceSq(const EdgeSpanView& span, Point p);

/// The portable reference kernel, callable directly regardless of the
/// active tier. The differential fuzz harness compares this against
/// BatchMinDistanceSq for exact equality.
double BatchMinDistanceSqScalar(const EdgeSpanView& span, Point p);

namespace internal {
/// Defined in batch_distance_avx2.cc (compiled with -mavx2 -mfma) when
/// the toolchain targets x86; null function behavior is never exposed —
/// dispatch falls back to scalar when the symbol is compiled out.
double BatchMinDistanceSqAvx2(const EdgeSpanView& span, Point p);
/// True when the AVX2 kernel translation unit was compiled with real
/// AVX2 codegen (x86 toolchain); false on other architectures.
bool Avx2KernelCompiledIn();
}  // namespace internal

/// Adds `edges` to the geosir_geom_kernel_batched_edges_total counter. Call
/// sites aggregate locally and flush once per logical operation (one
/// similarity evaluation, one multi-point batch) — never per sample.
void CountBatchedEdges(size_t edges);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_KERNEL_DISPATCH_H_
