#ifndef GEOSIR_GEOM_DISTANCE_H_
#define GEOSIR_GEOM_DISTANCE_H_

#include "geom/point.h"
#include "geom/polyline.h"

namespace geosir::geom {

/// Closest point to p on segment s.
///
/// Contract: p and both segment endpoints must be finite. A non-finite
/// coordinate would make the interpolation parameter NaN, and
/// std::clamp(NaN, 0, 1) silently leaks NaN into the returned point and
/// every distance derived from it. Debug builds assert; validated shapes
/// (DESIGN.md §5) can never reach this with non-finite input.
Point ClosestPointOnSegment(Point p, const Segment& s);

/// Euclidean distance from p to segment s.
double DistancePointSegment(Point p, const Segment& s);

/// Minimum distance from p to the boundary of the polyline (its edges).
/// Infinity for an empty shape; distance to the single vertex for a
/// one-vertex shape.
double DistancePointPolyline(Point p, const Polyline& shape);

/// Minimum distance from p to the vertex set of the polyline.
double DistancePointVertices(Point p, const Polyline& shape);

/// Minimum distance between two segments (0 when they intersect).
double DistanceSegmentSegment(const Segment& s1, const Segment& s2);

/// Minimum distance between the boundaries of two polylines.
double DistancePolylinePolyline(const Polyline& a, const Polyline& b);

}  // namespace geosir::geom

#endif  // GEOSIR_GEOM_DISTANCE_H_
