#ifndef GEOSIR_UTIL_CRC32_H_
#define GEOSIR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace geosir::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// used by the storage layer for per-block trailers and the v2 shape-file
/// records. `seed` allows incremental computation: Crc32(b, n2, Crc32(a,
/// n1)) == Crc32(concat(a, b), n1 + n2).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_CRC32_H_
