#ifndef GEOSIR_UTIL_QUERY_CONTROL_H_
#define GEOSIR_UTIL_QUERY_CONTROL_H_

#include "util/cancellation.h"
#include "util/deadline.h"
#include "util/status.h"

namespace geosir::util {

/// The per-operation lifecycle controls (deadline + cancellation token)
/// bundled so they can be threaded through deep call stacks — and, via
/// ScopedQueryControl, through interfaces that cannot carry per-call
/// parameters (SimplexIndex traversals, BufferManager retries).
///
/// Check() is the one polling point: it reports kCancelled before
/// kDeadlineExceeded (an explicit cancel is the stronger signal) and is
/// cheap enough for per-block granularity — one atomic load plus, only
/// when a finite deadline is set, one monotonic clock read.
struct QueryControl {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;

  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled(cancel->reason());
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

  /// True when neither control can ever fire (both defaults): callers may
  /// skip polling entirely.
  bool Inert() const { return cancel == nullptr && deadline.infinite(); }
};

/// Binds a QueryControl to the current thread for the duration of a
/// scope. Layers that cannot take per-call lifecycle parameters — the
/// SimplexIndex query interface and the storage read/retry path beneath
/// it — poll ScopedQueryControl::Active() instead. One thread runs one
/// query at a time (MatchBatch gives every worker its own matcher), so a
/// thread-local binding is exact; nesting restores the previous binding.
class ScopedQueryControl {
 public:
  explicit ScopedQueryControl(const QueryControl* control)
      : previous_(active_) {
    active_ = control;
  }
  ~ScopedQueryControl() { active_ = previous_; }

  ScopedQueryControl(const ScopedQueryControl&) = delete;
  ScopedQueryControl& operator=(const ScopedQueryControl&) = delete;

  /// The innermost control bound on this thread, or null.
  static const QueryControl* Active() { return active_; }

 private:
  static inline thread_local const QueryControl* active_ = nullptr;
  const QueryControl* previous_;
};

/// True for the status codes that terminate a query's lifecycle rather
/// than signal a malfunction: the operation was healthy but ran out of
/// time (kDeadlineExceeded), was asked to stop (kCancelled), or consumed
/// its work budget (kResourceExhausted). Callers that support partial
/// results treat these as "stop and report best-so-far", not as errors.
inline bool IsLifecycleStop(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_QUERY_CONTROL_H_
