#ifndef GEOSIR_UTIL_RETRY_H_
#define GEOSIR_UTIL_RETRY_H_

#include <chrono>
#include <thread>
#include <type_traits>

#include "util/query_control.h"
#include "util/status.h"

namespace geosir::util {

/// Bounded retry with exponential backoff for transient faults
/// (kUnavailable). Used by BufferManager::Pin to heal injected or real
/// I/O hiccups; defaults keep experiments deterministic and fast (no
/// sleeping) while production callers can set a real backoff.
struct RetryPolicy {
  /// Total attempts including the first one; <= 1 disables retries.
  int max_attempts = 3;
  /// Sleep before retry i is base_backoff_us * multiplier^(i-1)
  /// microseconds; 0 disables sleeping entirely.
  int base_backoff_us = 0;
  double multiplier = 2.0;
};

/// Whether a failed operation is worth retrying under the same inputs.
inline bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Invokes `fn` (returning Status or Result<T>) up to
/// `policy.max_attempts` times, sleeping between attempts, as long as the
/// outcome is retriable. Returns the last outcome. If `attempts_out` is
/// non-null it receives the number of invocations performed.
///
/// Retrying respects the active query lifecycle (`control`, defaulting to
/// the thread's ScopedQueryControl binding): once the deadline has passed
/// or the operation is cancelled, no further attempt is made and the last
/// outcome is returned as-is — a query on its way out must not burn its
/// remaining time sleeping in a backoff loop. The first attempt always
/// runs; lifecycle checks only gate *re*-tries.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn,
                      int* attempts_out = nullptr,
                      const QueryControl* control = nullptr)
    -> std::invoke_result_t<Fn> {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double backoff_us = static_cast<double>(policy.base_backoff_us);
  if (control == nullptr) control = ScopedQueryControl::Active();
  for (int attempt = 1;; ++attempt) {
    auto outcome = fn();
    if (attempts_out != nullptr) *attempts_out = attempt;
    if (internal::StatusOf(outcome).ok() ||
        !IsRetriable(internal::StatusOf(outcome).code()) ||
        attempt >= attempts ||
        (control != nullptr && !control->Check().ok())) {
      return outcome;
    }
    if (backoff_us >= 1.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(backoff_us)));
      backoff_us *= policy.multiplier;
    }
  }
}

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_RETRY_H_
