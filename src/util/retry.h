#ifndef GEOSIR_UTIL_RETRY_H_
#define GEOSIR_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <type_traits>

#include "util/query_control.h"
#include "util/status.h"

namespace geosir::util {

/// Bounded retry with exponential backoff for transient faults
/// (kUnavailable). Used by BufferManager::Pin to heal injected or real
/// I/O hiccups; defaults keep experiments deterministic and fast (no
/// sleeping) while production callers can set a real backoff.
struct RetryPolicy {
  /// Total attempts including the first one; <= 1 disables retries.
  int max_attempts = 3;
  /// Sleep before retry i is base_backoff_us * multiplier^(i-1)
  /// microseconds; 0 disables sleeping entirely.
  int base_backoff_us = 0;
  double multiplier = 2.0;
  /// Ceiling on any single sleep, in microseconds; 0 = uncapped (the
  /// legacy unbounded exponential). Reconnect loops over real sockets
  /// must set this: a follower that has been down for minutes should not
  /// wake up sleeping for minutes more.
  int64_t max_backoff_us = 0;
  /// Decorrelated jitter: each sleep is drawn uniformly from
  /// [base, max(base, prev * multiplier)] instead of the deterministic
  /// exponential, so a herd of clients severed at the same instant does
  /// not reconnect in lockstep. The draw is a pure hash of
  /// (jitter_seed, attempt) — deterministic for a given seed, which is
  /// what chaos tests need to stay reproducible.
  bool decorrelated_jitter = false;
  uint64_t jitter_seed = 0;
};

/// Whether a failed operation is worth retrying under the same inputs.
inline bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

/// SplitMix64 finalizer: a full-avalanche mix so consecutive attempt
/// numbers land on unrelated jitter draws.
inline uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace internal

/// The sleep (microseconds) taken after attempt `attempt` (1-based)
/// fails, given the previous sleep `prev_us` (0 before any sleep). Pure
/// and deterministic — the testable core of the backoff schedule.
inline int64_t NextBackoffUs(const RetryPolicy& policy, int attempt,
                             int64_t prev_us) {
  const int64_t base = policy.base_backoff_us;
  if (base <= 0) return 0;
  const int64_t cap = policy.max_backoff_us > 0
                          ? policy.max_backoff_us
                          : std::numeric_limits<int64_t>::max();
  if (!policy.decorrelated_jitter) {
    double us = static_cast<double>(base);
    for (int i = 1; i < attempt; ++i) {
      us *= policy.multiplier;
      if (us >= static_cast<double>(cap)) return cap;
    }
    return std::min(cap, static_cast<int64_t>(us));
  }
  const int64_t lower = std::min(base, cap);
  const double scaled =
      static_cast<double>(prev_us > 0 ? prev_us : base) * policy.multiplier;
  int64_t upper = scaled >= static_cast<double>(cap)
                      ? cap
                      : static_cast<int64_t>(scaled);
  upper = std::max(upper, lower);
  if (upper == lower) return lower;
  const uint64_t span = static_cast<uint64_t>(upper - lower) + 1;
  const uint64_t draw = internal::Mix64(
      policy.jitter_seed ^ (static_cast<uint64_t>(attempt) * 0xD6E8FEB86659FD93ull));
  return lower + static_cast<int64_t>(draw % span);
}

/// Invokes `fn` (returning Status or Result<T>) up to
/// `policy.max_attempts` times, sleeping between attempts, as long as the
/// outcome is retriable. Returns the last outcome. If `attempts_out` is
/// non-null it receives the number of invocations performed.
///
/// Retrying respects the active query lifecycle (`control`, defaulting to
/// the thread's ScopedQueryControl binding): once the deadline has passed
/// or the operation is cancelled, no further attempt is made and the last
/// outcome is returned as-is — a query on its way out must not burn its
/// remaining time sleeping in a backoff loop. The first attempt always
/// runs; lifecycle checks only gate *re*-tries.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn,
                      int* attempts_out = nullptr,
                      const QueryControl* control = nullptr)
    -> std::invoke_result_t<Fn> {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  int64_t prev_backoff_us = 0;
  if (control == nullptr) control = ScopedQueryControl::Active();
  for (int attempt = 1;; ++attempt) {
    auto outcome = fn();
    if (attempts_out != nullptr) *attempts_out = attempt;
    if (internal::StatusOf(outcome).ok() ||
        !IsRetriable(internal::StatusOf(outcome).code()) ||
        attempt >= attempts ||
        (control != nullptr && !control->Check().ok())) {
      return outcome;
    }
    const int64_t backoff_us = NextBackoffUs(policy, attempt, prev_backoff_us);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      prev_backoff_us = backoff_us;
    }
  }
}

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_RETRY_H_
