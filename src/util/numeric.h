#ifndef GEOSIR_UTIL_NUMERIC_H_
#define GEOSIR_UTIL_NUMERIC_H_

#include <cmath>
#include <functional>

#include "util/status.h"

namespace geosir::util {

/// Options controlling the adaptive quadrature routines.
struct QuadratureOptions {
  double abs_tolerance = 1e-10;
  int max_depth = 40;
};

/// Integrates f over [a, b] with adaptive Simpson quadrature. The
/// integrand must be finite over the whole interval. Deterministic.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, const QuadratureOptions& options = {});

/// Fixed-panel composite Simpson integration (n panels, n rounded up to
/// even). Useful when the integrand is cheap and smooth and a fixed cost
/// matters more than adaptivity.
double CompositeSimpson(const std::function<double(double)>& f, double a,
                        double b, int panels);

/// Options controlling root finding.
struct RootFindOptions {
  double x_tolerance = 1e-12;
  double f_tolerance = 1e-12;
  int max_iterations = 200;
};

/// Finds a root of f in [lo, hi] where f(lo) and f(hi) have opposite signs
/// (or either endpoint is already a root). Uses safeguarded
/// Newton/bisection: Newton steps when the derivative estimate is usable
/// and the step stays inside the bracket, bisection otherwise. `df` may be
/// null, in which case a central finite difference is used.
Result<double> FindRootBracketed(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double lo, double hi,
                                 const RootFindOptions& options = {});

/// Minimizes a unimodal function on [lo, hi] by golden-section search;
/// returns the abscissa of the minimum.
double GoldenSectionMinimize(const std::function<double(double)>& f, double lo,
                             double hi, double x_tolerance = 1e-9);

/// True if |a - b| <= eps * max(1, |a|, |b|).
inline bool ApproxEqual(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) <= eps * std::fmax(1.0, std::fmax(std::fabs(a),
                                                            std::fabs(b)));
}

/// Clamps v to [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_NUMERIC_H_
