#ifndef GEOSIR_UTIL_RELAXED_COUNTER_H_
#define GEOSIR_UTIL_RELAXED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace geosir::util {

/// Counter safe to bump from concurrent readers of a shared structure
/// (MatchBatch runs several matchers against one SimplexIndex; concurrent
/// queries share one BufferManager's counters). Relaxed ordering only:
/// the values are diagnostics, never synchronization. Copy and assignment
/// read/write through relaxed loads/stores, so a stats struct built from
/// these can be copied while other threads keep counting — each field is
/// individually coherent, the struct as a whole is a best-effort
/// snapshot.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}
  RelaxedCounter(const RelaxedCounter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_RELAXED_COUNTER_H_
