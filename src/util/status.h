#ifndef GEOSIR_UTIL_STATUS_H_
#define GEOSIR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace geosir::util {

/// Error categories used across the library. Modeled after the Status
/// idiom common in database engines: library paths never throw; fallible
/// operations return a Status (or Result<T> below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kNotSupported,
  kInternal,
  /// A transient fault (I/O hiccup, injected fault): the operation may
  /// succeed if retried. See util/retry.h for the bounded-retry helper.
  kUnavailable,
  /// The operation's deadline passed before it completed. Query-lifecycle
  /// stop, not a malfunction: best-so-far partial results may exist (see
  /// MatchStats::partial).
  kDeadlineExceeded,
  /// The operation was cooperatively cancelled via a CancellationToken.
  kCancelled,
  /// The operation consumed its work budget (rounds / candidate
  /// evaluations / range-search visits) before completing.
  kResourceExhausted,
};

/// Human-readable name of a StatusCode ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. The value accessors
/// assert on misuse (checking ok() first is the caller's contract).
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so functions can `return Status::...;`. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace geosir::util

/// Propagates a non-OK Status to the caller.
#define GEOSIR_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::geosir::util::Status _st = (expr);        \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the value to `lhs`.
#define GEOSIR_ASSIGN_OR_RETURN(lhs, expr)                   \
  GEOSIR_ASSIGN_OR_RETURN_IMPL_(                             \
      GEOSIR_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)
#define GEOSIR_STATUS_CONCAT_INNER_(a, b) a##b
#define GEOSIR_STATUS_CONCAT_(a, b) GEOSIR_STATUS_CONCAT_INNER_(a, b)
#define GEOSIR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // GEOSIR_UTIL_STATUS_H_
