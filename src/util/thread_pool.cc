#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace geosir::util {

namespace {

/// True while the current thread is executing a ParallelFor body; nested
/// loops then run inline instead of re-entering the pool (a worker that
/// blocked on its own pool would deadlock).
thread_local bool tls_in_parallel_body = false;

/// Process-wide pool metric families. Instrumented per *job* (one
/// ParallelFor), never per item — items can be sub-microsecond.
struct PoolMetrics {
  obs::Counter* jobs;
  obs::Counter* items;
  obs::Counter* waits;
  obs::Histogram* job_latency;

  static const PoolMetrics& Get() {
    static const PoolMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new PoolMetrics();
      m->jobs = r.GetCounter("geosir_threadpool_jobs_total",
                             "ParallelFor jobs run through a pool");
      m->items = r.GetCounter("geosir_threadpool_items_total",
                              "Loop items submitted to pool jobs");
      m->waits = r.GetCounter(
          "geosir_threadpool_waits_total",
          "Callers that found the pool busy and had to wait (saturation)");
      m->job_latency = r.GetHistogram("geosir_threadpool_job_seconds",
                                      "Wall-clock latency of one pool job",
                                      obs::LatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t helpers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::CaptureException() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_exception_ == nullptr) {
    first_exception_ = std::current_exception();
  }
  // Checkpointed early exit: no slot claims another item after this.
  stop_.store(true, std::memory_order_release);
}

void ThreadPool::Drain(size_t slot,
                       const std::function<void(size_t, size_t)>& body,
                       size_t end) {
  const bool was_in_body = tls_in_parallel_body;
  tls_in_parallel_body = true;
  while (true) {
    if (stop_.load(std::memory_order_acquire) ||
        (cancel_ != nullptr && cancel_->cancelled())) {
      break;
    }
    const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= end) break;
    try {
      body(slot, item);
    } catch (...) {
      CaptureException();
    }
  }
  tls_in_parallel_body = was_in_body;
}

void ThreadPool::ParallelFor(
    size_t n, size_t max_parallelism,
    const std::function<void(size_t worker, size_t item)>& body,
    const CancellationToken* cancel) {
  if (n == 0) return;
  size_t helpers = workers_.size();
  if (max_parallelism > 0) helpers = std::min(helpers, max_parallelism - 1);
  helpers = std::min(helpers, n - 1);
  if (helpers == 0 || tls_in_parallel_body) {
    // Inline path (serial caller or nested loop): exceptions propagate
    // directly — the loop stops at the throwing item, which matches the
    // pooled path's "cancel remaining iterations" contract.
    const bool was_in_body = tls_in_parallel_body;
    tls_in_parallel_body = true;
    for (size_t item = 0; item < n; ++item) {
      if (cancel != nullptr && cancel->cancelled()) break;
      try {
        body(0, item);
      } catch (...) {
        tls_in_parallel_body = was_in_body;
        throw;
      }
    }
    tls_in_parallel_body = was_in_body;
    return;
  }
  const PoolMetrics& metrics = PoolMetrics::Get();
  const auto job_start = std::chrono::steady_clock::now();
  {
    // Serialize external callers: a second thread must not overwrite an
    // active job's state (body pointer, item counter, helper count).
    std::unique_lock<std::mutex> lock(mutex_);
    if (busy_) metrics.waits->Inc();
    done_cv_.wait(lock, [this] { return !busy_; });
    busy_ = true;
    body_ = &body;
    end_ = n;
    num_helpers_ = helpers;
    pending_helpers_ = helpers;
    next_item_.store(0, std::memory_order_relaxed);
    cancel_ = cancel;
    stop_.store(false, std::memory_order_relaxed);
    first_exception_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();
  Drain(/*slot=*/0, body, n);
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_helpers_ == 0; });
    body_ = nullptr;
    cancel_ = nullptr;
    pending = first_exception_;
    first_exception_ = nullptr;
    busy_ = false;
  }
  // Wake any external caller waiting for the pool to free up.
  done_cv_.notify_all();
  metrics.jobs->Inc();
  metrics.items->Inc(n);
  metrics.job_latency->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job_start)
          .count());
  if (pending != nullptr) std::rethrow_exception(pending);
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    job_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    // Capped out of this job: ParallelFor counted only num_helpers_
    // participants, so just go back to waiting.
    if (worker_id >= num_helpers_) continue;
    const std::function<void(size_t, size_t)>* body = body_;
    const size_t end = end_;
    lock.unlock();
    Drain(/*slot=*/worker_id + 1, *body, end);
    lock.lock();
    if (--pending_helpers_ == 0) done_cv_.notify_all();
  }
}

}  // namespace geosir::util
