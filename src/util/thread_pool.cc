#include "util/thread_pool.h"

#include <algorithm>

namespace geosir::util {

namespace {

/// True while the current thread is executing a ParallelFor body; nested
/// loops then run inline instead of re-entering the pool (a worker that
/// blocked on its own pool would deadlock).
thread_local bool tls_in_parallel_body = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t helpers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::Drain(size_t slot,
                       const std::function<void(size_t, size_t)>& body,
                       size_t end) {
  const bool was_in_body = tls_in_parallel_body;
  tls_in_parallel_body = true;
  while (true) {
    const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= end) break;
    body(slot, item);
  }
  tls_in_parallel_body = was_in_body;
}

void ThreadPool::ParallelFor(
    size_t n, size_t max_parallelism,
    const std::function<void(size_t worker, size_t item)>& body) {
  if (n == 0) return;
  size_t helpers = workers_.size();
  if (max_parallelism > 0) helpers = std::min(helpers, max_parallelism - 1);
  helpers = std::min(helpers, n - 1);
  if (helpers == 0 || tls_in_parallel_body) {
    const bool was_in_body = tls_in_parallel_body;
    tls_in_parallel_body = true;
    for (size_t item = 0; item < n; ++item) body(0, item);
    tls_in_parallel_body = was_in_body;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    end_ = n;
    num_helpers_ = helpers;
    pending_helpers_ = helpers;
    next_item_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  job_cv_.notify_all();
  Drain(/*slot=*/0, body, n);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_helpers_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    job_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    // Capped out of this job: ParallelFor counted only num_helpers_
    // participants, so just go back to waiting.
    if (worker_id >= num_helpers_) continue;
    const std::function<void(size_t, size_t)>* body = body_;
    const size_t end = end_;
    lock.unlock();
    Drain(/*slot=*/worker_id + 1, *body, end);
    lock.lock();
    if (--pending_helpers_ == 0) done_cv_.notify_all();
  }
}

}  // namespace geosir::util
