#include "util/crc32.h"

#include <array>
#include <cstring>

namespace geosir::util {

namespace {

/// Slicing-by-8 tables: t[0] is the classic byte-at-a-time table, t[k]
/// advances a byte through k additional zero bytes, so eight lookups
/// combine to one 8-byte step. Same polynomial, same result, several
/// times the throughput of the bytewise loop on the storage layer's
/// frame sizes — the CRC runs on every WAL append and every checkpoint
/// record, so it sits on the durable insert path.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTable = BuildTables();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The sliced step folds the running CRC into the low word, which is
  // only correct with little-endian loads; other platforms take the
  // bytewise tail loop for the whole buffer.
  while (size >= 8) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    std::memcpy(&lo, bytes, sizeof(lo));
    std::memcpy(&hi, bytes + 4, sizeof(hi));
    lo ^= crc;
    crc = kTable[7][lo & 0xFFu] ^ kTable[6][(lo >> 8) & 0xFFu] ^
          kTable[5][(lo >> 16) & 0xFFu] ^ kTable[4][lo >> 24] ^
          kTable[3][hi & 0xFFu] ^ kTable[2][(hi >> 8) & 0xFFu] ^
          kTable[1][(hi >> 16) & 0xFFu] ^ kTable[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace geosir::util
