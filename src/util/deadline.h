#ifndef GEOSIR_UTIL_DEADLINE_H_
#define GEOSIR_UTIL_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace geosir::util {

/// An absolute point in time on the monotonic clock by which an operation
/// must finish. Default-constructed deadlines are infinite (never expire),
/// so threading a Deadline through an API costs nothing for callers that
/// do not set one: `expired()` on an infinite deadline is a single branch
/// with no clock read.
///
/// Deadlines are value types; copy them freely. They compose with the
/// wall-clock only through the steady clock, so they are immune to
/// NTP/system-time jumps (the property a query timeout needs).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::time_point at) { return Deadline(at); }

  static Deadline After(Clock::duration d) { return Deadline(Clock::now() + d); }

  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  static Deadline AfterMicros(int64_t us) {
    return After(std::chrono::microseconds(us));
  }

  bool infinite() const { return infinite_; }

  /// True once the monotonic clock has passed the deadline. Free (no
  /// clock read) for infinite deadlines.
  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Time left, saturated at zero. Infinite deadlines report the maximum
  /// representable duration.
  Clock::duration remaining() const {
    if (infinite_) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

  int64_t remaining_micros() const {
    if (infinite_) return INT64_MAX;
    return std::chrono::duration_cast<std::chrono::microseconds>(remaining())
        .count();
  }

  /// The absolute expiry instant; only meaningful when !infinite().
  Clock::time_point time_point() const { return at_; }

  /// The earlier of the two deadlines (an infinite one never wins).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return Deadline(std::min(a.at_, b.at_));
  }

 private:
  explicit Deadline(Clock::time_point at) : infinite_(false), at_(at) {}

  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_DEADLINE_H_
