#include "util/status.h"

namespace geosir::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace geosir::util
