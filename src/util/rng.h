#ifndef GEOSIR_UTIL_RNG_H_
#define GEOSIR_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace geosir::util {

/// Deterministic random number generator. All stochastic code in the
/// library takes an Rng so that tests and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Gaussian(double stddev) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// generated entity its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_RNG_H_
