#include "util/numeric.h"

#include <algorithm>
#include <cmath>

namespace geosir::util {

namespace {

double SimpsonPanel(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRec(const std::function<double(double)>& f, double a,
                          double fa, double b, double fb, double m, double fm,
                          double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonPanel(a, fa, m, fm, flm);
  const double right = SimpsonPanel(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpsonRec(f, a, fa, m, fm, lm, flm, left, 0.5 * tol,
                            depth - 1) +
         AdaptiveSimpsonRec(f, m, fm, b, fb, rm, frm, right, 0.5 * tol,
                            depth - 1);
}

}  // namespace

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, const QuadratureOptions& options) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = SimpsonPanel(a, fa, b, fb, fm);
  return AdaptiveSimpsonRec(f, a, fa, b, fb, m, fm, whole,
                            options.abs_tolerance, options.max_depth);
}

double CompositeSimpson(const std::function<double(double)>& f, double a,
                        double b, int panels) {
  if (a == b) return 0.0;
  int n = std::max(2, panels);
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

Result<double> FindRootBracketed(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double lo, double hi,
                                 const RootFindOptions& options) {
  if (!(lo <= hi)) {
    return Status::InvalidArgument("FindRootBracketed: lo > hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (std::fabs(flo) <= options.f_tolerance) return lo;
  if (std::fabs(fhi) <= options.f_tolerance) return hi;
  if ((flo > 0) == (fhi > 0)) {
    return Status::InvalidArgument(
        "FindRootBracketed: f(lo) and f(hi) have the same sign");
  }
  double x = 0.5 * (lo + hi);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double fx = f(x);
    if (std::fabs(fx) <= options.f_tolerance) return x;
    // Shrink the bracket.
    if ((fx > 0) == (fhi > 0)) {
      hi = x;
      fhi = fx;
    } else {
      lo = x;
      flo = fx;
    }
    if (hi - lo <= options.x_tolerance) return 0.5 * (lo + hi);
    // Attempt a Newton step from x; fall back to bisection when the
    // derivative is tiny or the step escapes the bracket.
    double deriv;
    if (df) {
      deriv = df(x);
    } else {
      const double h = std::fmax(1e-7, 1e-7 * std::fabs(x));
      deriv = (f(x + h) - f(x - h)) / (2.0 * h);
    }
    double next;
    if (std::fabs(deriv) > 1e-300) {
      next = x - fx / deriv;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    x = next;
  }
  return 0.5 * (lo + hi);
}

double GoldenSectionMinimize(const std::function<double(double)>& f, double lo,
                             double hi, double x_tolerance) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > x_tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace geosir::util
