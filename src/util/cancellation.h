#ifndef GEOSIR_UTIL_CANCELLATION_H_
#define GEOSIR_UTIL_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>

namespace geosir::util {

/// A sharable cooperative-cancellation flag. One side (a client timeout
/// handler, an operator console, a supervising thread) calls Cancel();
/// the working side polls cancelled() at its checkpoints and winds down,
/// returning whatever partial result it has accumulated.
///
/// Copies share state: hand copies of one token to every thread that
/// participates in the same logical operation. The hot-path check is a
/// single acquire load of an atomic flag — no locks, safe to poll at
/// per-block granularity. The first Cancel() wins and records a reason;
/// later calls are no-ops.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation. Thread-safe; the first caller's reason is
  /// kept. Returns true if this call performed the cancellation.
  bool Cancel(std::string reason = "cancelled") {
    if (state_->claimed.exchange(true, std::memory_order_acq_rel)) {
      return false;
    }
    // The reason is published before the flag flips (release), so any
    // thread that observes cancelled() == true (acquire) also sees it.
    state_->reason = std::move(reason);
    state_->cancelled.store(true, std::memory_order_release);
    return true;
  }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// The first Cancel() call's reason; empty while not cancelled.
  std::string reason() const {
    return cancelled() ? state_->reason : std::string();
  }

 private:
  struct State {
    std::atomic<bool> claimed{false};
    std::atomic<bool> cancelled{false};
    std::string reason;
  };

  std::shared_ptr<State> state_;
};

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_CANCELLATION_H_
