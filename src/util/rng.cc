#include "util/rng.h"

// Rng is header-only; this file exists so the util library has a stable
// translation unit for it (and a place for future out-of-line helpers).
