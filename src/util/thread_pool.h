#ifndef GEOSIR_UTIL_THREAD_POOL_H_
#define GEOSIR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancellation.h"

namespace geosir::util {

/// A fixed-size pool of worker threads driving fork-join parallel loops.
///
/// The pool is built once and reused for every ParallelFor: workers park
/// on a condition variable between loops and claim items from a shared
/// atomic counter while a loop is active, so the steady state performs no
/// per-task allocation (the loop body is passed by reference and items
/// are bare indices).
///
/// ParallelFor(n) is a barrier: it returns only after every slot has
/// drained. The calling thread participates as worker slot 0, so
/// ThreadPool(n) spawns n - 1 background threads for a total parallelism
/// of n. ParallelFor issued from inside a pool worker (a nested parallel
/// loop) runs inline on that worker — nesting degrades gracefully to
/// serial instead of deadlocking. Concurrent ParallelFor calls from
/// *different external* threads are serialized: the second caller blocks
/// until the pool is free.
///
/// Early exit: a loop stops claiming new items — in-flight items drain,
/// then the barrier releases — when (a) the optional `cancel` token
/// fires, or (b) any invocation of the body throws. The first exception
/// is captured and rethrown on the calling thread after the barrier;
/// items not yet claimed at that point never run.
class ThreadPool {
 public:
  /// Total parallelism `num_threads` (>= 1): the pool owns
  /// num_threads - 1 background workers; the caller of ParallelFor is the
  /// remaining thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (background workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs body(worker, item) for every item in [0, n), spreading items
  /// over at most max_parallelism threads (0 means "all of the pool").
  /// `worker` is a dense slot id in [0, parallelism); the calling thread
  /// is always slot 0. Items are claimed dynamically, so the mapping of
  /// items to slots is nondeterministic — bodies must only write to
  /// per-item or per-slot state. Blocks until every claimed item has
  /// completed.
  ///
  /// When `cancel` is non-null, its flag is checked before each claim
  /// (checkpointed early exit): once cancelled, no new item starts, but
  /// items already running finish normally — the loop returns promptly
  /// without abandoning work mid-body. If the body throws, the first
  /// exception is rethrown here after all slots drain.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t worker, size_t item)>& body,
                   const CancellationToken* cancel = nullptr);

  /// Largest `worker` slot count ParallelFor can use under the given cap:
  /// min(num_threads(), max_parallelism), with 0 meaning uncapped. Size
  /// per-slot scratch (one matcher per slot, say) with this.
  size_t MaxSlots(size_t max_parallelism) const {
    const size_t total = num_threads();
    return max_parallelism == 0 ? total : std::min(total, max_parallelism);
  }

  /// Process-wide shared pool sized to the hardware concurrency. Built on
  /// first use; intentionally never destroyed (worker threads must not be
  /// joined from static destructors).
  static ThreadPool& Shared();

 private:
  void WorkerLoop(size_t worker_id);
  void Drain(size_t slot, const std::function<void(size_t, size_t)>& body,
             size_t end);
  /// Records a body exception: first one wins, all further claims stop.
  void CaptureException();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   // Workers wait for a new generation.
  std::condition_variable done_cv_;  // Caller waits for helpers / pool free.
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t end_ = 0;
  size_t num_helpers_ = 0;      // Helpers participating in this job.
  size_t pending_helpers_ = 0;  // Helpers that have not checked out yet.
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  bool busy_ = false;           // A job is set up or running.
  std::atomic<size_t> next_item_{0};

  // Per-job early-exit state (reset when a job is installed).
  const CancellationToken* cancel_ = nullptr;
  std::atomic<bool> stop_{false};
  std::exception_ptr first_exception_;
};

}  // namespace geosir::util

#endif  // GEOSIR_UTIL_THREAD_POOL_H_
