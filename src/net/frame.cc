#include "net/frame.h"

#include <cstring>

#include "util/crc32.h"

namespace geosir::net {
namespace {

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

}  // namespace

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool ByteReader::ReadU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = GetU16(data_ + pos_);
  pos_ += 2;
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = GetU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = GetU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::ReadBytes(std::vector<uint8_t>* out, size_t n) {
  if (remaining() < n) return false;
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool ByteReader::ReadString(std::string* out, size_t n) {
  if (remaining() < n) return false;
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

void AppendFrame(std::vector<uint8_t>* out, uint8_t type,
                 const uint8_t* payload, size_t payload_len) {
  const size_t start = out->size();
  PutU32(out, kFrameMagic);
  PutU8(out, kProtocolVersion);
  PutU8(out, type);
  PutU16(out, 0);  // flags
  PutU32(out, static_cast<uint32_t>(payload_len));
  out->insert(out->end(), payload, payload + payload_len);
  const uint32_t crc =
      util::Crc32(out->data() + start, kFrameHeaderBytes + payload_len);
  PutU32(out, crc);
}

void AppendFrame(std::vector<uint8_t>* out, uint8_t type,
                 const std::vector<uint8_t>& payload) {
  AppendFrame(out, type, payload.data(), payload.size());
}

util::Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                                size_t max_payload, size_t* consumed) {
  if (size < kFrameHeaderBytes) {
    return util::Status::Unavailable("short frame header");
  }
  if (GetU32(data) != kFrameMagic) {
    return util::Status::Corruption("bad frame magic");
  }
  const uint32_t payload_len = GetU32(data + 8);
  // Bound BEFORE allocating or adding: a forged length can neither OOM
  // the reader nor overflow the total below (max_payload is a size_t the
  // process could actually hold).
  if (payload_len > max_payload) {
    return util::Status::Corruption("frame payload length " +
                                    std::to_string(payload_len) +
                                    " exceeds limit");
  }
  const size_t total =
      kFrameHeaderBytes + static_cast<size_t>(payload_len) +
      kFrameTrailerBytes;
  if (size < total) return util::Status::Unavailable("truncated frame");
  const uint32_t want = GetU32(data + total - kFrameTrailerBytes);
  const uint32_t got = util::Crc32(data, total - kFrameTrailerBytes);
  if (want != got) return util::Status::Corruption("frame crc mismatch");
  Frame frame;
  frame.version = data[4];
  frame.type = data[5];
  frame.payload.assign(data + kFrameHeaderBytes,
                       data + kFrameHeaderBytes + payload_len);
  if (consumed != nullptr) *consumed = total;
  return frame;
}

util::Status WriteFrame(Socket* socket, uint8_t type,
                        const std::vector<uint8_t>& payload,
                        util::Deadline deadline, size_t* wire_bytes) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  AppendFrame(&bytes, type, payload);
  if (wire_bytes != nullptr) *wire_bytes = bytes.size();
  return socket->WriteFull(bytes.data(), bytes.size(), deadline);
}

util::Result<Frame> ReadFrame(Socket* socket, size_t max_payload,
                              util::Deadline deadline, size_t* wire_bytes) {
  if (wire_bytes != nullptr) *wire_bytes = 0;
  uint8_t header[kFrameHeaderBytes];
  size_t got = 0;
  util::Status read =
      socket->ReadFull(header, sizeof(header), deadline, &got);
  if (!read.ok()) {
    // A clean close between frames is the peer hanging up (kUnavailable,
    // reconnectable); bytes followed by a close is a torn frame. A
    // deadline expiry keeps its own code either way.
    if (read.code() != util::StatusCode::kDeadlineExceeded && got > 0) {
      return util::Status::Corruption("connection closed mid-frame");
    }
    return read;
  }
  if (GetU32(header) != kFrameMagic) {
    return util::Status::Corruption("bad frame magic");
  }
  const uint32_t payload_len = GetU32(header + 8);
  if (payload_len > max_payload) {
    return util::Status::Corruption("frame payload length " +
                                    std::to_string(payload_len) +
                                    " exceeds limit");
  }
  std::vector<uint8_t> rest(static_cast<size_t>(payload_len) +
                            kFrameTrailerBytes);
  read = socket->ReadFull(rest.data(), rest.size(), deadline, &got);
  if (!read.ok()) {
    if (read.code() == util::StatusCode::kDeadlineExceeded) return read;
    return util::Status::Corruption("connection closed mid-frame");
  }
  const uint32_t want = GetU32(rest.data() + payload_len);
  uint32_t crc = util::Crc32(header, sizeof(header));
  crc = util::Crc32(rest.data(), payload_len, crc);
  if (want != crc) return util::Status::Corruption("frame crc mismatch");
  Frame frame;
  frame.version = header[4];
  frame.type = header[5];
  rest.resize(payload_len);
  frame.payload = std::move(rest);
  if (wire_bytes != nullptr) {
    *wire_bytes = kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  }
  return frame;
}

}  // namespace geosir::net
