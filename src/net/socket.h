#ifndef GEOSIR_NET_SOCKET_H_
#define GEOSIR_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/deadline.h"
#include "util/status.h"

namespace geosir::net {

/// A connected TCP stream socket (IPv4, dotted-quad addresses — the
/// replication tier binds loopback or explicit addresses; name resolution
/// is the deployment layer's job). Move-only RAII over the fd.
///
/// All I/O is deadline-aware: the fd is kept non-blocking and every
/// operation polls with the deadline's remaining time, so a call never
/// blocks past its deadline by more than the poll granularity (1 ms
/// rounding). A deadline expiring surfaces as kDeadlineExceeded; the peer
/// being gone (closed, reset, refused) as kUnavailable. The RPC layer
/// above maps both onto the transport's retry semantics.
///
/// Writes use MSG_NOSIGNAL: a peer that vanished mid-write produces EPIPE
/// (mapped to kUnavailable), never a process-killing SIGPIPE.
///
/// Instances are not thread-safe for concurrent I/O in the same
/// direction; Shutdown() is safe to call from another thread to unblock
/// a reader (the poll wakes and the read fails with kUnavailable).
class Socket {
 public:
  Socket() = default;  // Invalid (fd < 0); I/O fails with kInternal.
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Takes ownership of a connected fd (sets it non-blocking).
  static Socket Adopt(int fd);

  /// Non-blocking connect with deadline: kUnavailable on refusal or an
  /// unreachable peer, kDeadlineExceeded on timeout, kInvalidArgument
  /// when `host` is not a dotted-quad IPv4 address. TCP_NODELAY is
  /// enabled (the wire protocol writes whole frames; Nagle only adds
  /// latency).
  static util::Result<Socket> Connect(const std::string& host, uint16_t port,
                                      util::Deadline deadline);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `size` bytes. kUnavailable when the connection closes
  /// or errors first, kDeadlineExceeded when the deadline expires first;
  /// either way `bytes_read` (when non-null) reports how far the read
  /// got, so framing layers can tell a clean close at a message boundary
  /// from a torn one.
  util::Status ReadFull(void* buf, size_t size, util::Deadline deadline,
                        size_t* bytes_read = nullptr);

  /// Writes exactly `size` bytes. kUnavailable when the peer is gone,
  /// kDeadlineExceeded when the buffer never drained in time.
  util::Status WriteFull(const void* buf, size_t size,
                         util::Deadline deadline);

  /// shutdown(SHUT_RDWR): wakes any blocked reader/writer on this socket
  /// (their next poll sees HUP and the operation fails). Unlike Close,
  /// safe while another thread is mid-I/O — the fd number stays reserved
  /// until the owner destroys the Socket, so it cannot be reused under a
  /// racing poll.
  void Shutdown();

  void Close();

 private:
  explicit Socket(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// A bound, listening TCP socket. Accept is deadline-aware like Socket
/// I/O; Shutdown() from another thread unblocks a pending Accept (it
/// returns kCancelled), which is how a server's Stop() tears down its
/// accept loop without races.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on host:port (port 0 = ephemeral; the actual port
  /// is in port()). SO_REUSEADDR is set so tests can rebind promptly.
  static util::Result<Listener> Bind(const std::string& host, uint16_t port,
                                     int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Waits for one connection. kDeadlineExceeded on deadline expiry,
  /// kCancelled after Shutdown().
  util::Result<Socket> Accept(util::Deadline deadline = {});

  /// Unblocks pending/future Accept calls with kCancelled.
  void Shutdown();

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace geosir::net

#endif  // GEOSIR_NET_SOCKET_H_
